package ivdss_test

import (
	"fmt"
	"log"

	"ivdss"
)

// ExampleInformationValue reproduces the worked numbers from the paper's
// Figure 4 walkthrough: a report generated from all four base tables has
// CL = SL = 10, so its value is 0.9^10 × 0.9^10 of the business value.
func ExampleInformationValue() {
	rates := ivdss.DiscountRates{CL: 0.1, SL: 0.1}
	iv := ivdss.InformationValue(1, ivdss.Latencies{CL: 10, SL: 10}, rates)
	bound := ivdss.ToleratedCL(1, iv, rates)
	fmt.Printf("IV = %.4f, tolerated CL = %.0f\n", iv, bound)
	// Output:
	// IV = 0.1216, tolerated CL = 20
}

// ExamplePlanner shows the planner choosing between a stale replica, the
// remote base table, and a deliberately delayed execution.
func ExamplePlanner() {
	placement, err := ivdss.NewPlacement(map[ivdss.TableID]ivdss.SiteID{"inventory": 1})
	if err != nil {
		log.Fatal(err)
	}
	mgr := ivdss.NewReplicationManager()
	sched, err := ivdss.PeriodicSchedule(30, 10, 200) // syncs at 10, 40, 70, ...
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Register("inventory", sched); err != nil {
		log.Fatal(err)
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		log.Fatal(err)
	}
	cost := &ivdss.CountModel{LocalProcess: 2, PerBaseTable: 4, TransmitFlat: 1}
	planner, err := ivdss.NewPlanner(cost, ivdss.PlannerConfig{
		Rates:   ivdss.DiscountRates{CL: 0.01, SL: 0.10},
		Horizon: 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	query := ivdss.Query{ID: "stock", Tables: []ivdss.TableID{"inventory"}, BusinessValue: 1, SubmitAt: 25}
	snapshot, err := catalog.Snapshot(query.Tables, query.SubmitAt, 60)
	if err != nil {
		log.Fatal(err)
	}
	plan, _, err := planner.Best(query, snapshot, query.SubmitAt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Signature())
	// Output:
	// inventory=replica@40.0 start=40.0
}

// ExampleAging shows the anti-starvation boost growing superlinearly with
// queue time.
func ExampleAging() {
	aging := ivdss.Aging{Coefficient: 0.01, Exponent: 2}
	for _, wait := range []ivdss.Duration{0, 5, 10} {
		fmt.Printf("wait %2.0f → boost %.2f\n", wait, aging.Boost(wait))
	}
	// Output:
	// wait  0 → boost 0.00
	// wait  5 → boost 0.25
	// wait 10 → boost 1.00
}

// ExampleOptimizeOrder runs the genetic workload scheduler on a toy
// fitness function that rewards reversed order.
func ExampleOptimizeOrder() {
	order, fitness, _, err := ivdss.OptimizeOrder(5, func(order []int) (float64, error) {
		score := 0.0
		for pos, g := range order {
			if g == len(order)-1-pos {
				score++
			}
		}
		return score, nil
	}, ivdss.GAConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(order, fitness)
	// Output:
	// [4 3 2 1 0] 5
}

// ExampleRunSQL executes a query of the supported SQL subset against
// in-memory tables.
func ExampleRunSQL() {
	orders := ivdss.RelTable{
		Name: "orders",
		Schema: ivdss.RelSchema{Cols: []ivdss.RelColumn{
			{Name: "region", Type: 3}, // string
			{Name: "total", Type: 2},  // float
		}},
	}
	for _, r := range []struct {
		region string
		total  float64
	}{{"east", 120}, {"west", 80}, {"east", 50}} {
		orders.Rows = append(orders.Rows, ivdss.RelRow{
			{T: 3, S: r.region}, {T: 2, F: r.total},
		})
	}
	out, err := ivdss.RunSQL(
		"SELECT region, sum(total) AS revenue FROM orders GROUP BY region ORDER BY revenue DESC",
		catalogOf(map[string]*ivdss.RelTable{"orders": &orders}),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range out.Rows {
		fmt.Println(row[0].S, row[1].F)
	}
	// Output:
	// east 170
	// west 80
}

// catalogOf adapts a map to the SQL catalog interface.
type catalogOf map[string]*ivdss.RelTable

func (c catalogOf) Table(name string) (*ivdss.RelTable, error) {
	if t, ok := c[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("unknown table %q", name)
}
