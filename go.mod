module ivdss

go 1.22
