package synth

import (
	"fmt"
	"sort"

	"ivdss/internal/stats"
)

// presetSeed spreads each preset onto its own master seed so that no two
// presets ever share a draw stream, while a single knob (the base) still
// re-seeds the whole matrix.
func presetSeed(name string) int64 { return SubSeedFor(1, name) }

// SubSeedFor derives a scenario master seed from a base seed and the
// scenario name. cmd tools use it to honour a -seed flag across the whole
// matrix without collapsing the presets onto one stream.
func SubSeedFor(base int64, name string) int64 {
	return stats.SubSeed(base, "scenario:"+name)
}

// presets returns the built-in scenario matrix in its canonical order.
// Each entry exercises one axis of the paper's evaluation space: scale
// (10–300 tables), popularity skew, arrival shape, horizon mix, and
// outage storms.
func presets() []Scenario {
	return []Scenario{
		{
			Name:              "steady-uniform",
			Description:       "baseline: steady Poisson arrivals, uniform table popularity, lax horizons",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Arrival:           ArrivalSpec{Shape: ArrivalSteady, Mean: 30},
			Horizon:           HorizonSpec{LaxValue: 1},
		},
		{
			Name:              "steady-zipf",
			Description:       "steady arrivals over a zipf-hot table set — the placement advisor's home turf",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Skew:              1.5,
			Arrival:           ArrivalSpec{Shape: ArrivalSteady, Mean: 30},
			Horizon:           HorizonSpec{LaxValue: 1},
		},
		{
			Name:              "flash-zipf",
			Description:       "flash crowd (8x rate for two hours) on zipf-hot tables",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Skew:              1.5,
			Arrival: ArrivalSpec{
				Shape:       ArrivalFlashCrowd,
				Mean:        30,
				FlashAt:     600,
				FlashWidth:  120,
				FlashFactor: 8,
			},
			Horizon: HorizonSpec{LaxValue: 1},
		},
		{
			Name:              "diurnal-mix",
			Description:       "sinusoidal day/night load with a tight/lax horizon mix",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Arrival: ArrivalSpec{
				Shape:      ArrivalDiurnal,
				Mean:       30,
				Period:     1440,
				PeakFactor: 4,
			},
			Horizon: HorizonSpec{TightFraction: 0.3, TightValue: 0.2, LaxValue: 1},
		},
		{
			Name:              "bursty-cdc",
			Description:       "compound-Poisson bursts modelling change-data-capture fan-out",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Arrival: ArrivalSpec{
				Shape:       ArrivalBurstyPoisson,
				Mean:        30,
				BurstMean:   5,
				BurstSpread: 2,
			},
			Horizon: HorizonSpec{LaxValue: 1},
		},
		{
			Name:              "outage-storm",
			Description:       "steady load under correlated site-outage storms (40% of sites per storm)",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Arrival:           ArrivalSpec{Shape: ArrivalSteady, Mean: 30},
			Horizon:           HorizonSpec{LaxValue: 1},
			Outages: &OutageSpec{
				Storms:       4,
				MeanGap:      1200,
				MeanDuration: 240,
				SiteFraction: 0.4,
			},
		},
		{
			Name:              "flash-outage",
			Description:       "worst case: a flash crowd colliding with outage storms on skewed tables",
			Tables:            60,
			Sites:             5,
			Replicas:          8,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 6,
			Skew:              1.5,
			Arrival: ArrivalSpec{
				Shape:       ArrivalFlashCrowd,
				Mean:        30,
				FlashAt:     1200,
				FlashWidth:  240,
				FlashFactor: 6,
			},
			Horizon: HorizonSpec{TightFraction: 0.2, TightValue: 0.2, LaxValue: 1},
			Outages: &OutageSpec{
				Storms:       3,
				MeanGap:      1500,
				MeanDuration: 300,
				SiteFraction: 0.4,
			},
		},
		{
			Name:              "small-federation",
			Description:       "lower bound of the paper's sweep: 10 tables across 3 sites",
			Tables:            10,
			Sites:             3,
			Replicas:          3,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 4,
			Arrival:           ArrivalSpec{Shape: ArrivalSteady, Mean: 30},
			Horizon:           HorizonSpec{LaxValue: 1},
		},
		{
			Name:              "wide-federation",
			Description:       "upper bound of the paper's sweep: 300 tables across 10 sites, zipf-hot",
			Tables:            300,
			Sites:             10,
			Replicas:          12,
			SyncMean:          120,
			NQueries:          200,
			MaxTablesPerQuery: 10,
			Skew:              1.3,
			Arrival:           ArrivalSpec{Shape: ArrivalSteady, Mean: 20},
			Horizon:           HorizonSpec{TightFraction: 0.25, TightValue: 0.2, LaxValue: 1},
		},
	}
}

// Presets returns the built-in scenario matrix, each preset carrying its
// name-derived master seed.
func Presets() []Scenario {
	out := presets()
	for i := range out {
		out[i].Seed = presetSeed(out[i].Name)
	}
	return out
}

// PresetNames returns the preset names in canonical (registry) order.
func PresetNames() []string {
	ps := presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Preset returns the named preset, seeded. The error lists the known
// names so a CLI typo is self-diagnosing.
func Preset(name string) (Scenario, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	known := PresetNames()
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("synth: unknown scenario %q (known: %v)", name, known)
}

// Quick shrinks a scenario for smoke runs and CI gates: a quarter of the
// queries (at least 40) and at most two outage storms, with everything
// else — and the seed — unchanged. The quick variant of a preset is
// itself deterministic, so a checked-in quick baseline reproduces
// exactly.
func (s Scenario) Quick() Scenario {
	q := s
	q.NQueries = s.NQueries / 4
	if q.NQueries < 40 {
		q.NQueries = 40
	}
	if q.Outages != nil {
		o := *s.Outages
		if o.Storms > 2 {
			o.Storms = 2
		}
		// Pull the storms forward so a shorter stream still meets them.
		o.MeanGap = o.MeanGap / 2
		q.Outages = &o
	}
	return q
}
