package synth

import (
	"encoding/json"
	"reflect"
	"testing"

	"ivdss/internal/core"
)

func TestPresetsAreValidAndDistinct(t *testing.T) {
	ps := Presets()
	if len(ps) < 8 {
		t.Fatalf("registry has %d presets, the matrix needs at least 8", len(ps))
	}
	seen := map[string]bool{}
	seeds := map[int64]string{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate preset name %s", p.Name)
		}
		seen[p.Name] = true
		if other, dup := seeds[p.Seed]; dup {
			t.Errorf("presets %s and %s share master seed %d", p.Name, other, p.Seed)
		}
		seeds[p.Seed] = p.Name
	}
	// The matrix must span the paper's 10–300 table sweep.
	minT, maxT := ps[0].Tables, ps[0].Tables
	for _, p := range ps {
		if p.Tables < minT {
			minT = p.Tables
		}
		if p.Tables > maxT {
			maxT = p.Tables
		}
	}
	if minT > 10 || maxT < 300 {
		t.Errorf("preset table counts span [%d, %d], want coverage of [10, 300]", minT, maxT)
	}
	// Every arrival shape must be represented.
	shapes := map[ArrivalShape]bool{}
	for _, p := range ps {
		shapes[p.Arrival.Shape] = true
	}
	for _, want := range []ArrivalShape{ArrivalSteady, ArrivalDiurnal, ArrivalFlashCrowd, ArrivalBurstyPoisson} {
		if !shapes[want] {
			t.Errorf("no preset uses arrival shape %s", want)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	s, err := Preset("flash-zipf")
	if err != nil {
		t.Fatalf("Preset: %v", err)
	}
	if s.Name != "flash-zipf" || s.Seed == 0 {
		t.Fatalf("unexpected preset: %+v", s)
	}
	if _, err := Preset("no-such-scenario"); err == nil {
		t.Fatal("unknown preset did not error")
	}
}

// TestGenerateDeterministic is the same-seed property: one scenario
// generated twice yields byte-identical query streams and outage
// schedules (compared through their JSON encodings, the strictest
// equality the artifacts rely on).
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			a, err := p.Generate()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			b, err := p.Generate()
			if err != nil {
				t.Fatalf("regenerate: %v", err)
			}
			aj, err := json.Marshal(a.Queries)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			bj, err := json.Marshal(b.Queries)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if string(aj) != string(bj) {
				t.Error("same seed produced different query streams")
			}
			if !reflect.DeepEqual(a.Outages, b.Outages) {
				t.Error("same seed produced different outage schedules")
			}
		})
	}
}

// TestGenerateSeedSensitivity: different seeds must actually change the
// stream (guards against a generator that ignores its seed).
func TestGenerateSeedSensitivity(t *testing.T) {
	p, err := Preset("steady-uniform")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p.Seed++
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Queries {
		if a.Queries[i].SubmitAt != b.Queries[i].SubmitAt ||
			!reflect.DeepEqual(a.Queries[i].Tables, b.Queries[i].Tables) {
			same = false
			break
		}
	}
	if same {
		t.Error("changing the seed left the query stream unchanged")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			wl, err := p.Generate()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if len(wl.Queries) != p.NQueries {
				t.Fatalf("got %d queries, want %d", len(wl.Queries), p.NQueries)
			}
			if len(wl.Tables) != p.Tables {
				t.Fatalf("got %d tables, want %d", len(wl.Tables), p.Tables)
			}
			prev := core.Time(0)
			for i, q := range wl.Queries {
				if err := q.Validate(); err != nil {
					t.Fatalf("query %d invalid: %v", i, err)
				}
				if q.SubmitAt < prev {
					t.Fatalf("arrivals out of order at %d: %v < %v", i, q.SubmitAt, prev)
				}
				prev = q.SubmitAt
				if len(q.Tables) > p.MaxTablesPerQuery {
					t.Fatalf("query %d touches %d tables, max %d", i, len(q.Tables), p.MaxTablesPerQuery)
				}
				if q.BusinessValue <= 0 {
					t.Fatalf("query %d has non-positive business value %v", i, q.BusinessValue)
				}
			}
		})
	}
}

// TestFlashCrowdConcentratesArrivals: the flash window must hold a far
// larger share of arrivals than its share of the timeline.
func TestFlashCrowdConcentratesArrivals(t *testing.T) {
	p, err := Preset("flash-zipf")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a := p.Arrival
	in := 0
	for _, q := range wl.Queries {
		if q.SubmitAt >= a.FlashAt && q.SubmitAt < a.FlashAt+a.FlashWidth {
			in++
		}
	}
	span := wl.Queries[len(wl.Queries)-1].SubmitAt
	baseline := float64(len(wl.Queries)) * a.FlashWidth / span
	if float64(in) < 2*baseline {
		t.Errorf("flash window holds %d arrivals, want well above the uniform share %.1f", in, baseline)
	}
}

// TestZipfSkewConcentratesTables: under skew, the busiest table must see
// far more traffic than the uniform expectation.
func TestZipfSkewConcentratesTables(t *testing.T) {
	p, err := Preset("steady-zipf")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.TableID]int{}
	total := 0
	for _, q := range wl.Queries {
		for _, id := range q.Tables {
			counts[id]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(total) / float64(p.Tables)
	if float64(max) < 3*uniform {
		t.Errorf("hottest table saw %d touches, want well above the uniform share %.1f", max, uniform)
	}
}

func TestOutageScheduleCorrelated(t *testing.T) {
	p, err := Preset("outage-storm")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Outages) == 0 {
		t.Fatal("outage-storm generated no outages")
	}
	// Group windows by start: each storm takes down the configured
	// fraction of sites with one shared window.
	byStart := map[core.Time][]Outage{}
	for _, o := range wl.Outages {
		if o.End <= o.Start {
			t.Fatalf("empty outage window %+v", o)
		}
		if o.Site == 0 {
			t.Fatalf("site 0 (the DSS) must never be scheduled down: %+v", o)
		}
		if int(o.Site) > p.Sites {
			t.Fatalf("outage names site %d beyond the %d-site federation", o.Site, p.Sites)
		}
		byStart[o.Start] = append(byStart[o.Start], o)
	}
	if len(byStart) != p.Outages.Storms {
		t.Fatalf("got %d distinct storm windows, want %d", len(byStart), p.Outages.Storms)
	}
	want := int(float64(p.Sites) * p.Outages.SiteFraction)
	if want < 1 {
		want = 1
	}
	for start, storm := range byStart {
		if len(storm) != want {
			t.Errorf("storm at %v takes down %d sites, want %d", start, len(storm), want)
		}
		for _, o := range storm {
			if o.End != storm[0].End {
				t.Errorf("storm at %v has uncorrelated end times", start)
			}
			if !wl.SiteDown(o.Site, (o.Start+o.End)/2) {
				t.Errorf("SiteDown misses site %d mid-window", o.Site)
			}
			if wl.SiteDown(o.Site, o.End) {
				t.Errorf("SiteDown includes the exclusive end bound for site %d", o.Site)
			}
		}
	}
	if wl.OutageMinutes() <= 0 {
		t.Error("OutageMinutes is zero with outages present")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		data, err := p.JSON()
		if err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		back, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("%s: round trip changed the scenario:\n  in:  %+v\n  out: %+v", p.Name, p, back)
		}
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"name":"x","tables":10,"sites":2,"queries":5,"max_tables_per_query":2,"arrival":{"shape":"steady","mean_minutes":10},"horizon":{},"typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	base, err := Preset("steady-uniform")
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Name = "" },
		func(s *Scenario) { s.Tables = 0 },
		func(s *Scenario) { s.Sites = 0 },
		func(s *Scenario) { s.Replicas = -1 },
		func(s *Scenario) { s.Replicas = s.Tables + 1 },
		func(s *Scenario) { s.Replicas = 1; s.SyncMean = 0 },
		func(s *Scenario) { s.NQueries = 0 },
		func(s *Scenario) { s.MaxTablesPerQuery = 0 },
		func(s *Scenario) { s.MaxTablesPerQuery = s.Tables + 1 },
		func(s *Scenario) { s.Skew = 0.5 },
		func(s *Scenario) { s.Arrival.Mean = 0 },
		func(s *Scenario) { s.Arrival.Shape = "wat" },
		func(s *Scenario) { s.Arrival.Shape = ArrivalDiurnal },
		func(s *Scenario) { s.Arrival.Shape = ArrivalFlashCrowd },
		func(s *Scenario) { s.Arrival.Shape = ArrivalBurstyPoisson },
		func(s *Scenario) { s.Horizon.TightFraction = 1.5 },
		func(s *Scenario) { s.Horizon.TightFraction = 0.5; s.Horizon.TightValue = 0 },
		func(s *Scenario) { s.Outages = &OutageSpec{} },
		func(s *Scenario) { s.Outages = &OutageSpec{Storms: 1, MeanGap: 10, MeanDuration: 10, SiteFraction: 2} },
	}
	for i, mutate := range bad {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d produced a scenario that validated: %+v", i, s)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base preset no longer validates: %v", err)
	}
}

func TestQuickShrinks(t *testing.T) {
	for _, p := range Presets() {
		q := p.Quick()
		if err := q.Validate(); err != nil {
			t.Errorf("%s: quick variant invalid: %v", p.Name, err)
		}
		if q.NQueries >= p.NQueries {
			t.Errorf("%s: quick did not shrink the stream (%d -> %d)", p.Name, p.NQueries, q.NQueries)
		}
		if q.Seed != p.Seed || q.Tables != p.Tables {
			t.Errorf("%s: quick changed seed or scale", p.Name)
		}
		if p.Outages != nil {
			if q.Outages == nil {
				t.Errorf("%s: quick dropped outages", p.Name)
			} else if q.Outages.Storms > 2 {
				t.Errorf("%s: quick kept %d storms", p.Name, q.Outages.Storms)
			}
			if p.Outages.Storms != presetStorms(p.Name) {
				t.Errorf("%s: quick mutated the original spec", p.Name)
			}
		}
	}
}

// presetStorms re-reads the registry to prove Quick did not alias the
// original's OutageSpec pointer.
func presetStorms(name string) int {
	p, err := Preset(name)
	if err != nil {
		return -1
	}
	if p.Outages == nil {
		return 0
	}
	return p.Outages.Storms
}
