// Package synth generates the synthetic schemas and query workloads of the
// paper's Section 4 experiments: 10–300 tables, random queries touching
// 1–10 tables each, exponential arrivals, and workloads with a controlled
// query-overlap rate for the multi-query-optimization study (Figure 9a).
package synth

import (
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// Tables returns n synthetic table IDs, T001..Tn.
func Tables(n int) []core.TableID {
	ids := make([]core.TableID, n)
	for i := range ids {
		ids[i] = core.TableID(fmt.Sprintf("T%03d", i+1))
	}
	return ids
}

// QueryConfig parameterizes random query generation.
type QueryConfig struct {
	N                 int            // number of queries
	Tables            []core.TableID // universe of tables
	MaxTablesPerQuery int            // per-query table count is uniform in [1, Max]
	MeanInterarrival  core.Duration  // exponential arrival gaps (0 = all at t=0)
	BusinessValue     float64        // business value per query (default 1)
	// PopularitySkew makes some tables hot: 0 picks tables uniformly; a
	// value > 1 draws them from a Zipf distribution with that exponent
	// over a seeded table ranking (placement advisors need hot tables to
	// have anything to find).
	PopularitySkew float64
	Seed           int64
}

func (c QueryConfig) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("synth: need a positive query count, got %d", c.N)
	}
	if len(c.Tables) == 0 {
		return fmt.Errorf("synth: empty table universe")
	}
	if c.MaxTablesPerQuery <= 0 || c.MaxTablesPerQuery > len(c.Tables) {
		return fmt.Errorf("synth: MaxTablesPerQuery %d outside [1, %d]", c.MaxTablesPerQuery, len(c.Tables))
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("synth: negative mean interarrival %v", c.MeanInterarrival)
	}
	if c.PopularitySkew != 0 && c.PopularitySkew <= 1 {
		return fmt.Errorf("synth: popularity skew %v must be 0 or > 1", c.PopularitySkew)
	}
	return nil
}

// Queries generates N random queries with exponential interarrival gaps.
// Each query touches a uniform 1..MaxTablesPerQuery random subset of the
// universe, following the paper ("the number of tables a query accesses is
// randomly generated from [1, 10]; which tables the query may involve are
// randomly selected").
func Queries(cfg QueryConfig) ([]core.Query, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := stats.NewSource(cfg.Seed)
	bv := cfg.BusinessValue
	if bv == 0 {
		bv = 1
	}
	// With popularity skew, table draws follow a Zipf over a seeded
	// ranking of the universe, so a few tables dominate the workload.
	var zipf *stats.Zipf
	var ranking []int
	if cfg.PopularitySkew > 1 {
		zipf = stats.NewZipf(uint64(len(cfg.Tables)), cfg.PopularitySkew, cfg.Seed^0x21f)
		ranking = src.Perm(len(cfg.Tables))
	}
	out := make([]core.Query, cfg.N)
	at := core.Time(0)
	for i := range out {
		if cfg.MeanInterarrival > 0 {
			at += src.Expo(cfg.MeanInterarrival)
		}
		k := 1 + src.Intn(cfg.MaxTablesPerQuery)
		var picked []int
		if zipf == nil {
			picked = src.PickN(len(cfg.Tables), k)
		} else {
			picked = zipfPickN(zipf, ranking, src, k)
		}
		tables := make([]core.TableID, len(picked))
		for j, idx := range picked {
			tables[j] = cfg.Tables[idx]
		}
		out[i] = core.Query{
			ID:            fmt.Sprintf("q%03d", i+1),
			Tables:        tables,
			BusinessValue: bv,
			SubmitAt:      at,
		}
	}
	return out, nil
}

// zipfPickN draws k distinct table indices Zipf-distributed over the
// ranking, falling back to uniform fills if the skewed draws collide too
// often.
func zipfPickN(z *stats.Zipf, ranking []int, src *stats.Source, k int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for tries := 0; len(out) < k && tries < 20*k; tries++ {
		idx := ranking[int(z.Next())]
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	for len(out) < k {
		idx := src.Intn(len(ranking))
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// OverlapConfig generates a workload whose queries overlap in time at a
// controlled average rate: with probability Rate a query arrives within
// ClusterGap of the previous one (overlapping its execution range), and
// otherwise after SpreadGap (long enough that ranges do not overlap).
type OverlapConfig struct {
	QueryConfig
	Rate       float64       // target overlap fraction, in [0, 1]
	ClusterGap core.Duration // gap inside a cluster (small)
	SpreadGap  core.Duration // gap between clusters (large)
}

// OverlappingQueries generates the Figure 9a workload.
func OverlappingQueries(cfg OverlapConfig) ([]core.Query, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("synth: overlap rate %v outside [0, 1]", cfg.Rate)
	}
	if cfg.ClusterGap < 0 || cfg.SpreadGap <= cfg.ClusterGap {
		return nil, fmt.Errorf("synth: need SpreadGap > ClusterGap >= 0, got %v and %v", cfg.SpreadGap, cfg.ClusterGap)
	}
	queries, err := Queries(cfg.QueryConfig)
	if err != nil {
		return nil, err
	}
	src := stats.NewSource(cfg.Seed ^ 0x5eed)
	at := core.Time(0)
	for i := range queries {
		if i > 0 {
			if src.Float64() < cfg.Rate {
				at += cfg.ClusterGap
			} else {
				at += cfg.SpreadGap
			}
		}
		queries[i].SubmitAt = at
	}
	return queries, nil
}

// MeasuredOverlapRate reports the fraction of queries (beyond the first)
// that arrive within `window` of their predecessor — the empirical overlap
// statistic reported alongside Figure 9a results.
func MeasuredOverlapRate(queries []core.Query, window core.Duration) float64 {
	if len(queries) < 2 {
		return 0
	}
	n := 0
	for i := 1; i < len(queries); i++ {
		if queries[i].SubmitAt-queries[i-1].SubmitAt <= window {
			n++
		}
	}
	return float64(n) / float64(len(queries)-1)
}
