package synth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// Scenario is a named, seeded workload specification: everything the
// matrix bench needs to materialize one workload shape — table-count
// scale, popularity skew, an arrival process, a horizon mix, and
// (optionally) correlated site-outage storms. A Scenario serializes to
// JSON so the same spec drives the DES bench, the live load generator,
// and the checked-in regression baseline identically.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the scenario's master seed; every generated dimension
	// (arrivals, table picks, values, outages) draws from an independent
	// labelled sub-stream of it.
	Seed int64 `json:"seed"`
	// Tables is the synthetic table universe size (the paper sweeps
	// 10–300).
	Tables int `json:"tables"`
	// Sites is the remote federation width; tables are placed uniformly.
	Sites int `json:"sites"`
	// Replicas is how many tables the deployment replicates locally.
	Replicas int `json:"replicas"`
	// SyncMean is the mean replica synchronization cycle in experiment
	// minutes. Required when Replicas > 0.
	SyncMean core.Duration `json:"sync_mean_minutes,omitempty"`
	// NQueries is the stream length.
	NQueries int `json:"queries"`
	// MaxTablesPerQuery bounds each query's uniform 1..Max table count.
	MaxTablesPerQuery int `json:"max_tables_per_query"`
	// Skew is the Zipf exponent over table popularity: 0 picks tables
	// uniformly, a value > 1 concentrates traffic on a hot few.
	Skew float64 `json:"skew,omitempty"`
	// Arrival shapes the query arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Horizon mixes tight-ε and lax value horizons across the stream.
	Horizon HorizonSpec `json:"horizon"`
	// Outages, when set, adds correlated site-outage storms.
	Outages *OutageSpec `json:"outages,omitempty"`
}

// ArrivalShape names an arrival process family.
type ArrivalShape string

// The supported arrival shapes.
const (
	// ArrivalSteady is a homogeneous Poisson process.
	ArrivalSteady ArrivalShape = "steady"
	// ArrivalDiurnal modulates the rate sinusoidally between the base
	// rate and PeakFactor times it, with the given period.
	ArrivalDiurnal ArrivalShape = "diurnal"
	// ArrivalFlashCrowd multiplies the rate by FlashFactor inside the
	// window [FlashAt, FlashAt+FlashWidth).
	ArrivalFlashCrowd ArrivalShape = "flash-crowd"
	// ArrivalBurstyPoisson is a compound Poisson process modelling bursty
	// CDC-style traffic: burst epochs arrive exponentially, each carrying
	// a cluster of queries spread over BurstSpread.
	ArrivalBurstyPoisson ArrivalShape = "bursty-poisson"
)

// ArrivalSpec parameterizes the arrival process. Mean is the base mean
// interarrival gap in experiment minutes for every shape; the remaining
// fields apply only to the shapes that name them.
type ArrivalSpec struct {
	Shape ArrivalShape  `json:"shape"`
	Mean  core.Duration `json:"mean_minutes"`
	// Diurnal: rate cycles with this period, peaking at PeakFactor times
	// the base rate.
	Period     core.Duration `json:"period_minutes,omitempty"`
	PeakFactor float64       `json:"peak_factor,omitempty"`
	// Flash crowd: the window and its rate multiplier.
	FlashAt     core.Time     `json:"flash_at_minutes,omitempty"`
	FlashWidth  core.Duration `json:"flash_width_minutes,omitempty"`
	FlashFactor float64       `json:"flash_factor,omitempty"`
	// Bursty Poisson: mean queries per burst and the spread of a burst's
	// arrivals.
	BurstMean   float64       `json:"burst_mean,omitempty"`
	BurstSpread core.Duration `json:"burst_spread_minutes,omitempty"`
}

// HorizonSpec mixes tight and lax value horizons: a TightFraction of the
// stream carries TightValue as business value (a low value means the IV
// falls below any ε threshold quickly — a tight horizon), the rest carry
// LaxValue. Zero values default to 1 (all-lax).
type HorizonSpec struct {
	TightFraction float64 `json:"tight_fraction,omitempty"`
	TightValue    float64 `json:"tight_value,omitempty"`
	LaxValue      float64 `json:"lax_value,omitempty"`
}

// OutageSpec shapes correlated site-outage storms: Storms storm starts
// arrive with exponential MeanGap, each taking down a correlated
// SiteFraction of the remote sites for an exponential MeanDuration.
type OutageSpec struct {
	Storms       int           `json:"storms"`
	MeanGap      core.Duration `json:"mean_gap_minutes"`
	MeanDuration core.Duration `json:"mean_duration_minutes"`
	SiteFraction float64       `json:"site_fraction"`
}

// Outage is one site's down window in experiment minutes. Storm
// generation emits one Outage per affected site; sites in the same storm
// share Start and End (that is the correlation).
type Outage struct {
	Site  core.SiteID `json:"site"`
	Start core.Time   `json:"start_minutes"`
	End   core.Time   `json:"end_minutes"`
}

// Down reports whether the site is inside this outage window at t.
func (o Outage) Down(t core.Time) bool { return t >= o.Start && t < o.End }

// Workload is a materialized scenario: the table universe, the query
// stream, and the outage schedule, all deterministic in the scenario
// seed.
type Workload struct {
	Scenario Scenario
	Tables   []core.TableID
	Queries  []core.Query
	Outages  []Outage
}

// SiteDown reports whether the schedule has the site down at t.
func (w *Workload) SiteDown(site core.SiteID, t core.Time) bool {
	for _, o := range w.Outages {
		if o.Site == site && o.Down(t) {
			return true
		}
	}
	return false
}

// OutageMinutes sums site-down minutes over the schedule (a site down
// twice counts both windows).
func (w *Workload) OutageMinutes() float64 {
	var total float64
	for _, o := range w.Outages {
		total += o.End - o.Start
	}
	return total
}

// Validate reports whether the scenario is well formed.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("synth: scenario needs a name")
	}
	if s.Tables < 1 {
		return fmt.Errorf("synth: scenario %s: need at least one table, got %d", s.Name, s.Tables)
	}
	if s.Sites < 1 {
		return fmt.Errorf("synth: scenario %s: need at least one site, got %d", s.Name, s.Sites)
	}
	if s.Replicas < 0 || s.Replicas > s.Tables {
		return fmt.Errorf("synth: scenario %s: replicas %d outside [0, %d]", s.Name, s.Replicas, s.Tables)
	}
	if s.Replicas > 0 && s.SyncMean <= 0 {
		return fmt.Errorf("synth: scenario %s: replicas without a positive sync mean", s.Name)
	}
	if s.NQueries < 1 {
		return fmt.Errorf("synth: scenario %s: need a positive query count, got %d", s.Name, s.NQueries)
	}
	if s.MaxTablesPerQuery < 1 || s.MaxTablesPerQuery > s.Tables {
		return fmt.Errorf("synth: scenario %s: max tables per query %d outside [1, %d]", s.Name, s.MaxTablesPerQuery, s.Tables)
	}
	if s.Skew != 0 && s.Skew <= 1 {
		return fmt.Errorf("synth: scenario %s: skew %v must be 0 or > 1", s.Name, s.Skew)
	}
	if err := s.Arrival.validate(); err != nil {
		return fmt.Errorf("synth: scenario %s: %w", s.Name, err)
	}
	if err := s.Horizon.validate(); err != nil {
		return fmt.Errorf("synth: scenario %s: %w", s.Name, err)
	}
	if s.Outages != nil {
		if err := s.Outages.validate(s.Sites); err != nil {
			return fmt.Errorf("synth: scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

func (a ArrivalSpec) validate() error {
	if a.Mean <= 0 {
		return fmt.Errorf("arrival mean %v must be positive", a.Mean)
	}
	switch a.Shape {
	case ArrivalSteady:
	case ArrivalDiurnal:
		if a.Period <= 0 {
			return fmt.Errorf("diurnal arrivals need a positive period, got %v", a.Period)
		}
		if a.PeakFactor < 1 {
			return fmt.Errorf("diurnal peak factor %v must be >= 1", a.PeakFactor)
		}
	case ArrivalFlashCrowd:
		if a.FlashWidth <= 0 {
			return fmt.Errorf("flash crowd needs a positive width, got %v", a.FlashWidth)
		}
		if a.FlashAt < 0 {
			return fmt.Errorf("flash start %v must be non-negative", a.FlashAt)
		}
		if a.FlashFactor < 1 {
			return fmt.Errorf("flash factor %v must be >= 1", a.FlashFactor)
		}
	case ArrivalBurstyPoisson:
		if a.BurstMean < 1 {
			return fmt.Errorf("burst mean %v must be >= 1", a.BurstMean)
		}
		if a.BurstSpread <= 0 {
			return fmt.Errorf("burst spread %v must be positive", a.BurstSpread)
		}
	default:
		return fmt.Errorf("unknown arrival shape %q", a.Shape)
	}
	return nil
}

func (h HorizonSpec) validate() error {
	if h.TightFraction < 0 || h.TightFraction > 1 {
		return fmt.Errorf("tight fraction %v outside [0, 1]", h.TightFraction)
	}
	if h.TightValue < 0 || h.LaxValue < 0 {
		return fmt.Errorf("horizon values must be non-negative, got tight %v lax %v", h.TightValue, h.LaxValue)
	}
	if h.TightFraction > 0 && h.TightValue == 0 {
		return fmt.Errorf("tight fraction %v without a tight value", h.TightFraction)
	}
	return nil
}

func (o OutageSpec) validate(sites int) error {
	if o.Storms < 1 {
		return fmt.Errorf("outage spec needs at least one storm, got %d", o.Storms)
	}
	if o.MeanGap <= 0 || o.MeanDuration <= 0 {
		return fmt.Errorf("outage gaps and durations must be positive, got %v and %v", o.MeanGap, o.MeanDuration)
	}
	if o.SiteFraction <= 0 || o.SiteFraction > 1 {
		return fmt.Errorf("outage site fraction %v outside (0, 1]", o.SiteFraction)
	}
	if int(float64(sites)*o.SiteFraction) < 1 && sites < 1 {
		return fmt.Errorf("outage storms need at least one site")
	}
	return nil
}

// ParseScenario decodes and validates a JSON scenario. Unknown fields are
// rejected so a typo in a checked-in spec cannot silently change the
// workload shape.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := strictUnmarshal(data, &s); err != nil {
		return s, fmt.Errorf("synth: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// JSON encodes the scenario in its canonical indented form.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// strictUnmarshal is json.Unmarshal with unknown fields disallowed.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Generate materializes the scenario. Every dimension draws from an
// independent labelled sub-stream of the scenario seed, so the same seed
// yields a byte-identical query stream and outage schedule, and changing
// one dimension's parameters never perturbs another's draws.
func (s Scenario) Generate() (*Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	wl := &Workload{Scenario: s, Tables: Tables(s.Tables)}

	arrivals := s.Arrival.times(s.NQueries, stats.NewSource(stats.SubSeed(s.Seed, "arrivals")))

	pickSrc := stats.NewSource(stats.SubSeed(s.Seed, "tables"))
	var zipf *stats.Zipf
	var ranking []int
	if s.Skew > 1 {
		zipf = stats.NewZipf(uint64(s.Tables), s.Skew, stats.SubSeed(s.Seed, "zipf"))
		ranking = pickSrc.Perm(s.Tables)
	}

	valueSrc := stats.NewSource(stats.SubSeed(s.Seed, "values"))
	tight, lax := s.Horizon.TightValue, s.Horizon.LaxValue
	if lax == 0 {
		lax = 1
	}

	wl.Queries = make([]core.Query, s.NQueries)
	for i := range wl.Queries {
		k := 1 + pickSrc.Intn(s.MaxTablesPerQuery)
		var picked []int
		if zipf == nil {
			picked = pickSrc.PickN(s.Tables, k)
		} else {
			picked = zipfPickN(zipf, ranking, pickSrc, k)
		}
		tables := make([]core.TableID, len(picked))
		for j, idx := range picked {
			tables[j] = wl.Tables[idx]
		}
		bv := lax
		if s.Horizon.TightFraction > 0 && valueSrc.Float64() < s.Horizon.TightFraction {
			bv = tight
		}
		wl.Queries[i] = core.Query{
			ID:            fmt.Sprintf("%s-q%04d", s.Name, i+1),
			Tables:        tables,
			BusinessValue: bv,
			SubmitAt:      arrivals[i],
		}
	}

	if s.Outages != nil {
		wl.Outages = s.Outages.schedule(s.Sites, stats.NewSource(stats.SubSeed(s.Seed, "outages")))
	}
	return wl, nil
}

// times generates n sorted arrival instants for the spec.
func (a ArrivalSpec) times(n int, src *stats.Source) []core.Time {
	switch a.Shape {
	case ArrivalDiurnal, ArrivalFlashCrowd:
		return a.thinnedTimes(n, src)
	case ArrivalBurstyPoisson:
		return a.burstyTimes(n, src)
	default:
		out := make([]core.Time, n)
		at := core.Time(0)
		for i := range out {
			at += src.Expo(a.Mean)
			out[i] = at
		}
		return out
	}
}

// rate is the instantaneous arrival rate at t (queries per minute), and
// maxRate its supremum — the envelope the thinning sampler draws under.
func (a ArrivalSpec) rate(t core.Time) float64 {
	base := 1 / a.Mean
	switch a.Shape {
	case ArrivalDiurnal:
		// Oscillate between the base rate and PeakFactor times it.
		phase := 0.5 + 0.5*math.Sin(2*math.Pi*t/a.Period)
		return base * (1 + (a.PeakFactor-1)*phase)
	case ArrivalFlashCrowd:
		if t >= a.FlashAt && t < a.FlashAt+a.FlashWidth {
			return base * a.FlashFactor
		}
		return base
	default:
		return base
	}
}

func (a ArrivalSpec) maxRate() float64 {
	base := 1 / a.Mean
	switch a.Shape {
	case ArrivalDiurnal:
		return base * a.PeakFactor
	case ArrivalFlashCrowd:
		return base * a.FlashFactor
	default:
		return base
	}
}

// thinnedTimes samples a non-homogeneous Poisson process by thinning
// (Lewis & Shedler): candidates arrive at the envelope rate and are
// accepted with probability rate(t)/maxRate.
func (a ArrivalSpec) thinnedTimes(n int, src *stats.Source) []core.Time {
	out := make([]core.Time, 0, n)
	maxRate := a.maxRate()
	at := core.Time(0)
	for len(out) < n {
		at += src.Expo(1 / maxRate)
		if src.Float64() <= a.rate(at)/maxRate {
			out = append(out, at)
		}
	}
	return out
}

// burstyTimes samples a compound Poisson process: burst epochs arrive
// with mean gap Mean×BurstMean (keeping the long-run rate near 1/Mean),
// each epoch carrying a uniform 1..2×BurstMean−1 queries whose offsets
// accumulate exponentially with mean BurstSpread.
func (a ArrivalSpec) burstyTimes(n int, src *stats.Source) []core.Time {
	out := make([]core.Time, 0, n)
	epoch := core.Time(0)
	sizeRange := int(2*a.BurstMean) - 1
	if sizeRange < 1 {
		sizeRange = 1
	}
	for len(out) < n {
		epoch += src.Expo(a.Mean * a.BurstMean)
		size := 1 + src.Intn(sizeRange)
		at := epoch
		for j := 0; j < size && len(out) < n; j++ {
			if j > 0 {
				at += src.Expo(a.BurstSpread)
			}
			out = append(out, at)
		}
	}
	// Burst tails can overrun the next epoch; the stream must still be an
	// arrival-ordered sequence.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// schedule draws the storm windows: start gaps exponential, durations
// exponential, and a correlated fraction of the remote sites (numbered
// from 1; site 0 is the DSS itself and never fails) down per storm.
func (o OutageSpec) schedule(sites int, src *stats.Source) []Outage {
	perStorm := int(float64(sites) * o.SiteFraction)
	if perStorm < 1 {
		perStorm = 1
	}
	var out []Outage
	at := core.Time(0)
	for i := 0; i < o.Storms; i++ {
		at += src.Expo(o.MeanGap)
		end := at + src.Expo(o.MeanDuration)
		for _, idx := range src.PickN(sites, perStorm) {
			out = append(out, Outage{Site: core.SiteID(idx + 1), Start: at, End: end})
		}
	}
	// Deterministic presentation order: by start, then site.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Site < out[j].Site
	})
	return out
}
