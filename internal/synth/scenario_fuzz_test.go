package synth

import (
	"reflect"
	"testing"
)

// FuzzScenarioJSON fuzzes the Scenario JSON codec: any input that parses
// into a valid scenario must re-encode and re-parse to the identical
// value (a canonical round trip), and parsing must never panic on
// arbitrary bytes. The seed corpus is the full preset registry.
func FuzzScenarioJSON(f *testing.F) {
	for _, p := range Presets() {
		data, err := p.JSON()
		if err != nil {
			f.Fatalf("%s: encode: %v", p.Name, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScenario(data)
		if err != nil {
			return // invalid input is fine; panicking is not
		}
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("valid scenario failed to encode: %v", err)
		}
		back, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("canonical encoding failed to parse: %v", err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip changed the scenario:\n  in:  %+v\n  out: %+v", s, back)
		}
	})
}
