package synth

import (
	"testing"

	"ivdss/internal/core"
)

func TestTables(t *testing.T) {
	ids := Tables(3)
	if len(ids) != 3 || ids[0] != "T001" || ids[2] != "T003" {
		t.Errorf("Tables = %v", ids)
	}
}

func baseConfig() QueryConfig {
	return QueryConfig{
		N:                 120,
		Tables:            Tables(100),
		MaxTablesPerQuery: 10,
		MeanInterarrival:  5,
		Seed:              7,
	}
}

func TestQueriesShape(t *testing.T) {
	queries, err := Queries(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 120 {
		t.Fatalf("queries = %d", len(queries))
	}
	prev := core.Time(-1)
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", q.ID, err)
		}
		if len(q.Tables) < 1 || len(q.Tables) > 10 {
			t.Errorf("%s touches %d tables", q.ID, len(q.Tables))
		}
		if q.SubmitAt < prev {
			t.Errorf("%s arrives before its predecessor", q.ID)
		}
		prev = q.SubmitAt
		if q.BusinessValue != 1 {
			t.Errorf("%s business value = %v, want default 1", q.ID, q.BusinessValue)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a, _ := Queries(baseConfig())
	b, _ := Queries(baseConfig())
	for i := range a {
		if a[i].SubmitAt != b[i].SubmitAt || len(a[i].Tables) != len(b[i].Tables) {
			t.Fatalf("query %d differs across runs", i)
		}
	}
}

func TestQueriesValidation(t *testing.T) {
	bad := []QueryConfig{
		{N: 0, Tables: Tables(5), MaxTablesPerQuery: 2},
		{N: 5, Tables: nil, MaxTablesPerQuery: 2},
		{N: 5, Tables: Tables(5), MaxTablesPerQuery: 0},
		{N: 5, Tables: Tables(5), MaxTablesPerQuery: 9},
		{N: 5, Tables: Tables(5), MaxTablesPerQuery: 2, MeanInterarrival: -1},
	}
	for i, cfg := range bad {
		if _, err := Queries(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestQueriesZeroInterarrival(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanInterarrival = 0
	queries, err := Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if q.SubmitAt != 0 {
			t.Fatalf("%s arrives at %v, want 0", q.ID, q.SubmitAt)
		}
	}
}

func TestOverlappingQueriesRate(t *testing.T) {
	for _, rate := range []float64{.1, .3, .5} {
		cfg := OverlapConfig{
			QueryConfig: baseConfig(),
			Rate:        rate,
			ClusterGap:  .5,
			SpreadGap:   100,
		}
		queries, err := OverlappingQueries(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := MeasuredOverlapRate(queries, 1)
		if got < rate-.12 || got > rate+.12 {
			t.Errorf("rate %v: measured %v", rate, got)
		}
	}
}

func TestOverlappingQueriesValidation(t *testing.T) {
	good := OverlapConfig{QueryConfig: baseConfig(), Rate: .5, ClusterGap: 1, SpreadGap: 10}
	bad := []OverlapConfig{
		{QueryConfig: baseConfig(), Rate: -1, ClusterGap: 1, SpreadGap: 10},
		{QueryConfig: baseConfig(), Rate: 2, ClusterGap: 1, SpreadGap: 10},
		{QueryConfig: baseConfig(), Rate: .5, ClusterGap: 10, SpreadGap: 10},
		{QueryConfig: baseConfig(), Rate: .5, ClusterGap: -1, SpreadGap: 10},
	}
	if _, err := OverlappingQueries(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for i, cfg := range bad {
		if _, err := OverlappingQueries(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMeasuredOverlapRateEdgeCases(t *testing.T) {
	if MeasuredOverlapRate(nil, 1) != 0 {
		t.Error("empty workload should measure 0")
	}
	qs := []core.Query{{SubmitAt: 0}, {SubmitAt: 0.5}, {SubmitAt: 10}}
	if got := MeasuredOverlapRate(qs, 1); got != .5 {
		t.Errorf("measured = %v, want 0.5", got)
	}
}

func TestPopularitySkew(t *testing.T) {
	cfg := baseConfig()
	cfg.N = 400
	cfg.PopularitySkew = 1.5
	queries, err := Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.TableID]int)
	for _, q := range queries {
		seen := make(map[core.TableID]bool)
		for _, id := range q.Tables {
			if seen[id] {
				t.Fatalf("%s repeats table %s", q.ID, id)
			}
			seen[id] = true
			counts[id]++
		}
	}
	// The hottest table must be used far more than the median one.
	var hot, total int
	for _, c := range counts {
		if c > hot {
			hot = c
		}
		total += c
	}
	mean := total / len(counts)
	if hot < 3*mean {
		t.Errorf("skew too weak: hottest %d vs mean %d", hot, mean)
	}
	cfg.PopularitySkew = .5
	if _, err := Queries(cfg); err == nil {
		t.Error("skew in (0,1] accepted")
	}
}
