package advisor

import (
	"fmt"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
)

func testConfig() Config {
	return Config{
		Cost:     &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 4, TransmitFlat: 1},
		Rates:    core.DiscountRates{CL: .05, SL: .02},
		SyncMean: 10,
		Horizon:  60,
	}
}

func testPlacement(t *testing.T, n int) (*federation.Placement, []core.TableID) {
	t.Helper()
	tables := make([]core.TableID, n)
	siteOf := make(map[core.TableID]core.SiteID, n)
	for i := range tables {
		tables[i] = core.TableID(fmt.Sprintf("T%02d", i))
		siteOf[tables[i]] = core.SiteID(1 + i%3)
	}
	p, err := federation.NewPlacement(siteOf)
	if err != nil {
		t.Fatal(err)
	}
	return p, tables
}

func TestNewValidation(t *testing.T) {
	good := testConfig()
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Rates: good.Rates, SyncMean: 10},    // no cost model
		{Cost: good.Cost, Rates: good.Rates}, // no sync mean
		{Cost: good.Cost, Rates: core.DiscountRates{CL: 2}, SyncMean: 10},
		{Cost: good.Cost, Rates: good.Rates, SyncMean: 10, FutureSyncs: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRecommendPrefersHotTables(t *testing.T) {
	placement, tables := testPlacement(t, 6)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// T00 appears in every query; T05 in none.
	var queries []core.Query
	for i := 0; i < 10; i++ {
		queries = append(queries, core.Query{
			ID:            fmt.Sprintf("q%d", i),
			Tables:        []core.TableID{tables[0], tables[1+i%3]},
			BusinessValue: 1,
			SubmitAt:      core.Time(i) * 7,
		})
	}
	rec, err := a.RecommendReplicas(queries, placement, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) == 0 {
		t.Fatal("no replicas recommended")
	}
	if rec.Replicas[0] != tables[0] {
		t.Errorf("first pick = %s, want the hottest table %s", rec.Replicas[0], tables[0])
	}
	for _, id := range rec.Replicas {
		if id == tables[5] {
			t.Error("recommended a table no query touches")
		}
	}
}

func TestRecommendGainsMonotone(t *testing.T) {
	placement, tables := testPlacement(t, 8)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var queries []core.Query
	for i := 0; i < 12; i++ {
		queries = append(queries, core.Query{
			ID:            fmt.Sprintf("q%d", i),
			Tables:        []core.TableID{tables[i%8], tables[(i+3)%8]},
			BusinessValue: 1,
			SubmitAt:      core.Time(i),
		})
	}
	rec, err := a.RecommendReplicas(queries, placement, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := rec.BaselineIV
	for i, step := range rec.Steps {
		if step.ExpectedIV < prev {
			t.Errorf("step %d decreased IV: %v -> %v", i, prev, step.ExpectedIV)
		}
		if step.Gain <= 0 {
			t.Errorf("step %d has non-positive gain %v", i, step.Gain)
		}
		// Greedy marginal gains need not be monotone in general, but the
		// final value must match the trace.
		prev = step.ExpectedIV
	}
	if rec.FinalIV() != prev {
		t.Errorf("FinalIV = %v, want %v", rec.FinalIV(), prev)
	}
	if rec.FinalIV() < rec.BaselineIV {
		t.Errorf("recommendation worse than baseline")
	}
}

func TestRecommendRespectsBudget(t *testing.T) {
	placement, tables := testPlacement(t, 6)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []core.Query{
		{ID: "q1", Tables: tables[:4], BusinessValue: 1, SubmitAt: 0},
		{ID: "q2", Tables: tables[2:6], BusinessValue: 1, SubmitAt: 5},
	}
	rec, err := a.RecommendReplicas(queries, placement, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) > 2 {
		t.Errorf("budget exceeded: %v", rec.Replicas)
	}
	zero, err := a.RecommendReplicas(queries, placement, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Replicas) != 0 {
		t.Errorf("zero budget produced %v", zero.Replicas)
	}
}

func TestRecommendStopsWhenNothingHelps(t *testing.T) {
	placement, tables := testPlacement(t, 3)
	cfg := testConfig()
	// When remote reads cost nothing extra, base tables weakly dominate
	// every replica plan (same CL, never-stale data), so the advisor must
	// recommend nothing.
	cfg.Cost = &costmodel.CountModel{LocalProcess: 2}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := []core.Query{
		{ID: "q", Tables: tables, BusinessValue: 1, SubmitAt: 0},
	}
	rec, err := a.RecommendReplicas(queries, placement, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) != 0 {
		t.Errorf("useless replicas recommended: %v", rec.Replicas)
	}
}

func TestRecommendErrors(t *testing.T) {
	placement, tables := testPlacement(t, 3)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecommendReplicas(nil, placement, 2); err == nil {
		t.Error("empty workload accepted")
	}
	queries := []core.Query{{ID: "q", Tables: tables, BusinessValue: 1}}
	if _, err := a.RecommendReplicas(queries, placement, -1); err == nil {
		t.Error("negative budget accepted")
	}
	ghost := []core.Query{{ID: "q", Tables: []core.TableID{"ghost"}, BusinessValue: 1}}
	if _, err := a.RecommendReplicas(ghost, placement, 1); err == nil {
		t.Error("unplaced table accepted")
	}
	if _, err := a.ExpectedWorkloadIV(queries, nil, nil); err == nil {
		t.Error("nil placement accepted")
	}
}

// TestRecommendBeatsRandomChoice: the advisor's plan must score at least
// as well as every same-size random plan on its own objective.
func TestRecommendBeatsRandomChoice(t *testing.T) {
	placement, tables := testPlacement(t, 8)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var queries []core.Query
	for i := 0; i < 15; i++ {
		queries = append(queries, core.Query{
			ID:            fmt.Sprintf("q%d", i),
			Tables:        []core.TableID{tables[i%4], tables[4+i%4]},
			BusinessValue: 1,
			SubmitAt:      core.Time(i) * 3,
		})
	}
	rec, err := a.RecommendReplicas(queries, placement, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustively score all 2-subsets; greedy isn't guaranteed globally
	// optimal, but it must beat the *average* and never be beaten by more
	// than a small margin by the best subset on this small instance.
	bestIV := 0.0
	var sum float64
	n := 0
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			iv, err := a.ExpectedWorkloadIV(queries, placement, map[core.TableID]bool{
				tables[i]: true, tables[j]: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += iv
			n++
			if iv > bestIV {
				bestIV = iv
			}
		}
	}
	if rec.FinalIV() < sum/float64(n) {
		t.Errorf("greedy %v below the average random 2-subset %v", rec.FinalIV(), sum/float64(n))
	}
	if rec.FinalIV() < bestIV*0.95 {
		t.Errorf("greedy %v more than 5%% below the optimal 2-subset %v", rec.FinalIV(), bestIV)
	}
}

func TestRecommendSourcesPromotesViewForHotAggregate(t *testing.T) {
	placement, tables := testPlacement(t, 4)
	cfg := testConfig()
	cfg.Cost = &costmodel.CountModel{LocalProcess: 4, PerBaseTable: 4, TransmitFlat: 1}
	cfg.Samples = 32
	cfg.Seed = 7
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One registered aggregate hammers T00; background queries touch the
	// rest. A view covering the aggregate collapses its whole processing
	// cost, so it should out-earn a plain replica of T00.
	var queries []core.Query
	for i := 0; i < 12; i++ {
		queries = append(queries, core.Query{
			ID: "agg", Tables: []core.TableID{tables[0]}, BusinessValue: 1, SubmitAt: core.Time(i) * 5,
		})
	}
	for i := 0; i < 4; i++ {
		queries = append(queries, core.Query{
			ID: fmt.Sprintf("bg%d", i), Tables: []core.TableID{tables[1+i%3]}, BusinessValue: 1, SubmitAt: core.Time(i)*13 + 2,
		})
	}
	views := []ViewCandidate{{ID: "vagg", QueryID: "agg", Table: tables[0]}}
	rec, err := a.RecommendSources(queries, placement, views, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Views) != 1 || rec.Views[0] != "vagg" {
		t.Fatalf("views = %v, want the aggregate's view promoted", rec.Views)
	}
	// The view displaced its base table's replica: a replica of T00 adds
	// nothing once the hot query answers from the view.
	for _, id := range rec.Replicas {
		if id == tables[0] {
			t.Errorf("replica of %s recommended alongside its view", id)
		}
	}
	// Units preserves the greedy selection order and namespaces view units.
	units := rec.Units()
	if len(units) != len(rec.Steps) {
		t.Fatalf("units = %v, steps = %v, want one unit per step", units, rec.Steps)
	}
	for i, st := range rec.Steps {
		if units[i] != st.Table {
			t.Errorf("unit %d = %s, step table = %s", i, units[i], st.Table)
		}
	}
	if units[0] != core.ViewUnit("vagg") {
		t.Errorf("first unit = %s, want the view picked first", units[0])
	}
}

func TestRecommendSourcesIgnoresUselessView(t *testing.T) {
	placement, tables := testPlacement(t, 3)
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The candidate view covers a query ID that never occurs, so every
	// slot should go to replicas.
	var queries []core.Query
	for i := 0; i < 8; i++ {
		queries = append(queries, core.Query{
			ID: fmt.Sprintf("q%d", i%2), Tables: []core.TableID{tables[i%2]}, BusinessValue: 1, SubmitAt: core.Time(i) * 5,
		})
	}
	views := []ViewCandidate{{ID: "vghost", QueryID: "ghost", Table: tables[0]}}
	rec, err := a.RecommendSources(queries, placement, views, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Views) != 0 {
		t.Errorf("views = %v, want none for a view no query matches", rec.Views)
	}
	if len(rec.Replicas) == 0 {
		t.Error("no replicas recommended")
	}
}
