// Package advisor implements the paper's stated future work: "a data
// placement advisor to recommend table placement and replication
// strategies to further improve an overall information value".
//
// Given a representative workload, a table placement, and the
// synchronization cadence the replication manager can sustain, the advisor
// greedily selects which tables to replicate at the DSS: at each step it
// adds the replica yielding the largest increase in the workload's
// expected information value, scored by planning every query against a
// steady-state catalog model (replicas are, in expectation, one sync-mean
// stale, and the next synchronization is one sync-mean away — both exact
// for the memoryless exponential cycles the experiments use).
package advisor

import (
	"fmt"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/federation"
	"ivdss/internal/stats"
)

// Config parameterizes the advisor.
type Config struct {
	// Cost estimates computational latency (same model the planner uses).
	Cost core.CostModel
	// Rates are the business's discount rates.
	Rates core.DiscountRates
	// SyncMean is the mean synchronization period a replica would get.
	SyncMean core.Duration
	// Horizon bounds delayed-execution exploration during scoring.
	// Zero keeps the planner default (unbounded, bounded by the IV bound).
	Horizon core.Duration
	// FutureSyncs is how many upcoming synchronizations each sampled
	// scenario exposes to the planner (default 3).
	FutureSyncs int
	// Samples is the number of staleness scenarios drawn per query
	// (default 16).
	Samples int
	// Seed drives the scenario sampling.
	Seed int64
}

func (c Config) validate() error {
	if c.Cost == nil {
		return fmt.Errorf("advisor: needs a cost model")
	}
	if err := c.Rates.Validate(); err != nil {
		return err
	}
	if c.SyncMean <= 0 {
		return fmt.Errorf("advisor: sync mean %v must be positive", c.SyncMean)
	}
	if c.FutureSyncs < 0 {
		return fmt.Errorf("advisor: negative future sync count")
	}
	if c.Samples < 0 {
		return fmt.Errorf("advisor: negative sample count")
	}
	return nil
}

// ViewCandidate describes a materialized view the advisor may choose to
// maintain: the query whose answer it covers and the base table it is
// maintained over. A chosen view occupies one slot of the sync budget,
// exactly like a replica — promotion and demotion fall out of the same
// greedy selection.
type ViewCandidate struct {
	ID      core.ViewID
	QueryID string
	Table   core.TableID
}

// Step records one greedy selection.
type Step struct {
	// Table is the selected synchronized unit: a base table chosen for
	// replication, or a view's namespaced unit ("view:<id>").
	Table core.TableID
	// ExpectedIV is the workload's expected total information value after
	// adding this unit.
	ExpectedIV float64
	// Gain is the improvement over the previous step.
	Gain float64
}

// Recommendation is the advisor's output.
type Recommendation struct {
	// Replicas to create, in greedy selection order (most valuable first).
	Replicas []core.TableID
	// Views to materialize, in greedy selection order. The interleaved
	// order across replicas and views is traced in Steps.
	Views []core.ViewID
	// BaselineIV is the workload's expected IV with no local sources at
	// all.
	BaselineIV float64
	// Steps traces the greedy selection.
	Steps []Step
}

// Units returns every selected synchronized unit — replica tables plus
// namespaced view units — in greedy selection order.
func (r Recommendation) Units() []core.TableID {
	units := make([]core.TableID, 0, len(r.Steps))
	for _, s := range r.Steps {
		units = append(units, s.Table)
	}
	return units
}

// FinalIV returns the expected workload IV with every recommended replica
// in place.
func (r Recommendation) FinalIV() float64 {
	if len(r.Steps) == 0 {
		return r.BaselineIV
	}
	return r.Steps[len(r.Steps)-1].ExpectedIV
}

// Advisor scores replication plans for a workload. Construct with New.
type Advisor struct {
	cfg     Config
	planner *core.Planner
}

// New validates the config and returns an Advisor.
func New(cfg Config) (*Advisor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FutureSyncs == 0 {
		cfg.FutureSyncs = 3
	}
	if cfg.Samples == 0 {
		cfg.Samples = 16
	}
	planner, err := core.NewPlanner(cfg.Cost, core.PlannerConfig{
		Rates:   cfg.Rates,
		Horizon: cfg.Horizon,
	})
	if err != nil {
		return nil, err
	}
	return &Advisor{cfg: cfg, planner: planner}, nil
}

// tableScenario builds the planner's view of one replicated table in one
// sampled scenario. The stream of exponential draws is a deterministic
// function of (advisor seed, query index, table ID, sample index) only —
// not of which other tables are replicated — so every candidate replica
// set is scored against identical staleness realizations (common random
// numbers).
func (a *Advisor) tableScenario(id core.TableID, site core.SiteID, now core.Time, qIdx, sample int) core.TableState {
	src := stats.NewSource(stats.SubSeed(a.cfg.Seed, string(id)) ^ (int64(qIdx) << 20) ^ (int64(sample) << 40))
	age := src.Expo(a.cfg.SyncMean)
	rs := &core.ReplicaState{LastSync: now - age}
	// Memoryless cycles: the residual to the next sync is another
	// exponential draw, independent of the age.
	next := now + src.Expo(a.cfg.SyncMean)
	for i := 0; i < a.cfg.FutureSyncs; i++ {
		rs.NextSyncs = append(rs.NextSyncs, next)
		next += src.Expo(a.cfg.SyncMean)
	}
	return core.TableState{ID: id, Site: site, Replica: rs}
}

// viewScenario builds the planner's view of one maintained view in one
// sampled scenario, on the same common-random-numbers discipline as
// tableScenario: the draw stream depends only on (seed, view unit, query
// index, sample index), never on which other units are selected.
func (a *Advisor) viewScenario(v ViewCandidate, now core.Time, qIdx, sample int) core.ViewState {
	src := stats.NewSource(stats.SubSeed(a.cfg.Seed, string(core.ViewUnit(v.ID))) ^ (int64(qIdx) << 20) ^ (int64(sample) << 40))
	age := src.Expo(a.cfg.SyncMean)
	vs := core.ViewState{ID: v.ID, QueryID: v.QueryID, LastSync: now - age}
	next := now + src.Expo(a.cfg.SyncMean)
	for i := 0; i < a.cfg.FutureSyncs; i++ {
		vs.NextSyncs = append(vs.NextSyncs, next)
		next += src.Expo(a.cfg.SyncMean)
	}
	return vs
}

// ExpectedWorkloadIV scores a replication plan: the mean over sampled
// synchronization scenarios of the information value each query's best
// plan achieves, summed over the workload (business value included via
// the IV formula).
func (a *Advisor) ExpectedWorkloadIV(queries []core.Query, placement *federation.Placement, replicas map[core.TableID]bool) (float64, error) {
	return a.expectedIV(queries, placement, nil, replicas)
}

// expectedIV scores one selection of synchronized units: replicated base
// tables plus maintained views (namespaced units in the same chosen set).
// Every table's catalog scenario lists all its selected sources, and the
// planner's data-source enumeration decides what each query reads.
func (a *Advisor) expectedIV(queries []core.Query, placement *federation.Placement, views []ViewCandidate, chosen map[core.TableID]bool) (float64, error) {
	if placement == nil {
		return 0, fmt.Errorf("advisor: nil placement")
	}
	total := 0.0
	for qIdx, q := range queries {
		var qValue float64
		for sample := 0; sample < a.cfg.Samples; sample++ {
			states := make([]core.TableState, len(q.Tables))
			for i, id := range q.Tables {
				site, err := placement.SiteOf(id)
				if err != nil {
					return 0, fmt.Errorf("advisor: query %s: %w", q.ID, err)
				}
				if chosen[id] {
					states[i] = a.tableScenario(id, site, q.SubmitAt, qIdx, sample)
				} else {
					states[i] = core.TableState{ID: id, Site: site}
				}
				for _, v := range views {
					if v.Table == id && v.QueryID == q.ID && chosen[core.ViewUnit(v.ID)] {
						states[i].Views = append(states[i].Views, a.viewScenario(v, q.SubmitAt, qIdx, sample))
					}
				}
			}
			plan, _, err := a.planner.Best(q, states, q.SubmitAt)
			if err != nil {
				return 0, fmt.Errorf("advisor: query %s: %w", q.ID, err)
			}
			qValue += plan.Value(a.cfg.Rates)
		}
		total += qValue / float64(a.cfg.Samples)
	}
	return total, nil
}

// RecommendReplicas greedily selects up to `budget` tables to replicate.
// It is RecommendSources with no view candidates.
func (a *Advisor) RecommendReplicas(queries []core.Query, placement *federation.Placement, budget int) (Recommendation, error) {
	return a.RecommendSources(queries, placement, nil, budget)
}

// RecommendSources greedily selects up to `budget` synchronized units —
// replicated base tables and materialized views together, competing for
// the same slots. At each step the unit yielding the largest increase in
// expected workload IV wins; a view that pre-aggregates a hot query can
// therefore displace a table replica (promotion), and a view no longer
// earning its slot drops out of the selection (demotion). Selection stops
// early when no candidate improves the expected value. Replica candidates
// are the tables the workload touches; view candidates are the ones given.
func (a *Advisor) RecommendSources(queries []core.Query, placement *federation.Placement, views []ViewCandidate, budget int) (Recommendation, error) {
	var rec Recommendation
	if budget < 0 {
		return rec, fmt.Errorf("advisor: negative budget %d", budget)
	}
	if len(queries) == 0 {
		return rec, fmt.Errorf("advisor: empty workload")
	}
	candidateSet := make(map[core.TableID]bool)
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return rec, err
		}
		for _, id := range q.Tables {
			candidateSet[id] = true
		}
	}
	for _, v := range views {
		if v.ID == "" || v.QueryID == "" || v.Table == "" {
			return rec, fmt.Errorf("advisor: view candidate %q is incomplete", v.ID)
		}
		candidateSet[core.ViewUnit(v.ID)] = true
	}
	candidates := make([]core.TableID, 0, len(candidateSet))
	for id := range candidateSet {
		candidates = append(candidates, id)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	chosen := make(map[core.TableID]bool)
	base, err := a.expectedIV(queries, placement, views, chosen)
	if err != nil {
		return rec, err
	}
	rec.BaselineIV = base

	current := base
	for len(rec.Steps) < budget {
		bestUnit := core.TableID("")
		bestIV := current
		for _, id := range candidates {
			if chosen[id] {
				continue
			}
			chosen[id] = true
			iv, err := a.expectedIV(queries, placement, views, chosen)
			delete(chosen, id)
			if err != nil {
				return rec, err
			}
			if iv > bestIV+1e-12 {
				bestIV = iv
				bestUnit = id
			}
		}
		if bestUnit == "" {
			break // no remaining candidate helps
		}
		chosen[bestUnit] = true
		if vid, ok := core.ViewOfUnit(bestUnit); ok {
			rec.Views = append(rec.Views, vid)
		} else {
			rec.Replicas = append(rec.Replicas, bestUnit)
		}
		rec.Steps = append(rec.Steps, Step{
			Table:      bestUnit,
			ExpectedIV: bestIV,
			Gain:       bestIV - current,
		})
		current = bestIV
	}
	return rec, nil
}
