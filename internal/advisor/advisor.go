// Package advisor implements the paper's stated future work: "a data
// placement advisor to recommend table placement and replication
// strategies to further improve an overall information value".
//
// Given a representative workload, a table placement, and the
// synchronization cadence the replication manager can sustain, the advisor
// greedily selects which tables to replicate at the DSS: at each step it
// adds the replica yielding the largest increase in the workload's
// expected information value, scored by planning every query against a
// steady-state catalog model (replicas are, in expectation, one sync-mean
// stale, and the next synchronization is one sync-mean away — both exact
// for the memoryless exponential cycles the experiments use).
package advisor

import (
	"fmt"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/federation"
	"ivdss/internal/stats"
)

// Config parameterizes the advisor.
type Config struct {
	// Cost estimates computational latency (same model the planner uses).
	Cost core.CostModel
	// Rates are the business's discount rates.
	Rates core.DiscountRates
	// SyncMean is the mean synchronization period a replica would get.
	SyncMean core.Duration
	// Horizon bounds delayed-execution exploration during scoring.
	// Zero keeps the planner default (unbounded, bounded by the IV bound).
	Horizon core.Duration
	// FutureSyncs is how many upcoming synchronizations each sampled
	// scenario exposes to the planner (default 3).
	FutureSyncs int
	// Samples is the number of staleness scenarios drawn per query
	// (default 16).
	Samples int
	// Seed drives the scenario sampling.
	Seed int64
}

func (c Config) validate() error {
	if c.Cost == nil {
		return fmt.Errorf("advisor: needs a cost model")
	}
	if err := c.Rates.Validate(); err != nil {
		return err
	}
	if c.SyncMean <= 0 {
		return fmt.Errorf("advisor: sync mean %v must be positive", c.SyncMean)
	}
	if c.FutureSyncs < 0 {
		return fmt.Errorf("advisor: negative future sync count")
	}
	if c.Samples < 0 {
		return fmt.Errorf("advisor: negative sample count")
	}
	return nil
}

// Step records one greedy selection.
type Step struct {
	Table core.TableID
	// ExpectedIV is the workload's expected total information value after
	// adding this replica.
	ExpectedIV float64
	// Gain is the improvement over the previous step.
	Gain float64
}

// Recommendation is the advisor's output.
type Recommendation struct {
	// Replicas to create, in greedy selection order (most valuable first).
	Replicas []core.TableID
	// BaselineIV is the workload's expected IV with no replicas at all.
	BaselineIV float64
	// Steps traces the greedy selection.
	Steps []Step
}

// FinalIV returns the expected workload IV with every recommended replica
// in place.
func (r Recommendation) FinalIV() float64 {
	if len(r.Steps) == 0 {
		return r.BaselineIV
	}
	return r.Steps[len(r.Steps)-1].ExpectedIV
}

// Advisor scores replication plans for a workload. Construct with New.
type Advisor struct {
	cfg     Config
	planner *core.Planner
}

// New validates the config and returns an Advisor.
func New(cfg Config) (*Advisor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FutureSyncs == 0 {
		cfg.FutureSyncs = 3
	}
	if cfg.Samples == 0 {
		cfg.Samples = 16
	}
	planner, err := core.NewPlanner(cfg.Cost, core.PlannerConfig{
		Rates:   cfg.Rates,
		Horizon: cfg.Horizon,
	})
	if err != nil {
		return nil, err
	}
	return &Advisor{cfg: cfg, planner: planner}, nil
}

// tableScenario builds the planner's view of one replicated table in one
// sampled scenario. The stream of exponential draws is a deterministic
// function of (advisor seed, query index, table ID, sample index) only —
// not of which other tables are replicated — so every candidate replica
// set is scored against identical staleness realizations (common random
// numbers).
func (a *Advisor) tableScenario(id core.TableID, site core.SiteID, now core.Time, qIdx, sample int) core.TableState {
	src := stats.NewSource(stats.SubSeed(a.cfg.Seed, string(id)) ^ (int64(qIdx) << 20) ^ (int64(sample) << 40))
	age := src.Expo(a.cfg.SyncMean)
	rs := &core.ReplicaState{LastSync: now - age}
	// Memoryless cycles: the residual to the next sync is another
	// exponential draw, independent of the age.
	next := now + src.Expo(a.cfg.SyncMean)
	for i := 0; i < a.cfg.FutureSyncs; i++ {
		rs.NextSyncs = append(rs.NextSyncs, next)
		next += src.Expo(a.cfg.SyncMean)
	}
	return core.TableState{ID: id, Site: site, Replica: rs}
}

// ExpectedWorkloadIV scores a replication plan: the mean over sampled
// synchronization scenarios of the information value each query's best
// plan achieves, summed over the workload (business value included via
// the IV formula).
func (a *Advisor) ExpectedWorkloadIV(queries []core.Query, placement *federation.Placement, replicas map[core.TableID]bool) (float64, error) {
	if placement == nil {
		return 0, fmt.Errorf("advisor: nil placement")
	}
	total := 0.0
	for qIdx, q := range queries {
		var qValue float64
		for sample := 0; sample < a.cfg.Samples; sample++ {
			states := make([]core.TableState, len(q.Tables))
			for i, id := range q.Tables {
				site, err := placement.SiteOf(id)
				if err != nil {
					return 0, fmt.Errorf("advisor: query %s: %w", q.ID, err)
				}
				if replicas[id] {
					states[i] = a.tableScenario(id, site, q.SubmitAt, qIdx, sample)
				} else {
					states[i] = core.TableState{ID: id, Site: site}
				}
			}
			plan, _, err := a.planner.Best(q, states, q.SubmitAt)
			if err != nil {
				return 0, fmt.Errorf("advisor: query %s: %w", q.ID, err)
			}
			qValue += plan.Value(a.cfg.Rates)
		}
		total += qValue / float64(a.cfg.Samples)
	}
	return total, nil
}

// RecommendReplicas greedily selects up to `budget` tables to replicate.
// Selection stops early when no candidate improves the expected workload
// value. Candidates are the tables the workload actually touches.
func (a *Advisor) RecommendReplicas(queries []core.Query, placement *federation.Placement, budget int) (Recommendation, error) {
	var rec Recommendation
	if budget < 0 {
		return rec, fmt.Errorf("advisor: negative budget %d", budget)
	}
	if len(queries) == 0 {
		return rec, fmt.Errorf("advisor: empty workload")
	}
	candidateSet := make(map[core.TableID]bool)
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return rec, err
		}
		for _, id := range q.Tables {
			candidateSet[id] = true
		}
	}
	candidates := make([]core.TableID, 0, len(candidateSet))
	for id := range candidateSet {
		candidates = append(candidates, id)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	chosen := make(map[core.TableID]bool)
	base, err := a.ExpectedWorkloadIV(queries, placement, chosen)
	if err != nil {
		return rec, err
	}
	rec.BaselineIV = base

	current := base
	for len(rec.Replicas) < budget {
		bestTable := core.TableID("")
		bestIV := current
		for _, id := range candidates {
			if chosen[id] {
				continue
			}
			chosen[id] = true
			iv, err := a.ExpectedWorkloadIV(queries, placement, chosen)
			delete(chosen, id)
			if err != nil {
				return rec, err
			}
			if iv > bestIV+1e-12 {
				bestIV = iv
				bestTable = id
			}
		}
		if bestTable == "" {
			break // no remaining candidate helps
		}
		chosen[bestTable] = true
		rec.Replicas = append(rec.Replicas, bestTable)
		rec.Steps = append(rec.Steps, Step{
			Table:      bestTable,
			ExpectedIV: bestIV,
			Gain:       bestIV - current,
		})
		current = bestIV
	}
	return rec, nil
}
