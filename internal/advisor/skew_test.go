package advisor

import (
	"sort"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
	"ivdss/internal/synth"
)

// skewedWorkload materializes a zipf-skewed synth scenario: which tables
// are hot is a pure function of the seed, so different seeds model the
// popularity window shifting over time.
func skewedWorkload(t *testing.T, seed int64) *synth.Workload {
	t.Helper()
	sc := synth.Scenario{
		Name:              "advisor-skew",
		Seed:              seed,
		Tables:            12,
		Sites:             3,
		Replicas:          4,
		SyncMean:          60,
		NQueries:          60,
		MaxTablesPerQuery: 3,
		Skew:              2.5,
		Arrival:           synth.ArrivalSpec{Shape: synth.ArrivalSteady, Mean: 5},
	}
	wl, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func workloadPlacement(t *testing.T, wl *synth.Workload) *federation.Placement {
	t.Helper()
	siteOf := make(map[core.TableID]core.SiteID, len(wl.Tables))
	for i, id := range wl.Tables {
		siteOf[id] = core.SiteID(1 + i%wl.Scenario.Sites)
	}
	p, err := federation.NewPlacement(siteOf)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tablesByHeat ranks the workload's tables by touch count, hottest first.
func tablesByHeat(wl *synth.Workload) []core.TableID {
	touches := make(map[core.TableID]int)
	for _, q := range wl.Queries {
		for _, id := range q.Tables {
			touches[id]++
		}
	}
	ranked := append([]core.TableID(nil), wl.Tables...)
	sort.Slice(ranked, func(i, j int) bool {
		if touches[ranked[i]] != touches[ranked[j]] {
			return touches[ranked[i]] > touches[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

func skewAdvisor(t *testing.T) *Advisor {
	t.Helper()
	a, err := New(Config{
		Cost:        &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 4, TransmitFlat: 1},
		Rates:       core.DiscountRates{CL: .05, SL: .02},
		SyncMean:    60,
		Horizon:     120,
		FutureSyncs: 2,
		Samples:     4,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestRecommendTracksZipfHotSet: under a skewed popularity window the
// advisor promotes the zipf-hot tables — the first pick is the hottest
// table in the stream, and nothing from the cold half is chosen.
func TestRecommendTracksZipfHotSet(t *testing.T) {
	wl := skewedWorkload(t, 11)
	a := skewAdvisor(t)
	rec, err := a.RecommendReplicas(wl.Queries, workloadPlacement(t, wl), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) != 3 {
		t.Fatalf("recommended %v, want the full budget of 3", rec.Replicas)
	}
	heat := tablesByHeat(wl)
	if rec.Replicas[0] != heat[0] {
		t.Errorf("first pick = %s, want the zipf-hottest table %s", rec.Replicas[0], heat[0])
	}
	cold := make(map[core.TableID]bool)
	for _, id := range heat[len(heat)/2:] {
		cold[id] = true
	}
	for _, id := range rec.Replicas {
		if cold[id] {
			t.Errorf("cold table %s promoted over the hot set %v", id, heat[:3])
		}
	}
	for i, step := range rec.Steps {
		if step.Gain <= 0 {
			t.Errorf("step %d (%s) gain %v, want positive", i, step.Table, step.Gain)
		}
	}
}

// TestRecommendShiftsWithHotWindow: when the popularity window moves
// (same scenario, new seed reshuffles which tables are zipf-hot), the
// advisor demotes stale replicas and promotes the new hot set.
func TestRecommendShiftsWithHotWindow(t *testing.T) {
	a := skewAdvisor(t)
	recommend := func(seed int64) (map[core.TableID]bool, []core.TableID, *synth.Workload) {
		wl := skewedWorkload(t, seed)
		rec, err := a.RecommendReplicas(wl.Queries, workloadPlacement(t, wl), 3)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[core.TableID]bool, len(rec.Replicas))
		for _, id := range rec.Replicas {
			set[id] = true
		}
		return set, rec.Replicas, wl
	}

	before, beforeOrder, wlA := recommend(11)
	after, afterOrder, wlB := recommend(12)

	// The two windows genuinely differ in what is hot.
	if tablesByHeat(wlA)[0] == tablesByHeat(wlB)[0] {
		t.Fatalf("test seeds share a hottest table; pick seeds with distinct hot sets")
	}

	var demoted, promoted []core.TableID
	for _, id := range beforeOrder {
		if !after[id] {
			demoted = append(demoted, id)
		}
	}
	for _, id := range afterOrder {
		if !before[id] {
			promoted = append(promoted, id)
		}
	}
	if len(demoted) == 0 {
		t.Errorf("no replica demoted when the hot window shifted: before %v, after %v", beforeOrder, afterOrder)
	}
	if len(promoted) == 0 {
		t.Errorf("no replica promoted when the hot window shifted: before %v, after %v", beforeOrder, afterOrder)
	}
	// The shifted window's hottest table is in the new plan.
	if hottest := tablesByHeat(wlB)[0]; !after[hottest] {
		t.Errorf("new hottest table %s not promoted into %v", hottest, afterOrder)
	}
}
