package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	s.ScheduleAt(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.Schedule(1, func() { ran = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Error("second Cancel should return false")
	}
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestCancelExecutedEvent(t *testing.T) {
	s := New()
	h := s.Schedule(1, func() {})
	s.Run()
	if s.Cancel(h) {
		t.Error("Cancel after execution should return false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.ScheduleAt(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(3)
	if len(ran) != 3 {
		t.Fatalf("ran %d events, want 3", len(ran))
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Errorf("clock = %v, want 42", s.Now())
	}
}

func TestNextAt(t *testing.T) {
	s := New()
	if s.NextAt() != End {
		t.Error("NextAt on empty list should be End")
	}
	s.Schedule(7, func() {})
	if s.NextAt() != 7 {
		t.Errorf("NextAt = %v, want 7", s.NextAt())
	}
}

func TestEventTimesNonDecreasing(t *testing.T) {
	f := func(delays []float64) bool {
		s := New()
		var seen []Time
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e9 {
				d = 1e9
			}
			s.Schedule(d, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		return sort.Float64sAreSorted(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceSingleServerQueueing(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 1)
	var waits []Time
	// Three jobs of service time 10 arrive together: waits 0, 10, 20.
	for i := 0; i < 3; i++ {
		r.Submit(10, func(w Time) { waits = append(waits, w) })
	}
	s.Run()
	want := []Time{0, 10, 20}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("waits = %v, want %v", waits, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("clock = %v, want 30", s.Now())
	}
}

func TestResourceParallelServers(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 2)
	var done int
	for i := 0; i < 4; i++ {
		r.Submit(10, func(Time) { done++ })
	}
	s.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	// With 2 servers, 4 jobs of 10 finish at t=20.
	if s.Now() != 20 {
		t.Errorf("clock = %v, want 20", s.Now())
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Submit(1, func(Time) { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
}

func TestResourceStats(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 1)
	for i := 0; i < 3; i++ {
		r.Submit(10, nil)
	}
	s.Run()
	st := r.Stats()
	if st.Served != 3 {
		t.Errorf("Served = %d, want 3", st.Served)
	}
	if st.TotalWait != 30 { // 0 + 10 + 20
		t.Errorf("TotalWait = %v, want 30", st.TotalWait)
	}
	if got := st.MeanWait(); got != 10 {
		t.Errorf("MeanWait = %v, want 10", got)
	}
	if st.MaxQueueDepth != 2 {
		t.Errorf("MaxQueueDepth = %d, want 2", st.MaxQueueDepth)
	}
}

func TestResourceStatsEmpty(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 1)
	if got := r.Stats().MeanWait(); got != 0 {
		t.Errorf("MeanWait on empty = %v, want 0", got)
	}
}

func TestResourceLateArrival(t *testing.T) {
	s := New()
	r := NewResource(s, "db", 1)
	var wait Time = -1
	s.Schedule(0, func() { r.Submit(10, nil) })
	// Arrives at t=5, server busy until t=10, so waits 5.
	s.Schedule(5, func() { r.Submit(3, func(w Time) { wait = w }) })
	s.Run()
	if wait != 5 {
		t.Errorf("wait = %v, want 5", wait)
	}
	if s.Now() != 13 {
		t.Errorf("clock = %v, want 13", s.Now())
	}
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewResource(New(), "x", 0)
}

func TestResourceNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewResource(New(), "x", 1).Submit(-1, nil)
}

// TestResourceConservation checks a work-conservation invariant: with a
// single server and jobs all submitted at t=0, the makespan equals the sum
// of service times.
func TestResourceConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		s := New()
		r := NewResource(s, "db", 1)
		var total Time
		for _, d := range raw {
			svc := Time(d)
			total += svc
			r.Submit(svc, nil)
		}
		s.Run()
		return s.Now() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHeapStress drives the event queue with random schedule/cancel
// operations and checks execution matches a reference model.
func TestHeapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		s := New()
		type planned struct {
			at        Time
			seq       int
			cancelled bool
		}
		var model []*planned
		var executed []int
		var handles []Handle
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50))
			p := &planned{at: at, seq: i}
			model = append(model, p)
			idx := i
			handles = append(handles, s.ScheduleAt(at, func() {
				executed = append(executed, idx)
			}))
		}
		// Cancel a random subset.
		for i := range handles {
			if rng.Intn(4) == 0 {
				if s.Cancel(handles[i]) {
					model[i].cancelled = true
				}
			}
		}
		s.Run()

		// Reference: events sorted by (at, seq), cancelled ones removed.
		var want []int
		ordered := append([]*planned{}, model...)
		sort.SliceStable(ordered, func(a, b int) bool {
			if ordered[a].at != ordered[b].at {
				return ordered[a].at < ordered[b].at
			}
			return ordered[a].seq < ordered[b].seq
		})
		for _, p := range ordered {
			if !p.cancelled {
				want = append(want, p.seq)
			}
		}
		if len(executed) != len(want) {
			t.Fatalf("trial %d: executed %d events, want %d", trial, len(executed), len(want))
		}
		for i := range want {
			if executed[i] != want[i] {
				t.Fatalf("trial %d: order mismatch at %d", trial, i)
			}
		}
	}
}
