// Package sim is a small event-scheduling discrete event simulator.
//
// It replaces the JavaSim package the paper uses for its evaluation: a
// virtual clock, an event list ordered by activation time, and FIFO
// resources for modelling servers with queueing. Time is a float64 in
// arbitrary units (the experiments use minutes, matching the paper's
// figures).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point on the simulator's virtual clock.
type Time = float64

// End is a sentinel Time later than every schedulable event.
const End Time = math.MaxFloat64

// Event is a scheduled callback. The callback runs exactly once, at its
// activation time, with the simulator clock already advanced.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among simultaneous events
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns a virtual clock and an event list. The zero value is not
// usable; construct with New. A Simulator is not safe for concurrent use:
// like all event-scheduling DES kernels it is strictly single-threaded,
// which is what makes runs deterministic.
type Simulator struct {
	now    Time
	nexts  uint64
	queue  eventQueue
	events int // total events executed, for instrumentation
}

// New returns a simulator with the clock at zero and an empty event list.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() int { return s.events }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev *event
}

// Schedule registers fn to run after delay. A negative delay is a
// programming error and panics; a zero delay runs fn after all events
// already scheduled for the current instant (FIFO order).
func (s *Simulator) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute time at, which must not be in
// the simulator's past.
func (s *Simulator) ScheduleAt(at Time, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.nexts, fn: fn}
	s.nexts++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// Cancel removes a scheduled event. Cancelling an already-executed or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, h.ev.index)
	h.ev.index = -1
	return true
}

// Step executes the single next event, advancing the clock to it. It
// returns false when the event list is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.events++
	ev.fn()
	return true
}

// Run executes events until the list is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with activation time <= until, then advances the
// clock to until (if it is past the last executed event).
func (s *Simulator) RunUntil(until Time) {
	for len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// NextAt returns the activation time of the next scheduled event, or End if
// the event list is empty.
func (s *Simulator) NextAt() Time {
	if len(s.queue) == 0 {
		return End
	}
	return s.queue[0].at
}
