package sim

// Resource models a station with a fixed number of identical servers and a
// FIFO queue, e.g. a remote database server that can process `capacity`
// queries at once. Jobs submitted while all servers are busy wait in
// arrival order. This is the queueing substrate behind the paper's
// "computational latency = queuing time + processing time + transmission
// time" decomposition.
type Resource struct {
	sim      *Simulator
	name     string
	capacity int
	busy     int
	queue    []*job

	// Instrumentation.
	served        int
	totalWait     Time
	totalService  Time
	maxQueueDepth int
}

type job struct {
	arrived Time
	service Time
	done    func(wait Time)
}

// NewResource returns a FIFO resource with the given server capacity,
// attached to s. Capacity must be positive.
func NewResource(s *Simulator, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a job needing `service` time units. When the job
// completes, done is invoked with the time the job spent waiting in queue
// (not counting service). Submit never blocks; all sequencing happens on
// the simulator's event list.
func (r *Resource) Submit(service Time, done func(wait Time)) {
	if service < 0 {
		panic("sim: negative service time")
	}
	j := &job{arrived: r.sim.Now(), service: service, done: done}
	if r.busy < r.capacity {
		r.start(j)
		return
	}
	r.queue = append(r.queue, j)
	if d := len(r.queue); d > r.maxQueueDepth {
		r.maxQueueDepth = d
	}
}

func (r *Resource) start(j *job) {
	r.busy++
	wait := r.sim.Now() - j.arrived
	r.totalWait += wait
	r.totalService += j.service
	r.sim.Schedule(j.service, func() {
		r.busy--
		r.served++
		if j.done != nil {
			j.done(wait)
		}
		r.dispatch()
	})
}

func (r *Resource) dispatch() {
	for r.busy < r.capacity && len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.start(next)
	}
}

// QueueLen returns the number of jobs currently waiting (excluding jobs in
// service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Busy returns the number of servers currently occupied.
func (r *Resource) Busy() int { return r.busy }

// Stats reports cumulative instrumentation for the resource.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Served:        r.served,
		TotalWait:     r.totalWait,
		TotalService:  r.totalService,
		MaxQueueDepth: r.maxQueueDepth,
	}
}

// ResourceStats is a snapshot of a Resource's counters.
type ResourceStats struct {
	Served        int
	TotalWait     Time
	TotalService  Time
	MaxQueueDepth int
}

// MeanWait returns the mean queueing delay over all served jobs.
func (st ResourceStats) MeanWait() Time {
	if st.Served == 0 {
		return 0
	}
	return st.TotalWait / Time(st.Served)
}
