package router

import (
	"fmt"
	"math/rand"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
)

func testConfig() Config {
	return Config{
		Cost:  &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 3, TransmitFlat: 1},
		Rates: core.DiscountRates{CL: .03, SL: .05},
	}
}

func testQuery() (core.Query, []core.SiteID, []bool) {
	q := core.Query{
		ID:            "report",
		Tables:        []core.TableID{"a", "b", "c"},
		BusinessValue: 1,
	}
	return q, []core.SiteID{1, 2, 1}, []bool{true, true, false}
}

// snapshotWith builds a live snapshot where the replicated tables have the
// given staleness values and a next sync after `residual`.
func snapshotWith(now core.Time, stale map[core.TableID]core.Duration, residual core.Duration, window core.Duration) []core.TableState {
	out := []core.TableState{
		{ID: "a", Site: 1},
		{ID: "b", Site: 2},
		{ID: "c", Site: 1},
	}
	for i := range out {
		s, ok := stale[out[i].ID]
		if !ok {
			continue
		}
		rs := &core.ReplicaState{LastSync: now - s}
		next := now + residual
		for k := 0; k < 3; k++ {
			rs.NextSyncs = append(rs.NextSyncs, next)
			next += window
		}
		out[i].Replica = rs
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Rates: core.DiscountRates{}}); err == nil {
		t.Error("nil cost accepted")
	}
	if _, err := New(Config{Cost: testConfig().Cost, Rates: core.DiscountRates{CL: 5}}); err == nil {
		t.Error("bad rates accepted")
	}
	if _, err := New(Config{Cost: testConfig().Cost, Buckets: -1}); err == nil {
		t.Error("negative buckets accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	r, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, sites, repl := testQuery()
	if err := r.Register(q, sites[:1], repl, 10); err == nil {
		t.Error("misaligned sites accepted")
	}
	if err := r.Register(q, sites, repl, 0); err == nil {
		t.Error("zero window accepted")
	}
	if err := r.Register(core.Query{}, sites, repl, 10); err == nil {
		t.Error("invalid query accepted")
	}
	if err := r.Register(q, sites, repl, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(q, sites, repl, 10); err == nil {
		t.Error("duplicate registration accepted")
	}
	if !r.Registered("report") || r.Registered("ghost") {
		t.Error("Registered() wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRouteUnregistered(t *testing.T) {
	r, _ := New(testConfig())
	if _, ok := r.Route("ghost", nil, 0); ok {
		t.Error("unregistered query routed")
	}
}

func TestRouteMatchesPlannerOnUniformStaleness(t *testing.T) {
	cfg := testConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, sites, repl := testQuery()
	const window = 20.0
	if err := r.Register(q, sites, repl, window); err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(cfg.Cost, core.PlannerConfig{Rates: cfg.Rates})
	if err != nil {
		t.Fatal(err)
	}

	now := core.Time(100)
	for _, s := range []core.Duration{1, 5, 10, 15, 19} {
		snap := snapshotWith(now, map[core.TableID]core.Duration{"a": s, "b": s}, window-s, window)
		routed, ok := r.Route("report", snap, now)
		if !ok {
			t.Fatalf("staleness %v: route refused", s)
		}
		probe := q
		probe.SubmitAt = now
		best, _, err := planner.Best(probe, snap, now)
		if err != nil {
			t.Fatal(err)
		}
		rv, bv := routed.Value(cfg.Rates), best.Value(cfg.Rates)
		if rv > bv+1e-9 {
			t.Fatalf("staleness %v: routed IV %v above optimum %v", s, rv, bv)
		}
		if rv < bv*0.98 {
			t.Errorf("staleness %v: routed IV %v below 98%% of optimum %v (%s vs %s)",
				s, rv, bv, routed.Signature(), best.Signature())
		}
	}
}

func TestRouteRefusals(t *testing.T) {
	r, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, sites, repl := testQuery()
	const window = 20.0
	if err := r.Register(q, sites, repl, window); err != nil {
		t.Fatal(err)
	}
	now := core.Time(100)

	// QoS violated: staleness beyond the window.
	snap := snapshotWith(now, map[core.TableID]core.Duration{"a": 30, "b": 5}, 5, window)
	if _, ok := r.Route("report", snap, now); ok {
		t.Error("QoS-violating snapshot routed")
	}

	// Missing replica for a replicated table.
	snap = snapshotWith(now, map[core.TableID]core.Duration{"a": 5}, 5, window)
	if _, ok := r.Route("report", snap, now); ok {
		t.Error("snapshot missing replica routed")
	}

	// Missing table entirely.
	if _, ok := r.Route("report", snap[:1], now); ok {
		t.Error("truncated snapshot routed")
	}
}

// TestRouteStatisticalQuality: over random in-window snapshots (staleness
// not necessarily uniform across tables), the routed plan's information
// value must stay within a few percent of the full planner's optimum on
// average, and never exceed it.
func TestRouteStatisticalQuality(t *testing.T) {
	cfg := testConfig()
	cfg.Buckets = 24
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, sites, repl := testQuery()
	const window = 20.0
	if err := r.Register(q, sites, repl, window); err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(cfg.Cost, core.PlannerConfig{Rates: cfg.Rates})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var ratioSum float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		now := core.Time(50 + rng.Float64()*100)
		sa := rng.Float64() * window
		sb := rng.Float64() * window
		residual := rng.Float64() * window
		snap := snapshotWith(now, map[core.TableID]core.Duration{"a": sa, "b": sb}, residual, window)
		routed, ok := r.Route("report", snap, now)
		if !ok {
			t.Fatalf("trial %d: route refused", trial)
		}
		probe := q
		probe.SubmitAt = now
		best, _, err := planner.Best(probe, snap, now)
		if err != nil {
			t.Fatal(err)
		}
		rv, bv := routed.Value(cfg.Rates), best.Value(cfg.Rates)
		if rv > bv+1e-9 {
			t.Fatalf("trial %d: routed IV above the optimum", trial)
		}
		if bv > 0 {
			ratioSum += rv / bv
		} else {
			ratioSum++
		}
	}
	if mean := ratioSum / trials; mean < .97 {
		t.Errorf("mean routed/optimal IV = %v, want ≥ 0.97", mean)
	}
}

// TestRouteClockSkewAhead is the regression test for sync stamps ahead of
// the local clock (a gossip-reported LastSync under skew): the negative
// staleness must clamp to the freshest bucket instead of indexing
// decisions[-1], and a materialized replica freshness must never exceed
// now.
func TestRouteClockSkewAhead(t *testing.T) {
	cfg := testConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, sites, repl := testQuery()
	const window = 20.0
	if err := r.Register(q, sites, repl, window); err != nil {
		t.Fatal(err)
	}
	now := core.Time(100)
	// Both replicas report LastSync 5 minutes in the future.
	snap := snapshotWith(now, map[core.TableID]core.Duration{"a": -5, "b": -5}, 5, window)
	plan, ok := r.Route("report", snap, now)
	if !ok {
		t.Fatal("skewed-ahead snapshot refused; want routed as perfectly fresh")
	}
	for _, a := range plan.Access {
		if a.Kind == core.AccessReplica && a.Freshness > now && a.Freshness <= now+5 {
			t.Errorf("table %s materialized freshness %v ahead of now %v", a.Table, a.Freshness, now)
		}
	}
	// Mixed skew: one table ahead, one legitimately stale — the stale one
	// still sets the bucket.
	snap = snapshotWith(now, map[core.TableID]core.Duration{"a": -3, "b": 19}, 1, window)
	if _, ok := r.Route("report", snap, now); !ok {
		t.Error("mixed-skew snapshot refused; want routed by the stale table's bucket")
	}
	// Skew beyond the window must not route as a QoS violation either.
	snap = snapshotWith(now, map[core.TableID]core.Duration{"a": -(window + 10), "b": 1}, 1, window)
	if _, ok := r.Route("report", snap, now); !ok {
		t.Error("large ahead-skew refused; negative staleness is not a QoS violation")
	}
}

func TestRouteIsDeterministic(t *testing.T) {
	cfg := testConfig()
	r, _ := New(cfg)
	q, sites, repl := testQuery()
	if err := r.Register(q, sites, repl, 20); err != nil {
		t.Fatal(err)
	}
	now := core.Time(42)
	snap := snapshotWith(now, map[core.TableID]core.Duration{"a": 7, "b": 3}, 4, 20)
	a, ok1 := r.Route("report", snap, now)
	b, ok2 := r.Route("report", snap, now)
	if !ok1 || !ok2 || a.Signature() != b.Signature() {
		t.Errorf("routing not deterministic: %q vs %q", a.Signature(), b.Signature())
	}
}

func TestManyRegistrations(t *testing.T) {
	r, _ := New(testConfig())
	for i := 0; i < 25; i++ {
		q := core.Query{
			ID:            fmt.Sprintf("q%d", i),
			Tables:        []core.TableID{"a", "b"},
			BusinessValue: 1,
		}
		if err := r.Register(q, []core.SiteID{1, 2}, []bool{true, i%2 == 0}, 10+core.Duration(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 25 {
		t.Errorf("Len = %d", r.Len())
	}
}
