// Package router implements the pre-calculated routing of Section 3.1:
// "If all queries are registered in advance and a QoS aware replication
// manager is deployed to ensure updates to a table propagated to its
// replica in DSS within a pre-defined time frame, information values of
// all queries can be pre-calculated for routing."
//
// At registration time the router runs the full IVQP search over a grid of
// staleness scenarios permitted by the QoS window and tabulates, per
// scenario bucket, the *shape* of the optimal plan — which tables read
// base, which read the current replica, and which wait for the next
// synchronization. At query time Route picks the bucket from the observed
// staleness and materializes the memorized shape against the live catalog
// snapshot in microseconds, with a safe fallback signal whenever the
// snapshot falls outside what was precomputed.
package router

import (
	"fmt"
	"math"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
)

// choice is the memorized per-table decision.
type choice int

const (
	useBase choice = iota + 1
	useReplicaNow
	useReplicaNext // delay until the table's next synchronization
)

// Config parameterizes the router.
type Config struct {
	// Cost and Rates must match the planner the router stands in for.
	Cost  core.CostModel
	Rates core.DiscountRates
	// Buckets is the staleness grid resolution per QoS window (default 16).
	Buckets int
	// FutureSyncs bounds how many upcoming syncs the precomputation
	// assumes visible (default 3).
	FutureSyncs int
	// Stats, when set, counts fast-path coverage: router_hits_total for
	// every Route that materialized a plan, router_fallback_total for every
	// Route handed back to the full planner.
	Stats *metrics.Registry
}

func (c Config) validate() error {
	if c.Cost == nil {
		return fmt.Errorf("router: needs a cost model")
	}
	if err := c.Rates.Validate(); err != nil {
		return err
	}
	if c.Buckets < 0 {
		return fmt.Errorf("router: negative bucket count")
	}
	if c.FutureSyncs < 0 {
		return fmt.Errorf("router: negative future sync count")
	}
	return nil
}

// entry is one registered query's routing table.
type entry struct {
	query      core.Query
	window     core.Duration
	replicated []bool
	sites      []core.SiteID
	// decisions[b][i] is the choice for table i in staleness bucket b.
	decisions [][]choice
}

// Router precomputes and serves plan shapes. Construct with New; register
// queries with Register; route with Route. The router is safe for
// concurrent use: Route takes a read lock (it is the per-shard fast path),
// Register a write lock.
type Router struct {
	cfg     Config
	planner *core.Planner

	mu      sync.RWMutex
	entries map[string]*entry
}

// New validates the config and returns an empty Router.
func New(cfg Config) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	if cfg.FutureSyncs == 0 {
		cfg.FutureSyncs = 3
	}
	planner, err := core.NewPlanner(cfg.Cost, core.PlannerConfig{Rates: cfg.Rates})
	if err != nil {
		return nil, err
	}
	if cfg.Stats != nil {
		// Pre-create the coverage counters so a dump shows them at zero.
		cfg.Stats.Counter("router_hits_total")
		cfg.Stats.Counter("router_fallback_total")
	}
	return &Router{cfg: cfg, planner: planner, entries: make(map[string]*entry)}, nil
}

// Registered reports whether a query ID has a routing table.
func (r *Router) Registered(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[id]
	return ok
}

// Register precomputes the routing table for a query. replicated flags the
// tables (aligned with q.Tables) that have local replicas; sites gives the
// base-table site per table; window is the QoS staleness bound the
// replication manager guarantees for every replicated table the query
// touches.
func (r *Router) Register(q core.Query, sites []core.SiteID, replicated []bool, window core.Duration) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if len(sites) != len(q.Tables) || len(replicated) != len(q.Tables) {
		return fmt.Errorf("router: %s: sites/replicated must align with %d tables", q.ID, len(q.Tables))
	}
	if window <= 0 {
		return fmt.Errorf("router: %s: QoS window %v must be positive", q.ID, window)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[q.ID]; ok {
		return fmt.Errorf("router: query %s already registered", q.ID)
	}

	e := &entry{
		query:      q,
		window:     window,
		replicated: append([]bool{}, replicated...),
		sites:      append([]core.SiteID{}, sites...),
		decisions:  make([][]choice, r.cfg.Buckets),
	}
	for b := 0; b < r.cfg.Buckets; b++ {
		// Bucket midpoint staleness, applied uniformly: under QoS every
		// replica is at most `window` stale, and the next sync completes
		// within window − staleness.
		s := (float64(b) + .5) / float64(r.cfg.Buckets) * window
		states := make([]core.TableState, len(q.Tables))
		for i, id := range q.Tables {
			states[i] = core.TableState{ID: id, Site: sites[i]}
			if !replicated[i] {
				continue
			}
			rs := &core.ReplicaState{LastSync: -s}
			next := math.Max(window-s, window/float64(r.cfg.Buckets)/2)
			for k := 0; k < r.cfg.FutureSyncs; k++ {
				rs.NextSyncs = append(rs.NextSyncs, next)
				next += window
			}
			states[i].Replica = rs
		}
		probe := q
		probe.SubmitAt = 0
		plan, _, err := r.planner.Best(probe, states, 0)
		if err != nil {
			return fmt.Errorf("router: %s bucket %d: %w", q.ID, b, err)
		}
		decision := make([]choice, len(q.Tables))
		for i, a := range plan.Access {
			switch {
			case a.Kind == core.AccessBase:
				decision[i] = useBase
			case a.Freshness > 0:
				decision[i] = useReplicaNext
			default:
				decision[i] = useReplicaNow
			}
		}
		e.decisions[b] = decision
	}
	r.entries[q.ID] = e
	return nil
}

// fallback counts a Route handed back to the full planner.
func (r *Router) fallback() (core.Plan, bool) {
	if r.cfg.Stats != nil {
		r.cfg.Stats.Counter("router_fallback_total").Inc()
	}
	return core.Plan{}, false
}

// Route materializes the memorized plan shape for a registered query
// against a live catalog snapshot. It returns ok=false — meaning the
// caller should fall back to the full planner — when the query is not
// registered, the snapshot's shape differs from registration, a needed
// replica has no usable version or scheduled sync, or observed staleness
// exceeds the QoS window the table was registered under. A replica whose
// LastSync sits *ahead* of now (clock skew between a gossip-reported sync
// stamp and the local clock) is treated as perfectly fresh — staleness
// clamps to zero rather than going negative and indexing outside the
// decision grid.
func (r *Router) Route(id string, snapshot []core.TableState, now core.Time) (core.Plan, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, registered := r.entries[id]
	if !registered {
		return r.fallback()
	}
	byID := make(map[core.TableID]core.TableState, len(snapshot))
	for _, ts := range snapshot {
		byID[ts.ID] = ts
		// A synchronized view covering this query changes the plan space in
		// a way the precomputed base/replica shapes cannot price: hand the
		// query back to the full search so the view gets considered.
		for _, v := range ts.Views {
			if v.QueryID == id {
				return r.fallback()
			}
		}
	}

	// Observed worst staleness across the query's replicated tables.
	worst := core.Duration(0)
	for i, tid := range e.query.Tables {
		if !e.replicated[i] {
			continue
		}
		ts, ok := byID[tid]
		if !ok || ts.Replica == nil {
			return r.fallback()
		}
		if s := now - ts.Replica.LastSync; s > worst {
			worst = s // a negative s (skewed-ahead stamp) never raises worst
		}
	}
	if worst > e.window {
		return r.fallback() // QoS violated: precomputation invalid
	}
	bucket := int(worst / e.window * core.Duration(r.cfg.Buckets))
	if bucket >= r.cfg.Buckets {
		bucket = r.cfg.Buckets - 1
	}
	if bucket < 0 {
		bucket = 0
	}

	decision := e.decisions[bucket]
	access := make([]core.TableAccess, len(e.query.Tables))
	start := now
	for i, tid := range e.query.Tables {
		ts, ok := byID[tid]
		if !ok {
			return r.fallback()
		}
		switch decision[i] {
		case useBase:
			access[i] = core.TableAccess{Table: tid, Site: ts.Site, Kind: core.AccessBase}
		case useReplicaNow:
			if ts.Replica == nil {
				return r.fallback()
			}
			// Clamp a skewed-ahead sync stamp: the replica is at least as
			// fresh as now, never fresher.
			fresh := ts.Replica.LastSync
			if fresh > now {
				fresh = now
			}
			access[i] = core.TableAccess{Table: tid, Site: ts.Site, Kind: core.AccessReplica, Freshness: fresh}
		case useReplicaNext:
			if ts.Replica == nil || len(ts.Replica.NextSyncs) == 0 {
				return r.fallback()
			}
			next := ts.Replica.NextSyncs[0]
			access[i] = core.TableAccess{Table: tid, Site: ts.Site, Kind: core.AccessReplica, Freshness: next}
			if next > start {
				start = next
			}
		default:
			return r.fallback()
		}
	}
	q := e.query
	q.SubmitAt = now
	plan := core.Plan{Query: q, Access: access, Start: start}
	plan.Cost = r.cfg.Cost.Estimate(q, access, start)
	if r.cfg.Stats != nil {
		r.cfg.Stats.Counter("router_hits_total").Inc()
	}
	return plan, true
}

// Len returns the number of registered queries.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
