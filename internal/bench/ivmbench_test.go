package bench

import "testing"

// TestIVMViewBeatsReplicaOnly is the acceptance gate for the view
// experiment: under the aggregate-heavy skewed stream, the view-enabled
// variant must deliver at least the replica-only total IV while shipping
// strictly fewer sync bytes.
func TestIVMViewBeatsReplicaOnly(t *testing.T) {
	res, err := RunIVM(QuickIVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replica-only IV=%.3f bytes=%.0f | view-enabled IV=%.3f bytes=%.0f (gain %+.1f%%, bytes -%.1f%%)",
		res.ReplicaOnly.TotalIV, res.ReplicaOnly.SyncBytes,
		res.ViewEnabled.TotalIV, res.ViewEnabled.SyncBytes,
		res.IVGainPct, res.BytesSavedPct)
	if res.ViewEnabled.TotalIV < res.ReplicaOnly.TotalIV {
		t.Errorf("view-enabled IV %.3f below replica-only %.3f", res.ViewEnabled.TotalIV, res.ReplicaOnly.TotalIV)
	}
	if res.ViewEnabled.SyncBytes >= res.ReplicaOnly.SyncBytes {
		t.Errorf("view-enabled sync bytes %.0f not below replica-only %.0f", res.ViewEnabled.SyncBytes, res.ReplicaOnly.SyncBytes)
	}
	if res.ViewEnabled.ViewsMaterialized == 0 {
		t.Error("no view materializations counted")
	}
	if res.ViewEnabled.ViewDeltaBytes <= 0 {
		t.Error("no view delta bytes counted")
	}
	if res.ReplicaOnly.ViewDeltaBytes != 0 {
		t.Errorf("replica-only variant shipped view deltas: %.0f", res.ReplicaOnly.ViewDeltaBytes)
	}
}

// TestIVMDeterministic pins run-to-run reproducibility of the DES.
func TestIVMDeterministic(t *testing.T) {
	a, err := RunIVM(QuickIVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIVM(QuickIVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ivm experiment not deterministic:\n%+v\n%+v", a, b)
	}
}
