package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

// LoadConfig parameterizes the admission-control load experiment: a
// Poisson TPC-H stream pushed through a value-shedding dispatcher at an
// arrival rate chosen to overload the slots, so the run reports both the
// throughput the system sustains and the work it refuses.
type LoadConfig struct {
	Scale     float64       // TPC-H generator scale (weights calibration)
	NQueries  int           // arrivals in the stream
	QueryMean core.Duration // mean interarrival, experiment minutes
	SyncMean  core.Duration // mean replica synchronization cycle
	Rates     core.DiscountRates
	// Epsilon is the value-expiry threshold: queries whose IV is projected
	// to fall below it are shed from the queue. Zero disables shedding.
	Epsilon        float64
	Slots          int
	Aging          core.Aging
	Sites          int
	Replicas       int
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultLoadConfig overloads one slot roughly 3× so shedding is visible.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Scale:          1,
		NQueries:       110,
		QueryMean:      25,
		SyncMean:       25,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		Epsilon:        .25,
		Slots:          1,
		Aging:          core.Aging{Coefficient: .05, Exponent: 1.5},
		Sites:          4,
		Replicas:       5,
		PlannerHorizon: 30,
		Seed:           1,
	}
}

// QuickLoadConfig is a scaled-down variant for tests.
func QuickLoadConfig() LoadConfig {
	cfg := DefaultLoadConfig()
	cfg.NQueries = 30
	return cfg
}

// LoadResult is the machine-readable outcome of one load run — the shape
// written to BENCH_<date>.json so the repo's bench trajectory is
// comparable across commits.
type LoadResult struct {
	Date       string  `json:"date,omitempty"` // stamped by the caller
	Queries    int     `json:"queries"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	Epsilon    float64 `json:"epsilon"`
	Slots      int     `json:"slots"`
	Seed       int64   `json:"seed"`
	Throughput float64 `json:"throughput_per_minute"` // completed reports per experiment minute
	MeanCL     float64 `json:"mean_cl_minutes"`
	P95CL      float64 `json:"p95_cl_minutes"`
	MeanSL     float64 `json:"mean_sl_minutes"`
	P95SL      float64 `json:"p95_sl_minutes"`
	TotalIV    float64 `json:"total_iv"`
	MeanIV     float64 `json:"mean_iv"` // over completed reports
}

// RunLoad executes the experiment: the full IVQP stack (planner, catalog,
// dispatcher) under an overloading stream, with the dispatcher shedding
// queries whose value horizon passes while they wait.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	var res LoadResult
	world, err := NewTPCHWorld(cfg.Scale, cfg.Seed)
	if err != nil {
		return res, err
	}
	queries, weights, err := world.Stream(cfg.NQueries, cfg.QueryMean, cfg.Seed+2)
	if err != nil {
		return res, err
	}
	cost := world.CostModel(weights)
	horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000
	dep, err := BuildDeployment(DeployConfig{
		Tables:          world.Tables,
		Sites:           cfg.Sites,
		ReplicaCount:    cfg.Replicas,
		SyncMean:        cfg.SyncMean,
		ScheduleHorizon: horizon,
		InitialSync:     true,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	strategy, err := dep.Strategy(MethodIVQP, cost, cfg.Rates, cfg.PlannerHorizon)
	if err != nil {
		return res, err
	}

	s := sim.New()
	d, err := scheduler.NewDispatcher(s, strategy, cfg.Rates, cfg.Slots, cfg.Aging)
	if err != nil {
		return res, err
	}
	d.SetExpiry(cfg.Epsilon)
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		return res, err
	}
	if d.Pending() != 0 {
		return res, fmt.Errorf("bench: %d queries neither completed nor shed", d.Pending())
	}

	var cls, sls, ivs []float64
	makespan := core.Time(0)
	for _, o := range d.Outcomes() {
		if o.Expired {
			continue
		}
		cls = append(cls, o.Latencies.CL)
		sls = append(sls, o.Latencies.SL)
		ivs = append(ivs, o.Value)
		res.TotalIV += o.Value
		if finish := o.Query.SubmitAt + o.Latencies.CL; finish > makespan {
			makespan = finish
		}
	}
	res.Queries = len(queries)
	res.Completed = len(ivs)
	res.Shed = d.Shed()
	res.Epsilon = cfg.Epsilon
	res.Slots = cfg.Slots
	res.Seed = cfg.Seed
	if makespan > 0 {
		res.Throughput = float64(res.Completed) / makespan
	}
	if len(ivs) > 0 {
		res.MeanCL = stats.Mean(cls)
		res.P95CL = stats.Percentile(cls, 95)
		res.MeanSL = stats.Mean(sls)
		res.P95SL = stats.Percentile(sls, 95)
		res.MeanIV = stats.Mean(ivs)
	}
	return res, nil
}

// WriteJSON emits the result as indented JSON.
func (r LoadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Tables renders the run as one summary table.
func (r LoadResult) Tables() []Table {
	return []Table{{
		Title:   fmt.Sprintf("Load: admission control under overload (epsilon=%g, %d slots)", r.Epsilon, r.Slots),
		Columns: []string{"queries", "completed", "shed", "throughput/min", "mean CL", "p95 CL", "mean SL", "p95 SL", "mean IV", "total IV"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Shed),
			f3(r.Throughput),
			f1(r.MeanCL), f1(r.P95CL),
			f1(r.MeanSL), f1(r.P95SL),
			f3(r.MeanIV), f3(r.TotalIV),
		}},
	}}
}
