package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

// LoadConfig parameterizes the admission-control load experiment: a
// Poisson TPC-H stream pushed through a value-shedding dispatcher at an
// arrival rate chosen to overload the slots, so the run reports both the
// throughput the system sustains and the work it refuses.
type LoadConfig struct {
	Scale     float64       // TPC-H generator scale (weights calibration)
	NQueries  int           // arrivals in the stream
	QueryMean core.Duration // mean interarrival, experiment minutes
	SyncMean  core.Duration // mean replica synchronization cycle
	Rates     core.DiscountRates
	// Epsilon is the value-expiry threshold: queries whose IV is projected
	// to fall below it are shed from the queue. Zero disables shedding.
	Epsilon        float64
	Slots          int
	Aging          core.Aging
	Sites          int
	Replicas       int
	PlannerHorizon core.Duration
	Seed           int64
	// MQOWindow is the continuous micro-batch window (experiment minutes)
	// used by the live-path comparison: the same stream is replayed through
	// the engine in plain FIFO order and with micro-batch MQO, and both
	// totals are reported. Zero skips the comparison.
	MQOWindow core.Duration
	// GA parameterizes the workload ordering in the MQO variant.
	GA scheduler.GAConfig
	// Sync parameterizes the replication-cadence comparison that rides
	// along in the same artifact (seed is overridden with Seed). A zero
	// Tables count falls back to DefaultSyncConfig.
	Sync SyncConfig
}

// DefaultLoadConfig overloads one slot several times over, so both
// shedding and the scheduling policy (which queries win the slot) are
// visible in the totals.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Scale:          1,
		NQueries:       110,
		QueryMean:      10,
		SyncMean:       25,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		Epsilon:        .25,
		Slots:          1,
		Aging:          core.Aging{Coefficient: .05, Exponent: 1.5},
		Sites:          4,
		Replicas:       5,
		PlannerHorizon: 30,
		Seed:           1,
		MQOWindow:      10,
		GA:             scheduler.GAConfig{Seed: 1},
		Sync:           DefaultSyncConfig(),
	}
}

// QuickLoadConfig is a scaled-down variant for tests.
func QuickLoadConfig() LoadConfig {
	cfg := DefaultLoadConfig()
	cfg.NQueries = 30
	cfg.Sync = QuickSyncConfig()
	return cfg
}

// LoadResult is the machine-readable outcome of one load run — the shape
// written to BENCH_<date>.json so the repo's bench trajectory is
// comparable across commits.
type LoadResult struct {
	Date       string  `json:"date,omitempty"` // stamped by the caller
	Queries    int     `json:"queries"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	Epsilon    float64 `json:"epsilon"`
	Slots      int     `json:"slots"`
	Seed       int64   `json:"seed"`
	Throughput float64 `json:"throughput_per_minute"` // completed reports per experiment minute
	MeanCL     float64 `json:"mean_cl_minutes"`
	P95CL      float64 `json:"p95_cl_minutes"`
	MeanSL     float64 `json:"mean_sl_minutes"`
	P95SL      float64 `json:"p95_sl_minutes"`
	TotalIV    float64 `json:"total_iv"`
	MeanIV     float64 `json:"mean_iv"` // over completed reports

	// Live-path comparison: the same stream replayed through the shared
	// scheduling engine in plain FIFO submission order versus continuous
	// micro-batch MQO (window formation + GA ordering + value-ranked
	// dispatch with aging). Present when MQOWindow > 0.
	MQOWindowMinutes float64 `json:"mqo_window_minutes,omitempty"`
	FIFOCompleted    int     `json:"fifo_completed,omitempty"`
	FIFOShed         int     `json:"fifo_shed,omitempty"`
	FIFOTotalIV      float64 `json:"fifo_total_iv,omitempty"`
	MQOCompleted     int     `json:"mqo_completed,omitempty"`
	MQOShed          int     `json:"mqo_shed,omitempty"`
	MQOTotalIV       float64 `json:"mqo_total_iv,omitempty"`
	// MQOGainPct is (MQOTotalIV - FIFOTotalIV) / FIFOTotalIV × 100.
	MQOGainPct float64 `json:"mqo_gain_pct,omitempty"`

	// Replication cadence comparison (the replsync engine on the DES): the
	// same skewed stream scored under a static uniform sync cadence versus
	// the IV-adaptive controller, plus the adaptive run's traffic counters.
	SyncStaticTotalIV       float64 `json:"sync_static_total_iv"`
	SyncAdaptiveTotalIV     float64 `json:"sync_adaptive_total_iv"`
	SyncAdaptiveGainPct     float64 `json:"sync_adaptive_gain_pct"`
	SyncsTotal              float64 `json:"syncs_total"`
	SyncBytesTotal          float64 `json:"sync_bytes_total"`
	SyncDeferredTotal       float64 `json:"sync_deferred_total"`
	CadenceAdjustmentsTotal float64 `json:"cadence_adjustments_total"`
}

// RunLoad executes the experiment: the full IVQP stack (planner, catalog,
// dispatcher) under an overloading stream, with the dispatcher shedding
// queries whose value horizon passes while they wait.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	var res LoadResult
	world, err := NewTPCHWorld(cfg.Scale, cfg.Seed)
	if err != nil {
		return res, err
	}
	queries, weights, err := world.Stream(cfg.NQueries, cfg.QueryMean, cfg.Seed+2)
	if err != nil {
		return res, err
	}
	cost := world.CostModel(weights)
	horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000
	depCfg := DeployConfig{
		Tables:          world.Tables,
		Sites:           cfg.Sites,
		ReplicaCount:    cfg.Replicas,
		SyncMean:        cfg.SyncMean,
		ScheduleHorizon: horizon,
		InitialSync:     true,
		Seed:            cfg.Seed,
	}
	dep, err := BuildDeployment(depCfg)
	if err != nil {
		return res, err
	}
	strategy, err := dep.Strategy(MethodIVQP, cost, cfg.Rates, cfg.PlannerHorizon)
	if err != nil {
		return res, err
	}

	s := sim.New()
	d, err := scheduler.NewDispatcher(s, strategy, cfg.Rates, cfg.Slots, cfg.Aging)
	if err != nil {
		return res, err
	}
	d.SetExpiry(cfg.Epsilon)
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		return res, err
	}
	if d.Pending() != 0 {
		return res, fmt.Errorf("bench: %d queries neither completed nor shed", d.Pending())
	}

	var cls, sls, ivs []float64
	makespan := core.Time(0)
	for _, o := range d.Outcomes() {
		if o.Expired {
			continue
		}
		cls = append(cls, o.Latencies.CL)
		sls = append(sls, o.Latencies.SL)
		ivs = append(ivs, o.Value)
		res.TotalIV += o.Value
		if finish := o.Query.SubmitAt + o.Latencies.CL; finish > makespan {
			makespan = finish
		}
	}
	res.Queries = len(queries)
	res.Completed = len(ivs)
	res.Shed = d.Shed()
	res.Epsilon = cfg.Epsilon
	res.Slots = cfg.Slots
	res.Seed = cfg.Seed
	if makespan > 0 {
		res.Throughput = float64(res.Completed) / makespan
	}
	if len(ivs) > 0 {
		res.MeanCL = stats.Mean(cls)
		res.P95CL = stats.Percentile(cls, 95)
		res.MeanSL = stats.Mean(sls)
		res.P95SL = stats.Percentile(sls, 95)
		res.MeanIV = stats.Mean(ivs)
	}

	// Live-path ablation: the identical stream through the shared engine,
	// once in plain FIFO submission order (the old live server path), once
	// with continuous micro-batch MQO. Each variant gets a fresh deployment
	// so no state leaks between runs.
	if cfg.MQOWindow > 0 {
		fifoDone, fifoShed, fifoIV, err := runLivePath(cfg, depCfg, cost, queries, false)
		if err != nil {
			return res, err
		}
		mqoDone, mqoShed, mqoIV, err := runLivePath(cfg, depCfg, cost, queries, true)
		if err != nil {
			return res, err
		}
		res.MQOWindowMinutes = float64(cfg.MQOWindow)
		res.FIFOCompleted, res.FIFOShed, res.FIFOTotalIV = fifoDone, fifoShed, fifoIV
		res.MQOCompleted, res.MQOShed, res.MQOTotalIV = mqoDone, mqoShed, mqoIV
		if fifoIV > 0 {
			res.MQOGainPct = (mqoIV - fifoIV) / fifoIV * 100
		}
	}

	// Replication cadence comparison: static uniform versus IV-adaptive
	// sync under a skewed workload, recorded in the same artifact so the
	// trajectory of both results is comparable across commits.
	syncCfg := cfg.Sync
	if syncCfg.Tables == 0 {
		syncCfg = DefaultSyncConfig()
	}
	syncCfg.Seed = cfg.Seed
	syncRes, err := RunSync(syncCfg)
	if err != nil {
		return res, err
	}
	res.SyncStaticTotalIV = syncRes.Static.TotalIV
	res.SyncAdaptiveTotalIV = syncRes.Adaptive.TotalIV
	res.SyncAdaptiveGainPct = syncRes.GainPct
	res.SyncsTotal = syncRes.Adaptive.Syncs
	res.SyncBytesTotal = syncRes.Adaptive.SyncBytes
	res.SyncDeferredTotal = syncRes.Adaptive.SyncDeferred
	res.CadenceAdjustmentsTotal = syncRes.Adaptive.CadenceAdjustments
	return res, nil
}

// runLivePath replays the stream through the scheduling engine on virtual
// time with model execution — the live DSS server's scheduling core,
// minus the network. mqo selects between the FIFO baseline and the
// micro-batch MQO pipeline (window formation, GA ordering, value-ranked
// dispatch with aging).
func runLivePath(cfg LoadConfig, depCfg DeployConfig, cost core.CostModel, queries []core.Query, mqo bool) (completed, shed int, totalIV float64, err error) {
	dep, err := BuildDeployment(depCfg)
	if err != nil {
		return 0, 0, 0, err
	}
	strategy, err := dep.Strategy(MethodIVQP, cost, cfg.Rates, cfg.PlannerHorizon)
	if err != nil {
		return 0, 0, 0, err
	}
	s := sim.New()
	clock := scheduler.SimClock{Sim: s}
	ecfg := scheduler.EngineConfig{
		Clock:           clock,
		Executor:        scheduler.PlanExecutor{Clock: clock, Rates: cfg.Rates},
		Strategy:        strategy,
		Rates:           cfg.Rates,
		Slots:           cfg.Slots,
		HaltOnPlanError: true,
		RecordOutcomes:  true,
	}
	if mqo {
		ivqp := strategy.(*scheduler.IVQPStrategy)
		ecfg.Aging = cfg.Aging
		ecfg.Window = cfg.MQOWindow
		ecfg.GA = cfg.GA
		ecfg.Evaluator = &scheduler.Evaluator{
			Planner: ivqp.Planner,
			Catalog: ivqp.Catalog,
			Horizon: cfg.PlannerHorizon,
		}
	} else {
		ecfg.FIFO = true
	}
	eng, err := scheduler.NewEngine(ecfg)
	if err != nil {
		return 0, 0, 0, err
	}
	eng.SetEpsilon(cfg.Epsilon)
	for _, q := range queries {
		q := q
		s.ScheduleAt(q.SubmitAt, func() { eng.Submit(q, nil) })
	}
	s.Run()
	if err := eng.Err(); err != nil {
		return 0, 0, 0, err
	}
	if p := eng.Pending(); p != 0 {
		return 0, 0, 0, fmt.Errorf("bench: live path left %d queries pending", p)
	}
	for _, o := range eng.Outcomes() {
		if o.Expired {
			continue
		}
		completed++
		totalIV += o.Value
	}
	return completed, eng.Shed(), totalIV, nil
}

// WriteJSON emits the result as indented JSON.
func (r LoadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Tables renders the run as summary tables.
func (r LoadResult) Tables() []Table {
	tables := []Table{{
		Title:   fmt.Sprintf("Load: admission control under overload (epsilon=%g, %d slots)", r.Epsilon, r.Slots),
		Columns: []string{"queries", "completed", "shed", "throughput/min", "mean CL", "p95 CL", "mean SL", "p95 SL", "mean IV", "total IV"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Shed),
			f3(r.Throughput),
			f1(r.MeanCL), f1(r.P95CL),
			f1(r.MeanSL), f1(r.P95SL),
			f3(r.MeanIV), f3(r.TotalIV),
		}},
	}}
	if r.MQOWindowMinutes > 0 {
		tables = append(tables, Table{
			Title:   fmt.Sprintf("Live path: FIFO vs continuous micro-batch MQO (window=%g min)", r.MQOWindowMinutes),
			Columns: []string{"variant", "completed", "shed", "total IV"},
			Rows: [][]string{
				{"fifo", fmt.Sprintf("%d", r.FIFOCompleted), fmt.Sprintf("%d", r.FIFOShed), f3(r.FIFOTotalIV)},
				{"mqo", fmt.Sprintf("%d", r.MQOCompleted), fmt.Sprintf("%d", r.MQOShed), f3(r.MQOTotalIV)},
				{"gain", "", "", fmt.Sprintf("%+.1f%%", r.MQOGainPct)},
			},
		})
	}
	if r.SyncsTotal > 0 {
		tables = append(tables, Table{
			Title:   "Replication cadence: static uniform vs IV-adaptive",
			Columns: []string{"variant", "total IV", "syncs", "bytes", "deferred", "adjusts"},
			Rows: [][]string{
				{"static", f3(r.SyncStaticTotalIV), "", "", "", ""},
				{"adaptive", f3(r.SyncAdaptiveTotalIV),
					fmt.Sprintf("%.0f", r.SyncsTotal),
					fmt.Sprintf("%.0f", r.SyncBytesTotal),
					fmt.Sprintf("%.0f", r.SyncDeferredTotal),
					fmt.Sprintf("%.0f", r.CadenceAdjustmentsTotal)},
				{"gain", fmt.Sprintf("%+.1f%%", r.SyncAdaptiveGainPct), "", "", "", ""},
			},
		})
	}
	return tables
}
