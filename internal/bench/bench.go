// Package bench contains the experiment drivers that regenerate every
// figure of the paper's evaluation section (Figures 5–9) plus the ablation
// studies called out in DESIGN.md. Each driver is deterministic in its
// config's seed and returns structured results that cmd/ivqp-bench renders
// as tables and the root bench_test.go wraps as testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"

	"ivdss/internal/core"
	"ivdss/internal/federation"
	"ivdss/internal/replication"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

// Method names the three approaches the paper compares.
type Method int

const (
	// MethodIVQP is the proposed information-value-driven query processor.
	MethodIVQP Method = iota + 1
	// MethodFederation executes every query at the remote servers.
	MethodFederation
	// MethodWarehouse answers every query from local replicas.
	MethodWarehouse
)

// Methods lists the comparison order used in the paper's figures.
func Methods() []Method { return []Method{MethodIVQP, MethodFederation, MethodWarehouse} }

// String names the method as the paper's legends do.
func (m Method) String() string {
	switch m {
	case MethodIVQP:
		return "IVQP"
	case MethodFederation:
		return "Federation"
	case MethodWarehouse:
		return "Data Warehouse"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Table is a rendered experiment result: one figure panel or table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Deployment is one configured system under test: a placement, a
// replication plan, and the resulting catalog.
type Deployment struct {
	Catalog  *federation.Catalog
	Tables   []core.TableID
	Replicas []core.TableID
}

// DeployConfig builds a Deployment.
type DeployConfig struct {
	Tables []core.TableID
	Sites  int
	Skewed bool
	// ReplicaCount selects how many tables are replicated locally:
	// 0 = none (the Federation deployment), -1 = all (the Data Warehouse
	// deployment), otherwise a random subset of that size (the hybrid).
	ReplicaCount int
	// Replicas, when non-nil, is an explicit replica set overriding the
	// ReplicaCount selection — the cluster bench places each shard's set
	// with the advisor and passes it here.
	Replicas []core.TableID
	// SyncMean is the mean of each table's exponential synchronization
	// cycle; required whenever replicas exist.
	SyncMean core.Duration
	// ScheduleHorizon bounds how far sync schedules are materialized.
	ScheduleHorizon core.Time
	// InitialSync prepends a completed synchronization at t=0 so replicas
	// are usable from the start (the warehouse baseline needs this).
	InitialSync bool
	Seed        int64
}

// BuildDeployment materializes the deployment.
func BuildDeployment(cfg DeployConfig) (*Deployment, error) {
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("bench: deployment needs tables")
	}
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("bench: deployment needs at least one site")
	}
	var placement *federation.Placement
	var err error
	if cfg.Skewed {
		placement, err = federation.SkewedPlacement(cfg.Tables, cfg.Sites, cfg.Seed)
	} else {
		placement, err = federation.UniformPlacement(cfg.Tables, cfg.Sites, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}

	var replicas []core.TableID
	switch {
	case cfg.Replicas != nil:
		replicas = append(replicas, cfg.Replicas...)
	case cfg.ReplicaCount == 0:
	case cfg.ReplicaCount == -1:
		replicas = append(replicas, cfg.Tables...)
	default:
		replicas, err = federation.ChooseReplicas(cfg.Tables, cfg.ReplicaCount, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
	}

	if len(replicas) > 0 && cfg.SyncMean <= 0 {
		return nil, fmt.Errorf("bench: replicas configured without a sync mean")
	}
	horizon := cfg.ScheduleHorizon
	if horizon <= 0 {
		horizon = 1e5
	}
	mgr, err := newSyncManager(replicas, cfg.SyncMean, horizon, cfg.Seed, cfg.InitialSync)
	if err != nil {
		return nil, err
	}
	catalog, err := federation.NewCatalog(placement, mgr)
	if err != nil {
		return nil, err
	}
	return &Deployment{Catalog: catalog, Tables: cfg.Tables, Replicas: replicas}, nil
}

// Strategy builds the dispatch strategy for a method over this deployment.
func (d *Deployment) Strategy(m Method, cost core.CostModel, rates core.DiscountRates, horizon core.Duration) (scheduler.Strategy, error) {
	switch m {
	case MethodIVQP:
		planner, err := core.NewPlanner(cost, core.PlannerConfig{Rates: rates, Horizon: horizon})
		if err != nil {
			return nil, err
		}
		return &scheduler.IVQPStrategy{Planner: planner, Catalog: d.Catalog, Horizon: horizon}, nil
	case MethodFederation:
		return &scheduler.FixedStrategy{Catalog: d.Catalog, Cost: cost, Kind: core.AccessBase}, nil
	case MethodWarehouse:
		return &scheduler.FixedStrategy{Catalog: d.Catalog, Cost: cost, Kind: core.AccessReplica, FallbackToBase: true}, nil
	default:
		return nil, fmt.Errorf("bench: unknown method %d", int(m))
	}
}

// newSyncManager registers exponential synchronization schedules for the
// given replicas, optionally seeding a completed sync at t=0.
func newSyncManager(replicas []core.TableID, syncMean core.Duration, horizon core.Time, seed int64, initialSync bool) (*replication.Manager, error) {
	mgr := replication.NewManager()
	for i, id := range replicas {
		sched, err := replication.Exponential(syncMean, seed+100+int64(i), horizon)
		if err != nil {
			return nil, err
		}
		times := sched.Times
		if initialSync {
			times = append([]core.Time{0}, times...)
		}
		if err := mgr.Register(id, replication.Schedule{Times: times}); err != nil {
			return nil, err
		}
	}
	return mgr, nil
}

// RunStream pushes a query stream through a dispatcher over the deployment
// and returns the completed outcomes.
func RunStream(dep *Deployment, strategy scheduler.Strategy, queries []core.Query, rates core.DiscountRates, slots int, aging core.Aging) ([]scheduler.Outcome, error) {
	s := sim.New()
	d, err := scheduler.NewDispatcher(s, strategy, rates, slots, aging)
	if err != nil {
		return nil, err
	}
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Pending() != 0 {
		return nil, fmt.Errorf("bench: %d queries never completed", d.Pending())
	}
	return d.Outcomes(), nil
}

// MeanValue averages the information value over outcomes.
func MeanValue(outcomes []scheduler.Outcome) float64 {
	vals := make([]float64, len(outcomes))
	for i, o := range outcomes {
		vals[i] = o.Value
	}
	return stats.Mean(vals)
}

// MeanLatencies averages CL and SL over outcomes.
func MeanLatencies(outcomes []scheduler.Outcome) core.Latencies {
	var lat core.Latencies
	if len(outcomes) == 0 {
		return lat
	}
	for _, o := range outcomes {
		lat.CL += o.Latencies.CL
		lat.SL += o.Latencies.SL
	}
	lat.CL /= float64(len(outcomes))
	lat.SL /= float64(len(outcomes))
	return lat
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
