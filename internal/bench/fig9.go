package bench

import (
	"fmt"
	"strconv"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/scheduler"
	"ivdss/internal/synth"
)

// Fig9Config parameterizes the multi-query-optimization experiments
// (Figure 9): synthetic 100-table schema, λCL = λSL = .15, comparing the
// GA workload scheduler against FIFO while varying (a) the query overlap
// rate and (b) the workload size.
type Fig9Config struct {
	NTables        int
	Replicas       int
	MaxTablesPer   int
	SyncMean       core.Duration
	Rates          core.DiscountRates
	PlannerHorizon core.Duration
	GA             scheduler.GAConfig
	Seed           int64

	// Panel (a): overlap sweep.
	OverlapRates   []float64
	OverlapQueries int
	ClusterGap     core.Duration
	SpreadGap      core.Duration

	// Panel (b): workload-size sweep (queries arrive as one burst).
	QueryCounts []int
	BurstGap    core.Duration

	// Reps averages each point over several independently seeded
	// workloads; the seed set is identical across x-values so curves are
	// comparable point to point.
	Reps int
}

// DefaultFig9Config mirrors the paper's setup.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		NTables:        100,
		Replicas:       50,
		MaxTablesPer:   10,
		SyncMean:       5,
		Rates:          core.DiscountRates{CL: .15, SL: .15},
		PlannerHorizon: 30,
		GA:             scheduler.GAConfig{Seed: 9},
		Seed:           1,
		OverlapRates:   []float64{.1, .2, .3, .4, .5},
		OverlapQueries: 24,
		ClusterGap:     1,
		SpreadGap:      120,
		QueryCounts:    []int{2, 4, 6, 8, 10, 12, 14},
		BurstGap:       0.5,
		Reps:           5,
	}
}

// QuickFig9Config is a scaled-down variant for tests.
func QuickFig9Config() Fig9Config {
	cfg := DefaultFig9Config()
	cfg.OverlapRates = []float64{.1, .5}
	cfg.OverlapQueries = 10
	cfg.QueryCounts = []int{2, 6}
	cfg.GA = scheduler.GAConfig{Seed: 9, Population: 12, Generations: 10}
	cfg.Reps = 2
	return cfg
}

// Fig9Point compares MQO and FIFO at one x-axis value.
type Fig9Point struct {
	X       float64 // overlap rate (a) or query count (b)
	MQO     float64 // mean information value with the GA scheduler
	Without float64 // mean information value with FIFO
}

// Fig9Result holds both panels.
type Fig9Result struct {
	Overlap []Fig9Point // panel (a)
	Counts  []Fig9Point // panel (b)
}

// fig9World builds the shared deployment and evaluator for one run.
func fig9World(cfg Fig9Config) (*Deployment, *scheduler.Evaluator, error) {
	tables := synth.Tables(cfg.NTables)
	dep, err := BuildDeployment(DeployConfig{
		Tables:          tables,
		Sites:           4,
		ReplicaCount:    cfg.Replicas,
		SyncMean:        cfg.SyncMean,
		ScheduleHorizon: 1e5,
		InitialSync:     true,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	cost := &costmodel.CountModel{LocalProcess: 1, PerBaseTable: 1, TransmitFlat: 0.5}
	planner, err := core.NewPlanner(cost, core.PlannerConfig{Rates: cfg.Rates, Horizon: cfg.PlannerHorizon})
	if err != nil {
		return nil, nil, err
	}
	ev := &scheduler.Evaluator{Planner: planner, Catalog: dep.Catalog, Horizon: cfg.PlannerHorizon}
	return dep, ev, nil
}

// RunFig9a executes the overlap-rate sweep.
func RunFig9a(cfg Fig9Config) (Fig9Result, error) {
	var res Fig9Result
	_, ev, err := fig9World(cfg)
	if err != nil {
		return res, err
	}
	tables := synth.Tables(cfg.NTables)
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, rate := range cfg.OverlapRates {
		point := Fig9Point{X: rate * 100}
		for rep := 0; rep < reps; rep++ {
			queries, err := synth.OverlappingQueries(synth.OverlapConfig{
				QueryConfig: synth.QueryConfig{
					N:                 cfg.OverlapQueries,
					Tables:            tables,
					MaxTablesPerQuery: cfg.MaxTablesPer,
					Seed:              cfg.Seed + int64(rep)*997,
				},
				Rate:       rate,
				ClusterGap: cfg.ClusterGap,
				SpreadGap:  cfg.SpreadGap,
			})
			if err != nil {
				return res, err
			}
			p, err := compareMQO(queries, ev, cfg.GA)
			if err != nil {
				return res, fmt.Errorf("bench: fig9a rate %v: %w", rate, err)
			}
			point.MQO += p.MQO / float64(reps)
			point.Without += p.Without / float64(reps)
		}
		res.Overlap = append(res.Overlap, point)
	}
	return res, nil
}

// RunFig9b executes the workload-size sweep.
func RunFig9b(cfg Fig9Config) (Fig9Result, error) {
	var res Fig9Result
	_, ev, err := fig9World(cfg)
	if err != nil {
		return res, err
	}
	tables := synth.Tables(cfg.NTables)
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, n := range cfg.QueryCounts {
		point := Fig9Point{X: float64(n)}
		for rep := 0; rep < reps; rep++ {
			queries, err := synth.Queries(synth.QueryConfig{
				N:                 n,
				Tables:            tables,
				MaxTablesPerQuery: cfg.MaxTablesPer,
				MeanInterarrival:  cfg.BurstGap,
				Seed:              cfg.Seed + int64(rep)*997,
			})
			if err != nil {
				return res, err
			}
			p, err := compareMQO(queries, ev, cfg.GA)
			if err != nil {
				return res, fmt.Errorf("bench: fig9b n=%d: %w", n, err)
			}
			point.MQO += p.MQO / float64(reps)
			point.Without += p.Without / float64(reps)
		}
		res.Counts = append(res.Counts, point)
	}
	return res, nil
}

func compareMQO(queries []core.Query, ev *scheduler.Evaluator, ga scheduler.GAConfig) (Fig9Point, error) {
	fifo, err := scheduler.ScheduleFIFO(queries, ev)
	if err != nil {
		return Fig9Point{}, err
	}
	mqo, err := scheduler.ScheduleMQO(queries, ev, ga)
	if err != nil {
		return Fig9Point{}, err
	}
	return Fig9Point{MQO: mqo.MeanValue(), Without: fifo.MeanValue()}, nil
}

// Tables renders whichever panels the result holds.
func (r Fig9Result) Tables() []Table {
	var out []Table
	if len(r.Overlap) > 0 {
		t := Table{
			Title:   "Figure 9(a): MQO vs FIFO by query overlap rate (λ=.15)",
			Columns: []string{"overlap %", "MQO", "Without MQO", "gain %"},
		}
		for _, p := range r.Overlap {
			t.Rows = append(t.Rows, []string{f1(p.X), f3(p.MQO), f3(p.Without), f1(gainPercent(p))})
		}
		out = append(out, t)
	}
	if len(r.Counts) > 0 {
		t := Table{
			Title:   "Figure 9(b): MQO vs FIFO by number of queries (λ=.15)",
			Columns: []string{"queries", "MQO", "Without MQO", "gain %"},
		}
		for _, p := range r.Counts {
			t.Rows = append(t.Rows, []string{strconv.Itoa(int(p.X)), f3(p.MQO), f3(p.Without), f1(gainPercent(p))})
		}
		out = append(out, t)
	}
	return out
}

func gainPercent(p Fig9Point) float64 {
	if p.Without == 0 {
		return 0
	}
	return (p.MQO - p.Without) / p.Without * 100
}
