package bench

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/synth"
)

// quickPreset fetches a preset's quick variant, failing the test on an
// unknown name.
func quickPreset(t *testing.T, name string) synth.Scenario {
	t.Helper()
	sc, err := synth.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Quick()
}

func TestRunScenarioDeterministic(t *testing.T) {
	cfg := DefaultScenarioConfig(quickPreset(t, "flash-zipf"))
	a, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config produced different results:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestRunScenariosAllPresets is the DES leg of the matrix: every preset
// must run end to end with work actually completing and value accruing.
func TestRunScenariosAllPresets(t *testing.T) {
	suite, err := RunScenarios(synth.Presets(), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Scenarios) < 8 {
		t.Fatalf("suite ran %d scenarios, matrix needs at least 8", len(suite.Scenarios))
	}
	for _, res := range suite.Scenarios {
		if res.Completed == 0 {
			t.Errorf("%s: nothing completed", res.Name)
		}
		if res.TotalIV <= 0 {
			t.Errorf("%s: no information value accrued", res.Name)
		}
		if res.Completed+res.Shed+res.Unplannable != res.Queries {
			t.Errorf("%s: %d completed + %d shed + %d unplannable != %d queries",
				res.Name, res.Completed, res.Shed, res.Unplannable, res.Queries)
		}
	}
	// The artifact must round-trip, since the regression gate re-reads it.
	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenarioSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(suite, back) {
		t.Error("suite artifact did not round-trip")
	}
	if tables := suite.Tables(); len(tables) != 1 || len(tables[0].Rows) != len(suite.Scenarios) {
		t.Error("suite table rendering lost rows")
	}
}

// TestOutageViewMarksBaseDown pins the outage overlay contract: inside a
// storm window every table on a downed site reports BaseDown, outside it
// none do — the same marking the live server applies for open breakers.
func TestOutageViewMarksBaseDown(t *testing.T) {
	cfg := DefaultScenarioConfig(quickPreset(t, "outage-storm"))
	world, err := BuildScenarioWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outages := world.Workload.Outages
	if len(outages) == 0 {
		t.Fatal("outage-storm generated no outages")
	}
	view, ok := world.Strategy.Catalog.(OutageView)
	if !ok {
		t.Fatalf("strategy catalog is %T, want the outage overlay", world.Strategy.Catalog)
	}

	o := outages[0]
	mid := (o.Start + o.End) / 2
	all := world.Workload.Tables
	snap, err := view.Snapshot(all, mid, cfg.PlannerHorizon)
	if err != nil {
		t.Fatal(err)
	}
	downTables, onDownSite := 0, 0
	for _, st := range snap {
		if world.Workload.SiteDown(st.Site, mid) {
			onDownSite++
			if !st.BaseDown {
				t.Errorf("table %s on downed site %d not marked BaseDown", st.ID, st.Site)
			}
		} else if st.BaseDown {
			t.Errorf("table %s on healthy site %d marked BaseDown", st.ID, st.Site)
		}
		if st.BaseDown {
			downTables++
		}
	}
	if onDownSite == 0 {
		t.Fatal("no table lives on the downed sites; placement or schedule broken")
	}
	if downTables == 0 {
		t.Fatal("no table marked BaseDown mid-storm")
	}

	// Before the first storm everything is up.
	before := o.Start / 2
	snap, err = view.Snapshot(all, before, cfg.PlannerHorizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range snap {
		if st.BaseDown {
			t.Errorf("table %s marked BaseDown at %v, before the first storm at %v", st.ID, before, o.Start)
		}
	}
}

// TestOutagesChangeOutcome: the storms must actually bite — the same
// scenario with outages stripped yields a different (and no smaller)
// total IV.
func TestOutagesChangeOutcome(t *testing.T) {
	sc := quickPreset(t, "outage-storm")
	withRes, err := RunScenario(DefaultScenarioConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	calm := sc
	calm.Outages = nil
	calmRes, err := RunScenario(DefaultScenarioConfig(calm))
	if err != nil {
		t.Fatal(err)
	}
	if withRes.TotalIV == calmRes.TotalIV {
		t.Errorf("outages had no effect on total IV (%v)", withRes.TotalIV)
	}
	if calmRes.TotalIV < withRes.TotalIV {
		t.Errorf("removing outages lowered total IV: %v -> %v", withRes.TotalIV, calmRes.TotalIV)
	}
	if withRes.OutageCount == 0 || withRes.OutageMinutes <= 0 {
		t.Errorf("outage accounting missing: %+v", withRes)
	}
	if calmRes.OutageCount != 0 || calmRes.OutageMinutes != 0 {
		t.Errorf("calm run reports outages: %+v", calmRes)
	}
}

// TestScenarioEquivalenceMatrix extends the PR 3 equivalence harness from
// one trace to the whole named-scenario matrix: for every preset, the DES
// driver (engine on the simulator's virtual clock) and the live server's
// engine shape (hand-stepped clock) must produce identical outcome
// sequences — plans, values, waits, expiries, and shed counts.
//
// Outage presets are skipped here with a reason: live replay drives
// outages through wall-clock fault proxies (internal/faults.StormDriver),
// which has no hand-stepped equivalent; the DES covers those shapes via
// the catalog BaseDown overlay in TestRunScenariosAllPresets and
// TestOutageViewMarksBaseDown.
func TestScenarioEquivalenceMatrix(t *testing.T) {
	for _, preset := range synth.Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			if preset.Outages != nil {
				t.Skip("live-only shape: outage storms replay through wall-clock fault proxies; DES covers them via the catalog BaseDown overlay")
			}
			cfg := DefaultScenarioConfig(preset.Quick())

			runEngine := func(useSim bool) ([]core.Outcome, int) {
				t.Helper()
				world, err := BuildScenarioWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var clock scheduler.Clock
				var drive func()
				var at func(core.Time, func())
				if useSim {
					s := sim.New()
					clock = scheduler.SimClock{Sim: s}
					drive = s.Run
					at = func(tm core.Time, fn func()) { s.ScheduleAt(tm, fn) }
				} else {
					mc := &scheduler.ManualClock{}
					clock = mc
					drive = mc.Run
					at = func(tm core.Time, fn func()) { mc.AfterFunc(core.Duration(tm), fn) }
				}
				eng, err := scheduler.NewEngine(scheduler.EngineConfig{
					Clock:           clock,
					Executor:        scheduler.PlanExecutor{Clock: clock, Rates: cfg.Rates},
					Strategy:        world.Strategy,
					Rates:           cfg.Rates,
					Slots:           cfg.Slots,
					Aging:           cfg.Aging,
					HaltOnPlanError: false,
					RecordOutcomes:  true,
				})
				if err != nil {
					t.Fatal(err)
				}
				eng.SetEpsilon(cfg.Epsilon)
				for _, q := range world.Workload.Queries {
					q := q
					at(q.SubmitAt, func() { eng.Submit(q, nil) })
				}
				drive()
				if err := eng.Err(); err != nil {
					t.Fatal(err)
				}
				if p := eng.Pending(); p != 0 {
					t.Fatalf("%d queries pending after drain", p)
				}
				return eng.Outcomes(), eng.Shed()
			}

			des, desShed := runEngine(true)
			live, liveShed := runEngine(false)
			if len(des) == 0 || len(des) != len(live) {
				t.Fatalf("outcome counts differ: DES %d, manual-clock %d", len(des), len(live))
			}
			for i := range des {
				a, b := des[i], live[i]
				if a.Query.ID != b.Query.ID {
					t.Fatalf("outcome %d: query %s vs %s", i, a.Query.ID, b.Query.ID)
				}
				if a.Expired != b.Expired || a.Wait != b.Wait || a.Value != b.Value {
					t.Errorf("outcome %d (%s): expired/wait/value %v/%v/%v vs %v/%v/%v",
						i, a.Query.ID, a.Expired, a.Wait, a.Value, b.Expired, b.Wait, b.Value)
				}
				if a.Plan.Signature() != b.Plan.Signature() {
					t.Errorf("outcome %d (%s): plan %q vs %q", i, a.Query.ID, a.Plan.Signature(), b.Plan.Signature())
				}
			}
			if desShed != liveShed {
				t.Errorf("shed counts differ: DES %d, manual-clock %d", desShed, liveShed)
			}
		})
	}
}

func TestCompareSuites(t *testing.T) {
	base := ScenarioSuiteResult{Scenarios: []ScenarioResult{
		{Name: "a", TotalIV: 100},
		{Name: "b", TotalIV: 50},
		{Name: "c", TotalIV: 0},
	}}

	// Identical suites pass.
	if regs := CompareSuites(base, base, 0); len(regs) != 0 {
		t.Errorf("identical suites flagged: %v", regs)
	}

	// A small dip inside the threshold passes; a big drop fails.
	cand := ScenarioSuiteResult{Scenarios: []ScenarioResult{
		{Name: "a", TotalIV: 96},  // -4%: fine
		{Name: "b", TotalIV: 40},  // -20%: regression
		{Name: "c", TotalIV: 0},   // zero baseline: ignored
		{Name: "d", TotalIV: 999}, // new scenario: fine
	}}
	regs := CompareSuites(base, cand, 0)
	if len(regs) != 1 || regs[0].Scenario != "b" {
		t.Fatalf("want one regression on b, got %v", regs)
	}
	if regs[0].DropPct < 19 || regs[0].DropPct > 21 {
		t.Errorf("drop pct %v, want ~20", regs[0].DropPct)
	}
	if !strings.Contains(regs[0].String(), "b: total IV") {
		t.Errorf("unhelpful message %q", regs[0].String())
	}

	// Dropping a scenario silently is a regression too.
	missing := ScenarioSuiteResult{Scenarios: []ScenarioResult{
		{Name: "a", TotalIV: 100},
		{Name: "c", TotalIV: 0},
	}}
	regs = CompareSuites(base, missing, 0)
	if len(regs) != 1 || !regs[0].Missing || regs[0].Scenario != "b" {
		t.Fatalf("want one missing-scenario regression on b, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("unhelpful message %q", regs[0].String())
	}

	// An improvement is never a regression, whatever the threshold.
	better := ScenarioSuiteResult{Scenarios: []ScenarioResult{
		{Name: "a", TotalIV: 120},
		{Name: "b", TotalIV: 55},
		{Name: "c", TotalIV: 1},
	}}
	if regs := CompareSuites(base, better, 0.0001); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}

// TestCommittedBaselineFresh keeps the checked-in CI gate baseline
// honest in both directions: a fresh quick run must pass the gate
// against it (no silent regression slipped in), and the baseline must
// pass the gate against the fresh run (the baseline is not stale after
// an intentional improvement). Refresh it with:
//
//	go run ./cmd/ivqp-bench -fig scenario -quick -seed 1 \
//	    -out internal/bench/testdata/BENCH_SCENARIOS_baseline.json
func TestCommittedBaselineFresh(t *testing.T) {
	f, err := os.Open("testdata/BENCH_SCENARIOS_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	baseline, err := ReadScenarioSuite(f)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunScenarios(synth.Presets(), true, baseline.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range CompareSuites(baseline, fresh, 0) {
		t.Errorf("regression versus committed baseline: %s", reg)
	}
	for _, reg := range CompareSuites(fresh, baseline, 0) {
		t.Errorf("committed baseline is stale (behavior improved): %s — regenerate it", reg)
	}
}

// BenchmarkScenarioSuite feeds benchstat in CI: one quick pass over the
// full preset matrix per iteration.
func BenchmarkScenarioSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunScenarios(synth.Presets(), true, 1); err != nil {
			b.Fatal(err)
		}
	}
}
