package bench

import (
	"fmt"
	"strconv"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/synth"
)

// TablesSweepConfig parameterizes the supplementary schema-size sweep. The
// paper's synthetic setup says "the number of tables can vary from 10 to
// 300" but shows no figure for the sweep; this experiment fills that gap:
// with the replica budget held at half the schema and query footprints
// fixed, how does information value move as the schema grows?
type TablesSweepConfig struct {
	TableCounts    []int
	NQueries       int
	MaxTablesPer   int
	QueryMean      core.Duration
	SyncMean       core.Duration
	Rates          core.DiscountRates
	Sites          int
	Slots          int
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultTablesSweepConfig covers the paper's stated range.
func DefaultTablesSweepConfig() TablesSweepConfig {
	return TablesSweepConfig{
		TableCounts:    []int{10, 50, 100, 200, 300},
		NQueries:       120,
		MaxTablesPer:   10,
		QueryMean:      60,
		SyncMean:       20,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		Sites:          4,
		Slots:          1,
		PlannerHorizon: 30,
		Seed:           1,
	}
}

// TablesSweepPoint is one schema size's outcome.
type TablesSweepPoint struct {
	Tables int
	Values map[Method]float64
}

// TablesSweepResult holds the sweep.
type TablesSweepResult struct {
	Points []TablesSweepPoint
}

// RunTablesSweep executes the sweep: at each schema size, half the tables
// are replicated and the same arrival process drives all three methods.
func RunTablesSweep(cfg TablesSweepConfig) (TablesSweepResult, error) {
	var res TablesSweepResult
	cost := &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2, TransmitFlat: 1}
	for _, n := range cfg.TableCounts {
		if n < cfg.MaxTablesPer {
			return res, fmt.Errorf("bench: %d tables below the per-query footprint %d", n, cfg.MaxTablesPer)
		}
		tables := synth.Tables(n)
		queries, err := synth.Queries(synth.QueryConfig{
			N:                 cfg.NQueries,
			Tables:            tables,
			MaxTablesPerQuery: cfg.MaxTablesPer,
			MeanInterarrival:  cfg.QueryMean,
			Seed:              cfg.Seed + 11,
		})
		if err != nil {
			return res, err
		}
		horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000
		dep, err := buildSharedDeployment(tables, cfg.Sites, n/2, cfg.SyncMean, horizon, false, cfg.Seed)
		if err != nil {
			return res, err
		}
		point := TablesSweepPoint{Tables: n, Values: make(map[Method]float64, 3)}
		for _, m := range Methods() {
			strategy, err := dep.Strategy(m, cost, cfg.Rates, cfg.PlannerHorizon)
			if err != nil {
				return res, err
			}
			outcomes, err := RunStream(dep, strategy, queries, cfg.Rates, cfg.Slots, core.Aging{})
			if err != nil {
				return res, fmt.Errorf("bench: tables sweep n=%d %s: %w", n, m, err)
			}
			point.Values[m] = MeanValue(outcomes)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Tables renders the sweep.
func (r TablesSweepResult) Tables() []Table {
	t := Table{
		Title:   "Supplementary: Information Value vs number of tables (half replicated)",
		Columns: []string{"tables", "IVQP", "Federation", "Data Warehouse"},
	}
	for _, p := range r.Points {
		row := []string{strconv.Itoa(p.Tables)}
		for _, m := range Methods() {
			row = append(row, f3(p.Values[m]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}
