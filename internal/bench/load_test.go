package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunLoadShedsUnderOverload(t *testing.T) {
	res, err := RunLoad(QuickLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Shed == 0 {
		t.Fatal("nothing shed; the config should overload one slot")
	}
	if res.Completed+res.Shed != res.Queries {
		t.Errorf("completed %d + shed %d != %d queries", res.Completed, res.Shed, res.Queries)
	}
	if res.Throughput <= 0 || res.TotalIV <= 0 {
		t.Errorf("throughput %v, total IV %v", res.Throughput, res.TotalIV)
	}
	if res.P95CL < res.MeanCL {
		t.Errorf("p95 CL %v below mean %v", res.P95CL, res.MeanCL)
	}
	// The replication-cadence comparison rides along: adaptive must beat
	// the static uniform cadence, and the traffic counters are populated.
	if res.SyncAdaptiveTotalIV <= res.SyncStaticTotalIV {
		t.Errorf("adaptive sync IV %.3f did not beat static %.3f",
			res.SyncAdaptiveTotalIV, res.SyncStaticTotalIV)
	}
	if res.SyncAdaptiveGainPct <= 0 {
		t.Errorf("sync gain = %+.2f%%, want positive", res.SyncAdaptiveGainPct)
	}
	if res.SyncsTotal <= 0 || res.SyncBytesTotal <= 0 {
		t.Errorf("sync traffic counters empty: syncs=%v bytes=%v", res.SyncsTotal, res.SyncBytesTotal)
	}

	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back LoadResult
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Errorf("JSON round trip changed the result: %+v vs %+v", back, res)
	}
}

func TestRunLoadDeterministicInSeed(t *testing.T) {
	cfg := QuickLoadConfig()
	a, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestRunLoadMQOBeatsFIFOLivePath is the tentpole's payoff: the identical
// overload stream through the shared engine yields more total information
// value with continuous micro-batch MQO than in FIFO submission order.
func TestRunLoadMQOBeatsFIFOLivePath(t *testing.T) {
	res, err := RunLoad(QuickLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FIFOTotalIV <= 0 || res.MQOTotalIV <= 0 {
		t.Fatalf("live-path comparison missing: fifo %v, mqo %v", res.FIFOTotalIV, res.MQOTotalIV)
	}
	if res.MQOTotalIV <= res.FIFOTotalIV {
		t.Errorf("micro-batch MQO total IV %.4f not above FIFO %.4f", res.MQOTotalIV, res.FIFOTotalIV)
	}
	if res.FIFOCompleted+res.FIFOShed != res.Queries {
		t.Errorf("fifo variant lost queries: %d + %d != %d", res.FIFOCompleted, res.FIFOShed, res.Queries)
	}
	if res.MQOCompleted+res.MQOShed != res.Queries {
		t.Errorf("mqo variant lost queries: %d + %d != %d", res.MQOCompleted, res.MQOShed, res.Queries)
	}
}

func TestRunLoadEpsilonZeroCompletesEverything(t *testing.T) {
	cfg := QuickLoadConfig()
	cfg.Epsilon = 0
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 || res.Completed != res.Queries {
		t.Errorf("epsilon 0: completed %d, shed %d of %d", res.Completed, res.Shed, res.Queries)
	}
}
