package bench

import "testing"

func TestRunSyncAdaptiveBeatsStatic(t *testing.T) {
	res, err := RunSync(QuickSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.TotalIV <= res.Static.TotalIV {
		t.Errorf("adaptive IV %.3f did not beat static %.3f",
			res.Adaptive.TotalIV, res.Static.TotalIV)
	}
	if res.GainPct <= 0 {
		t.Errorf("gain = %+.2f%%, want positive", res.GainPct)
	}
	// The win comes from cadence: the hot tables sync faster than they
	// started, the cold tables slower, under the same total rate.
	if res.Adaptive.HotPeriod >= res.Static.HotPeriod {
		t.Errorf("hot period %.2f did not shrink from the uniform %.2f",
			res.Adaptive.HotPeriod, res.Static.HotPeriod)
	}
	if res.Adaptive.ColdPeriod <= res.Static.ColdPeriod {
		t.Errorf("cold period %.2f did not grow from the uniform %.2f",
			res.Adaptive.ColdPeriod, res.Static.ColdPeriod)
	}
	if res.Adaptive.CadenceAdjustments < 1 {
		t.Errorf("cadence_adjustments_total = %v, want ≥ 1", res.Adaptive.CadenceAdjustments)
	}
	if res.Static.CadenceAdjustments != 0 {
		t.Errorf("static variant adjusted cadence %v times", res.Static.CadenceAdjustments)
	}
	// Traffic accounting is populated for both variants.
	for name, v := range map[string]SyncVariant{"static": res.Static, "adaptive": res.Adaptive} {
		if v.Syncs <= 0 || v.SyncBytes <= 0 {
			t.Errorf("%s: syncs=%v bytes=%v, want positive traffic", name, v.Syncs, v.SyncBytes)
		}
	}
}

func TestRunSyncDeterministic(t *testing.T) {
	cfg := QuickSyncConfig()
	a, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunSyncBudgetDefers(t *testing.T) {
	cfg := QuickSyncConfig()
	// Squeeze the pipe: each delta ships ~RowsPerMin×Period×RowBytes =
	// 5×8×8 = 320 bytes per table per period; a 100 B/min budget across 8
	// tables cannot keep up, so cycles must defer.
	cfg.Budget = 100
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.SyncDeferred <= 0 {
		t.Errorf("sync_deferred_total = %v under a starved budget, want > 0", res.Static.SyncDeferred)
	}
}

func TestRunSyncRejectsBadConfig(t *testing.T) {
	bad := []func(*SyncConfig){
		func(c *SyncConfig) { c.HotTables = 0 },
		func(c *SyncConfig) { c.HotTables = c.Tables },
		func(c *SyncConfig) { c.HotFraction = 0 },
		func(c *SyncConfig) { c.HotFraction = 1 },
	}
	for i, mut := range bad {
		cfg := DefaultSyncConfig()
		mut(&cfg)
		if _, err := RunSync(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
