package bench

import (
	"fmt"
	"strconv"

	"ivdss/internal/core"
	"ivdss/internal/tpch"
)

// Fig6Config parameterizes the per-query computational-latency experiment
// (Figure 6): 15 mid-cost TPC-H queries run in isolation with λCL=λSL=.01
// and Fq:Fs = 1:10.
type Fig6Config struct {
	Scale          float64
	QueryMean      core.Duration
	RatioFactor    float64
	Rates          core.DiscountRates
	Sites          int
	Replicas       int
	NQueries       int // how many mid-cost templates (paper: 15)
	SubmitAt       core.Time
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultFig6Config mirrors the paper's setup.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Scale:          1,
		QueryMean:      150,
		RatioFactor:    10,
		Rates:          core.DiscountRates{CL: .01, SL: .01},
		Sites:          4,
		Replicas:       5,
		NQueries:       15,
		SubmitAt:       500,
		PlannerHorizon: 30,
		Seed:           1,
	}
}

// FigQueryPoint is one query's measurement under the three methods.
type FigQueryPoint struct {
	QueryID string
	Values  map[Method]float64
}

// Fig6Result holds per-query computational latencies.
type Fig6Result struct {
	Points []FigQueryPoint
}

// isolatedRun plans and executes one query alone over the deployment and
// returns its outcome.
func isolatedRun(dep *Deployment, m Method, cost core.CostModel, rates core.DiscountRates, horizon core.Duration, q core.Query) (core.Latencies, float64, error) {
	strategy, err := dep.Strategy(m, cost, rates, horizon)
	if err != nil {
		return core.Latencies{}, 0, err
	}
	outcomes, err := RunStream(dep, strategy, []core.Query{q}, rates, 1, core.Aging{})
	if err != nil {
		return core.Latencies{}, 0, err
	}
	return outcomes[0].Latencies, outcomes[0].Value, nil
}

// buildSharedDeployment constructs the hybrid deployment all three
// methods route over.
func buildSharedDeployment(tables []core.TableID, sites, replicas int, syncMean core.Duration, horizon core.Time, skewed bool, seed int64) (*Deployment, error) {
	return BuildDeployment(DeployConfig{
		Tables:          tables,
		Sites:           sites,
		Skewed:          skewed,
		ReplicaCount:    replicas,
		SyncMean:        syncMean,
		ScheduleHorizon: horizon,
		InitialSync:     true,
		Seed:            seed,
	})
}

// RunFig6 executes the computational-latency experiment.
func RunFig6(cfg Fig6Config) (Fig6Result, error) {
	var res Fig6Result
	world, err := NewTPCHWorld(cfg.Scale, cfg.Seed)
	if err != nil {
		return res, err
	}
	ids := tpch.MidCostQueries(world.Weights, cfg.NQueries)
	cost := world.CostModel(world.Weights)
	dep, err := buildSharedDeployment(world.Tables, cfg.Sites, cfg.Replicas,
		cfg.QueryMean/cfg.RatioFactor, cfg.SubmitAt*4+1000, false, cfg.Seed)
	if err != nil {
		return res, err
	}
	for _, id := range ids {
		q, err := world.QueryFor(id, 0, cfg.SubmitAt)
		if err != nil {
			return res, err
		}
		q.ID = id // isolated runs use the bare template ID so weights apply
		point := FigQueryPoint{QueryID: id, Values: make(map[Method]float64, 3)}
		for _, m := range Methods() {
			lat, _, err := isolatedRun(dep, m, cost, cfg.Rates, cfg.PlannerHorizon, q)
			if err != nil {
				return res, fmt.Errorf("bench: fig6 %s %s: %w", id, m, err)
			}
			point.Values[m] = lat.CL
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Tables renders Figure 6.
func (r Fig6Result) Tables() []Table {
	t := Table{
		Title:   "Figure 6: Computational Latency per query (λ=.01, Fq:Fs=1:10)",
		Columns: []string{"#", "query", "IVQP", "Federation", "Data Warehouse"},
	}
	for i, p := range r.Points {
		row := []string{strconv.Itoa(i + 1), p.QueryID}
		for _, m := range Methods() {
			row = append(row, f1(p.Values[m]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig7Config parameterizes the per-query synchronization-latency
// experiment (Figure 7) across several Fq:Fs ratios. The paper compares
// IVQP with Data Warehouse only ("we do not compare with Federation ...
// because the synchronization latency of Federation is caused by the delay
// of query processing instead of table update").
type Fig7Config struct {
	Fig6Config
	RatioFactors []float64
}

// DefaultFig7Config mirrors the paper's setup (ratios 1:1, 1:10, 1:20).
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Fig6Config: DefaultFig6Config(), RatioFactors: []float64{1, 10, 20}}
}

// Fig7Panel is the per-query SL series at one ratio.
type Fig7Panel struct {
	Ratio  string
	Points []FigQueryPoint
}

// Fig7Result holds the three panels.
type Fig7Result struct {
	Panels []Fig7Panel
}

// RunFig7 executes the synchronization-latency experiment.
func RunFig7(cfg Fig7Config) (Fig7Result, error) {
	var res Fig7Result
	world, err := NewTPCHWorld(cfg.Scale, cfg.Seed)
	if err != nil {
		return res, err
	}
	ids := tpch.MidCostQueries(world.Weights, cfg.NQueries)
	cost := world.CostModel(world.Weights)
	for _, factor := range cfg.RatioFactors {
		dep, err := buildSharedDeployment(world.Tables, cfg.Sites, cfg.Replicas,
			cfg.QueryMean/factor, cfg.SubmitAt*4+1000, false, cfg.Seed)
		if err != nil {
			return res, err
		}
		panel := Fig7Panel{Ratio: fmt.Sprintf("1:%g", factor)}
		for _, id := range ids {
			q, err := world.QueryFor(id, 0, cfg.SubmitAt)
			if err != nil {
				return res, err
			}
			q.ID = id
			point := FigQueryPoint{QueryID: id, Values: make(map[Method]float64, 2)}
			for _, m := range []Method{MethodIVQP, MethodWarehouse} {
				lat, _, err := isolatedRun(dep, m, cost, cfg.Rates, cfg.PlannerHorizon, q)
				if err != nil {
					return res, fmt.Errorf("bench: fig7 %s %s: %w", id, m, err)
				}
				point.Values[m] = lat.SL
			}
			panel.Points = append(panel.Points, point)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// Tables renders one table per ratio panel.
func (r Fig7Result) Tables() []Table {
	out := make([]Table, 0, len(r.Panels))
	for _, panel := range r.Panels {
		t := Table{
			Title:   fmt.Sprintf("Figure 7: Synchronization Latency per query (Fq:Fs = %s)", panel.Ratio),
			Columns: []string{"#", "query", "IVQP", "Data Warehouse"},
		}
		for i, p := range panel.Points {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(i + 1), p.QueryID,
				f1(p.Values[MethodIVQP]), f1(p.Values[MethodWarehouse]),
			})
		}
		out = append(out, t)
	}
	return out
}
