package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ivdss/internal/costmodel"
	"ivdss/internal/relation"
	"ivdss/internal/sqlmini"
	"ivdss/internal/synth"
	"ivdss/internal/tpch"
	"ivdss/internal/wall"
)

// The exec benchmark compares the two sqlmini execution engines — the
// reference tree-walk interpreter and the compiled register VM over
// columnar batches — on representative query shapes over a TPC-H-style
// catalog, then re-runs the scenario matrix under each engine's cost
// calibration to show how the raw speedup compounds into information
// value (IV decays as (1-λCL)^CL, so faster local processing lifts every
// completed report and lets admission control keep more of them).

// ExecConfig sizes the engine comparison.
type ExecConfig struct {
	Scale float64 // TPC-H generator scale (1 ≈ 600 lineitem rows)
	Seed  int64
	Iters int  // timed executions per engine per shape
	Quick bool // quick scenario matrix for the IV leg
}

// DefaultExecConfig is the paper-scale run.
func DefaultExecConfig() ExecConfig {
	return ExecConfig{Scale: 8, Seed: 1, Iters: 30}
}

// QuickExecConfig is the CI-sized run.
func QuickExecConfig() ExecConfig {
	return ExecConfig{Scale: 2, Seed: 1, Iters: 5, Quick: true}
}

// execShape is one benchmarked query shape: the SQL plus the tables whose
// row counts define the shape's throughput denominator.
type execShape struct {
	Name   string
	SQL    string
	Tables []string
}

// execShapes are the four engine-differentiating shapes: a full-column
// aggregate scan, a TPC-H Q6-style multi-predicate filter, an equijoin,
// and a Q1-style grouped aggregation.
func execShapes() []execShape {
	return []execShape{
		{
			Name:   "scan",
			SQL:    "SELECT sum(l_extendedprice) FROM lineitem",
			Tables: []string{"lineitem"},
		},
		{
			Name: "filter",
			SQL: "SELECT sum(l_extendedprice * l_discount) FROM lineitem " +
				"WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' " +
				"AND l_discount BETWEEN 0.02 AND 0.09 AND l_quantity < 24",
			Tables: []string{"lineitem"},
		},
		{
			Name: "join",
			SQL: "SELECT count(*), sum(l_extendedprice) FROM orders, lineitem " +
				"WHERE o_orderkey = l_orderkey AND o_totalprice > 1000",
			Tables: []string{"orders", "lineitem"},
		},
		{
			Name: "group",
			SQL: "SELECT l_returnflag, l_linestatus, sum(l_quantity), avg(l_extendedprice), count(*) " +
				"FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
			Tables: []string{"lineitem"},
		},
	}
}

// ExecShapeResult is one shape's engine comparison.
type ExecShapeResult struct {
	Name           string  `json:"name"`
	SQL            string  `json:"sql"`
	InputRows      int     `json:"input_rows"`  // rows the shape reads per execution
	ResultRows     int     `json:"result_rows"` // rows in the answer
	TreeRowsPerSec float64 `json:"tree_rows_per_sec"`
	VMRowsPerSec   float64 `json:"vm_rows_per_sec"`
	Speedup        float64 `json:"speedup"` // VM throughput / tree throughput
}

// ExecResult is the whole comparison: per-shape throughput plus the
// scenario matrix's total IV under each engine's cost calibration.
type ExecResult struct {
	Date      string            `json:"date,omitempty"` // stamped by the caller
	Seed      int64             `json:"seed"`
	Scale     float64           `json:"scale"`
	Iters     int               `json:"iters"`
	Shapes    []ExecShapeResult `json:"shapes"`
	TreeIV    float64           `json:"tree_total_iv"` // matrix total under tree-walk cost scale
	VMIV      float64           `json:"vm_total_iv"`   // matrix total under VM cost scale
	IVGainPct float64           `json:"iv_gain_pct"`
}

// execCatalog generates the TPC-H-style tables for the shapes.
func execCatalog(cfg ExecConfig) (sqlmini.MapCatalog, error) {
	tables, err := tpch.Generate(tpch.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return sqlmini.NewMapCatalog(tables), nil
}

// timeTreeWalk measures one shape on the tree-walk interpreter: the
// statement is parsed once (both engines get that), then each iteration
// re-walks the AST — the engine has nothing to reuse across executions.
func timeTreeWalk(ctx context.Context, stmt *sqlmini.SelectStmt, cat sqlmini.Catalog, iters int) (*relation.Table, float64, error) {
	opts := sqlmini.Options{Engine: sqlmini.EngineTreeWalk}
	out, err := sqlmini.ExecuteWith(ctx, stmt, cat, opts)
	if err != nil {
		return nil, 0, err
	}
	start := wall.Now()
	for i := 0; i < iters; i++ {
		if _, err := sqlmini.ExecuteWith(ctx, stmt, cat, opts); err != nil {
			return nil, 0, err
		}
	}
	return out, wall.Since(start).Seconds(), nil
}

// timeVM measures the same shape compiled once and executed many times
// with a warm ExecCache — the micro-batch steady state, where columnar
// images and join build sides persist across arrivals of the same shape.
func timeVM(ctx context.Context, stmt *sqlmini.SelectStmt, cat sqlmini.Catalog, iters int) (*relation.Table, float64, error) {
	prep, err := sqlmini.Prepare(stmt, cat)
	if err != nil {
		return nil, 0, err
	}
	cache := sqlmini.NewExecCache()
	out, err := prep.ExecuteContext(ctx, cat, cache)
	if err != nil {
		return nil, 0, err
	}
	start := wall.Now()
	for i := 0; i < iters; i++ {
		if _, err := prep.ExecuteContext(ctx, cat, cache); err != nil {
			return nil, 0, err
		}
	}
	return out, wall.Since(start).Seconds(), nil
}

// sameResult checks the two engines produced byte-identical answers:
// same column names and types, same rows in the same order.
func sameResult(a, b *relation.Table) error {
	if len(a.Schema.Cols) != len(b.Schema.Cols) {
		return fmt.Errorf("schema width %d vs %d", len(a.Schema.Cols), len(b.Schema.Cols))
	}
	for i := range a.Schema.Cols {
		if a.Schema.Cols[i] != b.Schema.Cols[i] {
			return fmt.Errorf("column %d: %v vs %v", i, a.Schema.Cols[i], b.Schema.Cols[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !relation.Equal(a.Rows[i][j], b.Rows[i][j]) {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}

// RunExec runs the full engine comparison: per-shape throughput with an
// answer-equality check, then the scenario matrix under tree-walk- and
// VM-calibrated cost models for the IV totals. The context bounds every
// timed execution, so a CLI timeout cuts the comparison short cleanly.
func RunExec(ctx context.Context, cfg ExecConfig) (ExecResult, error) {
	res := ExecResult{Seed: cfg.Seed, Scale: cfg.Scale, Iters: cfg.Iters}
	if cfg.Iters <= 0 {
		return res, fmt.Errorf("bench: exec iters %d must be positive", cfg.Iters)
	}
	cat, err := execCatalog(cfg)
	if err != nil {
		return res, err
	}
	for _, sh := range execShapes() {
		stmt, err := sqlmini.Parse(sh.SQL)
		if err != nil {
			return res, fmt.Errorf("bench: exec shape %s: %w", sh.Name, err)
		}
		inputRows := 0
		for _, name := range sh.Tables {
			t, err := cat.Table(name)
			if err != nil {
				return res, err
			}
			inputRows += len(t.Rows)
		}
		treeOut, treeSec, err := timeTreeWalk(ctx, stmt, cat, cfg.Iters)
		if err != nil {
			return res, fmt.Errorf("bench: exec shape %s (tree): %w", sh.Name, err)
		}
		vmOut, vmSec, err := timeVM(ctx, stmt, cat, cfg.Iters)
		if err != nil {
			return res, fmt.Errorf("bench: exec shape %s (vm): %w", sh.Name, err)
		}
		if err := sameResult(treeOut, vmOut); err != nil {
			return res, fmt.Errorf("bench: exec shape %s: engines disagree: %w", sh.Name, err)
		}
		totalRows := float64(inputRows * cfg.Iters)
		sr := ExecShapeResult{
			Name:       sh.Name,
			SQL:        sh.SQL,
			InputRows:  inputRows,
			ResultRows: len(treeOut.Rows),
		}
		if treeSec > 0 {
			sr.TreeRowsPerSec = totalRows / treeSec
		}
		if vmSec > 0 {
			sr.VMRowsPerSec = totalRows / vmSec
		}
		if sr.TreeRowsPerSec > 0 {
			sr.Speedup = sr.VMRowsPerSec / sr.TreeRowsPerSec
		}
		res.Shapes = append(res.Shapes, sr)
	}

	// IV leg: the same scenario matrix under each engine's calibration.
	// The DES prices computation with the cost model, so the VM's only
	// effect on IV is through the recalibrated processing constants —
	// exactly how the planner, MQO and shedding see the faster engine.
	treeSuite, err := RunScenariosWithCost(synth.Presets(), cfg.Quick, cfg.Seed,
		ScenarioCostFor(costmodel.TreeWalkProcessScale))
	if err != nil {
		return res, err
	}
	vmSuite, err := RunScenariosWithCost(synth.Presets(), cfg.Quick, cfg.Seed, nil)
	if err != nil {
		return res, err
	}
	for _, s := range treeSuite.Scenarios {
		res.TreeIV += s.TotalIV
	}
	for _, s := range vmSuite.Scenarios {
		res.VMIV += s.TotalIV
	}
	if res.TreeIV > 0 {
		res.IVGainPct = (res.VMIV - res.TreeIV) / res.TreeIV * 100
	}
	return res, nil
}

// WriteJSON emits the comparison as indented JSON.
func (r ExecResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Tables renders the comparison: one throughput table, one IV table.
func (r ExecResult) Tables() []Table {
	thr := Table{
		Title:   fmt.Sprintf("Execution engines: tree-walk vs compiled VM (scale=%g, iters=%d, seed=%d)", r.Scale, r.Iters, r.Seed),
		Columns: []string{"shape", "input rows", "result rows", "tree rows/s", "vm rows/s", "speedup"},
	}
	for _, s := range r.Shapes {
		thr.Rows = append(thr.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.InputRows),
			fmt.Sprintf("%d", s.ResultRows),
			f1(s.TreeRowsPerSec),
			f1(s.VMRowsPerSec),
			fmt.Sprintf("%.2fx", s.Speedup),
		})
	}
	iv := Table{
		Title:   "Scenario-matrix total IV under each engine's cost calibration",
		Columns: []string{"engine", "process scale", "total IV", "gain"},
		Rows: [][]string{
			{"tree-walk", fmt.Sprintf("%.2f", costmodel.TreeWalkProcessScale), f3(r.TreeIV), ""},
			{"vm", fmt.Sprintf("%.2f", costmodel.VMProcessScale), f3(r.VMIV), fmt.Sprintf("%+.1f%%", r.IVGainPct)},
		},
	}
	return []Table{thr, iv}
}

// shapeSQL returns the SQL of one named shape (test and benchmark hook).
func shapeSQL(name string) (string, bool) {
	for _, sh := range execShapes() {
		if strings.EqualFold(sh.Name, name) {
			return sh.SQL, true
		}
	}
	return "", false
}
