package bench

import (
	"fmt"

	"ivdss/internal/core"
)

// Ratio is one Fq:Fs setting: Factor multiplies the query arrival
// frequency to get the synchronization frequency (so the per-table sync
// mean is QueryMean / Factor).
type Ratio struct {
	Label  string
	Factor float64
}

// PaperRatios are the four Fq:Fs settings of Figure 5.
func PaperRatios() []Ratio {
	return []Ratio{
		{"1:0.1", 0.1},
		{"1:1", 1},
		{"1:10", 10},
		{"1:20", 20},
	}
}

// Lambda is one discount-rate configuration with its figure label.
type Lambda struct {
	Label string
	Rates core.DiscountRates
}

// PaperLambdas are the four λ configurations of Figure 5.
func PaperLambdas() []Lambda {
	return []Lambda{
		{"λsl=λcl=.01", core.DiscountRates{CL: .01, SL: .01}},
		{"λsl=.01,λcl=.05", core.DiscountRates{CL: .05, SL: .01}},
		{"λsl=.05,λcl=.01", core.DiscountRates{CL: .01, SL: .05}},
		{"λsl=λcl=.05", core.DiscountRates{CL: .05, SL: .05}},
	}
}

// Fig5Config parameterizes the synchronization-frequency experiment
// (Figure 5): TPC-H with LineItem split five ways, 5 of the 12 tables
// replicated, a Poisson query stream, and a sweep over Fq:Fs and λ.
type Fig5Config struct {
	Scale          float64 // TPC-H generator scale (weights calibration)
	NQueries       int
	QueryMean      core.Duration // mean interarrival
	Ratios         []Ratio
	Lambdas        []Lambda
	Sites          int
	Replicas       int
	Slots          int
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultFig5Config mirrors the paper's setup.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Scale:          1,
		NQueries:       110, // 5 arrivals per template on average
		QueryMean:      150,
		Ratios:         PaperRatios(),
		Lambdas:        PaperLambdas(),
		Sites:          4,
		Replicas:       5,
		Slots:          1,
		PlannerHorizon: 30,
		Seed:           1,
	}
}

// QuickFig5Config is a scaled-down variant for tests.
func QuickFig5Config() Fig5Config {
	cfg := DefaultFig5Config()
	cfg.NQueries = 30
	cfg.Ratios = []Ratio{{"1:0.1", 0.1}, {"1:20", 20}}
	cfg.Lambdas = PaperLambdas()[:2]
	return cfg
}

// Fig5Cell is one bar of Figure 5.
type Fig5Cell struct {
	Ratio  string
	Lambda string
	Method Method
	MeanIV float64
}

// Fig5Result holds every bar across the four panels.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Get returns the mean information value of one bar.
func (r Fig5Result) Get(ratio, lambda string, m Method) (float64, bool) {
	for _, c := range r.Cells {
		if c.Ratio == ratio && c.Lambda == lambda && c.Method == m {
			return c.MeanIV, true
		}
	}
	return 0, false
}

// RunFig5 executes the experiment.
func RunFig5(cfg Fig5Config) (Fig5Result, error) {
	var res Fig5Result
	world, err := NewTPCHWorld(cfg.Scale, cfg.Seed)
	if err != nil {
		return res, err
	}
	queries, weights, err := world.Stream(cfg.NQueries, cfg.QueryMean, cfg.Seed+2)
	if err != nil {
		return res, err
	}
	cost := world.CostModel(weights)
	horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000

	for _, ratio := range cfg.Ratios {
		// All three methods route over the same hybrid deployment (5 of 12
		// tables replicated); they differ only in plan choice, so IVQP's
		// plan space contains every baseline plan.
		dep, err := BuildDeployment(DeployConfig{
			Tables:          world.Tables,
			Sites:           cfg.Sites,
			ReplicaCount:    cfg.Replicas,
			SyncMean:        cfg.QueryMean / ratio.Factor,
			ScheduleHorizon: horizon,
			InitialSync:     true,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return res, fmt.Errorf("bench: fig5 %s: %w", ratio.Label, err)
		}
		for _, lambda := range cfg.Lambdas {
			for _, m := range Methods() {
				strategy, err := dep.Strategy(m, cost, lambda.Rates, cfg.PlannerHorizon)
				if err != nil {
					return res, err
				}
				outcomes, err := RunStream(dep, strategy, queries, lambda.Rates, cfg.Slots, core.Aging{})
				if err != nil {
					return res, fmt.Errorf("bench: fig5 %s %s %s: %w", ratio.Label, lambda.Label, m, err)
				}
				res.Cells = append(res.Cells, Fig5Cell{
					Ratio:  ratio.Label,
					Lambda: lambda.Label,
					Method: m,
					MeanIV: MeanValue(outcomes),
				})
			}
		}
	}
	return res, nil
}

// Tables renders one table per Fq:Fs panel, as in the figure.
func (r Fig5Result) Tables() []Table {
	panels := map[string]*Table{}
	var order []string
	for _, c := range r.Cells {
		t, ok := panels[c.Ratio]
		if !ok {
			t = &Table{
				Title:   fmt.Sprintf("Figure 5: Information Value (Fq:Fs = %s)", c.Ratio),
				Columns: []string{"lambda", "IVQP", "Federation", "Data Warehouse"},
			}
			panels[c.Ratio] = t
			order = append(order, c.Ratio)
		}
		_ = t
	}
	for _, ratio := range order {
		t := panels[ratio]
		var lambdas []string
		seen := map[string]bool{}
		for _, c := range r.Cells {
			if c.Ratio == ratio && !seen[c.Lambda] {
				seen[c.Lambda] = true
				lambdas = append(lambdas, c.Lambda)
			}
		}
		for _, l := range lambdas {
			row := []string{l}
			for _, m := range Methods() {
				v, _ := r.Get(ratio, l, m)
				row = append(row, f3(v))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	out := make([]Table, 0, len(order))
	for _, ratio := range order {
		out = append(out, *panels[ratio])
	}
	return out
}
