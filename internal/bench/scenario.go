package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
	"ivdss/internal/synth"
)

// ScenarioConfig runs one named synthetic scenario through the full IVQP
// stack on the DES. The scenario supplies the world (tables, arrivals,
// outages); this config supplies the system-under-test knobs, which are
// held fixed across the matrix so results are comparable scenario to
// scenario.
type ScenarioConfig struct {
	Scenario       synth.Scenario
	Rates          core.DiscountRates
	Epsilon        float64
	Slots          int
	Aging          core.Aging
	PlannerHorizon core.Duration
	// MaxQueue bounds the engine's admission queue (0 = unbounded, the
	// historical matrix behavior); arrivals refused at a full queue count
	// as shed. The cluster bench sets it so per-shard resources are fixed.
	MaxQueue int
	// Cost overrides the scenario cost model. Nil uses the standard
	// matrix model calibrated to the VM execution engine; pass a
	// tree-walk-scaled model to reproduce pre-VM totals (the -fig exec
	// IV leg does exactly that comparison).
	Cost core.CostModel
}

// DefaultScenarioConfig wraps a scenario in the matrix's standard
// system-under-test knobs (the same operating point as the load bench).
func DefaultScenarioConfig(sc synth.Scenario) ScenarioConfig {
	return ScenarioConfig{
		Scenario:       sc,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		Epsilon:        .25,
		Slots:          2,
		Aging:          core.Aging{Coefficient: .05, Exponent: 1.5},
		PlannerHorizon: 30,
	}
}

// ScenarioResult is one scenario's totals — the per-scenario entry of the
// BENCH_<date>.json suite artifact the regression gate diffs.
type ScenarioResult struct {
	Name          string  `json:"name"`
	Seed          int64   `json:"seed"`
	Queries       int     `json:"queries"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	Unplannable   int     `json:"unplannable"`
	TotalIV       float64 `json:"total_iv"`
	MeanIV        float64 `json:"mean_iv"`
	MeanCL        float64 `json:"mean_cl_minutes"`
	P95CL         float64 `json:"p95_cl_minutes"`
	MeanSL        float64 `json:"mean_sl_minutes"`
	P95SL         float64 `json:"p95_sl_minutes"`
	OutageCount   int     `json:"outage_count,omitempty"`
	OutageMinutes float64 `json:"outage_minutes,omitempty"`
}

// ScenarioSuiteResult is the whole matrix in one artifact.
type ScenarioSuiteResult struct {
	Date      string           `json:"date,omitempty"` // stamped by the caller
	Seed      int64            `json:"seed"`
	Quick     bool             `json:"quick,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// OutageView overlays a workload's outage schedule on a catalog: any
// table whose base site is inside an active outage window at snapshot
// time is reported with BaseDown set, exactly as the live server marks
// sites behind open breakers. Because the overlay is a pure function of
// the snapshot instant, the same schedule drives the DES and any
// wall-clock replay identically.
type OutageView struct {
	Inner    scheduler.CatalogView
	Workload *synth.Workload
}

var _ scheduler.CatalogView = OutageView{}

// Snapshot implements scheduler.CatalogView.
func (v OutageView) Snapshot(tables []core.TableID, now core.Time, horizon core.Duration) ([]core.TableState, error) {
	snap, err := v.Inner.Snapshot(tables, now, horizon)
	if err != nil {
		return nil, err
	}
	for i := range snap {
		if v.Workload.SiteDown(snap[i].Site, now) {
			snap[i].BaseDown = true
		}
	}
	return snap, nil
}

// scenarioCost is the synthetic-table cost model shared by every
// scenario: the Figure 4 shape plus fan-out coordination and flat result
// transmission, so plan choice has all three axes to trade. The base
// constants describe the tree-walk engine; the matrix default applies
// the VM's measured process scale on top (transmission unscaled).
func scenarioCost() *costmodel.CountModel {
	return &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 3, PerExtraSite: 1, TransmitFlat: 2}
}

// ScenarioCostFor returns the matrix cost model recalibrated for an
// execution engine: the tree-walk anchor model at scale 1, or the VM's
// processing constants shrunk by its measured speedup.
func ScenarioCostFor(scale float64) core.CostModel {
	return scenarioCost().Scaled(scale)
}

// ScenarioWorld materializes a scenario into everything a driver needs to
// replay it: the generated workload, the deployment (placement, replicas,
// sync schedules, catalog), and the scheduling strategy with the outage
// overlay applied. Both the DES runner below and the live tools build on
// it, so the two modes execute one world.
type ScenarioWorld struct {
	Workload   *synth.Workload
	Deployment *Deployment
	Strategy   *scheduler.IVQPStrategy
	Cost       core.CostModel
}

// BuildScenarioWorld generates and assembles the scenario world.
func BuildScenarioWorld(cfg ScenarioConfig) (*ScenarioWorld, error) {
	sc := cfg.Scenario
	wl, err := sc.Generate()
	if err != nil {
		return nil, err
	}
	last := wl.Queries[len(wl.Queries)-1].SubmitAt
	dep, err := BuildDeployment(DeployConfig{
		Tables:          wl.Tables,
		Sites:           sc.Sites,
		ReplicaCount:    sc.Replicas,
		SyncMean:        sc.SyncMean,
		ScheduleHorizon: last*2 + 1000,
		InitialSync:     true,
		Seed:            stats.SubSeed(sc.Seed, "deploy"),
	})
	if err != nil {
		return nil, err
	}
	cost := cfg.Cost
	if cost == nil {
		cost = ScenarioCostFor(costmodel.VMProcessScale)
	}
	planner, err := core.NewPlanner(cost, core.PlannerConfig{Rates: cfg.Rates, Horizon: cfg.PlannerHorizon})
	if err != nil {
		return nil, err
	}
	var view scheduler.CatalogView = dep.Catalog
	if len(wl.Outages) > 0 {
		view = OutageView{Inner: dep.Catalog, Workload: wl}
	}
	return &ScenarioWorld{
		Workload:   wl,
		Deployment: dep,
		Strategy:   &scheduler.IVQPStrategy{Planner: planner, Catalog: view, Horizon: cfg.PlannerHorizon},
		Cost:       cost,
	}, nil
}

// RunScenario replays the scenario through the shared scheduling engine
// on virtual time. Outage windows make some queries unplannable (every
// candidate needs a downed base); those are dropped with Outcome.Err —
// the live contract — and counted, not fatal.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	var res ScenarioResult
	world, err := BuildScenarioWorld(cfg)
	if err != nil {
		return res, err
	}
	s := sim.New()
	clock := scheduler.SimClock{Sim: s}
	eng, err := scheduler.NewEngine(scheduler.EngineConfig{
		Clock:           clock,
		Executor:        scheduler.PlanExecutor{Clock: clock, Rates: cfg.Rates},
		Strategy:        world.Strategy,
		Rates:           cfg.Rates,
		Slots:           cfg.Slots,
		Aging:           cfg.Aging,
		MaxQueue:        cfg.MaxQueue,
		HaltOnPlanError: false,
		RecordOutcomes:  true,
	})
	if err != nil {
		return res, err
	}
	eng.SetEpsilon(cfg.Epsilon)
	refused := 0
	for _, q := range world.Workload.Queries {
		q := q
		s.ScheduleAt(q.SubmitAt, func() {
			if !eng.Submit(q, nil) {
				refused++
			}
		})
	}
	s.Run()
	if err := eng.Err(); err != nil {
		return res, err
	}
	if p := eng.Pending(); p != 0 {
		return res, fmt.Errorf("bench: scenario %s left %d queries pending", cfg.Scenario.Name, p)
	}

	sc := cfg.Scenario
	res.Name = sc.Name
	res.Seed = sc.Seed
	res.Queries = len(world.Workload.Queries)
	res.Shed = eng.Shed() + refused
	res.OutageCount = len(world.Workload.Outages)
	res.OutageMinutes = world.Workload.OutageMinutes()
	var cls, sls, ivs []float64
	for _, o := range eng.Outcomes() {
		switch {
		case o.Err != nil:
			res.Unplannable++
		case o.Expired:
		default:
			cls = append(cls, o.Latencies.CL)
			sls = append(sls, o.Latencies.SL)
			ivs = append(ivs, o.Value)
			res.TotalIV += o.Value
		}
	}
	res.Completed = len(ivs)
	if len(ivs) > 0 {
		res.MeanIV = stats.Mean(ivs)
		res.MeanCL = stats.Mean(cls)
		res.P95CL = stats.Percentile(cls, 95)
		res.MeanSL = stats.Mean(sls)
		res.P95SL = stats.Percentile(sls, 95)
	}
	return res, nil
}

// RunScenarios runs the given scenarios (quick variants if asked) with
// the standard knobs and collects the suite artifact. Each scenario's
// master seed is re-derived from the base seed and its name, so one -seed
// knob re-seeds the whole matrix without collapsing the presets onto one
// stream.
func RunScenarios(scenarios []synth.Scenario, quick bool, seed int64) (ScenarioSuiteResult, error) {
	return RunScenariosWithCost(scenarios, quick, seed, nil)
}

// RunScenariosWithCost is RunScenarios under an explicit cost model (nil
// keeps the matrix default). The exec benchmark uses it to run the same
// matrix under tree-walk- and VM-calibrated computation latencies and
// compare total information value.
func RunScenariosWithCost(scenarios []synth.Scenario, quick bool, seed int64, cost core.CostModel) (ScenarioSuiteResult, error) {
	suite := ScenarioSuiteResult{Seed: seed, Quick: quick}
	for _, sc := range scenarios {
		sc.Seed = synth.SubSeedFor(seed, sc.Name)
		if quick {
			sc = sc.Quick()
		}
		cfg := DefaultScenarioConfig(sc)
		cfg.Cost = cost
		res, err := RunScenario(cfg)
		if err != nil {
			return suite, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		suite.Scenarios = append(suite.Scenarios, res)
	}
	return suite, nil
}

// WriteJSON emits the suite as indented JSON (one key per line, so text
// tools can audit or tamper with individual fields in CI negative tests).
func (r ScenarioSuiteResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScenarioSuite parses a suite artifact.
func ReadScenarioSuite(r io.Reader) (ScenarioSuiteResult, error) {
	var suite ScenarioSuiteResult
	if err := json.NewDecoder(r).Decode(&suite); err != nil {
		return suite, fmt.Errorf("bench: read scenario suite: %w", err)
	}
	return suite, nil
}

// Tables renders the suite as one summary table.
func (r ScenarioSuiteResult) Tables() []Table {
	t := Table{
		Title:   fmt.Sprintf("Scenario matrix (seed=%d, quick=%v)", r.Seed, r.Quick),
		Columns: []string{"scenario", "queries", "completed", "shed", "unplannable", "total IV", "mean IV", "p95 CL", "outage min"},
	}
	for _, s := range r.Scenarios {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%d", s.Completed),
			fmt.Sprintf("%d", s.Shed),
			fmt.Sprintf("%d", s.Unplannable),
			f3(s.TotalIV),
			f3(s.MeanIV),
			f1(s.P95CL),
			f1(s.OutageMinutes),
		})
	}
	return []Table{t}
}
