package bench

import (
	"context"
	"testing"

	"ivdss/internal/sqlmini"
)

// benchCatalog builds one shared catalog for the engine benchmarks.
func benchCatalog(tb testing.TB) sqlmini.MapCatalog {
	tb.Helper()
	cat, err := execCatalog(ExecConfig{Scale: 4, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return cat
}

// benchShape resolves a shape's parsed statement by name.
func benchShape(tb testing.TB, name string) *sqlmini.SelectStmt {
	tb.Helper()
	sql, ok := shapeSQL(name)
	if !ok {
		tb.Fatalf("unknown exec shape %q", name)
	}
	stmt, err := sqlmini.Parse(sql)
	if err != nil {
		tb.Fatal(err)
	}
	return stmt
}

func BenchmarkExecTreeWalk(b *testing.B) {
	cat := benchCatalog(b)
	ctx := context.Background()
	opts := sqlmini.Options{Engine: sqlmini.EngineTreeWalk}
	for _, name := range []string{"scan", "filter", "join", "group"} {
		stmt := benchShape(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sqlmini.ExecuteWith(ctx, stmt, cat, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExecVM(b *testing.B) {
	cat := benchCatalog(b)
	ctx := context.Background()
	for _, name := range []string{"scan", "filter", "join", "group"} {
		stmt := benchShape(b, name)
		prep, err := sqlmini.Prepare(stmt, cat)
		if err != nil {
			b.Fatal(err)
		}
		cache := sqlmini.NewExecCache()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prep.ExecuteContext(ctx, cat, cache); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestExecShapesAgree runs every benchmark shape on both engines and
// demands identical answers — the same oracle RunExec enforces, kept as
// a plain test so `go test` catches a divergence without running the
// timed comparison.
func TestExecShapesAgree(t *testing.T) {
	cat := benchCatalog(t)
	ctx := context.Background()
	for _, sh := range execShapes() {
		stmt := benchShape(t, sh.Name)
		tree, err := sqlmini.ExecuteWith(ctx, stmt, cat, sqlmini.Options{Engine: sqlmini.EngineTreeWalk})
		if err != nil {
			t.Fatalf("%s: tree: %v", sh.Name, err)
		}
		vm, err := sqlmini.ExecuteWith(ctx, stmt, cat, sqlmini.Options{Engine: sqlmini.EngineVM})
		if err != nil {
			t.Fatalf("%s: vm: %v", sh.Name, err)
		}
		if err := sameResult(tree, vm); err != nil {
			t.Errorf("%s: engines disagree: %v", sh.Name, err)
		}
	}
}

// TestRunExecQuick smoke-tests the full comparison at CI size: every
// shape must produce rows-per-second figures for both engines, and the
// VM cost calibration must not lose scenario-matrix IV.
func TestRunExecQuick(t *testing.T) {
	cfg := QuickExecConfig()
	cfg.Iters = 2
	res, err := RunExec(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapes) != 4 {
		t.Fatalf("got %d shapes, want 4", len(res.Shapes))
	}
	for _, s := range res.Shapes {
		if s.TreeRowsPerSec <= 0 || s.VMRowsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: tree %v vm %v", s.Name, s.TreeRowsPerSec, s.VMRowsPerSec)
		}
		if s.InputRows <= 0 {
			t.Errorf("%s: no input rows", s.Name)
		}
	}
	if res.TreeIV <= 0 || res.VMIV <= 0 {
		t.Fatalf("IV totals not positive: tree %v vm %v", res.TreeIV, res.VMIV)
	}
	if res.VMIV < res.TreeIV {
		t.Errorf("VM calibration lost IV: tree %v vm %v", res.TreeIV, res.VMIV)
	}
	if got := len(res.Tables()); got != 2 {
		t.Errorf("got %d tables, want 2", got)
	}
}
