package bench

import (
	"fmt"

	"ivdss/internal/advisor"
	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
	"ivdss/internal/stats"
	"ivdss/internal/synth"
)

// AdvisorConfig parameterizes the placement-advisor experiment: the
// advisor's greedy replication plan versus randomly chosen replica sets of
// the same size, judged by an *independent* dispatcher simulation (not the
// advisor's own scoring model).
type AdvisorConfig struct {
	NTables        int
	Budget         int
	NQueries       int
	MaxTablesPer   int
	QueryMean      core.Duration
	SyncMean       core.Duration
	Rates          core.DiscountRates
	Sites          int
	RandomTrials   int
	PlannerHorizon core.Duration
	// PopularitySkew makes some tables hot (see synth.QueryConfig).
	PopularitySkew float64
	Seed           int64
}

// DefaultAdvisorConfig returns the standard setup.
func DefaultAdvisorConfig() AdvisorConfig {
	return AdvisorConfig{
		NTables:        40,
		Budget:         8,
		NQueries:       80,
		MaxTablesPer:   6,
		QueryMean:      30,
		SyncMean:       15,
		Rates:          core.DiscountRates{CL: .03, SL: .03},
		Sites:          4,
		RandomTrials:   10,
		PlannerHorizon: 30,
		PopularitySkew: 1.4,
		Seed:           1,
	}
}

// AdvisorRow is one replication plan's simulated outcome.
type AdvisorRow struct {
	Plan     string
	MeanIV   float64
	Replicas []core.TableID
}

// AdvisorResult compares the plans.
type AdvisorResult struct {
	Rows []AdvisorRow
	// RandomBest and RandomMean summarize the random trials.
	RandomBest, RandomMean float64
}

// RunAdvisor executes the experiment: generate a workload, let the advisor
// pick `Budget` replicas, then simulate the full query stream under (a) no
// replicas, (b) the advisor's plan, and (c) random same-size plans.
func RunAdvisor(cfg AdvisorConfig) (AdvisorResult, error) {
	var res AdvisorResult
	tables := synth.Tables(cfg.NTables)
	queries, err := synth.Queries(synth.QueryConfig{
		N:                 cfg.NQueries,
		Tables:            tables,
		MaxTablesPerQuery: cfg.MaxTablesPer,
		MeanInterarrival:  cfg.QueryMean,
		PopularitySkew:    cfg.PopularitySkew,
		Seed:              cfg.Seed + 3,
	})
	if err != nil {
		return res, err
	}
	placement, err := federation.UniformPlacement(tables, cfg.Sites, cfg.Seed)
	if err != nil {
		return res, err
	}
	cost := &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2, TransmitFlat: 1}

	adv, err := advisor.New(advisor.Config{
		Cost:     cost,
		Rates:    cfg.Rates,
		SyncMean: cfg.SyncMean,
		Horizon:  cfg.PlannerHorizon,
	})
	if err != nil {
		return res, err
	}
	rec, err := adv.RecommendReplicas(queries, placement, cfg.Budget)
	if err != nil {
		return res, err
	}

	// simulate runs the dispatcher over a deployment with the given
	// replica set and reports the stream's mean information value.
	horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000
	simulate := func(replicas []core.TableID) (float64, error) {
		mgrDep, err := buildDeploymentWithReplicas(tables, placement, replicas, cfg.SyncMean, horizon, cfg.Seed)
		if err != nil {
			return 0, err
		}
		strategy, err := mgrDep.Strategy(MethodIVQP, cost, cfg.Rates, cfg.PlannerHorizon)
		if err != nil {
			return 0, err
		}
		outcomes, err := RunStream(mgrDep, strategy, queries, cfg.Rates, 1, core.Aging{})
		if err != nil {
			return 0, err
		}
		return MeanValue(outcomes), nil
	}

	noneIV, err := simulate(nil)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, AdvisorRow{Plan: "no replicas", MeanIV: noneIV})

	advisorIV, err := simulate(rec.Replicas)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, AdvisorRow{Plan: "advisor", MeanIV: advisorIV, Replicas: rec.Replicas})

	src := stats.NewSource(cfg.Seed + 9)
	var sum float64
	for trial := 0; trial < cfg.RandomTrials; trial++ {
		picked := src.PickN(len(tables), min(cfg.Budget, len(tables)))
		replicas := make([]core.TableID, len(picked))
		for i, idx := range picked {
			replicas[i] = tables[idx]
		}
		iv, err := simulate(replicas)
		if err != nil {
			return res, err
		}
		sum += iv
		if iv > res.RandomBest {
			res.RandomBest = iv
		}
	}
	if cfg.RandomTrials > 0 {
		res.RandomMean = sum / float64(cfg.RandomTrials)
	}
	res.Rows = append(res.Rows, AdvisorRow{Plan: "random (mean)", MeanIV: res.RandomMean})
	res.Rows = append(res.Rows, AdvisorRow{Plan: "random (best)", MeanIV: res.RandomBest})
	return res, nil
}

// buildDeploymentWithReplicas materializes a deployment with an explicit
// replica set over an existing placement.
func buildDeploymentWithReplicas(tables []core.TableID, placement *federation.Placement, replicas []core.TableID, syncMean core.Duration, horizon core.Time, seed int64) (*Deployment, error) {
	mgr, err := newSyncManager(replicas, syncMean, horizon, seed, true)
	if err != nil {
		return nil, err
	}
	catalog, err := federation.NewCatalog(placement, mgr)
	if err != nil {
		return nil, err
	}
	return &Deployment{Catalog: catalog, Tables: tables, Replicas: replicas}, nil
}

// Tables renders the advisor experiment.
func (r AdvisorResult) Tables() []Table {
	t := Table{
		Title:   "Placement advisor (paper's future work): simulated mean IV by replication plan",
		Columns: []string{"plan", "mean IV", "replicas"},
	}
	for _, row := range r.Rows {
		detail := ""
		if len(row.Replicas) > 0 {
			detail = fmt.Sprintf("%v", row.Replicas)
		}
		t.Rows = append(t.Rows, []string{row.Plan, f3(row.MeanIV), detail})
	}
	return []Table{t}
}
