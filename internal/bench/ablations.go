package bench

import (
	"fmt"
	"math"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/scheduler"
	"ivdss/internal/stats"
	"ivdss/internal/synth"
)

// AblationSearchConfig exercises the plan-search design choice: the
// paper's bounded scatter-and-gather prefix search against the
// full-subset timeline search and the unbounded exhaustive reference.
type AblationSearchConfig struct {
	Scenarios      int
	MaxTables      int
	SyncsPerTable  int
	Rates          core.DiscountRates
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultAblationSearchConfig returns the standard setup.
func DefaultAblationSearchConfig() AblationSearchConfig {
	return AblationSearchConfig{
		Scenarios:      300,
		MaxTables:      8,
		SyncsPerTable:  4,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		PlannerHorizon: 0,
		Seed:           17,
	}
}

// AblationSearchRow summarizes one search mode over all scenarios.
type AblationSearchRow struct {
	Mode           core.SearchMode
	MeanPlans      float64 // plans evaluated per scenario
	MeanValueRatio float64 // achieved IV / exhaustive-optimal IV
}

// AblationSearchResult holds one row per mode.
type AblationSearchResult struct {
	Rows []AblationSearchRow
}

// RunAblationSearch generates random planning scenarios and compares the
// three search modes on work done and optimality.
func RunAblationSearch(cfg AblationSearchConfig) (AblationSearchResult, error) {
	var res AblationSearchResult
	if cfg.Scenarios <= 0 || cfg.MaxTables <= 0 {
		return res, fmt.Errorf("bench: ablation needs positive scenario and table counts")
	}
	src := stats.NewSource(cfg.Seed)
	cost := &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2, TransmitFlat: 1}

	modes := []core.SearchMode{core.ScatterGather, core.ScatterGatherFull, core.Exhaustive}
	plans := make(map[core.SearchMode]float64, len(modes))
	ratios := make(map[core.SearchMode]float64, len(modes))

	for trial := 0; trial < cfg.Scenarios; trial++ {
		n := 1 + src.Intn(cfg.MaxTables)
		now := 10 + src.Float64()*50
		states := make([]core.TableState, n)
		tables := make([]core.TableID, n)
		for i := range states {
			id := core.TableID(fmt.Sprintf("T%02d", i))
			tables[i] = id
			ts := core.TableState{ID: id, Site: core.SiteID(1 + src.Intn(4))}
			if src.Float64() < .7 {
				last := now - src.Float64()*30
				rs := &core.ReplicaState{LastSync: last}
				next := last
				for k := 0; k < cfg.SyncsPerTable; k++ {
					next += 1 + src.Expo(8)
					if next > last {
						rs.NextSyncs = append(rs.NextSyncs, next)
					}
				}
				ts.Replica = rs
			}
			states[i] = ts
		}
		q := core.Query{ID: "q", Tables: tables, BusinessValue: 1, SubmitAt: now}

		values := make(map[core.SearchMode]float64, len(modes))
		for _, mode := range modes {
			planner, err := core.NewPlanner(cost, core.PlannerConfig{
				Rates: cfg.Rates, Mode: mode, Horizon: cfg.PlannerHorizon,
			})
			if err != nil {
				return res, err
			}
			best, stats, err := planner.Best(q, states, now)
			if err != nil {
				return res, err
			}
			plans[mode] += float64(stats.PlansEvaluated)
			values[mode] = best.Value(cfg.Rates)
		}
		opt := values[core.Exhaustive]
		for _, mode := range modes {
			if opt > 0 {
				ratios[mode] += values[mode] / opt
			} else {
				ratios[mode]++
			}
		}
	}
	for _, mode := range modes {
		res.Rows = append(res.Rows, AblationSearchRow{
			Mode:           mode,
			MeanPlans:      plans[mode] / float64(cfg.Scenarios),
			MeanValueRatio: ratios[mode] / float64(cfg.Scenarios),
		})
	}
	return res, nil
}

// Tables renders the search ablation.
func (r AblationSearchResult) Tables() []Table {
	t := Table{
		Title:   "Ablation: plan search modes (value ratio vs exhaustive optimum)",
		Columns: []string{"mode", "mean plans evaluated", "mean value ratio"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Mode.String(), f1(row.MeanPlans), fmt.Sprintf("%.5f", row.MeanValueRatio)})
	}
	return []Table{t}
}

// AblationMQOConfig compares workload-ordering strategies: FIFO, the GA,
// random restarts with the same evaluation budget, and (for small
// workloads) brute force.
type AblationMQOConfig struct {
	NTables        int
	Replicas       int
	WorkloadSize   int
	MaxTablesPer   int
	SyncMean       core.Duration
	Rates          core.DiscountRates
	GA             scheduler.GAConfig
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultAblationMQOConfig uses a 7-query burst so brute force (5040
// orders) stays feasible.
func DefaultAblationMQOConfig() AblationMQOConfig {
	return AblationMQOConfig{
		NTables:        100,
		Replicas:       50,
		WorkloadSize:   7,
		MaxTablesPer:   10,
		SyncMean:       10,
		Rates:          core.DiscountRates{CL: .15, SL: .15},
		GA:             scheduler.GAConfig{Seed: 11},
		PlannerHorizon: 30,
		Seed:           3,
	}
}

// AblationMQORow is one strategy's achieved workload value.
type AblationMQORow struct {
	Strategy    string
	TotalValue  float64
	Evaluations int
}

// AblationMQOResult holds all strategies.
type AblationMQOResult struct {
	Rows []AblationMQORow
}

// RunAblationMQO executes the scheduling ablation.
func RunAblationMQO(cfg AblationMQOConfig) (AblationMQOResult, error) {
	var res AblationMQOResult
	if cfg.WorkloadSize < 2 || cfg.WorkloadSize > 8 {
		return res, fmt.Errorf("bench: workload size %d outside [2, 8] (brute force)", cfg.WorkloadSize)
	}
	dep, ev, err := fig9World(Fig9Config{
		NTables:        cfg.NTables,
		Replicas:       cfg.Replicas,
		SyncMean:       cfg.SyncMean,
		Rates:          cfg.Rates,
		PlannerHorizon: cfg.PlannerHorizon,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	_ = dep
	queries, err := synth.Queries(synth.QueryConfig{
		N:                 cfg.WorkloadSize,
		Tables:            synth.Tables(cfg.NTables),
		MaxTablesPerQuery: cfg.MaxTablesPer,
		MeanInterarrival:  0.5,
		Seed:              cfg.Seed + 1,
	})
	if err != nil {
		return res, err
	}

	fitness := func(order []int) (float64, error) {
		r, err := ev.RunSequence(queries, order, 0)
		if err != nil {
			return 0, err
		}
		return r.TotalValue, nil
	}

	// FIFO.
	fifo, err := scheduler.ScheduleFIFO(queries, ev)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, AblationMQORow{Strategy: "FIFO", TotalValue: fifo.TotalValue, Evaluations: 1})

	// GA.
	_, gaVal, gaStats, err := scheduler.OptimizeOrder(len(queries), fitness, cfg.GA)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, AblationMQORow{Strategy: "GA", TotalValue: gaVal, Evaluations: gaStats.Evaluations})

	// Random restarts with the GA's evaluation budget.
	src := stats.NewSource(cfg.Seed + 2)
	budget := gaStats.Evaluations
	if budget < 1 {
		budget = 1
	}
	bestRand := math.Inf(-1)
	for i := 0; i < budget; i++ {
		v, err := fitness(src.Perm(len(queries)))
		if err != nil {
			return res, err
		}
		if v > bestRand {
			bestRand = v
		}
	}
	res.Rows = append(res.Rows, AblationMQORow{Strategy: "random restarts", TotalValue: bestRand, Evaluations: budget})

	// Brute force.
	bestBrute := math.Inf(-1)
	perm := make([]int, len(queries))
	for i := range perm {
		perm[i] = i
	}
	count := 0
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(perm) {
			v, err := fitness(perm)
			if err != nil {
				return err
			}
			count++
			if v > bestBrute {
				bestBrute = v
			}
			return nil
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, AblationMQORow{Strategy: "brute force", TotalValue: bestBrute, Evaluations: count})
	return res, nil
}

// Tables renders the MQO ablation.
func (r AblationMQOResult) Tables() []Table {
	t := Table{
		Title:   "Ablation: workload ordering strategies (one burst workload)",
		Columns: []string{"strategy", "total IV", "evaluations"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Strategy, f3(row.TotalValue), fmt.Sprintf("%d", row.Evaluations)})
	}
	return []Table{t}
}

// AblationAgingConfig stresses the dispatcher with a saturating stream and
// compares aging on vs off (Section 3.3).
type AblationAgingConfig struct {
	NTables        int
	Replicas       int
	NQueries       int
	MaxTablesPer   int
	QueryMean      core.Duration // deliberately below service time: overload
	SyncMean       core.Duration
	Rates          core.DiscountRates
	Aging          core.Aging
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultAblationAgingConfig returns the standard setup: a transient
// overload (arrivals slightly faster than service for a while) where pure
// value-maximizing dispatch starves the cheap queries while aging bounds
// their wait at a small cost in total value.
func DefaultAblationAgingConfig() AblationAgingConfig {
	return AblationAgingConfig{
		NTables:        20,
		Replicas:       10,
		NQueries:       60,
		MaxTablesPer:   4,
		QueryMean:      4,
		SyncMean:       10,
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		Aging:          core.Aging{Coefficient: .002, Exponent: 1.5},
		PlannerHorizon: 30,
		Seed:           5,
	}
}

// AblationAgingRow is one policy's outcome.
type AblationAgingRow struct {
	Policy   string
	MeanIV   float64
	MeanWait core.Duration
	MaxWait  core.Duration
	P95Wait  core.Duration
}

// AblationAgingResult compares aging on and off.
type AblationAgingResult struct {
	Rows []AblationAgingRow
}

// RunAblationAging executes the aging ablation.
func RunAblationAging(cfg AblationAgingConfig) (AblationAgingResult, error) {
	var res AblationAgingResult
	tables := synth.Tables(cfg.NTables)
	dep, err := BuildDeployment(DeployConfig{
		Tables:          tables,
		Sites:           4,
		ReplicaCount:    cfg.Replicas,
		SyncMean:        cfg.SyncMean,
		ScheduleHorizon: 1e5,
		InitialSync:     true,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	queries, err := synth.Queries(synth.QueryConfig{
		N:                 cfg.NQueries,
		Tables:            tables,
		MaxTablesPerQuery: cfg.MaxTablesPer,
		MeanInterarrival:  cfg.QueryMean,
		Seed:              cfg.Seed + 1,
	})
	if err != nil {
		return res, err
	}
	// Mixed business values: starvation hits the cheap queries.
	src := stats.NewSource(cfg.Seed + 2)
	for i := range queries {
		if src.Float64() < .3 {
			queries[i].BusinessValue = .25
		}
	}
	cost := &costmodel.CountModel{LocalProcess: 1, PerBaseTable: 1.5, TransmitFlat: .5}

	for _, policy := range []struct {
		name  string
		aging core.Aging
	}{{"no aging", core.Aging{}}, {"aging", cfg.Aging}} {
		strategy, err := dep.Strategy(MethodIVQP, cost, cfg.Rates, cfg.PlannerHorizon)
		if err != nil {
			return res, err
		}
		outcomes, err := RunStream(dep, strategy, queries, cfg.Rates, 1, policy.aging)
		if err != nil {
			return res, err
		}
		waits := make([]float64, len(outcomes))
		var maxWait core.Duration
		for i, o := range outcomes {
			waits[i] = o.Wait
			if o.Wait > maxWait {
				maxWait = o.Wait
			}
		}
		res.Rows = append(res.Rows, AblationAgingRow{
			Policy:   policy.name,
			MeanIV:   MeanValue(outcomes),
			MeanWait: stats.Mean(waits),
			MaxWait:  maxWait,
			P95Wait:  stats.Percentile(waits, 95),
		})
	}
	return res, nil
}

// Tables renders the aging ablation.
func (r AblationAgingResult) Tables() []Table {
	t := Table{
		Title:   "Ablation: anti-starvation aging under overload",
		Columns: []string{"policy", "mean IV", "mean wait", "p95 wait", "max wait"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Policy, f3(row.MeanIV), f1(row.MeanWait), f1(row.P95Wait), f1(row.MaxWait)})
	}
	return []Table{t}
}
