package bench

import (
	"fmt"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/stats"
	"ivdss/internal/tpch"
)

// TPCHWorld is the Section 4.2 experiment universe: the TPC-H schema with
// LineItem split five ways (12 tables), per-template table sets expanded
// over the partitions, and calibrated per-template cost weights.
type TPCHWorld struct {
	Tables      []core.TableID
	QueryTables map[string][]core.TableID
	Weights     map[string]float64
	Partitions  int
}

// NewTPCHWorld generates the data set (for weight calibration) and derives
// the partitioned planning universe.
func NewTPCHWorld(scale float64, seed int64) (*TPCHWorld, error) {
	catalog, err := tpch.Generate(tpch.Config{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	weights, err := tpch.Weights(catalog)
	if err != nil {
		return nil, err
	}
	const partitions = 5
	w := &TPCHWorld{
		QueryTables: make(map[string][]core.TableID, 22),
		Weights:     weights,
		Partitions:  partitions,
	}
	for _, name := range tpch.PartitionedTableNames(partitions) {
		w.Tables = append(w.Tables, core.TableID(name))
	}
	for _, q := range tpch.Queries() {
		tables, err := q.Tables()
		if err != nil {
			return nil, err
		}
		expanded := tpch.ExpandPartitions(tables, partitions)
		ids := make([]core.TableID, len(expanded))
		for i, t := range expanded {
			ids[i] = core.TableID(t)
		}
		w.QueryTables[q.ID] = ids
	}
	return w, nil
}

// TemplateIDs returns the 22 template IDs in benchmark order.
func (w *TPCHWorld) TemplateIDs() []string {
	ids := make([]string, 0, len(w.QueryTables))
	for id := range w.QueryTables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// QueryFor instantiates one template as a planner query.
func (w *TPCHWorld) QueryFor(template string, instance int, at core.Time) (core.Query, error) {
	tables, ok := w.QueryTables[template]
	if !ok {
		return core.Query{}, fmt.Errorf("bench: unknown TPC-H template %s", template)
	}
	return core.Query{
		ID:            fmt.Sprintf("%s#%d", template, instance),
		Tables:        tables,
		BusinessValue: 1,
		SubmitAt:      at,
	}, nil
}

// Stream samples n arrivals from the 22 templates with exponential
// interarrival gaps, returning the queries plus a weight map keyed by the
// instantiated query IDs (for the cost model).
func (w *TPCHWorld) Stream(n int, meanInterarrival core.Duration, seed int64) ([]core.Query, map[string]float64, error) {
	if n <= 0 || meanInterarrival <= 0 {
		return nil, nil, fmt.Errorf("bench: stream needs positive n and interarrival, got %d and %v", n, meanInterarrival)
	}
	src := stats.NewSource(seed)
	templates := w.TemplateIDs()
	queries := make([]core.Query, 0, n)
	weights := make(map[string]float64, n)
	at := core.Time(0)
	for i := 0; i < n; i++ {
		at += src.Expo(meanInterarrival)
		tmpl := templates[src.Intn(len(templates))]
		q, err := w.QueryFor(tmpl, i, at)
		if err != nil {
			return nil, nil, err
		}
		queries = append(queries, q)
		weights[q.ID] = w.Weights[tmpl]
	}
	return queries, weights, nil
}

// CostModel builds the count-based cost model for this world with the
// given per-query weights (use the Stream weights for streams, or
// w.Weights for per-template isolated runs).
func (w *TPCHWorld) CostModel(weights map[string]float64) core.CostModel {
	return &costmodel.CountModel{
		LocalProcess: 2,
		PerBaseTable: 3,
		TransmitFlat: 2,
		QueryWeights: weights,
	}
}
