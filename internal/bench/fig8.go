package bench

import (
	"fmt"
	"strconv"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/synth"
)

// Fig8Config parameterizes the number-of-sites experiment (Figure 8):
// synthetic 100-table schema, 50 tables replicated, random queries over at
// most 10 tables, node counts from 2 to 22, skewed vs uniform placement.
// Communication overhead grows with the number of distinct remote sites a
// query touches (CountModel.PerExtraSite), which is what the paper blames
// for the uniform-placement decline.
type Fig8Config struct {
	NTables        int
	Replicas       int
	NQueries       int
	MaxTablesPer   int
	QueryMean      core.Duration
	SyncMean       core.Duration
	SiteCounts     []int
	Rates          core.DiscountRates
	PerExtraSite   core.Duration
	Slots          int
	PlannerHorizon core.Duration
	Seed           int64
}

// DefaultFig8Config mirrors the paper's setup.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		NTables:        100,
		Replicas:       50,
		NQueries:       120,
		MaxTablesPer:   10,
		QueryMean:      60,
		SyncMean:       20,
		SiteCounts:     []int{2, 6, 10, 14, 18, 22},
		Rates:          core.DiscountRates{CL: .05, SL: .05},
		PerExtraSite:   1.5,
		Slots:          1,
		PlannerHorizon: 30,
		Seed:           1,
	}
}

// QuickFig8Config is a scaled-down variant for tests.
func QuickFig8Config() Fig8Config {
	cfg := DefaultFig8Config()
	cfg.NQueries = 25
	cfg.SiteCounts = []int{2, 22}
	return cfg
}

// Fig8Point is the mean IV of the three methods at one site count.
type Fig8Point struct {
	Sites  int
	Values map[Method]float64
}

// Fig8Series is one distribution's curve.
type Fig8Series struct {
	Distribution string // "skewed" or "uniform"
	Points       []Fig8Point
}

// Fig8Result holds both panels.
type Fig8Result struct {
	Series []Fig8Series
}

// Get returns one data point.
func (r Fig8Result) Get(dist string, sites int, m Method) (float64, bool) {
	for _, s := range r.Series {
		if s.Distribution != dist {
			continue
		}
		for _, p := range s.Points {
			if p.Sites == sites {
				v, ok := p.Values[m]
				return v, ok
			}
		}
	}
	return 0, false
}

// RunFig8 executes the experiment.
func RunFig8(cfg Fig8Config) (Fig8Result, error) {
	var res Fig8Result
	tables := synth.Tables(cfg.NTables)
	queries, err := synth.Queries(synth.QueryConfig{
		N:                 cfg.NQueries,
		Tables:            tables,
		MaxTablesPerQuery: cfg.MaxTablesPer,
		MeanInterarrival:  cfg.QueryMean,
		Seed:              cfg.Seed + 7,
	})
	if err != nil {
		return res, err
	}
	cost := &costmodel.CountModel{
		LocalProcess: 2,
		PerBaseTable: 2,
		PerExtraSite: cfg.PerExtraSite,
		TransmitFlat: 1,
	}
	horizon := queries[len(queries)-1].SubmitAt + core.Time(cfg.NQueries)*cfg.QueryMean*4 + 1000

	for _, skewed := range []bool{true, false} {
		dist := "uniform"
		if skewed {
			dist = "skewed"
		}
		series := Fig8Series{Distribution: dist}
		for _, sites := range cfg.SiteCounts {
			dep, err := buildSharedDeployment(tables, sites, cfg.Replicas, cfg.SyncMean, horizon, skewed, cfg.Seed)
			if err != nil {
				return res, err
			}
			point := Fig8Point{Sites: sites, Values: make(map[Method]float64, 3)}
			for _, m := range Methods() {
				strategy, err := dep.Strategy(m, cost, cfg.Rates, cfg.PlannerHorizon)
				if err != nil {
					return res, err
				}
				outcomes, err := RunStream(dep, strategy, queries, cfg.Rates, cfg.Slots, core.Aging{})
				if err != nil {
					return res, fmt.Errorf("bench: fig8 %s sites=%d %s: %w", dist, sites, m, err)
				}
				point.Values[m] = MeanValue(outcomes)
			}
			series.Points = append(series.Points, point)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Tables renders the two panels.
func (r Fig8Result) Tables() []Table {
	out := make([]Table, 0, len(r.Series))
	for _, s := range r.Series {
		t := Table{
			Title:   fmt.Sprintf("Figure 8: Information Value vs number of sites (%s distribution)", s.Distribution),
			Columns: []string{"sites", "IVQP", "Federation", "Data Warehouse"},
		}
		for _, p := range s.Points {
			row := []string{strconv.Itoa(p.Sites)}
			for _, m := range Methods() {
				row = append(row, f3(p.Values[m]))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}
