package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"ivdss/internal/advisor"
	"ivdss/internal/cluster"
	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
	"ivdss/internal/synth"
)

// ClusterScenarioConfig runs one scenario through an N-shard front-end
// cluster on the DES: every shard is a full scheduler.Engine with its own
// advisor-placed replica set, queries route by the consistent shard map,
// gossip exchanges queue depths and replica freshness between shards, and
// a backed-up shard steals to the least-loaded covering peer. Per-shard
// resources (Slots, MaxQueue, replica budget) are held fixed as the shard
// count grows — the scaling curve measures the cluster layer, not bigger
// boxes.
type ClusterScenarioConfig struct {
	ScenarioConfig
	// Shards is the front-end count (≥ 1).
	Shards int
	// GossipInterval is the mean anti-entropy round gap in experiment
	// minutes (default 1); GossipJitter spreads it (default 0.25).
	GossipInterval core.Duration
	GossipJitter   float64
	// StealHighWater hands arrivals to a covering peer once the home
	// shard's queue reaches this depth; 0 disables work-stealing.
	StealHighWater int
	// TenantWeights, when non-nil, assigns every query a tenant (stable
	// hash of its ID over the weight keys) and turns queue-full refusal
	// into weighted fair eviction via cluster.Budgets.
	TenantWeights map[string]float64
	// AdvisorSample caps how many of a shard's routed queries feed the
	// replica advisor (default 40); AdvisorSamples is the staleness
	// scenarios drawn per query (default 2).
	AdvisorSample  int
	AdvisorSamples int
}

// ClusterShardResult is one shard's slice of a cluster run.
type ClusterShardResult struct {
	Shard       int     `json:"shard"`
	Routed      int     `json:"routed"`
	StolenOut   int     `json:"stolen_out"`
	StolenIn    int     `json:"stolen_in"`
	Completed   int     `json:"completed"`
	Shed        int     `json:"shed"`
	Unplannable int     `json:"unplannable"`
	TotalIV     float64 `json:"total_iv"`
	Replicas    int     `json:"replicas"`
}

// ClusterScenarioResult aggregates one cluster size's run.
type ClusterScenarioResult struct {
	Name         string               `json:"name"`
	Shards       int                  `json:"shards"`
	Queries      int                  `json:"queries"`
	Completed    int                  `json:"completed"`
	Shed         int                  `json:"shed"`
	Unplannable  int                  `json:"unplannable"`
	TotalIV      float64              `json:"total_iv"`
	MeanIV       float64              `json:"mean_iv"`
	IVPerShard   float64              `json:"iv_per_shard"`
	MeanCL       float64              `json:"mean_cl_minutes"`
	P95CL        float64              `json:"p95_cl_minutes"`
	P99CL        float64              `json:"p99_cl_minutes"`
	Stolen       int                  `json:"stolen"`
	GossipRounds int                  `json:"gossip_rounds"`
	PerShard     []ClusterShardResult `json:"per_shard"`
	// TenantIV/TenantShed break completions down per tenant when tenant
	// budgets are active.
	TenantIV   map[string]float64 `json:"tenant_iv,omitempty"`
	TenantShed map[string]int     `json:"tenant_shed,omitempty"`
}

// clusterShard is one assembled front-end: engine, catalog, gossip.
type clusterShard struct {
	id       cluster.ShardID
	engine   *scheduler.Engine
	catalog  *federation.Catalog
	replicas []core.TableID
	gossiper *cluster.Gossiper
	version  atomic.Uint64
	slots    int
	clock    scheduler.Clock
}

// digest cuts the shard's current gossip state.
func (s *clusterShard) digest() cluster.Digest {
	now := s.clock.Now()
	fresh := make(map[core.TableID]core.Time, len(s.replicas))
	if snap, err := s.catalog.Snapshot(s.replicas, now, 0); err == nil {
		for _, ts := range snap {
			if ts.Replica != nil {
				fresh[ts.ID] = ts.Replica.LastSync
			}
		}
	}
	return cluster.Digest{
		Node:       s.id,
		Version:    s.version.Add(1),
		Clock:      now,
		QueueDepth: s.engine.QueueLen(),
		Slots:      s.slots,
		Freshness:  fresh,
	}
}

// desTransport gossips by calling the peer's handler directly on the
// shared sim clock — zero wire latency, staleness comes from the round
// intervals alone.
type desTransport struct {
	shards []*clusterShard
	rounds atomic.Int64
}

// Exchange implements cluster.Transport.
func (t *desTransport) Exchange(peer cluster.ShardID, d cluster.Digest) (cluster.Digest, error) {
	if int(peer) < 0 || int(peer) >= len(t.shards) {
		return cluster.Digest{}, fmt.Errorf("bench: gossip to unknown shard %d", peer)
	}
	t.rounds.Add(1)
	return t.shards[peer].gossiper.Handle(d), nil
}

// tenantFor hashes a query onto the sorted tenant names, so the
// assignment is stable across runs and shard counts.
func tenantFor(id string, names []string) string {
	if len(names) == 0 {
		return ""
	}
	return names[stats.FNV1a("tenant:"+id)%uint64(len(names))]
}

// chargingExecutor wraps the DES executor to charge delivered IV against
// tenant budgets at completion time.
type chargingExecutor struct {
	inner   scheduler.Executor
	budgets *cluster.Budgets
}

// Execute implements scheduler.Executor.
func (e chargingExecutor) Execute(d scheduler.Dispatch, done func(core.Outcome)) {
	e.inner.Execute(d, func(o core.Outcome) {
		e.budgets.Charge(o.Query.Tenant, o.Value)
		done(o)
	})
}

// buildClusterShards assembles the per-shard worlds for Shards > 1: a
// shared placement (same seed as the standalone deployment), per-shard
// advisor-placed replica sets over the query sub-stream the shard map
// routes to each shard, and per-shard sync schedules.
func buildClusterShards(cfg ClusterScenarioConfig, wl *synth.Workload, smap *cluster.ShardMap, cost core.CostModel, clock scheduler.Clock) ([]*clusterShard, error) {
	sc := cfg.Scenario
	placement, err := federation.UniformPlacement(wl.Tables, sc.Sites, stats.SubSeed(sc.Seed, "deploy"))
	if err != nil {
		return nil, err
	}
	last := wl.Queries[len(wl.Queries)-1].SubmitAt
	horizon := last*2 + 1000

	routed := make([][]core.Query, cfg.Shards)
	for _, q := range wl.Queries {
		s := smap.ShardOf(q.Tables)
		routed[s] = append(routed[s], q)
	}

	sample := cfg.AdvisorSample
	if sample <= 0 {
		sample = 40
	}
	samples := cfg.AdvisorSamples
	if samples <= 0 {
		samples = 2
	}

	shards := make([]*clusterShard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		var replicas []core.TableID
		if len(routed[i]) > 0 && sc.Replicas > 0 {
			adv, err := advisor.New(advisor.Config{
				Cost:     cost,
				Rates:    cfg.Rates,
				SyncMean: sc.SyncMean,
				Horizon:  cfg.PlannerHorizon,
				Samples:  samples,
				Seed:     stats.SubSeed(sc.Seed, fmt.Sprintf("advisor:%d", i)),
			})
			if err != nil {
				return nil, err
			}
			probe := routed[i]
			if len(probe) > sample {
				probe = probe[:sample]
			}
			rec, err := adv.RecommendReplicas(probe, placement, sc.Replicas)
			if err != nil {
				return nil, err
			}
			replicas = rec.Replicas
		}
		mgr, err := newSyncManager(replicas, sc.SyncMean, horizon, stats.SubSeed(sc.Seed, fmt.Sprintf("sync:%d", i)), true)
		if err != nil {
			return nil, err
		}
		catalog, err := federation.NewCatalog(placement, mgr)
		if err != nil {
			return nil, err
		}
		shards[i] = &clusterShard{
			id:       cluster.ShardID(i),
			catalog:  catalog,
			replicas: replicas,
			slots:    cfg.Slots,
			clock:    clock,
		}
	}
	return shards, nil
}

// RunClusterScenario replays one scenario through an N-shard cluster on
// virtual time. Shards == 1 reuses the standalone scenario world verbatim
// (gossip and stealing have no peers), so a single-shard cluster is the
// standalone engine plus an inert cluster layer — the twin the
// equivalence gate pins.
func RunClusterScenario(cfg ClusterScenarioConfig) (ClusterScenarioResult, error) {
	var res ClusterScenarioResult
	if cfg.Shards < 1 {
		return res, fmt.Errorf("bench: cluster needs at least one shard, got %d", cfg.Shards)
	}
	sc := cfg.Scenario
	wl, err := sc.Generate()
	if err != nil {
		return res, err
	}
	smap, err := cluster.NewShardMap(cfg.Shards)
	if err != nil {
		return res, err
	}
	cost := cfg.Cost
	if cost == nil {
		cost = ScenarioCostFor(costmodel.VMProcessScale)
	}

	s := sim.New()
	clock := scheduler.SimClock{Sim: s}

	var shards []*clusterShard
	if cfg.Shards == 1 {
		// The standalone world, byte for byte: same deployment seed, same
		// replica selection, same sync schedules as RunScenario.
		world, err := BuildScenarioWorld(cfg.ScenarioConfig)
		if err != nil {
			return res, err
		}
		wl = world.Workload
		shards = []*clusterShard{{
			id:       0,
			catalog:  world.Deployment.Catalog,
			replicas: world.Deployment.Replicas,
			slots:    cfg.Slots,
			clock:    clock,
		}}
	} else {
		shards, err = buildClusterShards(cfg, wl, smap, cost, clock)
		if err != nil {
			return res, err
		}
	}

	// Tenant budgets: decorate the stream and install the victim policy.
	var budgets *cluster.Budgets
	var tenantNames []string
	if len(cfg.TenantWeights) > 0 {
		for name := range cfg.TenantWeights {
			tenantNames = append(tenantNames, name)
		}
		sort.Strings(tenantNames)
		budgets, err = cluster.NewBudgets(cluster.BudgetConfig{
			Weights: cfg.TenantWeights,
			Now:     clock.Now,
		})
		if err != nil {
			return res, err
		}
	}

	// Engines and strategies per shard.
	for _, sh := range shards {
		var view scheduler.CatalogView = sh.catalog
		if len(wl.Outages) > 0 {
			view = OutageView{Inner: sh.catalog, Workload: wl}
		}
		planner, err := core.NewPlanner(cost, core.PlannerConfig{Rates: cfg.Rates, Horizon: cfg.PlannerHorizon})
		if err != nil {
			return res, err
		}
		var exec scheduler.Executor = scheduler.PlanExecutor{Clock: clock, Rates: cfg.Rates}
		if budgets != nil {
			exec = chargingExecutor{inner: exec, budgets: budgets}
		}
		ecfg := scheduler.EngineConfig{
			Clock:           clock,
			Executor:        exec,
			Strategy:        &scheduler.IVQPStrategy{Planner: planner, Catalog: view, Horizon: cfg.PlannerHorizon},
			Rates:           cfg.Rates,
			Slots:           cfg.Slots,
			Aging:           cfg.Aging,
			MaxQueue:        cfg.MaxQueue,
			HaltOnPlanError: false,
			RecordOutcomes:  true,
		}
		if budgets != nil {
			ecfg.Victim = budgets.Victim
		}
		eng, err := scheduler.NewEngine(ecfg)
		if err != nil {
			return res, err
		}
		eng.SetEpsilon(cfg.Epsilon)
		sh.engine = eng
	}

	// Gossip between shards, seeded and jittered on the sim clock.
	transport := &desTransport{shards: shards}
	interval := cfg.GossipInterval
	if interval <= 0 {
		interval = 1
	}
	if cfg.Shards > 1 {
		// Rounds stop after the last arrival: gossip only informs steal
		// decisions, which happen at arrival times, and the DES needs its
		// event queue to drain.
		until := wl.Queries[len(wl.Queries)-1].SubmitAt + core.Time(interval)
		for i, sh := range shards {
			sh := sh
			var peers []cluster.ShardID
			for j := range shards {
				if j != i {
					peers = append(peers, cluster.ShardID(j))
				}
			}
			g, err := cluster.NewGossiper(cluster.GossipConfig{
				Self:      sh.id,
				Peers:     peers,
				Clock:     clock,
				Transport: transport,
				State:     sh.digest,
				Interval:  interval,
				Jitter:    cfg.GossipJitter,
				Seed:      stats.SubSeed(sc.Seed, "gossip"),
				Until:     until,
			})
			if err != nil {
				return res, err
			}
			sh.gossiper = g
			g.Start()
		}
	}

	// The arrival schedule: route by footprint, steal when backed up.
	steal := cluster.StealConfig{HighWater: cfg.StealHighWater, MaxAge: 5 * interval}
	refused := 0
	refusedTenant := map[string]int{}
	routedCount := make([]int, cfg.Shards)
	stolenOut := make([]int, cfg.Shards)
	stolenIn := make([]int, cfg.Shards)
	for _, q := range wl.Queries {
		q := q
		if budgets != nil {
			q.Tenant = tenantFor(q.ID, tenantNames)
		}
		s.ScheduleAt(q.SubmitAt, func() {
			home := smap.ShardOf(q.Tables)
			routedCount[home]++
			target := home
			if cfg.Shards > 1 && cfg.StealHighWater > 0 {
				if t, ok := cluster.ChooseTarget(shards[home].gossiper.Table(), shards[home].engine.QueueLen(), q.Tables, clock.Now(), steal); ok {
					target = t
					stolenOut[home]++
					stolenIn[target]++
				}
			}
			if !shards[target].engine.Submit(q, nil) {
				refused++
				if budgets != nil {
					refusedTenant[q.Tenant]++
				}
			}
		})
	}
	s.Run()
	for _, sh := range shards {
		if sh.gossiper != nil {
			sh.gossiper.Stop()
		}
		if err := sh.engine.Err(); err != nil {
			return res, err
		}
		if p := sh.engine.Pending(); p != 0 {
			return res, fmt.Errorf("bench: cluster scenario %s shard %d left %d queries pending", sc.Name, sh.id, p)
		}
	}

	// Accounting.
	res.Name = sc.Name
	res.Shards = cfg.Shards
	res.Queries = len(wl.Queries)
	res.Shed = refused
	res.Stolen = 0
	res.GossipRounds = int(transport.rounds.Load())
	if budgets != nil {
		res.TenantIV = map[string]float64{}
		res.TenantShed = map[string]int{}
		for t, n := range refusedTenant {
			res.TenantShed[t] += n
		}
	}
	var cls, ivs []float64
	for i, sh := range shards {
		sr := ClusterShardResult{
			Shard:     i,
			Routed:    routedCount[i],
			StolenOut: stolenOut[i],
			StolenIn:  stolenIn[i],
			Replicas:  len(sh.replicas),
		}
		sr.Shed = sh.engine.Shed()
		for _, o := range sh.engine.Outcomes() {
			switch {
			case o.Err != nil:
				sr.Unplannable++
			case o.Expired:
				if res.TenantShed != nil {
					res.TenantShed[o.Query.Tenant]++
				}
			default:
				sr.Completed++
				sr.TotalIV += o.Value
				cls = append(cls, o.Latencies.CL)
				ivs = append(ivs, o.Value)
				if res.TenantIV != nil {
					res.TenantIV[o.Query.Tenant] += o.Value
				}
			}
		}
		res.Completed += sr.Completed
		res.Shed += sr.Shed
		res.Unplannable += sr.Unplannable
		res.TotalIV += sr.TotalIV
		res.Stolen += sr.StolenOut
		res.PerShard = append(res.PerShard, sr)
	}
	res.IVPerShard = res.TotalIV / float64(cfg.Shards)
	if len(ivs) > 0 {
		res.MeanIV = stats.Mean(ivs)
		res.MeanCL = stats.Mean(cls)
		res.P95CL = stats.Percentile(cls, 95)
		res.P99CL = stats.Percentile(cls, 99)
	}
	return res, nil
}

// ClusterScenario is the saturating skewed workload the cluster figure
// drives: steady-zipf's world (60 tables, 5 sites, zipf 1.5, 8-replica
// budget) under an arrival rate far past a single shard's capacity —
// 10⁵ simulated users on the full run — so total IV is admission-bound
// and the scaling curve measures how much value extra shards recover.
// It is deliberately not a registry preset: the matrix baseline stays
// untouched.
func ClusterScenario(quick bool) synth.Scenario {
	sc := synth.Scenario{
		Name:              "cluster-zipf",
		Description:       "saturating steady arrivals over zipf-hot tables, shard-map routed",
		Tables:            60,
		Sites:             5,
		Replicas:          8,
		SyncMean:          120,
		NQueries:          100000,
		MaxTablesPerQuery: 4,
		Skew:              1.5,
		Arrival:           synth.ArrivalSpec{Shape: synth.ArrivalSteady, Mean: .05},
		Horizon:           synth.HorizonSpec{TightFraction: .3, TightValue: .4, LaxValue: 1},
	}
	if quick {
		sc.NQueries = 2400
	}
	return sc
}

// ClusterSizes is the shard-count sweep the figure records.
func ClusterSizes() []int { return []int{1, 2, 4, 8} }

// ClusterBenchResult is the -fig cluster artifact. Its "scenarios" key
// lists the standalone run plus one rollup per cluster size in the same
// shape as the matrix suite, so the existing -compare regression gate
// diffs it unchanged; the richer per-size breakdowns ride alongside.
type ClusterBenchResult struct {
	Date      string           `json:"date,omitempty"`
	Seed      int64            `json:"seed"`
	Quick     bool             `json:"quick,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Sizes holds the full per-size cluster results, standalone excluded.
	Sizes []ClusterScenarioResult `json:"sizes"`
	// Tenant is the largest size re-run with weighted tenant budgets, to
	// show weighted fair shedding at work.
	Tenant *ClusterScenarioResult `json:"tenant,omitempty"`
	// ScalingIV14 is TotalIV(4 shards) / TotalIV(1 shard); the acceptance
	// gate requires ≥ 1.7.
	ScalingIV14 float64 `json:"scaling_iv_1_to_4"`
	// TwinDeltaPct is |IV(cluster-1) − IV(standalone)| / IV(standalone)
	// in percent; the acceptance gate requires ≤ 1.
	TwinDeltaPct float64 `json:"twin_delta_pct"`
}

// WriteJSON emits the artifact as indented JSON, matching the suite
// artifacts the -compare gate and CI text tools consume.
func (r ClusterBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// clusterKnobs is the fixed per-shard operating point of the figure.
func clusterKnobs(sc synth.Scenario) ClusterScenarioConfig {
	base := DefaultScenarioConfig(sc)
	base.MaxQueue = 64
	return ClusterScenarioConfig{
		ScenarioConfig: base,
		GossipInterval: 1,
		StealHighWater: 48,
	}
}

// rollup flattens a cluster run into the matrix suite's row shape.
func (r ClusterScenarioResult) rollup() ScenarioResult {
	return ScenarioResult{
		Name:      fmt.Sprintf("cluster-%d", r.Shards),
		Queries:   r.Queries,
		Completed: r.Completed,
		Shed:      r.Shed,
		TotalIV:   r.TotalIV,
		MeanIV:    r.MeanIV,
		MeanCL:    r.MeanCL,
		P95CL:     r.P95CL,
	}
}

// RunClusterFig produces the cluster scaling figure: the standalone
// engine, the 1/2/4/8-shard sweep, and a tenant-budget run at the largest
// size, all on one seeded scenario.
func RunClusterFig(seed int64, quick bool) (ClusterBenchResult, error) {
	var out ClusterBenchResult
	sc := ClusterScenario(quick)
	sc.Seed = synth.SubSeedFor(seed, sc.Name)
	out.Seed = seed
	out.Quick = quick

	knobs := clusterKnobs(sc)
	standalone, err := RunScenario(knobs.ScenarioConfig)
	if err != nil {
		return out, fmt.Errorf("bench: cluster standalone twin: %w", err)
	}
	standalone.Name = "standalone"
	out.Scenarios = append(out.Scenarios, standalone)

	byShards := map[int]float64{}
	for _, n := range ClusterSizes() {
		cfg := knobs
		cfg.Shards = n
		res, err := RunClusterScenario(cfg)
		if err != nil {
			return out, fmt.Errorf("bench: cluster size %d: %w", n, err)
		}
		out.Sizes = append(out.Sizes, res)
		out.Scenarios = append(out.Scenarios, res.rollup())
		byShards[n] = res.TotalIV
	}
	if byShards[1] > 0 {
		out.ScalingIV14 = byShards[4] / byShards[1]
	}
	if standalone.TotalIV > 0 {
		delta := byShards[1] - standalone.TotalIV
		if delta < 0 {
			delta = -delta
		}
		out.TwinDeltaPct = delta / standalone.TotalIV * 100
	}

	// Weighted fair shedding demo: the largest size with a 3:2:1 tenant
	// weight split.
	tcfg := knobs
	tcfg.Shards = ClusterSizes()[len(ClusterSizes())-1]
	tcfg.TenantWeights = map[string]float64{"gold": 3, "silver": 2, "bronze": 1}
	tenant, err := RunClusterScenario(tcfg)
	if err != nil {
		return out, fmt.Errorf("bench: cluster tenant run: %w", err)
	}
	out.Tenant = &tenant
	return out, nil
}

// Tables renders the figure.
func (r ClusterBenchResult) Tables() []Table {
	t := Table{
		Title:   fmt.Sprintf("Cluster scaling on %s (seed=%d, quick=%v): fixed per-shard resources", ClusterScenario(r.Quick).Name, r.Seed, r.Quick),
		Columns: []string{"config", "queries", "completed", "shed", "total IV", "IV/shard", "p95 CL", "p99 CL", "stolen", "gossip"},
	}
	for _, s := range r.Scenarios {
		if s.Name != "standalone" {
			continue
		}
		t.Rows = append(t.Rows, []string{
			"standalone",
			fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%d", s.Completed),
			fmt.Sprintf("%d", s.Shed),
			f3(s.TotalIV),
			f3(s.TotalIV),
			f1(s.P95CL),
			"-",
			"-",
			"-",
		})
	}
	for _, s := range r.Sizes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d shard(s)", s.Shards),
			fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%d", s.Completed),
			fmt.Sprintf("%d", s.Shed),
			f3(s.TotalIV),
			f3(s.IVPerShard),
			f1(s.P95CL),
			f1(s.P99CL),
			fmt.Sprintf("%d", s.Stolen),
			fmt.Sprintf("%d", s.GossipRounds),
		})
	}
	tables := []Table{t}
	if r.Tenant != nil && len(r.Tenant.TenantIV) > 0 {
		tt := Table{
			Title:   fmt.Sprintf("Weighted fair shedding (%d shards, weights gold=3 silver=2 bronze=1)", r.Tenant.Shards),
			Columns: []string{"tenant", "delivered IV", "shed"},
		}
		names := make([]string, 0, len(r.Tenant.TenantIV))
		for n := range r.Tenant.TenantIV {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tt.Rows = append(tt.Rows, []string{n, f3(r.Tenant.TenantIV[n]), fmt.Sprintf("%d", r.Tenant.TenantShed[n])})
		}
		tables = append(tables, tt)
	}
	return tables
}
