package bench

import (
	"strings"
	"testing"

	"ivdss/internal/core"
)

func TestMethodString(t *testing.T) {
	if MethodIVQP.String() != "IVQP" || MethodFederation.String() != "Federation" ||
		MethodWarehouse.String() != "Data Warehouse" {
		t.Error("unexpected method names")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"xxxx", "1"}},
	}
	out := tbl.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "long-column") || !strings.Contains(out, "xxxx") {
		t.Errorf("render = %q", out)
	}
}

func TestBuildDeploymentValidation(t *testing.T) {
	if _, err := BuildDeployment(DeployConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := BuildDeployment(DeployConfig{Tables: []core.TableID{"a"}, Sites: 0}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := BuildDeployment(DeployConfig{Tables: []core.TableID{"a"}, Sites: 1, ReplicaCount: 1}); err == nil {
		t.Error("replicas without sync mean accepted")
	}
	dep, err := BuildDeployment(DeployConfig{
		Tables: []core.TableID{"a", "b", "c"}, Sites: 2, ReplicaCount: 2,
		SyncMean: 5, ScheduleHorizon: 100, InitialSync: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Replicas) != 2 {
		t.Errorf("replicas = %v", dep.Replicas)
	}
	all, err := BuildDeployment(DeployConfig{
		Tables: []core.TableID{"a", "b"}, Sites: 1, ReplicaCount: -1, SyncMean: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Replicas) != 2 {
		t.Errorf("ReplicaCount -1 gave %v", all.Replicas)
	}
}

func TestDeploymentStrategyUnknownMethod(t *testing.T) {
	dep, err := BuildDeployment(DeployConfig{Tables: []core.TableID{"a"}, Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Strategy(Method(99), nil, core.DiscountRates{}, 0); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTPCHWorld(t *testing.T) {
	w, err := NewTPCHWorld(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tables) != 12 {
		t.Errorf("tables = %d, want 12 (8 − lineitem + 5 partitions)", len(w.Tables))
	}
	if len(w.QueryTables) != 22 {
		t.Errorf("templates = %d", len(w.QueryTables))
	}
	// Q1 reads only lineitem → expands to exactly the 5 partitions.
	if got := len(w.QueryTables["Q1"]); got != 5 {
		t.Errorf("Q1 expanded tables = %d, want 5", got)
	}
	queries, weights, err := w.Stream(40, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 40 {
		t.Fatalf("stream = %d queries", len(queries))
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if weights[q.ID] <= 0 {
			t.Errorf("%s has no weight", q.ID)
		}
	}
	if _, _, err := w.Stream(0, 10, 3); err == nil {
		t.Error("zero-length stream accepted")
	}
	if _, err := w.QueryFor("nope", 0, 0); err == nil {
		t.Error("unknown template accepted")
	}
}

// TestFig5Shape asserts the paper's headline claims on the quick config:
// IVQP is never below Federation or Data Warehouse, and the warehouse
// improves as synchronization accelerates.
func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(QuickFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range res.Cells {
		if c.Method != MethodIVQP {
			continue
		}
		for _, m := range []Method{MethodFederation, MethodWarehouse} {
			v, ok := res.Get(c.Ratio, c.Lambda, m)
			if !ok {
				t.Fatalf("missing cell %s %s %s", c.Ratio, c.Lambda, m)
			}
			if c.MeanIV < v-1e-9 {
				t.Errorf("%s %s: IVQP %.4f below %s %.4f", c.Ratio, c.Lambda, c.MeanIV, m, v)
			}
		}
	}
	slow, _ := res.Get("1:0.1", "λsl=λcl=.01", MethodWarehouse)
	fast, _ := res.Get("1:20", "λsl=λcl=.01", MethodWarehouse)
	if fast <= slow {
		t.Errorf("warehouse did not improve with sync rate: %.4f at 1:0.1 vs %.4f at 1:20", slow, fast)
	}
}

// TestFig6Shape: Federation never has smaller CL than the warehouse, and
// IVQP sits between them (inclusive).
func TestFig6Shape(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.NQueries = 6
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		fed, dw, ivqp := p.Values[MethodFederation], p.Values[MethodWarehouse], p.Values[MethodIVQP]
		if fed < dw-1e-9 {
			t.Errorf("%s: federation CL %.2f below warehouse %.2f", p.QueryID, fed, dw)
		}
		if ivqp < dw-1e-9 || ivqp > fed+1e-9 {
			t.Errorf("%s: IVQP CL %.2f outside [%.2f, %.2f]", p.QueryID, ivqp, dw, fed)
		}
	}
}

// TestFig7Shape: IVQP's SL never exceeds the warehouse's, and warehouse SL
// shrinks as sync accelerates.
func TestFig7Shape(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.NQueries = 6
	cfg.RatioFactors = []float64{1, 20}
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, panel := range res.Panels {
		for _, p := range panel.Points {
			if p.Values[MethodIVQP] > p.Values[MethodWarehouse]+1e-9 {
				t.Errorf("%s %s: IVQP SL %.2f above warehouse %.2f",
					panel.Ratio, p.QueryID, p.Values[MethodIVQP], p.Values[MethodWarehouse])
			}
		}
	}
	var slow, fast float64
	for _, p := range res.Panels[0].Points {
		slow += p.Values[MethodWarehouse]
	}
	for _, p := range res.Panels[1].Points {
		fast += p.Values[MethodWarehouse]
	}
	if fast >= slow {
		t.Errorf("warehouse SL did not shrink with sync rate: %.1f at 1:1 vs %.1f at 1:20", slow, fast)
	}
}

// TestFig8Shape: IVQP dominates both baselines, and under uniform
// placement IVQP's value decays as sites multiply while the skewed curve
// moves less.
func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(QuickFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			ivqp := p.Values[MethodIVQP]
			if ivqp < p.Values[MethodFederation]-1e-9 || ivqp < p.Values[MethodWarehouse]-1e-9 {
				t.Errorf("%s sites=%d: IVQP %.4f not dominant (%v)", s.Distribution, p.Sites, ivqp, p.Values)
			}
		}
	}
	uniFirst, _ := res.Get("uniform", 2, MethodIVQP)
	uniLast, _ := res.Get("uniform", 22, MethodIVQP)
	skewFirst, _ := res.Get("skewed", 2, MethodIVQP)
	skewLast, _ := res.Get("skewed", 22, MethodIVQP)
	if uniLast >= uniFirst {
		t.Errorf("uniform IVQP did not decay with sites: %.4f → %.4f", uniFirst, uniLast)
	}
	if (skewFirst - skewLast) > (uniFirst - uniLast) {
		t.Errorf("skewed decay %.4f exceeds uniform decay %.4f",
			skewFirst-skewLast, uniFirst-uniLast)
	}
}

// TestFig9Shape: MQO never loses to FIFO, and the gain at 50% overlap
// exceeds the gain at 10%.
func TestFig9Shape(t *testing.T) {
	cfg := QuickFig9Config()
	resA, err := RunFig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Overlap) != 2 {
		t.Fatalf("overlap points = %d", len(resA.Overlap))
	}
	for _, p := range resA.Overlap {
		if p.MQO < p.Without-1e-9 {
			t.Errorf("overlap %.0f%%: MQO %.4f below FIFO %.4f", p.X, p.MQO, p.Without)
		}
	}
	if gainPercent(resA.Overlap[1]) < gainPercent(resA.Overlap[0]) {
		t.Errorf("gain did not grow with overlap: %.1f%% → %.1f%%",
			gainPercent(resA.Overlap[0]), gainPercent(resA.Overlap[1]))
	}

	resB, err := RunFig9b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resB.Counts {
		if p.MQO < p.Without-1e-9 {
			t.Errorf("n=%.0f: MQO %.4f below FIFO %.4f", p.X, p.MQO, p.Without)
		}
	}
}

// TestAblationSearchShape: scatter-gather evaluates the fewest plans and
// both timeline searches stay within a hair of the exhaustive optimum.
func TestAblationSearchShape(t *testing.T) {
	cfg := DefaultAblationSearchConfig()
	cfg.Scenarios = 60
	cfg.MaxTables = 5
	res, err := RunAblationSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byMode := map[core.SearchMode]AblationSearchRow{}
	for _, r := range res.Rows {
		byMode[r.Mode] = r
	}
	if byMode[core.ScatterGather].MeanPlans >= byMode[core.Exhaustive].MeanPlans {
		t.Errorf("scatter-gather evaluated %.1f plans, exhaustive %.1f",
			byMode[core.ScatterGather].MeanPlans, byMode[core.Exhaustive].MeanPlans)
	}
	// Count-based cost: prefix pruning is exact, full timeline always is.
	for _, mode := range []core.SearchMode{core.ScatterGather, core.ScatterGatherFull} {
		if r := byMode[mode].MeanValueRatio; r < 1-1e-9 || r > 1+1e-9 {
			t.Errorf("%v value ratio = %v, want 1", mode, r)
		}
	}
}

func TestAblationMQOShape(t *testing.T) {
	cfg := DefaultAblationMQOConfig()
	cfg.WorkloadSize = 5
	res, err := RunAblationMQO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Strategy] = r.TotalValue
	}
	if vals["GA"] < vals["FIFO"]-1e-9 {
		t.Errorf("GA %.4f below FIFO %.4f", vals["GA"], vals["FIFO"])
	}
	if vals["GA"] > vals["brute force"]+1e-9 {
		t.Errorf("GA %.4f above brute force optimum %.4f", vals["GA"], vals["brute force"])
	}
	if vals["random restarts"] > vals["brute force"]+1e-9 {
		t.Errorf("random restarts exceeded brute force")
	}
	if _, err := RunAblationMQO(AblationMQOConfig{WorkloadSize: 20}); err == nil {
		t.Error("oversized brute-force workload accepted")
	}
}

func TestAblationAgingShape(t *testing.T) {
	cfg := DefaultAblationAgingConfig()
	cfg.NQueries = 40
	res, err := RunAblationAging(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var off, on AblationAgingRow
	for _, r := range res.Rows {
		if r.Policy == "aging" {
			on = r
		} else {
			off = r
		}
	}
	if on.MaxWait >= off.MaxWait {
		t.Errorf("aging max wait %.1f not below no-aging %.1f", on.MaxWait, off.MaxWait)
	}
}

func TestRenderAllResults(t *testing.T) {
	// Smoke-test every Tables() renderer on tiny runs.
	fig5, err := RunFig5(QuickFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fig5.Tables()); n != 2 {
		t.Errorf("fig5 tables = %d", n)
	}
	cfg9 := QuickFig9Config()
	r9a, err := RunFig9a(cfg9)
	if err != nil {
		t.Fatal(err)
	}
	r9b, err := RunFig9b(cfg9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r9a.Tables()) != 1 || len(r9b.Tables()) != 1 {
		t.Error("fig9 tables missing")
	}
	sr, err := RunAblationSearch(AblationSearchConfig{Scenarios: 10, MaxTables: 3, SyncsPerTable: 2, Rates: core.DiscountRates{CL: .05, SL: .05}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Tables()) != 1 {
		t.Error("search ablation table missing")
	}
}

// TestAdvisorShape: the advisor's plan must beat no replicas and the mean
// random plan in the independent dispatcher simulation.
func TestAdvisorShape(t *testing.T) {
	cfg := DefaultAdvisorConfig()
	cfg.NQueries = 40
	cfg.RandomTrials = 4
	res, err := RunAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range res.Rows {
		vals[row.Plan] = row.MeanIV
	}
	if vals["advisor"] <= vals["no replicas"] {
		t.Errorf("advisor %.4f not above no-replicas %.4f", vals["advisor"], vals["no replicas"])
	}
	if vals["advisor"] < res.RandomMean {
		t.Errorf("advisor %.4f below mean random plan %.4f", vals["advisor"], res.RandomMean)
	}
	if len(res.Tables()) != 1 {
		t.Error("advisor table missing")
	}
}

func TestTablesSweepShape(t *testing.T) {
	cfg := DefaultTablesSweepConfig()
	cfg.TableCounts = []int{10, 100}
	cfg.NQueries = 25
	res, err := RunTablesSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		ivqp := p.Values[MethodIVQP]
		if ivqp < p.Values[MethodFederation]-1e-9 || ivqp < p.Values[MethodWarehouse]-1e-9 {
			t.Errorf("n=%d: IVQP %.4f not dominant (%v)", p.Tables, ivqp, p.Values)
		}
	}
	if len(res.Tables()) != 1 {
		t.Error("table missing")
	}
	bad := cfg
	bad.TableCounts = []int{5}
	if _, err := RunTablesSweep(bad); err == nil {
		t.Error("schema smaller than query footprint accepted")
	}
}

// TestFig5DominanceAcrossSeeds: the headline claim is not an artifact of
// one random draw.
func TestFig5DominanceAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3, 5} {
		cfg := QuickFig5Config()
		cfg.Seed = seed
		res, err := RunFig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cells {
			if c.Method != MethodIVQP {
				continue
			}
			for _, m := range []Method{MethodFederation, MethodWarehouse} {
				v, _ := res.Get(c.Ratio, c.Lambda, m)
				if c.MeanIV < v-1e-9 {
					t.Errorf("seed %d %s %s: IVQP %.4f below %s %.4f", seed, c.Ratio, c.Lambda, c.MeanIV, m, v)
				}
			}
		}
	}
}

// TestExperimentsDeterministic: identical configs reproduce identical
// results bit for bit — the property EXPERIMENTS.md's numbers rely on.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := QuickFig5Config()
	a, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
	cfg9 := QuickFig9Config()
	ra, err := RunFig9a(cfg9)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunFig9a(cfg9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Overlap {
		if ra.Overlap[i] != rb.Overlap[i] {
			t.Fatalf("fig9a point %d differs", i)
		}
	}
}
