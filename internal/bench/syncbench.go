package bench

import (
	"context"
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/replication"
	"ivdss/internal/replsync"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

// Sync cadence experiment: the live replication engine (internal/replsync)
// driven by the discrete event simulator, comparing a static uniform
// cadence against the IV-adaptive controller under a skewed workload. A
// small hot set of tables receives most of the query traffic; the adaptive
// controller observes the information value each report loses to replica
// staleness and re-divides the fixed total sync rate toward the hot
// tables. The figure reports the total workload IV of both variants and
// the adaptive run's sync traffic.

// SyncConfig parameterizes the cadence experiment.
type SyncConfig struct {
	// Tables is the replicated table count; HotTables of them receive
	// HotFraction of the query traffic.
	Tables      int
	HotTables   int
	HotFraction float64
	// NQueries arrive as a Poisson stream with mean interarrival QueryMean
	// (experiment minutes).
	NQueries  int
	QueryMean core.Duration
	// Period is the uniform starting sync period per table; the total sync
	// rate Tables/Period is what the adaptive controller re-divides.
	Period core.Duration
	// AdjustEvery is the controller interval.
	AdjustEvery core.Duration
	// ProcessCL is each report's computational latency (constant — the
	// experiment isolates the staleness term).
	ProcessCL core.Duration
	// RowsPerMin and RowBytes model each table's append rate, pricing the
	// sync payloads. BaseRows is the table size at t=0.
	RowsPerMin float64
	RowBytes   int64
	BaseRows   uint64
	// Budget caps sync traffic in bytes per experiment minute (0 =
	// unlimited), exercising deferral accounting.
	Budget float64
	Rates  core.DiscountRates
	Seed   int64
}

// DefaultSyncConfig: 8 tables on a shared 1-sync-per-minute budget, 2 of
// them drawing 80% of the traffic.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		Tables:      8,
		HotTables:   2,
		HotFraction: .8,
		NQueries:    400,
		QueryMean:   .25,
		Period:      8,
		AdjustEvery: 10,
		ProcessCL:   .5,
		RowsPerMin:  5,
		RowBytes:    8,
		BaseRows:    200,
		Rates:       core.DiscountRates{CL: .05, SL: .08},
		Seed:        1,
	}
}

// QuickSyncConfig is the CI-sized variant.
func QuickSyncConfig() SyncConfig {
	cfg := DefaultSyncConfig()
	cfg.NQueries = 150
	return cfg
}

// SyncVariant is one cadence policy's outcome.
type SyncVariant struct {
	TotalIV            float64 `json:"total_iv"`
	MeanSL             float64 `json:"mean_sl_minutes"`
	Syncs              float64 `json:"syncs_total"`
	SyncBytes          float64 `json:"sync_bytes_total"`
	SyncDeferred       float64 `json:"sync_deferred_total"`
	CadenceAdjustments float64 `json:"cadence_adjustments_total"`
	// HotPeriod/ColdPeriod are the mean final periods of the hot and cold
	// table groups — the cadence the controller converged to.
	HotPeriod  float64 `json:"hot_period_minutes"`
	ColdPeriod float64 `json:"cold_period_minutes"`
}

// SyncResult is the experiment outcome.
type SyncResult struct {
	Static   SyncVariant `json:"static"`
	Adaptive SyncVariant `json:"adaptive"`
	// GainPct is (Adaptive.TotalIV − Static.TotalIV) / Static.TotalIV × 100.
	GainPct float64 `json:"gain_pct"`
}

// syncModelFetcher prices sync payloads from a per-table append model
// without materializing rows: version grows RowsPerMin per minute from
// BaseRows, a snapshot ships every row, a delta ships the suffix.
type syncModelFetcher struct {
	clock scheduler.Clock
	cfg   SyncConfig
}

func (f syncModelFetcher) version() uint64 {
	return f.cfg.BaseRows + uint64(f.cfg.RowsPerMin*float64(f.clock.Now()))
}

func (f syncModelFetcher) Snapshot(context.Context, core.TableID) (replsync.Snapshot, error) {
	v := f.version()
	return replsync.Snapshot{Version: v, Bytes: int64(v) * f.cfg.RowBytes}, nil
}

func (f syncModelFetcher) Delta(_ context.Context, _ core.TableID, cursor uint64) (replsync.Delta, error) {
	v := f.version()
	if cursor > v {
		return replsync.Delta{Resync: true}, nil
	}
	return replsync.Delta{Version: v, Bytes: int64(v-cursor) * f.cfg.RowBytes}, nil
}

// nopApplier discards payloads: the Manager carries the freshness state
// the experiment measures.
type nopApplier struct{}

func (nopApplier) ApplySnapshot(core.TableID, replsync.Snapshot, core.Time) error { return nil }
func (nopApplier) ApplyDelta(core.TableID, replsync.Delta, core.Time) error       { return nil }
func (nopApplier) Drop(core.TableID)                                              {}

// RunSync executes the experiment: the identical skewed stream against a
// static uniform cadence and the adaptive controller.
func RunSync(cfg SyncConfig) (SyncResult, error) {
	var res SyncResult
	if cfg.Tables < 2 || cfg.HotTables < 1 || cfg.HotTables >= cfg.Tables {
		return res, fmt.Errorf("bench: need at least one hot and one cold table, got %d/%d", cfg.HotTables, cfg.Tables)
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction >= 1 {
		return res, fmt.Errorf("bench: hot fraction %v outside (0, 1)", cfg.HotFraction)
	}
	st, err := runSyncVariant(cfg, false)
	if err != nil {
		return res, err
	}
	ad, err := runSyncVariant(cfg, true)
	if err != nil {
		return res, err
	}
	res.Static, res.Adaptive = st, ad
	if st.TotalIV > 0 {
		res.GainPct = (ad.TotalIV - st.TotalIV) / st.TotalIV * 100
	}
	return res, nil
}

func syncTableID(i int) core.TableID {
	return core.TableID(fmt.Sprintf("t%02d", i))
}

func runSyncVariant(cfg SyncConfig, adaptive bool) (SyncVariant, error) {
	var out SyncVariant
	s := sim.New()
	clock := scheduler.SimClock{Sim: s}
	mgr := replication.NewManager()
	tables := make([]replsync.TableConfig, cfg.Tables)
	for i := range tables {
		id := syncTableID(i)
		tables[i] = replsync.TableConfig{ID: id, Period: cfg.Period}
		if err := mgr.Register(id, replication.Schedule{}); err != nil {
			return out, err
		}
	}
	reg := metrics.NewRegistry()
	agent, err := replsync.New(replsync.Config{
		Clock:       clock,
		Fetch:       syncModelFetcher{clock: clock, cfg: cfg},
		Apply:       nopApplier{},
		Manager:     mgr,
		Tables:      tables,
		Budget:      cfg.Budget,
		Adaptive:    adaptive,
		AdjustEvery: cfg.AdjustEvery,
		MinPeriod:   cfg.Period / 8,
		MaxPeriod:   cfg.Period * 8,
		Stats:       reg,
	})
	if err != nil {
		return out, err
	}
	for _, tc := range tables {
		if err := agent.SyncNow(tc.ID); err != nil {
			return out, err
		}
	}
	agent.Start()

	// The skewed stream: identical arrivals and table choices in both
	// variants (seeded independently of the sync engine's behaviour).
	src := stats.NewSource(cfg.Seed)
	arrivals := make([]core.Time, cfg.NQueries)
	targets := make([]core.TableID, cfg.NQueries)
	at := core.Time(0)
	for i := range arrivals {
		at += src.Expo(float64(cfg.QueryMean))
		arrivals[i] = at
		if src.Float64() < cfg.HotFraction {
			targets[i] = syncTableID(src.Intn(cfg.HotTables))
		} else {
			targets[i] = syncTableID(cfg.HotTables + src.Intn(cfg.Tables-cfg.HotTables))
		}
	}

	var sls []float64
	for i := range arrivals {
		i := i
		s.ScheduleAt(arrivals[i], func() {
			now := s.Now()
			id := targets[i]
			sl, ok := mgr.Staleness(id, now)
			if !ok {
				sl = now
			}
			// The report's SL also includes its own processing time: the
			// replica ages while the query runs.
			lat := core.Latencies{CL: cfg.ProcessCL, SL: sl + cfg.ProcessCL}
			value := core.InformationValue(1, lat, cfg.Rates)
			out.TotalIV += value
			sls = append(sls, lat.SL)
			fresh := core.InformationValue(1, core.Latencies{CL: lat.CL}, cfg.Rates)
			agent.ObserveLoss([]core.TableID{id}, fresh-value)
		})
	}
	// The periodic cycles re-arm forever; bound the run at the stream's end.
	s.RunUntil(arrivals[len(arrivals)-1] + 1)
	agent.Stop()

	if len(sls) != cfg.NQueries {
		return out, fmt.Errorf("bench: sync variant scored %d of %d queries", len(sls), cfg.NQueries)
	}
	out.MeanSL = stats.Mean(sls)
	flat := reg.Flatten()
	out.Syncs = flat["syncs_total"]
	out.SyncBytes = flat["sync_bytes_total"]
	out.SyncDeferred = flat["sync_deferred_total"]
	out.CadenceAdjustments = flat["cadence_adjustments_total"]
	var hotP, coldP float64
	for _, st := range agent.Status() {
		isHot := false
		for i := 0; i < cfg.HotTables; i++ {
			if st.Table == syncTableID(i) {
				isHot = true
			}
		}
		if isHot {
			hotP += st.Period
		} else {
			coldP += st.Period
		}
	}
	out.HotPeriod = hotP / float64(cfg.HotTables)
	out.ColdPeriod = coldP / float64(cfg.Tables-cfg.HotTables)
	return out, nil
}

// Tables renders the experiment as a summary table.
func (r SyncResult) Tables() []Table {
	row := func(name string, v SyncVariant) []string {
		return []string{
			name,
			f3(v.TotalIV),
			f1(v.MeanSL),
			fmt.Sprintf("%.0f", v.Syncs),
			fmt.Sprintf("%.0f", v.SyncBytes),
			fmt.Sprintf("%.0f", v.SyncDeferred),
			fmt.Sprintf("%.0f", v.CadenceAdjustments),
			f1(v.HotPeriod),
			f1(v.ColdPeriod),
		}
	}
	return []Table{{
		Title:   "Sync cadence: static uniform vs IV-adaptive (skewed workload)",
		Columns: []string{"variant", "total IV", "mean SL", "syncs", "bytes", "deferred", "adjusts", "hot period", "cold period"},
		Rows: [][]string{
			row("static", r.Static),
			row("adaptive", r.Adaptive),
			{"gain", fmt.Sprintf("%+.1f%%", r.GainPct), "", "", "", "", "", "", ""},
		},
	}}
}
