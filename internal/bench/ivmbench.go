package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/replsync"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

// Materialized-view experiment (-fig ivm): an aggregate-heavy skewed
// workload over replicated tables, replica-only versus view-enabled. In
// the view-enabled variant each hot table's sync unit is a materialized
// view covering the hot query: its cycles ship only the delta rows passing
// the view's predicate, projected to the columns the view reads, and the
// query is answered from the pre-aggregated materialization instead of
// re-aggregating a replica. The figure reports total information value
// against total sync traffic — the paper's IV currency versus the
// bandwidth the views exist to save.

// IVMConfig parameterizes the experiment.
type IVMConfig struct {
	// Tables is the base-table count; HotTables of them receive
	// HotFraction of the query traffic. Hot queries are view-covered
	// single-table aggregates.
	Tables      int
	HotTables   int
	HotFraction float64
	// NQueries arrive as a Poisson stream with mean interarrival QueryMean
	// (experiment minutes).
	NQueries  int
	QueryMean core.Duration
	// Period is the uniform sync period per unit (replica or view).
	Period core.Duration
	// ProcessCL is the computational latency of aggregating over a local
	// replica; ViewProcessCL is the latency of serving the view's already
	// aggregated answer (strictly smaller — that is the CL the view
	// collapses).
	ProcessCL     core.Duration
	ViewProcessCL core.Duration
	// RowsPerMin and RowBytes model each table's append rate; BaseRows is
	// the size at t=0.
	RowsPerMin float64
	RowBytes   int64
	BaseRows   uint64
	// Selectivity is the fraction of appended rows passing the view's
	// WHERE predicate; ColumnFraction is the fraction of each row's bytes
	// the view's column subset keeps. Together they price the delta
	// projection applied at the base site.
	Selectivity    float64
	ColumnFraction float64
	// Budget caps sync traffic in bytes per experiment minute (0 =
	// unlimited), shared across all units.
	Budget float64
	Rates  core.DiscountRates
	Seed   int64
}

// DefaultIVMConfig: 8 tables, 2 hot ones drawing 80% of an
// aggregate-heavy stream; the views' predicates pass 25% of delta rows and
// keep half of each row's bytes.
func DefaultIVMConfig() IVMConfig {
	return IVMConfig{
		Tables:         8,
		HotTables:      2,
		HotFraction:    .8,
		NQueries:       400,
		QueryMean:      .25,
		Period:         8,
		ProcessCL:      .5,
		ViewProcessCL:  .05,
		RowsPerMin:     5,
		RowBytes:       8,
		BaseRows:       200,
		Selectivity:    .25,
		ColumnFraction: .5,
		Rates:          core.DiscountRates{CL: .05, SL: .08},
		Seed:           1,
	}
}

// QuickIVMConfig is the CI-sized variant.
func QuickIVMConfig() IVMConfig {
	cfg := DefaultIVMConfig()
	cfg.NQueries = 150
	return cfg
}

// IVMVariant is one variant's outcome.
type IVMVariant struct {
	TotalIV           float64 `json:"total_iv"`
	MeanSL            float64 `json:"mean_sl_minutes"`
	Syncs             float64 `json:"syncs_total"`
	SyncBytes         float64 `json:"sync_bytes_total"`
	SyncDeferred      float64 `json:"sync_deferred_total"`
	ViewsMaterialized float64 `json:"views_materialized_total"`
	ViewDeltaRows     float64 `json:"view_delta_rows_total"`
	ViewDeltaBytes    float64 `json:"view_delta_bytes_total"`
}

// IVMResult is the experiment outcome.
type IVMResult struct {
	ReplicaOnly IVMVariant `json:"replica_only"`
	ViewEnabled IVMVariant `json:"view_enabled"`
	// IVGainPct is the view-enabled IV gain over replica-only, percent.
	IVGainPct float64 `json:"iv_gain_pct"`
	// BytesSavedPct is the sync-traffic reduction, percent.
	BytesSavedPct float64 `json:"bytes_saved_pct"`
	Date          string  `json:"date,omitempty"`
}

// ivmViewID names the view covering hot table i's query.
func ivmViewID(i int) core.ViewID {
	return core.ViewID(fmt.Sprintf("q%02d", i))
}

// ivmModelFetcher prices sync payloads for both unit kinds: a replica
// unit ships its table's full append suffix; a view unit ships the suffix
// filtered by the view's selectivity and projected to its column
// fraction. Versions always count base rows, so both kinds share one
// cursor space — exactly the live wire contract.
type ivmModelFetcher struct {
	clock scheduler.Clock
	cfg   IVMConfig
}

func (f ivmModelFetcher) version() uint64 {
	return f.cfg.BaseRows + uint64(f.cfg.RowsPerMin*float64(f.clock.Now()))
}

// passed is the cumulative count of rows passing the view predicate among
// the first v base rows — a deterministic floor so successive deltas sum
// exactly to the snapshot.
func (f ivmModelFetcher) passed(v uint64) uint64 {
	return uint64(math.Floor(f.cfg.Selectivity * float64(v)))
}

func (f ivmModelFetcher) viewRowBytes() int64 {
	b := int64(math.Round(f.cfg.ColumnFraction * float64(f.cfg.RowBytes)))
	if b < 1 {
		b = 1
	}
	return b
}

func (f ivmModelFetcher) Snapshot(_ context.Context, id core.TableID) (replsync.Snapshot, error) {
	v := f.version()
	if _, isView := core.ViewOfUnit(id); isView {
		return replsync.Snapshot{
			Table:   relation.NewTable(string(id), relation.Schema{}),
			Version: v,
			Bytes:   int64(f.passed(v)) * f.viewRowBytes(),
		}, nil
	}
	return replsync.Snapshot{Version: v, Bytes: int64(v) * f.cfg.RowBytes}, nil
}

func (f ivmModelFetcher) Delta(_ context.Context, id core.TableID, cursor uint64) (replsync.Delta, error) {
	v := f.version()
	if cursor > v {
		return replsync.Delta{Resync: true}, nil
	}
	if _, isView := core.ViewOfUnit(id); isView {
		rows := f.passed(v) - f.passed(cursor)
		return replsync.Delta{
			Rows:    make([]relation.Row, rows),
			Version: v,
			Bytes:   int64(rows) * f.viewRowBytes(),
		}, nil
	}
	return replsync.Delta{Version: v, Bytes: int64(v-cursor) * f.cfg.RowBytes}, nil
}

// RunIVM executes the experiment: the identical aggregate-heavy skewed
// stream against a replica-only and a view-enabled source set.
func RunIVM(cfg IVMConfig) (IVMResult, error) {
	var res IVMResult
	if cfg.Tables < 2 || cfg.HotTables < 1 || cfg.HotTables >= cfg.Tables {
		return res, fmt.Errorf("bench: need at least one hot and one cold table, got %d/%d", cfg.HotTables, cfg.Tables)
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction >= 1 {
		return res, fmt.Errorf("bench: hot fraction %v outside (0, 1)", cfg.HotFraction)
	}
	if cfg.Selectivity <= 0 || cfg.Selectivity > 1 {
		return res, fmt.Errorf("bench: selectivity %v outside (0, 1]", cfg.Selectivity)
	}
	if cfg.ColumnFraction <= 0 || cfg.ColumnFraction > 1 {
		return res, fmt.Errorf("bench: column fraction %v outside (0, 1]", cfg.ColumnFraction)
	}
	if cfg.ViewProcessCL > cfg.ProcessCL {
		return res, fmt.Errorf("bench: view process CL %v exceeds replica process CL %v", cfg.ViewProcessCL, cfg.ProcessCL)
	}
	ro, err := runIVMVariant(cfg, false)
	if err != nil {
		return res, err
	}
	ve, err := runIVMVariant(cfg, true)
	if err != nil {
		return res, err
	}
	res.ReplicaOnly, res.ViewEnabled = ro, ve
	if ro.TotalIV > 0 {
		res.IVGainPct = (ve.TotalIV - ro.TotalIV) / ro.TotalIV * 100
	}
	if ro.SyncBytes > 0 {
		res.BytesSavedPct = (ro.SyncBytes - ve.SyncBytes) / ro.SyncBytes * 100
	}
	return res, nil
}

func runIVMVariant(cfg IVMConfig, viewEnabled bool) (IVMVariant, error) {
	var out IVMVariant
	s := sim.New()
	clock := scheduler.SimClock{Sim: s}
	mgr := replication.NewManager()
	// Unit per table: hot tables synchronize as views in the view-enabled
	// variant (same slot, projected bytes), as plain replicas otherwise.
	units := make([]core.TableID, cfg.Tables)
	for i := range units {
		if viewEnabled && i < cfg.HotTables {
			units[i] = core.ViewUnit(ivmViewID(i))
		} else {
			units[i] = syncTableID(i)
		}
	}
	tables := make([]replsync.TableConfig, cfg.Tables)
	for i, id := range units {
		tables[i] = replsync.TableConfig{ID: id, Period: cfg.Period}
		if err := mgr.Register(id, replication.Schedule{}); err != nil {
			return out, err
		}
	}
	reg := metrics.NewRegistry()
	agent, err := replsync.New(replsync.Config{
		Clock:   clock,
		Fetch:   ivmModelFetcher{clock: clock, cfg: cfg},
		Apply:   nopApplier{},
		Manager: mgr,
		Tables:  tables,
		Budget:  cfg.Budget,
		Stats:   reg,
	})
	if err != nil {
		return out, err
	}
	for _, tc := range tables {
		if err := agent.SyncNow(tc.ID); err != nil {
			return out, err
		}
	}
	agent.Start()

	// The skewed stream: identical arrivals and table choices in both
	// variants (seeded independently of the sync engine's behaviour).
	src := stats.NewSource(cfg.Seed)
	arrivals := make([]core.Time, cfg.NQueries)
	targets := make([]int, cfg.NQueries)
	at := core.Time(0)
	for i := range arrivals {
		at += src.Expo(float64(cfg.QueryMean))
		arrivals[i] = at
		if src.Float64() < cfg.HotFraction {
			targets[i] = src.Intn(cfg.HotTables)
		} else {
			targets[i] = cfg.HotTables + src.Intn(cfg.Tables-cfg.HotTables)
		}
	}

	var sls []float64
	for i := range arrivals {
		i := i
		s.ScheduleAt(arrivals[i], func() {
			now := s.Now()
			tableIdx := targets[i]
			unit := units[tableIdx]
			sl, ok := mgr.Staleness(unit, now)
			if !ok {
				sl = now
			}
			// Serving a pre-aggregated view answer is cheaper than
			// re-aggregating a replica — the CL the view collapses.
			cl := cfg.ProcessCL
			if _, isView := core.ViewOfUnit(unit); isView {
				cl = cfg.ViewProcessCL
			}
			lat := core.Latencies{CL: cl, SL: sl + cl}
			value := core.InformationValue(1, lat, cfg.Rates)
			out.TotalIV += value
			sls = append(sls, lat.SL)
			fresh := core.InformationValue(1, core.Latencies{CL: lat.CL}, cfg.Rates)
			agent.ObserveLoss([]core.TableID{unit}, fresh-value)
		})
	}
	s.RunUntil(arrivals[len(arrivals)-1] + 1)
	agent.Stop()

	if len(sls) != cfg.NQueries {
		return out, fmt.Errorf("bench: ivm variant scored %d of %d queries", len(sls), cfg.NQueries)
	}
	out.MeanSL = stats.Mean(sls)
	flat := reg.Flatten()
	out.Syncs = flat["syncs_total"]
	out.SyncBytes = flat["sync_bytes_total"]
	out.SyncDeferred = flat["sync_deferred_total"]
	out.ViewsMaterialized = flat["views_materialized_total"]
	out.ViewDeltaRows = flat["view_delta_rows_total"]
	out.ViewDeltaBytes = flat["view_delta_bytes_total"]
	return out, nil
}

// WriteJSON writes the machine-readable result.
func (r IVMResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Tables renders the experiment as a summary table.
func (r IVMResult) Tables() []Table {
	row := func(name string, v IVMVariant) []string {
		return []string{
			name,
			f3(v.TotalIV),
			f1(v.MeanSL),
			fmt.Sprintf("%.0f", v.Syncs),
			fmt.Sprintf("%.0f", v.SyncBytes),
			fmt.Sprintf("%.0f", v.SyncDeferred),
			fmt.Sprintf("%.0f", v.ViewsMaterialized),
			fmt.Sprintf("%.0f", v.ViewDeltaBytes),
		}
	}
	return []Table{{
		Title:   "Materialized views: replica-only vs view-enabled (aggregate-heavy skew)",
		Columns: []string{"variant", "total IV", "mean SL", "syncs", "bytes", "deferred", "materialized", "view delta bytes"},
		Rows: [][]string{
			row("replica-only", r.ReplicaOnly),
			row("view-enabled", r.ViewEnabled),
			{"gain", fmt.Sprintf("%+.1f%%", r.IVGainPct), "", "", fmt.Sprintf("-%.1f%%", r.BytesSavedPct), "", "", ""},
		},
	}}
}
