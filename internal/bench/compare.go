package bench

import (
	"fmt"
	"os"
	"sort"
)

// DefaultIVDropThreshold is the regression gate's tolerance: a scenario
// whose total IV falls by more than this fraction versus the baseline
// fails the gate.
const DefaultIVDropThreshold = 0.05

// Regression is one gate violation.
type Regression struct {
	Scenario string
	// OldIV and NewIV are the baseline and candidate totals; DropPct is
	// the relative drop in percent (positive = worse).
	OldIV, NewIV float64
	DropPct      float64
	// Missing marks a scenario present in the baseline but absent from the
	// candidate — silently dropping a scenario must not pass the gate.
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: present in baseline (total IV %.3f) but missing from candidate", r.Scenario, r.OldIV)
	}
	return fmt.Sprintf("%s: total IV %.3f -> %.3f (-%.1f%%)", r.Scenario, r.OldIV, r.NewIV, r.DropPct)
}

// CompareSuites diffs a candidate suite against a baseline: any scenario
// whose total IV drops by more than threshold (fractional; <=0 uses
// DefaultIVDropThreshold), or that disappears entirely, is a regression.
// Scenarios new in the candidate pass — growth is not a regression.
func CompareSuites(baseline, candidate ScenarioSuiteResult, threshold float64) []Regression {
	if threshold <= 0 {
		threshold = DefaultIVDropThreshold
	}
	byName := make(map[string]ScenarioResult, len(candidate.Scenarios))
	for _, s := range candidate.Scenarios {
		byName[s.Name] = s
	}
	var out []Regression
	for _, old := range baseline.Scenarios {
		cur, ok := byName[old.Name]
		if !ok {
			out = append(out, Regression{Scenario: old.Name, OldIV: old.TotalIV, Missing: true})
			continue
		}
		if old.TotalIV <= 0 {
			continue // nothing to regress from
		}
		drop := (old.TotalIV - cur.TotalIV) / old.TotalIV
		if drop > threshold {
			out = append(out, Regression{
				Scenario: old.Name,
				OldIV:    old.TotalIV,
				NewIV:    cur.TotalIV,
				DropPct:  drop * 100,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario < out[j].Scenario })
	return out
}

// CompareSuiteFiles loads two suite artifacts and diffs them.
func CompareSuiteFiles(baselinePath, candidatePath string, threshold float64) ([]Regression, error) {
	baseline, err := readSuiteFile(baselinePath)
	if err != nil {
		return nil, err
	}
	candidate, err := readSuiteFile(candidatePath)
	if err != nil {
		return nil, err
	}
	return CompareSuites(baseline, candidate, threshold), nil
}

func readSuiteFile(path string) (ScenarioSuiteResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScenarioSuiteResult{}, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	suite, err := ReadScenarioSuite(f)
	if err != nil {
		return suite, fmt.Errorf("bench: %s: %w", path, err)
	}
	return suite, nil
}
