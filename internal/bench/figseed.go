package bench

import "ivdss/internal/stats"

// FigSeed derives an independent experiment seed for one named figure
// from the sweep's base seed. Before this existed, `ivqp-bench -fig all`
// handed every figure the same base seed, so two figures whose drivers
// drew the same stream shapes sampled correlated randomness — and any
// reordering of the sweep silently changed nothing, while giving one
// figure an extra draw would have been invisible. A name-derived sub-seed
// makes each figure's stream a pure function of (base seed, figure name):
// adding, removing, or reordering figures never perturbs the others.
func FigSeed(base int64, fig string) int64 {
	return stats.SubSeed(base, "fig:"+fig)
}
