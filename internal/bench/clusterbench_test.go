package bench

import (
	"testing"

	"ivdss/internal/synth"
)

// clusterTestScenario is the cluster figure's scenario shrunk to unit-test
// size: still saturating (arrivals far past one shard's capacity) so
// shedding, stealing, and scaling all engage.
func clusterTestScenario(nQueries int) ClusterScenarioConfig {
	sc := ClusterScenario(true)
	sc.NQueries = nQueries
	sc.Seed = synth.SubSeedFor(17, sc.Name)
	return clusterKnobs(sc)
}

// TestOneShardClusterIsTheStandaloneEngine pins the twin-equivalence gate
// at full precision: a 1-shard cluster must replay the scenario through
// the identical world — same deployment, same replica set, same sync
// schedule, same engine decisions — as the standalone RunScenario path,
// bit for bit, not within a tolerance.
func TestOneShardClusterIsTheStandaloneEngine(t *testing.T) {
	knobs := clusterTestScenario(900)

	standalone, err := RunScenario(knobs.ScenarioConfig)
	if err != nil {
		t.Fatal(err)
	}
	cfg := knobs
	cfg.Shards = 1
	twin, err := RunClusterScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if standalone.Completed == 0 || standalone.Shed == 0 {
		t.Fatalf("scenario too tame (completed %d, shed %d): the twin proof must cover shedding",
			standalone.Completed, standalone.Shed)
	}
	if twin.Queries != standalone.Queries {
		t.Errorf("queries: cluster %d, standalone %d", twin.Queries, standalone.Queries)
	}
	if twin.Completed != standalone.Completed {
		t.Errorf("completed: cluster %d, standalone %d", twin.Completed, standalone.Completed)
	}
	if twin.Shed != standalone.Shed {
		t.Errorf("shed: cluster %d, standalone %d", twin.Shed, standalone.Shed)
	}
	if twin.Unplannable != standalone.Unplannable {
		t.Errorf("unplannable: cluster %d, standalone %d", twin.Unplannable, standalone.Unplannable)
	}
	if twin.TotalIV != standalone.TotalIV {
		t.Errorf("total IV: cluster %v, standalone %v — the worlds diverged", twin.TotalIV, standalone.TotalIV)
	}
	if twin.MeanCL != standalone.MeanCL || twin.P95CL != standalone.P95CL {
		t.Errorf("CL: cluster mean %v p95 %v, standalone mean %v p95 %v",
			twin.MeanCL, twin.P95CL, standalone.MeanCL, standalone.P95CL)
	}
	if twin.Stolen != 0 || twin.GossipRounds != 0 {
		t.Errorf("1-shard cluster did cluster work: %d steals, %d gossip rounds", twin.Stolen, twin.GossipRounds)
	}
}

// TestClusterScalingRecoversValue is the DES leg's smoke version of the
// scaling gate: under a saturating stream with fixed per-shard resources,
// four shards must deliver materially more total IV than one, and the
// cluster layer (gossip, stealing) must actually engage.
func TestClusterScalingRecoversValue(t *testing.T) {
	knobs := clusterTestScenario(1600)

	one := knobs
	one.Shards = 1
	r1, err := RunClusterScenario(one)
	if err != nil {
		t.Fatal(err)
	}
	four := knobs
	four.Shards = 4
	r4, err := RunClusterScenario(four)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Shed == 0 {
		t.Fatal("one shard sheds nothing: the stream is not saturating and the scaling claim is vacuous")
	}
	if r4.TotalIV < r1.TotalIV*1.3 {
		t.Errorf("4 shards delivered %.3f IV vs %.3f on 1 — no meaningful scaling", r4.TotalIV, r1.TotalIV)
	}
	if r4.GossipRounds == 0 {
		t.Error("no gossip rounds ran in the 4-shard cluster")
	}
	if r4.Stolen == 0 {
		t.Error("no work was stolen under saturation")
	}
	routed := 0
	for _, sr := range r4.PerShard {
		if sr.Routed > 0 {
			routed++
		}
	}
	if routed < 2 {
		t.Errorf("only %d of 4 shards received routed queries — the shard map collapsed", routed)
	}
}

// TestClusterTenantBudgetsFavorWeight: under saturation with 3:1 tenant
// weights, weighted fair shedding must deliver the heavier tenant more IV
// and shed it proportionally less.
func TestClusterTenantBudgetsFavorWeight(t *testing.T) {
	cfg := clusterTestScenario(1600)
	cfg.Shards = 2
	cfg.TenantWeights = map[string]float64{"gold": 3, "bronze": 1}
	res, err := RunClusterScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TenantIV == nil || res.TenantShed == nil {
		t.Fatal("tenant accounting missing")
	}
	gIV, bIV := res.TenantIV["gold"], res.TenantIV["bronze"]
	gShed, bShed := res.TenantShed["gold"], res.TenantShed["bronze"]
	if gShed+bShed == 0 {
		t.Fatal("nothing shed: weighted fairness never engaged")
	}
	if gIV <= bIV {
		t.Errorf("gold (weight 3) delivered %.3f IV, bronze (weight 1) %.3f — weights had no effect", gIV, bIV)
	}
	if gShed >= bShed {
		t.Errorf("gold shed %d ≥ bronze shed %d under a 3:1 weight split", gShed, bShed)
	}
}
