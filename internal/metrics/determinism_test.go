package metrics

import (
	"reflect"
	"testing"
)

// Flatten walks instruments in sorted name order; the export must be
// identical however the registry was populated and however many times
// it is taken.
func TestFlattenInsertionOrderInvariant(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for i, n := range names {
			r.Counter("c_" + n).Add(int64(i + 1))
			r.Gauge("g_" + n).Set(float64(i) / 2)
			r.Histogram("h_"+n, []float64{1, 10}).Observe(float64(i))
		}
		return r
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	reversed := []string{"delta", "gamma", "beta", "alpha"}
	// The counter/gauge values depend on insertion index, so rebuild the
	// reversed registry's instruments with the forward indices.
	a := build(names)
	b := NewRegistry()
	for _, n := range reversed {
		var i int
		for j, fn := range names {
			if fn == n {
				i = j
			}
		}
		b.Counter("c_" + n).Add(int64(i + 1))
		b.Gauge("g_" + n).Set(float64(i) / 2)
		b.Histogram("h_"+n, []float64{1, 10}).Observe(float64(i))
	}
	fa, fb := a.Flatten(), b.Flatten()
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("Flatten differs under insertion order:\n%v\n%v", fa, fb)
	}
	if again := a.Flatten(); !reflect.DeepEqual(fa, again) {
		t.Fatalf("Flatten not stable across calls:\n%v\n%v", fa, again)
	}
}
