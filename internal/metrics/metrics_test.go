package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("Value = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// ≤1: {0.5, 1}; ≤5: {3}; ≤10: {7}; +Inf: {100}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 5 || s.Sum != 111.5 {
		t.Errorf("count = %d, sum = %v", s.Count, s.Sum)
	}
	if got := s.Mean(); math.Abs(got-22.3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + .5) // values .5..9.5 uniformly
	}
	s := h.Snapshot()
	if q := s.Quantile(.5); q < 4 || q > 6 {
		t.Errorf("p50 = %v", q)
	}
	if q := s.Quantile(.95); q < 9 {
		t.Errorf("p95 = %v", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("p0 = %v, want first bucket bound", q)
	}
	empty := NewHistogram([]float64{1}).Snapshot()
	if empty.Quantile(.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean not 0")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestRegistryCreateOnDemand(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if r.Counter("a").Value() != 2 {
		t.Error("counter identity not stable")
	}
	r.Gauge("g").Set(7)
	r.Histogram("h", []float64{1, 10}).Observe(3)
	r.Histogram("h", nil).Observe(30) // existing: bounds ignored

	flat := r.Flatten()
	if flat["a"] != 2 || flat["g"] != 7 {
		t.Errorf("flat = %v", flat)
	}
	if flat["h_count"] != 2 || flat["h_sum"] != 33 {
		t.Errorf("histogram flat = %v", flat)
	}
	if _, ok := flat["h_p95"]; !ok {
		t.Error("p95 missing from flatten")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Set(float64(j))
				r.Histogram("lat", []float64{1, 10, 100}).Observe(float64(j % 50))
				if j%100 == 0 {
					r.Flatten()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("lat", nil).Snapshot().Count; got != 8000 {
		t.Errorf("observations = %d, want 8000", got)
	}
}

// TestHistogramConservation: bucket counts always sum to the observation
// count, for arbitrary inputs.
func TestHistogramConservation(t *testing.T) {
	f := func(values []float64) bool {
		h := NewHistogram([]float64{-10, 0, 10})
		for _, v := range values {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
		}
		s := h.Snapshot()
		var total int64
		for _, c := range s.Counts {
			total += c
		}
		return total == s.Count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
