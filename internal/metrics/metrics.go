// Package metrics is the DSS server's lightweight instrumentation:
// counters, gauges, and fixed-bucket histograms behind a registry, safe
// for concurrent use, exported as a flat name → value map over the wire
// protocol's status/metrics requests.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	sum    float64
	n      int64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. It panics on unsorted bounds: histogram layouts are static
// program configuration, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	cp := append([]float64{}, bounds...)
	return &Histogram{bounds: cp, counts: make([]int64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64{}, h.bounds...),
		Counts: append([]int64{}, h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// Mean returns the average observation, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile approximates the q-th quantile (0 < q < 1) assuming samples sit
// at their bucket's upper bound (+Inf bucket reports the largest bound).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry holds named instruments, created on first use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// if needed (bounds are ignored for an existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Flatten exports every instrument as name → value pairs: counters as-is,
// gauges as-is, histograms as `<name>_count`, `<name>_sum`, `<name>_mean`,
// `<name>_p50`, `<name>_p95`.
func (r *Registry) Flatten() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for _, name := range sortedKeys(r.counters) {
		out[name] = float64(r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		out[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.histograms) {
		s := r.histograms[name].Snapshot()
		out[name+"_count"] = float64(s.Count)
		out[name+"_sum"] = s.Sum
		out[name+"_mean"] = s.Mean()
		out[name+"_p50"] = s.Quantile(.5)
		out[name+"_p95"] = s.Quantile(.95)
	}
	return out
}

// sortedKeys returns m's keys in sorted order, so export walks the
// instruments deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
