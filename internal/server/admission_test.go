package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/netproto"
)

// Admission-control tests: the bounded queue + worker pool in front of
// Exec/Batch, value-horizon shedding on arrival, at pickup, and
// mid-execution, and the metrics that make each decision visible.

// startDSSWith starts a DSS with the caller's config (Remotes filled in)
// and returns it with its bound address.
func startDSSWith(t *testing.T, cfg DSSConfig) (*DSSServer, string) {
	t.Helper()
	dss, err := NewDSSServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })
	return dss, addr
}

func metricsOf(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindMetrics}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Metrics
}

// TestDSSAdmissionMetricsPresentAtZero: a -metrics dump on a fresh server
// already lists the shedding counters and queue gauge, so operators can
// tell "no shedding" apart from "not instrumented".
func TestDSSAdmissionMetricsPresentAtZero(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	m := metricsOf(t, dssAddr)
	for _, name := range []string{
		"queries_shed_total",
		"queries_cancelled_total",
		"queries_deadline_exceeded_total",
		"admission_queue_depth",
	} {
		v, ok := m[name]
		if !ok {
			t.Errorf("metric %s missing from fresh server", name)
		}
		if v != 0 {
			t.Errorf("metric %s = %v on fresh server, want 0", name, v)
		}
	}
}

// TestDSSShedsWorthlessQueryOnArrival: a query whose business value is
// already at or below epsilon has a zero horizon — it is refused before
// any planning or remote I/O, with the typed expiry visible to the client.
func TestDSSShedsWorthlessQueryOnArrival(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr) // default Epsilon .01

	start := time.Now()
	_, err := netproto.Call(dssAddr, &netproto.Request{
		Kind:          netproto.KindExec,
		SQL:           "SELECT count(*) AS n FROM trades",
		BusinessValue: .01, // == epsilon: worthless on arrival
	}, 5*time.Second)
	if err == nil {
		t.Fatal("worthless query succeeded")
	}
	var remote *netproto.RemoteError
	if !errors.As(err, &remote) || !remote.Expired {
		t.Fatalf("error %v, want expired RemoteError", err)
	}
	if !strings.Contains(err.Error(), "projected-completion") {
		t.Errorf("error %q does not name the shed reason", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %v, should be immediate", elapsed)
	}
	if m := metricsOf(t, dssAddr); m["queries_shed_total"] < 1 {
		t.Errorf("queries_shed_total = %v, want ≥ 1", m["queries_shed_total"])
	}
}

// TestDSSQueueFullShedsEvenWithValueSheddingDisabled: a negative Epsilon
// turns value-based shedding off, but the admission queue stays bounded —
// arrivals beyond Workers+QueueDepth are refused, not buffered forever.
func TestDSSQueueFullShedsEvenWithValueSheddingDisabled(t *testing.T) {
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	remote.SetScanDelay(400 * time.Millisecond) // keep workers busy
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:    map[core.SiteID]string{1: remoteAddr},
		Rates:      core.DiscountRates{CL: .05, SL: .05},
		TimeScale:  10,
		Workers:    1,
		QueueDepth: 1,
		Epsilon:    -1, // value shedding off; the queue bound still holds
	})

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// trades is unreplicated, so every execution pays the remote
			// scan delay and occupies its worker for ~400ms.
			_, err := netproto.Call(dssAddr, &netproto.Request{
				Kind: netproto.KindExec,
				SQL:  "SELECT count(*) AS n FROM trades",
			}, 10*time.Second)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)

	completed, queueFull := 0, 0
	for err := range errs {
		if err == nil {
			completed++
			continue
		}
		var remote *netproto.RemoteError
		if errors.As(err, &remote) && remote.Expired && strings.Contains(err.Error(), "queue-full") {
			queueFull++
			continue
		}
		t.Errorf("unexpected error: %v", err)
	}
	// Capacity is 1 running + 1 queued; of 6 simultaneous arrivals at
	// least 4 overflow (completions can admit a later retry-free arrival,
	// but the burst outnumbers every slot that can free in time).
	if completed == 0 {
		t.Error("no query completed")
	}
	if queueFull == 0 {
		t.Error("no query was shed queue-full")
	}
	if m := metricsOf(t, dssAddr); m["queries_shed_total"] != float64(queueFull) {
		t.Errorf("queries_shed_total = %v, want %d", m["queries_shed_total"], queueFull)
	}
}

// TestDSSShedsOnProjectedCompletion: once the service-time EWMA knows
// queries take longer than a new arrival's value horizon, the arrival is
// shed up front instead of being executed into worthlessness.
func TestDSSShedsOnProjectedCompletion(t *testing.T) {
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	remote.SetScanDelay(600 * time.Millisecond)
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		Workers:   1,
		Epsilon:   .5,
	})

	// Warm the EWMA: one full-value query completes in ~600ms (horizon
	// ln(.5)/ln(.95) ≈ 13.5 experiment minutes ≈ 1.35 s wall at scale 10).
	if _, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: 1,
	}, 10*time.Second); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}

	// A low-value arrival: horizon ln(.5/.6)/ln(.95) ≈ 3.6 experiment
	// minutes ≈ .36 s wall — under the learned ~.6 s service time.
	start := time.Now()
	_, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: .6,
	}, 10*time.Second)
	if err == nil {
		t.Fatal("doomed query was admitted and completed")
	}
	var remoteErr *netproto.RemoteError
	if !errors.As(err, &remoteErr) || !remoteErr.Expired {
		t.Fatalf("error %v, want expired RemoteError", err)
	}
	if !strings.Contains(err.Error(), "projected-completion") {
		t.Errorf("error %q, want projected-completion shed", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("projected-completion shed took %v, should not wait", elapsed)
	}
}

// TestDSSShedsExpiredQueuedQuery: a query admitted behind a slow
// predecessor whose horizon passes while it waits is shed at worker
// pickup, recorded as a shed (not a mid-execution cancellation).
func TestDSSShedsExpiredQueuedQuery(t *testing.T) {
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	remote.SetScanDelay(700 * time.Millisecond)
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		Workers:   1,
		Epsilon:   .5,
	})

	// A (bv 1, horizon ≈ 1.35 s wall) occupies the single worker ~700ms.
	slowDone := make(chan error, 1)
	go func() {
		_, err := netproto.Call(dssAddr, &netproto.Request{
			Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: 1,
		}, 10*time.Second)
		slowDone <- err
	}()
	time.Sleep(150 * time.Millisecond) // let A reach the worker

	// B (bv .6, horizon ≈ .36 s wall) queues behind A and expires there.
	_, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: .6,
	}, 10*time.Second)
	if err == nil {
		t.Fatal("queued query whose horizon passed still completed")
	}
	var remoteErr *netproto.RemoteError
	if !errors.As(err, &remoteErr) || !remoteErr.Expired {
		t.Fatalf("error %v, want expired RemoteError", err)
	}
	if !strings.Contains(err.Error(), "expired-queued") {
		t.Errorf("error %q, want expired-queued shed", err)
	}
	if aErr := <-slowDone; aErr != nil {
		t.Errorf("the slow but valuable predecessor failed: %v", aErr)
	}
	m := metricsOf(t, dssAddr)
	if m["queries_shed_total"] < 1 {
		t.Errorf("queries_shed_total = %v, want ≥ 1", m["queries_shed_total"])
	}
}

// TestDSSChaosShortHorizonAgainstBlackholedSite is the headline chaos
// scenario: a remote site black-holes (connects but never answers) and a
// short-horizon query over its unreplicated table must come back with the
// typed value expiry within ~2× the horizon — instead of hanging for the
// full dial timeout and retry budget — with the shedding counters visible
// over the metrics endpoint.
func TestDSSChaosShortHorizonAgainstBlackholedSite(t *testing.T) {
	_, siteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	proxy := faults.NewProxy(siteAddr, 1)
	if _, err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	dss, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:     map[core.SiteID]string{1: proxy.Addr()},
		Rates:       core.DiscountRates{CL: .05, SL: .05},
		TimeScale:   10,
		DialTimeout: 5 * time.Second, // far beyond the horizon: the horizon must win
		Epsilon:     .5,
	})

	// Kill the site: new connections black-hole, established ones are cut.
	proxy.SetMode(faults.ModeBlackhole, 0)
	proxy.Sever()

	// bv 1, ε .5: horizon = ln(.5)/ln(.95) ≈ 13.5 experiment minutes,
	// ≈ 1.35 s wall at TimeScale 10.
	q := core.Query{BusinessValue: 1}
	horizonWall := dss.wallDelay(q.ValueHorizon(dss.cfg.Rates, dss.cfg.Epsilon))

	start := time.Now()
	_, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: 1,
	}, 30*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against black-holed site succeeded")
	}
	var remoteErr *netproto.RemoteError
	if !errors.As(err, &remoteErr) || !remoteErr.Expired {
		t.Fatalf("error %v, want expired RemoteError carrying the value expiry", err)
	}
	if !strings.Contains(err.Error(), "value expired") {
		t.Errorf("error %q does not carry the typed value expiry", err)
	}
	if elapsed < horizonWall/2 {
		t.Errorf("returned in %v, before the %v horizon could fire", elapsed, horizonWall)
	}
	if elapsed > 2*horizonWall {
		t.Errorf("returned in %v, more than 2× the %v horizon", elapsed, horizonWall)
	}

	// The cancellation is visible in the metrics the ISSUE promises, and a
	// worthless follow-up arrival ticks the shed counter too.
	_, _ = netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades", BusinessValue: .4,
	}, 5*time.Second)
	m := metricsOf(t, dssAddr)
	if m["queries_cancelled_total"] < 1 {
		t.Errorf("queries_cancelled_total = %v, want ≥ 1", m["queries_cancelled_total"])
	}
	if m["queries_shed_total"] < 1 {
		t.Errorf("queries_shed_total = %v, want ≥ 1", m["queries_shed_total"])
	}
}

// TestDSSWireDeadlineCountsAsDeadlineExceeded: a client that stamps a wire
// budget and stops waiting is recorded as a deadline expiry, distinct from
// value-based cancellation.
func TestDSSWireDeadlineCountsAsDeadlineExceeded(t *testing.T) {
	_, siteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	proxy := faults.NewProxy(siteAddr, 1)
	if _, err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:     map[core.SiteID]string{1: proxy.Addr()},
		Rates:       core.DiscountRates{CL: .05, SL: .05},
		TimeScale:   10,
		DialTimeout: 5 * time.Second,
		Epsilon:     -1, // no value shedding: only the wire budget bounds the call
	})
	proxy.SetMode(faults.ModeBlackhole, 0)
	proxy.Sever()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := netproto.CallContext(ctx, dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades",
	}, 10*time.Second)
	// Either the client's own context fires first, or the server notices
	// the budget expiry and its expired response wins the race back.
	var remoteErr *netproto.RemoteError
	if !errors.Is(err, context.DeadlineExceeded) && !(errors.As(err, &remoteErr) && remoteErr.Expired) {
		t.Fatalf("client error %v, want DeadlineExceeded or expired RemoteError", err)
	}
	// The server noticed the budget expiry on its side too.
	eventually(t, 5*time.Second, "queries_deadline_exceeded_total ticks", func() bool {
		return metricsOf(t, dssAddr)["queries_deadline_exceeded_total"] >= 1
	})
}

// TestDSSConcurrentBatchesThroughWorkerPool drives several batches and ad
// hoc queries through the admission queue at once; everything must answer
// correctly. Run under -race this exercises the worker pool, the EWMA, and
// the shared metrics registry for data races.
func TestDSSConcurrentBatchesThroughWorkerPool(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:         map[core.SiteID]string{1: remoteAddr},
		Replicate:       map[core.TableID]time.Duration{"accounts": 200 * time.Millisecond},
		Rates:           core.DiscountRates{CL: .05, SL: .05},
		TimeScale:       10,
		ScheduleHorizon: 20 * time.Second,
		Workers:         4,
	})

	batch := &netproto.Request{
		Kind: netproto.KindBatch,
		Batch: []netproto.BatchQuery{
			{SQL: "SELECT count(*) AS n FROM accounts", BusinessValue: 1},
			{SQL: "SELECT sum(t_amount) AS s FROM trades", BusinessValue: 1},
		},
	}
	exec := &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT a_id FROM accounts ORDER BY a_id", BusinessValue: 1,
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp, err := netproto.Call(dssAddr, batch, 30*time.Second)
			if err == nil {
				for _, item := range resp.Batch {
					if item.Err != "" {
						err = errors.New(item.Err)
						break
					}
				}
			}
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := netproto.Call(dssAddr, exec, 30*time.Second)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent request failed: %v", err)
		}
	}
	m := metricsOf(t, dssAddr)
	if m["batches_total"] != 4 {
		t.Errorf("batches_total = %v, want 4", m["batches_total"])
	}
}
