package server

import (
	"sync"

	"ivdss/internal/netproto"
)

// connSet tracks a server's live client connections so Close can unblock
// handler goroutines parked in ReadRequest: pooled clients (netproto.Pool)
// keep idle connections open indefinitely, so waiting for them to hang up
// would deadlock shutdown.
type connSet struct {
	mu    sync.Mutex
	conns map[*netproto.Conn]bool
}

func (cs *connSet) add(c *netproto.Conn) {
	cs.mu.Lock()
	if cs.conns == nil {
		cs.conns = make(map[*netproto.Conn]bool)
	}
	cs.conns[c] = true
	cs.mu.Unlock()
}

func (cs *connSet) remove(c *netproto.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

// closeAll force-closes every tracked connection.
func (cs *connSet) closeAll() {
	cs.mu.Lock()
	for c := range cs.conns {
		//lint:allow detordercheck(force-closing every tracked conn commutes; conns have no sort key)
		_ = c.Close() // teardown: reset-on-close is the point
	}
	cs.mu.Unlock()
}
