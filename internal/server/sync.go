package server

import (
	"context"
	"fmt"

	"ivdss/internal/advisor"
	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/replsync"
)

// Live replication: the DSS wires the replsync engine to its remote sites.
// The fetcher speaks the versioned netproto replication kinds through the
// full fault-tolerance stack (pool, retries, breaker), so a sync against a
// site whose breaker is open surfaces faults.OpenError and the agent
// defers the cycle instead of burning retries. The applier swaps replica
// snapshots copy-on-write under the server lock, stamping the same instant
// into the replication manager, so planner freshness and replica contents
// never disagree.

// siteFetcher implements replsync.Fetcher over the wire.
type siteFetcher struct{ s *DSSServer }

// wireTarget resolves a sync unit to what travels on the wire: a replica
// unit pulls its own base table whole; a view unit pulls its base table
// with the view's delta projection (filter + column subset) applied at
// the base site, so only relevant bytes cross.
func (f siteFetcher) wireTarget(id core.TableID) (table core.TableID, filter string, columns []string, err error) {
	if vid, ok := core.ViewOfUnit(id); ok {
		vs, err := f.s.viewByID(vid)
		if err != nil {
			return "", "", nil, err
		}
		return vs.def.Table, vs.filter, vs.columns, nil
	}
	return id, "", nil, nil
}

func (f siteFetcher) Snapshot(ctx context.Context, id core.TableID) (replsync.Snapshot, error) {
	s := f.s
	table, filter, columns, err := f.wireTarget(id)
	if err != nil {
		return replsync.Snapshot{}, err
	}
	site, err := s.catalog.Placement().SiteOf(table)
	if err != nil {
		return replsync.Snapshot{}, err
	}
	req := &netproto.Request{Kind: netproto.KindSnapshot, Table: string(table), Filter: filter, Columns: columns}
	resp, err := s.callSite(ctx, site, req)
	if err != nil {
		return replsync.Snapshot{}, err
	}
	return replsync.Snapshot{
		Table:   resp.Result,
		Version: resp.Version,
		Bytes:   resp.Result.SizeBytes(),
	}, nil
}

func (f siteFetcher) Delta(ctx context.Context, id core.TableID, cursor uint64) (replsync.Delta, error) {
	s := f.s
	table, filter, columns, err := f.wireTarget(id)
	if err != nil {
		return replsync.Delta{}, err
	}
	site, err := s.catalog.Placement().SiteOf(table)
	if err != nil {
		return replsync.Delta{}, err
	}
	req := &netproto.Request{Kind: netproto.KindDelta, Table: string(table), Cursor: cursor, Filter: filter, Columns: columns}
	resp, err := s.callSite(ctx, site, req)
	if err != nil {
		return replsync.Delta{}, err
	}
	return replsync.Delta{
		Rows:    resp.DeltaRows,
		Version: resp.Version,
		Bytes:   rowsBytes(resp.DeltaRows),
		Resync:  resp.Resync,
	}, nil
}

// rowsBytes prices a row slice the way Table.SizeBytes prices a table.
func rowsBytes(rows []relation.Row) int64 {
	var size int64
	for _, r := range rows {
		for _, v := range r {
			if v.T == relation.Str {
				size += int64(len(v.S))
			} else {
				size += 8
			}
		}
	}
	return size
}

// replicaApplier implements replsync.Applier over the server's replica
// store. Every apply is an atomic swap under s.mu, so readers see either
// the old or the new copy, never a half-applied one.
type replicaApplier struct{ s *DSSServer }

func (ap replicaApplier) ApplySnapshot(id core.TableID, snap replsync.Snapshot, at core.Time) error {
	if vid, ok := core.ViewOfUnit(id); ok {
		return ap.applyViewSnapshot(vid, snap, at)
	}
	if snap.Table == nil {
		return fmt.Errorf("server: snapshot of %s carried no table", id)
	}
	snap.Table.Name = string(id)
	s := ap.s
	s.mu.Lock()
	s.replicas[id] = replicaSnapshot{table: snap.Table, syncedAt: at}
	s.mu.Unlock()
	s.stats.Counter("replica_syncs_total").Inc()
	return nil
}

func (ap replicaApplier) ApplyDelta(id core.TableID, delta replsync.Delta, at core.Time) error {
	if vid, ok := core.ViewOfUnit(id); ok {
		return ap.applyViewDelta(vid, delta, at)
	}
	s := ap.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.replicas[id]
	if !ok {
		return fmt.Errorf("server: delta for %s but no replica snapshot", id)
	}
	if len(delta.Rows) == 0 {
		// Nothing changed upstream: same contents, fresher stamp.
		s.replicas[id] = replicaSnapshot{table: cur.table, syncedAt: at}
	} else {
		// Copy-on-write: in-flight queries hold the old pointer; the
		// appended copy swaps in whole.
		next := cur.table.Clone()
		for i, row := range delta.Rows {
			if err := next.Insert(row); err != nil {
				return fmt.Errorf("server: delta row %d for %s: %w", i, id, err)
			}
		}
		s.replicas[id] = replicaSnapshot{table: next, syncedAt: at}
	}
	s.stats.Counter("replica_syncs_total").Inc()
	return nil
}

func (ap replicaApplier) Drop(id core.TableID) {
	if vid, ok := core.ViewOfUnit(id); ok {
		ap.s.dropView(vid)
		return
	}
	s := ap.s
	s.mu.Lock()
	delete(s.replicas, id)
	s.mu.Unlock()
}

// recentQueries is the sliding window of executed queries the placement
// review scores replica sets against.
const recentQueriesCap = 32

// minPlacementWorkload is how many recent queries the placer needs before
// it will second-guess the configured replica set.
const minPlacementWorkload = 8

// noteRecentQuery records an executed query for the placer's workload
// window.
func (s *DSSServer) noteRecentQuery(q core.Query) {
	s.recentMu.Lock()
	defer s.recentMu.Unlock()
	if len(s.recent) < recentQueriesCap {
		s.recent = append(s.recent, q)
	} else {
		s.recent[s.recentIdx%recentQueriesCap] = q
	}
	s.recentIdx++
}

// recentWindow copies the current workload window.
func (s *DSSServer) recentWindow() []core.Query {
	s.recentMu.Lock()
	defer s.recentMu.Unlock()
	return append([]core.Query{}, s.recent...)
}

// advisorPlacer implements replsync.Placer with the replica-selection
// advisor scored over the server's recent query window.
type advisorPlacer struct{ s *DSSServer }

func (p advisorPlacer) Recommend(current []core.TableID) ([]core.TableID, error) {
	s := p.s
	queries := s.recentWindow()
	if len(queries) < minPlacementWorkload || len(current) == 0 {
		return current, nil
	}
	// The advisor scores against a mean sync period; use the mean of the
	// cadences currently in force.
	var meanPeriod core.Duration
	for _, st := range s.sync.Status() {
		meanPeriod += st.Period
	}
	meanPeriod /= core.Duration(len(current))
	adv, err := advisor.New(advisor.Config{
		Cost:     s.costs,
		Rates:    s.cfg.Rates,
		SyncMean: meanPeriod,
		Horizon:  s.cfg.PlannerHorizon,
		Samples:  4,
		Seed:     1,
	})
	if err != nil {
		return nil, err
	}
	// Every registered view competes for sync slots alongside table
	// replicas: promotion materializes a view the workload would answer
	// from, demotion drops one that stopped earning its slot.
	var views []advisor.ViewCandidate
	for _, def := range s.catalog.Views() {
		views = append(views, advisor.ViewCandidate{ID: def.ID, QueryID: def.QueryID, Table: def.Table})
	}
	// Same sync budget: the review re-places, it does not grow the set.
	rec, err := adv.RecommendSources(queries, s.catalog.Placement(), views, len(current))
	if err != nil {
		return nil, err
	}
	units := rec.Units()
	if len(units) == 0 {
		return current, nil
	}
	return units, nil
}

// newSyncAgent wires the replication engine for this server's configured
// replica set. Periods, budget, and the adjust interval convert from
// wall-clock config to experiment minutes.
func (s *DSSServer) newSyncAgent() (*replsync.Agent, error) {
	tables := make([]replsync.TableConfig, 0, len(s.cfg.Replicate)+len(s.views))
	for _, id := range sortedKeys(s.cfg.Replicate) {
		tables = append(tables, replsync.TableConfig{
			ID:     id,
			Period: s.cfg.Replicate[id].Seconds() * s.cfg.TimeScale,
		})
	}
	// Views are synchronized units too: same agent, same budget, same
	// cadence controller — their cycles just ship projected deltas.
	for _, def := range s.catalog.Views() {
		vs, err := s.viewByID(def.ID)
		if err != nil {
			return nil, err
		}
		tables = append(tables, replsync.TableConfig{
			ID:     core.ViewUnit(def.ID),
			Period: vs.period.Seconds() * s.cfg.TimeScale,
		})
	}
	cfg := replsync.Config{
		Clock:   s.clock,
		Fetch:   siteFetcher{s},
		Apply:   replicaApplier{s},
		Manager: s.catalog.Replication(),
		Context: s.baseCtx,
		Tables:  tables,
		// Bytes per wall-second → bytes per experiment minute.
		Budget:      s.cfg.SyncBudget / s.cfg.TimeScale,
		Adaptive:    s.cfg.AdaptiveSync,
		AdjustEvery: s.cfg.SyncAdjustEvery.Seconds() * s.cfg.TimeScale,
		Stats:       s.stats,
	}
	if s.cfg.AdaptiveSync {
		cfg.Placer = advisorPlacer{s}
	}
	return replsync.New(cfg)
}

// syncStatuses maps the agent's per-table state into the wire status
// shape, keyed by table.
func (s *DSSServer) syncStatuses(now core.Time) map[core.TableID]netproto.ReplicaStatus {
	if s.sync == nil {
		return nil
	}
	out := make(map[core.TableID]netproto.ReplicaStatus)
	for _, st := range s.sync.Status() {
		rs := netproto.ReplicaStatus{
			Table:              string(st.Table),
			PeriodMinutes:      st.Period,
			Cursor:             st.Cursor,
			LastSyncAgeMinutes: -1,
			NextSyncMinutes:    -1,
		}
		if st.LastSync >= 0 {
			rs.LastSyncAgeMinutes = now - st.LastSync
		}
		if st.NextAt >= 0 {
			rs.NextSyncMinutes = st.NextAt - now
		}
		out[st.Table] = rs
	}
	return out
}

// syncLossObserver feeds the cadence controller: the erosion of the
// (1−λSL)^SL factor of one report, attributed to the replicas its plan
// read.
func (s *DSSServer) observeSyncLoss(plan core.Plan, value float64, lat core.Latencies) {
	if s.sync == nil {
		return
	}
	var units []core.TableID
	for _, a := range plan.Access {
		switch a.Kind {
		case core.AccessReplica:
			units = append(units, a.Table)
		case core.AccessView:
			units = append(units, core.ViewUnit(a.View))
		}
	}
	if len(units) == 0 {
		return
	}
	fresh := core.InformationValue(plan.Query.BusinessValue, core.Latencies{CL: lat.CL}, s.cfg.Rates)
	if loss := fresh - value; loss > 0 {
		s.sync.ObserveLoss(units, loss)
	}
}
