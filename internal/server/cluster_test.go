package server

import (
	"net"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
)

// freeAddr reserves a loopback address for a server that must know its
// peers' addresses before any of them has started listening.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startShard builds one clustered DSS front-end against the shared remote.
func startShard(t *testing.T, remoteAddr string, id int, addr string, peers map[int]string, highWater int) *DSSServer {
	t.Helper()
	dss, err := NewDSSServer(DSSConfig{
		Remotes:         map[core.SiteID]string{1: remoteAddr},
		Replicate:       map[core.TableID]time.Duration{"accounts": 200 * time.Millisecond},
		Rates:           core.DiscountRates{CL: .05, SL: .05},
		TimeScale:       10,
		ScheduleHorizon: 20 * time.Second,
		MaxDelay:        time.Second,
		ShardID:         id,
		Peers:           peers,
		GossipInterval:  50 * time.Millisecond,
		StealHighWater:  highWater,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dss.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })
	return dss
}

// TestClusterGossipOverWire: two live shards exchange digests over
// netproto KindGossip until each holds a fresh view of the other, with the
// replicated tables visible as steal coverage.
func TestClusterGossipOverWire(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	addr0, addr1 := freeAddr(t), freeAddr(t)
	s0 := startShard(t, remoteAddr, 0, addr0, map[int]string{1: addr1}, 0)
	s1 := startShard(t, remoteAddr, 1, addr1, map[int]string{0: addr0}, 0)

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, ok0 := s0.gossiper.Table().Peer(1)
		_, ok1 := s1.gossiper.Table().Peer(0)
		if ok0 && ok1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip never converged: s0 sees s1 %v, s1 sees s0 %v", ok0, ok1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	view, _ := s0.gossiper.Table().Peer(1)
	if view.Version == 0 {
		t.Error("peer view carries no version")
	}
	if _, ok := view.Freshness["accounts"]; !ok {
		t.Errorf("peer freshness %v does not cover the replicated table", view.Freshness)
	}
	if v := s0.stats.Flatten()["gossip_rounds_total"]; v == 0 {
		t.Error("no gossip rounds counted")
	}
}

// TestClusterGossipHandlerAnswersDigest: the KindGossip wire handler
// merges the caller's digest and answers with this shard's own.
func TestClusterGossipHandlerAnswersDigest(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	addr0 := freeAddr(t)
	// The peer never starts: only the handler side is under test.
	s0 := startShard(t, remoteAddr, 0, addr0, map[int]string{1: freeAddr(t)}, 0)

	resp, err := netproto.Call(addr0, &netproto.Request{
		Kind: netproto.KindGossip,
		Gossip: &netproto.GossipDigest{
			Node:       1,
			Version:    41,
			QueueDepth: 6,
			Freshness:  map[string]float64{"accounts": 3},
		},
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Gossip == nil || resp.Gossip.Node != 0 || resp.Gossip.Version == 0 {
		t.Fatalf("reply digest = %+v, want shard 0's own state", resp.Gossip)
	}
	view, ok := s0.gossiper.Table().Peer(1)
	if !ok || view.Version != 41 || view.QueueDepth != 6 {
		t.Fatalf("handler did not merge the caller's digest: %+v ok=%v", view, ok)
	}
	// A non-clustered server refuses the kind instead of crashing.
	_, standaloneAddr := startRemote(t, accountsTable(t))
	dss, err := NewDSSServer(DSSConfig{
		Remotes:   map[core.SiteID]string{1: standaloneAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	plainAddr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })
	resp, err = netproto.Call(plainAddr, &netproto.Request{Kind: netproto.KindGossip, Gossip: &netproto.GossipDigest{Node: 1, Version: 1}}, 2*time.Second)
	if err == nil && resp.Err == "" {
		t.Error("non-clustered server answered a gossip exchange")
	}
}

// TestForwardedRequestServedLocally: a stolen (Forwarded) request must be
// admitted by the receiver no matter its own steal settings — one hop,
// never a chain — and counted as a steal-in.
func TestForwardedRequestServedLocally(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	addr0 := freeAddr(t)
	// StealHighWater 1 with an unreachable peer: if the Forwarded guard
	// failed, the request would try to bounce and fail.
	s0 := startShard(t, remoteAddr, 0, addr0, map[int]string{1: freeAddr(t)}, 1)

	resp, err := netproto.Call(addr0, &netproto.Request{
		Kind:          netproto.KindExec,
		SQL:           `SELECT a_id, a_balance FROM accounts ORDER BY a_id`,
		BusinessValue: 1,
		Forwarded:     true,
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Result.NumRows() != 2 {
		t.Fatalf("rows = %d", resp.Result.NumRows())
	}
	flat := s0.stats.Flatten()
	if flat["steals_in_total"] != 1 {
		t.Errorf("steals_in_total = %v, want 1", flat["steals_in_total"])
	}
	if flat["steals_out_total"] != 0 {
		t.Errorf("steals_out_total = %v, want 0 — a forwarded request must never re-steal", flat["steals_out_total"])
	}
}
