// Package server implements the live deployment: RemoteServer is a branch
// database server holding base tables; DSSServer is the local federation
// server that maintains replicas on synchronization cycles, plans queries
// by information value, and answers clients over TCP.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/sqlmini"

	"ivdss/internal/wall"
)

// RemoteServer serves base tables: scans for replication pulls, local SQL
// execution (query pushdown), and row inserts that stand in for branch
// OLTP traffic.
type RemoteServer struct {
	mu     sync.RWMutex
	tables map[string]*relation.Table
	// scanDelay simulates WAN latency on every scan and exec; loopback
	// demos use it so remote reads genuinely cost more than replicas.
	scanDelay time.Duration
	// requestTimeout is a server-side cap on each request's work,
	// composed with (never extending) the caller's wire deadline.
	requestTimeout time.Duration

	listener  net.Listener
	live      connSet
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewRemoteServer returns a server with no tables.
func NewRemoteServer() *RemoteServer {
	return &RemoteServer{
		tables: make(map[string]*relation.Table),
		closed: make(chan struct{}),
	}
}

// SetScanDelay makes every scan and query execution pause for d first,
// simulating WAN distance. Call before Listen.
func (s *RemoteServer) SetScanDelay(d time.Duration) { s.scanDelay = d }

// SetRequestTimeout caps the work spent on any single request at d,
// regardless of the deadline the caller stamped on the wire — protection
// against clients that ask for unbounded scans. The caller's own budget
// still applies when it is shorter. Zero means no cap. Call before Listen.
func (s *RemoteServer) SetRequestTimeout(d time.Duration) { s.requestTimeout = d }

// AddTable installs a base table (before or after Serve).
func (s *RemoteServer) AddTable(t *relation.Table) error {
	name := strings.ToLower(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("server: table %s already installed", name)
	}
	s.tables[name] = t
	return nil
}

// Tables lists the installed table names, sorted.
func (s *RemoteServer) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Listen binds the server to addr (use "127.0.0.1:0" for an ephemeral
// port) and starts serving in the background. It returns the bound
// address.
func (s *RemoteServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return l.Addr().String(), nil
}

func (s *RemoteServer) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("server: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			conn := netproto.NewConn(raw)
			s.live.add(conn)
			defer s.live.remove(conn)
			s.handleConn(conn)
		}()
	}
}

func (s *RemoteServer) handleConn(conn *netproto.Conn) {
	defer conn.Close()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			return // EOF or broken pipe: the client is done
		}
		resp := s.handle(req)
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}

func (s *RemoteServer) handle(req *netproto.Request) *netproto.Response {
	// The wire deadline the caller stamped on the request bounds this
	// server's work too: a coordinator that has stopped waiting must not
	// keep a branch server scanning on its behalf. The server's own
	// request cap layers underneath, so context.WithTimeout keeps
	// whichever deadline is sooner.
	base := context.Background() //lint:allow ctxcheck(TCP request root: remote callers ship their budget on the wire, decoded below)
	if s.requestTimeout > 0 {
		var capCancel context.CancelFunc
		base, capCancel = context.WithTimeout(base, s.requestTimeout)
		defer capCancel()
	}
	ctx, cancel := req.BudgetContext(base)
	defer cancel()

	switch req.Kind {
	case netproto.KindPing:
		return &netproto.Response{}

	case netproto.KindTables:
		return &netproto.Response{Tables: s.Tables()}

	case netproto.KindScan:
		if err := s.waitScanDelay(ctx); err != nil {
			return &netproto.Response{Err: err.Error(), Expired: true}
		}
		s.mu.RLock()
		t, ok := s.tables[strings.ToLower(req.Table)]
		var snapshot *relation.Table
		if ok {
			snapshot = t.Clone()
		}
		s.mu.RUnlock()
		if !ok {
			return &netproto.Response{Err: fmt.Sprintf("no table %q", req.Table)}
		}
		return &netproto.Response{Result: snapshot}

	case netproto.KindSnapshot:
		// A versioned full copy for replication: the version is the row
		// count, which is a complete change cursor because base tables are
		// append-only (Insert is the only mutation). A view pull carries a
		// delta projection (Filter/Columns); the version still counts base
		// rows so filtered and unfiltered pulls share one cursor space.
		if err := s.waitScanDelay(ctx); err != nil {
			return &netproto.Response{Err: err.Error(), Expired: true}
		}
		s.mu.RLock()
		t, ok := s.tables[strings.ToLower(req.Table)]
		var snapshot *relation.Table
		if ok {
			snapshot = t.Clone()
		}
		s.mu.RUnlock()
		if !ok {
			return &netproto.Response{Err: fmt.Sprintf("no table %q", req.Table)}
		}
		version := uint64(snapshot.NumRows())
		if req.Filter != "" || req.Columns != nil {
			shipped, err := projectForWire(ctx, snapshot, snapshot.Rows, req.Filter, req.Columns)
			if err != nil {
				return &netproto.Response{Err: err.Error(), Expired: ctx.Err() != nil}
			}
			snapshot = shipped
		}
		return &netproto.Response{Result: snapshot, Version: version}

	case netproto.KindDelta:
		// The change set since the caller's cursor: the appended row
		// suffix. A cursor ahead of the table means the caller's history is
		// no longer valid here (e.g. this site restarted with fewer rows) —
		// answer Resync so it falls back to a full snapshot.
		if err := s.waitScanDelay(ctx); err != nil {
			return &netproto.Response{Err: err.Error(), Expired: true}
		}
		s.mu.RLock()
		t, ok := s.tables[strings.ToLower(req.Table)]
		var version uint64
		var rows []relation.Row
		var schema *relation.Table
		resync := false
		if ok {
			version = uint64(t.NumRows())
			if req.Cursor > version {
				resync = true
			} else {
				tail := t.Rows[req.Cursor:]
				rows = make([]relation.Row, len(tail))
				for i, r := range tail {
					rows[i] = r.Clone()
				}
				schema = t
			}
		}
		s.mu.RUnlock()
		if !ok {
			return &netproto.Response{Err: fmt.Sprintf("no table %q", req.Table)}
		}
		if !resync && (req.Filter != "" || req.Columns != nil) {
			shipped, err := projectForWire(ctx, schema, rows, req.Filter, req.Columns)
			if err != nil {
				return &netproto.Response{Err: err.Error(), Expired: ctx.Err() != nil}
			}
			rows = shipped.Rows
		}
		return &netproto.Response{DeltaRows: rows, Version: version, Resync: resync}

	case netproto.KindExec:
		if err := s.waitScanDelay(ctx); err != nil {
			return &netproto.Response{Err: err.Error(), Expired: true}
		}
		s.mu.RLock()
		cat := sqlmini.NewMapCatalog(s.tables)
		out, err := sqlmini.RunContext(ctx, req.SQL, cat)
		s.mu.RUnlock()
		if err != nil {
			return &netproto.Response{Err: err.Error(), Expired: ctx.Err() != nil}
		}
		return &netproto.Response{Result: out}

	case netproto.KindInsert:
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tables[strings.ToLower(req.Table)]
		if !ok {
			return &netproto.Response{Err: fmt.Sprintf("no table %q", req.Table)}
		}
		for i, row := range req.Rows {
			if err := t.Insert(row); err != nil {
				return &netproto.Response{Err: fmt.Sprintf("row %d: %v", i, err)}
			}
		}
		return &netproto.Response{}

	default:
		return &netproto.Response{Err: fmt.Sprintf("unsupported request kind %d", int(req.Kind))}
	}
}

// projectForWire applies a view's delta projection — the ViewWire filter
// and column subset — to candidate rows before they cross the wire, by
// running the shipping SELECT over a scratch table holding just those
// rows. The schema (and the query's FROM name) come from the base table.
func projectForWire(ctx context.Context, base *relation.Table, rows []relation.Row, filter string, columns []string) (*relation.Table, error) {
	name := strings.ToLower(base.Name)
	scratch := relation.NewTable(base.Name, base.Schema)
	scratch.Rows = rows
	out, err := sqlmini.RunContext(ctx, sqlmini.WireSQL(name, filter, columns), sqlmini.MapCatalog{name: scratch})
	if err != nil {
		return nil, fmt.Errorf("server: delta projection on %s: %w", name, err)
	}
	return out, nil
}

// waitScanDelay pauses for the simulated WAN latency, giving up early if
// the request's wire deadline passes first.
func (s *RemoteServer) waitScanDelay(ctx context.Context) error {
	if s.scanDelay <= 0 {
		return nil
	}
	t := wall.NewTimer(s.scanDelay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Close stops the listener and waits for in-flight connections. It is
// idempotent.
func (s *RemoteServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.listener != nil {
			err = s.listener.Close()
		}
		s.live.closeAll()
		s.wg.Wait()
	})
	return err
}
