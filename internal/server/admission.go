package server

import (
	"context"
	"math"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"

	"ivdss/internal/wall"
)

// submit runs admission control for an Exec/Batch request: derive the
// request context (wire budget and value horizon), shed on arrival when
// the queue is full or the projected completion already overshoots the
// horizon, otherwise hand the request to the scheduling engine and wait
// for the answer. Shedding here — before any planning or remote I/O — is
// what keeps an overloaded DSS producing valuable reports instead of
// uniformly late ones; the same horizon is re-checked inside the engine
// (value-horizon shedding at every dispatch decision) because queue time
// can kill a query that was worth admitting.
func (s *DSSServer) submit(req *netproto.Request) *netproto.Response {
	// Work-stealing: a backed-up shard hands the whole request to the
	// least-loaded covering peer before admission; a stolen request is
	// served locally no matter what (Forwarded stops steal chains).
	if resp, stolen := s.maybeSteal(req); stolen {
		return resp
	}
	if req.Forwarded {
		s.stats.Counter("steals_in_total").Inc()
	}
	ctx, cancel := req.BudgetContext(s.baseCtx)
	defer cancel()

	id := queryID(req.SQL)
	horizon := s.requestHorizon(req)
	if s.cfg.Epsilon > 0 && horizon <= 0 {
		// The business value already sits at or below the threshold: the
		// report is worthless before any work is done.
		return s.shed(id, horizon, "projected-completion")
	}
	if s.cfg.Epsilon > 0 && !math.IsInf(horizon, 1) {
		horizonWall := s.wallDelay(horizon)
		if projected := s.projectedCompletion(); projected > horizonWall {
			return s.shed(id, horizon, "projected-completion")
		}
		// Arm the horizon as a context deadline with a typed cause, so an
		// execution that overruns it is cancelled mid-flight and the error
		// names the value expiry rather than a generic timeout.
		var cancelHorizon context.CancelFunc
		ctx, cancelHorizon = context.WithDeadlineCause(ctx, wall.Now().Add(horizonWall),
			&core.ValueExpiredError{Query: id, Horizon: horizon, Reason: "expired-running"})
		defer cancelHorizon()
	}

	if req.Kind == netproto.KindBatch {
		return s.submitBatch(ctx, req, id, horizon)
	}
	return s.submitExec(ctx, req, id, horizon)
}

// requestHorizon computes the request's value horizon in experiment
// minutes. A batch uses its richest member: the batch is worth admitting
// while any member would still produce value (per-member horizons are
// enforced at dispatch inside the engine).
func (s *DSSServer) requestHorizon(req *netproto.Request) core.Duration {
	if req.Kind == netproto.KindBatch {
		h := core.Duration(0)
		for _, m := range req.Batch {
			q := core.Query{BusinessValue: m.BusinessValue}
			if mh := q.ValueHorizon(s.cfg.Rates, s.cfg.Epsilon); mh > h {
				h = mh
			}
		}
		return h
	}
	q := core.Query{BusinessValue: req.BusinessValue}
	return q.ValueHorizon(s.cfg.Rates, s.cfg.Epsilon)
}

// shed refuses a request at admission with the typed value-expiry error.
func (s *DSSServer) shed(id string, horizon core.Duration, reason string) *netproto.Response {
	s.stats.Counter("queries_shed_total").Inc()
	err := &core.ValueExpiredError{Query: id, Horizon: horizon, Reason: reason}
	return &netproto.Response{Err: err.Error(), Expired: true}
}

// projectedCompletion estimates how long a newly admitted query will take
// from arrival to report: the smoothed service time, scaled by how many
// queued queries stand between it and an execution slot.
func (s *DSSServer) projectedCompletion() time.Duration {
	s.svcMu.Lock()
	ewma := s.svcEWMA
	s.svcMu.Unlock()
	if ewma <= 0 {
		return 0 // no completions yet: admit and learn
	}
	waiting := float64(s.engine.QueueLen())
	return time.Duration(float64(ewma) * (waiting/float64(s.cfg.Workers) + 1))
}

// observeService folds one measured query service time into the EWMA the
// admission projection uses.
func (s *DSSServer) observeService(d time.Duration) {
	const alpha = 0.3
	s.svcMu.Lock()
	if s.svcEWMA == 0 {
		s.svcEWMA = d
	} else {
		s.svcEWMA = time.Duration(alpha*float64(d) + (1-alpha)*float64(s.svcEWMA))
	}
	s.svcMu.Unlock()
}
