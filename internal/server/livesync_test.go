package server

import (
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

// Live replication engine integration: inserts at the remote flow to the
// DSS replica as cursor-based deltas (not repeated full snapshots), the
// status response reports the live cadence, and a dead site defers syncs
// via its circuit breaker without stalling the engine or corrupting
// freshness bookkeeping.

// replicaStatus fetches the status row for one replicated table.
func replicaStatus(t *testing.T, dssAddr, table string) (netproto.ReplicaStatus, bool) {
	t.Helper()
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
	if err != nil {
		return netproto.ReplicaStatus{}, false
	}
	for _, r := range resp.Replicas {
		if r.Table == table {
			return r, true
		}
	}
	return netproto.ReplicaStatus{}, false
}

func dssMetrics(t *testing.T, dssAddr string) map[string]float64 {
	t.Helper()
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Metrics
}

func TestLiveDeltaSyncPropagatesInserts(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	dss, dssAddr := startDSS(t, remoteAddr)

	// Branch OLTP traffic: two new accounts appended at the remote.
	ins := &netproto.Request{Kind: netproto.KindInsert, Table: "accounts", Rows: []relation.Row{
		{relation.IntVal(3), relation.FloatVal(300)},
		{relation.IntVal(4), relation.FloatVal(400)},
	}}
	if _, err := netproto.Call(remoteAddr, ins, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// The replica catches up on a delta cycle: its cursor reaches the new
	// version and the stored copy holds all four rows.
	eventually(t, 10*time.Second, "replica cursor reaches version 4", func() bool {
		st, ok := replicaStatus(t, dssAddr, "accounts")
		return ok && st.Cursor == 4
	})
	dss.mu.RLock()
	replica := dss.replicas["accounts"]
	dss.mu.RUnlock()
	if replica.table == nil || replica.table.NumRows() != 4 {
		t.Fatalf("replica store holds %+v, want the 4-row appended copy", replica.table)
	}

	// The engine moved the appended rows as a delta, not a full resnapshot.
	m := dssMetrics(t, dssAddr)
	if m["delta_syncs_total"] < 1 {
		t.Errorf("delta_syncs_total = %v, want ≥ 1", m["delta_syncs_total"])
	}
	if m["snapshot_syncs_total"] != 1 {
		t.Errorf("snapshot_syncs_total = %v, want exactly the initial pull", m["snapshot_syncs_total"])
	}
	if m["sync_bytes_total"] <= 0 {
		t.Errorf("sync_bytes_total = %v, want > 0", m["sync_bytes_total"])
	}
	if _, ok := m["replica_staleness_seconds_accounts"]; !ok {
		t.Error("replica_staleness_seconds_accounts gauge missing from metrics")
	}

	// Status surfaces the live cadence: cursor at the new version, a
	// positive period, a bounded last-sync age, and a scheduled next sync.
	st, ok := replicaStatus(t, dssAddr, "accounts")
	if !ok {
		t.Fatal("no status row for accounts")
	}
	if st.Cursor != 4 {
		t.Errorf("status cursor = %d, want 4", st.Cursor)
	}
	if st.PeriodMinutes <= 0 {
		t.Errorf("status period = %v, want > 0", st.PeriodMinutes)
	}
	if st.LastSyncAgeMinutes < 0 {
		t.Errorf("status last-sync age = %v, want ≥ 0", st.LastSyncAgeMinutes)
	}
	if st.NextSyncMinutes < 0 {
		t.Errorf("status next sync = %v, want a scheduled cycle", st.NextSyncMinutes)
	}
}

// A dead site's open breaker defers that table's cycles — no retry burns,
// no engine stall: the healthy site's table keeps syncing on cadence, the
// dead table's freshness stamp freezes instead of advancing falsely, and
// the cycle resumes once the site heals.
func TestSyncChaosBreakerDefersWithoutStall(t *testing.T) {
	_, site1Addr := startRemote(t, accountsTable(t))
	proxy := faults.NewProxy(site1Addr, 1)
	if _, err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	_, site2Addr := startRemote(t, ordersTable(t))

	dss, err := NewDSSServer(DSSConfig{
		Remotes: map[core.SiteID]string{1: proxy.Addr(), 2: site2Addr},
		Replicate: map[core.TableID]time.Duration{
			"accounts": 150 * time.Millisecond,
			"orders":   150 * time.Millisecond,
		},
		Rates:              core.DiscountRates{CL: .05, SL: .05},
		TimeScale:          10,
		MaxDelay:           200 * time.Millisecond,
		DialTimeout:        200 * time.Millisecond,
		RetryAttempts:      2,
		RetryBaseDelay:     5 * time.Millisecond,
		RetryBudget:        50 * time.Millisecond,
		BreakerFailures:    2,
		BreakerOpenTimeout: 400 * time.Millisecond,
		BreakerProbes:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dssAddr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })

	// Kill site 1. Sync cycles against it fail, trip the breaker, and from
	// then on defer instead of retrying.
	proxy.SetMode(faults.ModeBlackhole, 0)
	proxy.Sever()
	eventually(t, 10*time.Second, "sync deferrals accumulate", func() bool {
		return dssMetrics(t, dssAddr)["sync_deferred_total"] >= 2
	})

	// The dead table's freshness stamp freezes — deferral must never
	// advance it — while the healthy site's table keeps syncing.
	frozen, ok := replicaStatus(t, dssAddr, "accounts")
	if !ok {
		t.Fatal("no status row for accounts")
	}
	healthyBefore, _ := replicaStatus(t, dssAddr, "orders")
	errorsBefore := dssMetrics(t, dssAddr)["sync_errors_total"]
	time.Sleep(600 * time.Millisecond)
	after, _ := replicaStatus(t, dssAddr, "accounts")
	if after.LastSyncMinutes != frozen.LastSyncMinutes {
		t.Errorf("dead table's freshness advanced %v → %v during the outage",
			frozen.LastSyncMinutes, after.LastSyncMinutes)
	}
	healthyAfter, _ := replicaStatus(t, dssAddr, "orders")
	if healthyAfter.LastSyncMinutes <= healthyBefore.LastSyncMinutes {
		t.Errorf("healthy table stalled: last sync %v → %v",
			healthyBefore.LastSyncMinutes, healthyAfter.LastSyncMinutes)
	}
	// Once open, the breaker short-circuits cycles: deferrals, not an
	// unbounded error count.
	if errorsAfter := dssMetrics(t, dssAddr)["sync_errors_total"]; errorsAfter > errorsBefore+2 {
		t.Errorf("sync_errors_total grew %v → %v during open-breaker window; cycles should defer",
			errorsBefore, errorsAfter)
	}

	// Heal. The next cycle doubles as the half-open probe; accounts resumes.
	proxy.SetMode(faults.ModePass, 0)
	eventually(t, 10*time.Second, "dead table resumes syncing", func() bool {
		st, ok := replicaStatus(t, dssAddr, "accounts")
		return ok && st.LastSyncMinutes > frozen.LastSyncMinutes
	})
	// And the replica still answers exactly its contents — freshness
	// bookkeeping and data stayed consistent through the outage.
	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT a.a_id, a.a_balance FROM accounts a ORDER BY a.a_id", BusinessValue: 1,
	}, 5*time.Second)
	if err != nil || resp.Result == nil || resp.Result.NumRows() != 2 {
		t.Fatalf("post-heal query: err=%v resp=%+v", err, resp)
	}
}
