package server

import (
	"errors"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

// Chaos integration test for the fault-tolerance stack: a full DSS with two
// remote sites, one of them behind the fault-injecting proxy. The proxied
// site is killed mid-workload (black-holed, established connections cut);
// queries over its replicated table must keep answering from the replica
// with the degradation flagged, queries over its unreplicated table must
// fail with the typed degraded error, the other site must be unaffected,
// and once the proxy heals the breaker must half-open and recover.

func ordersTable(t *testing.T) *relation.Table {
	t.Helper()
	tbl := relation.NewTable("orders", relation.MustSchema(
		relation.Column{Name: "o_id", Type: relation.Int},
		relation.Column{Name: "o_qty", Type: relation.Int},
	))
	tbl.MustInsert(relation.Row{relation.IntVal(1), relation.IntVal(10)})
	tbl.MustInsert(relation.Row{relation.IntVal(2), relation.IntVal(20)})
	return tbl
}

// eventually polls cond until it returns true or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %v", what, d)
}

func TestDSSChaosKillAndRecoverSite(t *testing.T) {
	// Site 1 (accounts replicated, trades unreplicated) sits behind the
	// fault proxy; site 2 (orders) is reached directly.
	_, site1Addr := startRemote(t, accountsTable(t), tradesTable(t))
	proxy := faults.NewProxy(site1Addr, 1)
	if _, err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	_, site2Addr := startRemote(t, ordersTable(t))

	dss, err := NewDSSServer(DSSConfig{
		Remotes:            map[core.SiteID]string{1: proxy.Addr(), 2: site2Addr},
		Replicate:          map[core.TableID]time.Duration{"accounts": 150 * time.Millisecond},
		Rates:              core.DiscountRates{CL: .05, SL: .05},
		TimeScale:          10,
		ScheduleHorizon:    60 * time.Second,
		MaxDelay:           200 * time.Millisecond,
		DialTimeout:        200 * time.Millisecond,
		RetryAttempts:      2,
		RetryBaseDelay:     5 * time.Millisecond,
		RetryBudget:        50 * time.Millisecond,
		BreakerFailures:    2,
		BreakerOpenTimeout: 400 * time.Millisecond,
		BreakerProbes:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dssAddr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })

	const (
		accountsSQL = "SELECT a.a_id, a.a_balance FROM accounts a ORDER BY a.a_id"
		tradesSQL   = "SELECT tr.t_account, tr.t_amount FROM trades tr ORDER BY tr.t_account"
		ordersSQL   = "SELECT o.o_id, o.o_qty FROM orders o ORDER BY o.o_id"
	)
	exec := func(sql string) (*netproto.Response, error) {
		return netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: sql, BusinessValue: 1}, 5*time.Second)
	}
	siteBreaker := func(site int) string {
		resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
		if err != nil {
			return "unreachable: " + err.Error()
		}
		for _, st := range resp.Sites {
			if st.Site == site {
				return st.Breaker
			}
		}
		return "missing"
	}

	// Healthy baseline: every table answers, nothing degraded.
	for _, sql := range []string{accountsSQL, tradesSQL, ordersSQL} {
		resp, err := exec(sql)
		if err != nil {
			t.Fatalf("healthy exec %q: %v", sql, err)
		}
		if resp.Meta == nil || resp.Meta.Degraded {
			t.Fatalf("healthy exec %q: meta %+v", sql, resp.Meta)
		}
	}
	if got := siteBreaker(1); got != "closed" {
		t.Fatalf("healthy site 1 breaker = %q", got)
	}

	// Kill site 1: new connections black-hole, established ones are cut.
	proxy.SetMode(faults.ModeBlackhole, 0)
	proxy.Sever()

	// Replicated table: answers from the replica, flagged degraded.
	eventually(t, 10*time.Second, "accounts answers degraded from replica", func() bool {
		resp, err := exec(accountsSQL)
		return err == nil && resp.Meta != nil && resp.Meta.Degraded && resp.Result.NumRows() == 2
	})
	// Unreplicated table: the typed degraded error reaches the client.
	eventually(t, 10*time.Second, "trades fails with typed degraded error", func() bool {
		_, err := exec(tradesSQL)
		var remote *netproto.RemoteError
		return errors.As(err, &remote) && remote.Degraded
	})
	// The breaker trips open.
	eventually(t, 10*time.Second, "site 1 breaker opens", func() bool {
		return siteBreaker(1) == "open"
	})
	// The healthy site is untouched by site 1's outage.
	resp, err := exec(ordersSQL)
	if err != nil || resp.Meta == nil || resp.Meta.Degraded {
		t.Fatalf("orders during outage: err=%v meta=%+v", err, resp.Meta)
	}
	if got := siteBreaker(2); got != "closed" {
		t.Errorf("site 2 breaker = %q during site 1 outage", got)
	}

	// The outage is visible in the metrics the ISSUE promises.
	mresp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"remote_retries_total", "degraded_answers_total", "breaker_transitions_total"} {
		if mresp.Metrics[name] <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, mresp.Metrics[name])
		}
	}
	if _, ok := mresp.Metrics["breaker_state_site_1"]; !ok {
		t.Error("metric breaker_state_site_1 missing")
	}

	// Heal the proxy: replica pulls double as half-open probes, so the
	// breaker recovers without any client traffic forcing it.
	proxy.SetMode(faults.ModePass, 0)
	eventually(t, 10*time.Second, "site 1 breaker closes again", func() bool {
		return siteBreaker(1) == "closed"
	})
	eventually(t, 10*time.Second, "trades answers again after recovery", func() bool {
		resp, err := exec(tradesSQL)
		return err == nil && resp.Meta != nil && !resp.Meta.Degraded && resp.Result.NumRows() == 2
	})
	eventually(t, 10*time.Second, "accounts answers non-degraded after recovery", func() bool {
		resp, err := exec(accountsSQL)
		return err == nil && resp.Meta != nil && !resp.Meta.Degraded
	})
}
