package server

import (
	"fmt"
	"strings"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/replsync"
	"ivdss/internal/sqlmini"
)

// Materialized views at the DSS: each configured view covers one query's
// full answer and is maintained incrementally. The sync agent treats the
// view as one more synchronized unit ("view:<id>"); its cycles ship only
// the base table's delta rows — filtered and projected at the base site
// through the wire's delta projection — and the compiled delta program
// folds them into the running answer. The planner sees the view through
// the catalog's ViewStates and offers it to the covered query alongside
// base and replica access.

// ViewSpec configures one materialized view.
type ViewSpec struct {
	// SQL is the view's defining query — also exactly the query text the
	// view answers. Must be incrementally maintainable: a single FROM
	// table, no JOINs.
	SQL string
	// Period is the refresh period (wall-clock). Default 10s.
	Period time.Duration
}

// viewState is the server's runtime state for one materialized view.
// Definition fields are immutable after registration; prog, table, and
// syncedAt are guarded by s.mu. The answer table is copy-on-write: every
// refresh installs a fresh render, so in-flight queries keep a stable
// snapshot.
type viewState struct {
	def     core.ViewDef
	stmt    *sqlmini.SelectStmt
	filter  string        // delta-projection predicate shipped to the base site
	columns []string      // delta-projection column subset (nil = all)
	period  time.Duration // configured refresh period (wall-clock)

	prog     *sqlmini.ViewProgram // built on first snapshot
	table    *relation.Table      // materialized answer
	syncedAt core.Time
	cursor   uint64 // base rows the state reflects
}

// registerViews validates each configured view, registers its definition
// with the catalog and its sync unit with the replication manager, and
// builds the server-side state. Called during construction, before the
// sync agent exists.
func (s *DSSServer) registerViews() error {
	for _, spec := range s.cfg.Views {
		stmt, err := sqlmini.Parse(spec.SQL)
		if err != nil {
			return fmt.Errorf("server: view %q: %w", spec.SQL, err)
		}
		table, filter, columns, err := sqlmini.ViewWire(stmt)
		if err != nil {
			return fmt.Errorf("server: view %q: %w", spec.SQL, err)
		}
		qid := queryID(spec.SQL)
		id := core.ViewID("v" + strings.TrimPrefix(qid, "sql"))
		def := core.ViewDef{
			ID:      id,
			QueryID: qid,
			Table:   core.TableID(strings.ToLower(table)),
			SQL:     spec.SQL,
		}
		if err := s.catalog.RegisterView(def); err != nil {
			return err
		}
		// Registered bare, like replicas: the sync agent mirrors its live
		// cadence and completions into the manager as it runs.
		if err := s.catalog.Replication().Register(core.ViewUnit(id), replication.Schedule{}); err != nil {
			return err
		}
		period := spec.Period
		if period <= 0 {
			period = 10 * time.Second
		}
		s.views[id] = &viewState{def: def, stmt: stmt, filter: filter, columns: columns, period: period}
	}
	return nil
}

// viewByID returns the runtime state for one view.
func (s *DSSServer) viewByID(id core.ViewID) (*viewState, error) {
	vs, ok := s.views[id]
	if !ok {
		return nil, fmt.Errorf("server: unknown view %s", id)
	}
	return vs, nil
}

// applyViewSnapshot rebuilds a view from a full (filtered, projected) base
// snapshot: a fresh delta program compiled against the shipped schema,
// folded over the shipped rows, rendered, and swapped in.
func (ap replicaApplier) applyViewSnapshot(id core.ViewID, snap replsync.Snapshot, at core.Time) error {
	s := ap.s
	vs, err := s.viewByID(id)
	if err != nil {
		return err
	}
	if snap.Table == nil {
		return fmt.Errorf("server: snapshot for view %s carried no table", id)
	}
	prog, err := sqlmini.CompileView(vs.stmt, snap.Table.Schema)
	if err != nil {
		return fmt.Errorf("server: view %s: %w", id, err)
	}
	if err := prog.Apply(s.baseCtx, snap.Table.Rows); err != nil {
		return fmt.Errorf("server: view %s: %w", id, err)
	}
	out, err := prog.Result(s.baseCtx)
	if err != nil {
		return fmt.Errorf("server: view %s: %w", id, err)
	}
	out.Name = string(id)
	s.mu.Lock()
	vs.prog, vs.table, vs.syncedAt, vs.cursor = prog, out, at, snap.Version
	s.mu.Unlock()
	return nil
}

// applyViewDelta folds shipped delta rows into the view's running state
// and installs a fresh render of the answer.
func (ap replicaApplier) applyViewDelta(id core.ViewID, delta replsync.Delta, at core.Time) error {
	s := ap.s
	vs, err := s.viewByID(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if vs.prog == nil {
		return fmt.Errorf("server: delta for view %s before its first snapshot", id)
	}
	if len(delta.Rows) == 0 {
		// Nothing relevant changed upstream: same answer, fresher stamp.
		vs.syncedAt, vs.cursor = at, delta.Version
		return nil
	}
	if err := vs.prog.Apply(s.baseCtx, delta.Rows); err != nil {
		return fmt.Errorf("server: view %s: %w", id, err)
	}
	out, err := vs.prog.Result(s.baseCtx)
	if err != nil {
		return fmt.Errorf("server: view %s: %w", id, err)
	}
	out.Name = string(id)
	vs.table, vs.syncedAt, vs.cursor = out, at, delta.Version
	return nil
}

// dropView discards a view's materialized state (demotion). The
// definition stays registered so a later promotion can rebuild it.
func (s *DSSServer) dropView(id core.ViewID) {
	vs, err := s.viewByID(id)
	if err != nil {
		return
	}
	s.mu.Lock()
	vs.prog, vs.table, vs.syncedAt, vs.cursor = nil, nil, 0, 0
	s.mu.Unlock()
}

// viewStatuses maps every registered view into the wire status shape, in
// ViewID order (s.views iteration is randomized, so sort by the catalog's
// deterministic listing).
func (s *DSSServer) viewStatuses(now core.Time) []netproto.ViewStatus {
	syncStatus := s.syncStatuses(now)
	var out []netproto.ViewStatus
	for _, def := range s.catalog.Views() {
		vs, err := s.viewByID(def.ID)
		if err != nil {
			continue
		}
		site, err := s.catalog.Placement().SiteOf(def.Table)
		if err != nil {
			continue
		}
		st := netproto.ViewStatus{
			View:            string(def.ID),
			QueryID:         def.QueryID,
			Table:           string(def.Table),
			Site:            int(site),
			LastSyncMinutes: -1,
			NextSyncMinutes: -1,
		}
		if agentView, ok := syncStatus[core.ViewUnit(def.ID)]; ok {
			st.NextSyncMinutes = agentView.NextSyncMinutes
			st.PeriodMinutes = agentView.PeriodMinutes
		}
		s.mu.RLock()
		if vs.table != nil {
			st.LastSyncMinutes = vs.syncedAt
			st.StalenessMinutes = now - vs.syncedAt
			st.Cursor = vs.cursor
			st.Rows = vs.table.NumRows()
		}
		s.mu.RUnlock()
		out = append(out, st)
	}
	return out
}
