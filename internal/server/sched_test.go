package server

import (
	"sync"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/scheduler"
)

// Live-scheduling tests: the DSS driving the shared engine — aging at
// dispatch, micro-batch MQO on the ad hoc stream, and the degraded-MQO
// fallback flag on the wire.

// runStarvationScenario starts a one-slot DSS with the given aging policy,
// occupies the slot, queues one cheap query and then a convoy of
// full-value queries behind it, and returns the cheap query's completion
// position among all seven (1 = finished first).
func runStarvationScenario(t *testing.T, aging core.Aging) int {
	t.Helper()
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	remote.SetScanDelay(150 * time.Millisecond)
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		Workers:   1,
		Epsilon:   -1, // no shedding: starvation must be visible, not masked
		Aging:     aging,
	})

	type finish struct {
		cheap bool
		at    time.Time
	}
	finishes := make(chan finish, 7)
	var wg sync.WaitGroup
	call := func(sql string, bv float64, cheap bool) {
		defer wg.Done()
		_, err := netproto.Call(dssAddr, &netproto.Request{
			Kind: netproto.KindExec, SQL: sql, BusinessValue: bv,
		}, 30*time.Second)
		if err != nil {
			t.Errorf("query (cheap=%v) failed: %v", cheap, err)
		}
		finishes <- finish{cheap: cheap, at: time.Now()}
	}

	// The blocker takes the only slot.
	wg.Add(1)
	go call("SELECT count(*) AS n FROM trades", 1, false)
	time.Sleep(100 * time.Millisecond)
	// The cheap query queues first...
	wg.Add(1)
	go call("SELECT sum(t_amount) AS s FROM trades", .2, true)
	time.Sleep(30 * time.Millisecond)
	// ...then a convoy of full-value queries piles in behind it.
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go call("SELECT count(*) AS n FROM trades", 1, false)
	}
	wg.Wait()
	close(finishes)

	all := make([]finish, 0, 7)
	for f := range finishes {
		all = append(all, f)
	}
	if len(all) != 7 {
		t.Fatalf("%d completions, want 7", len(all))
	}
	pos := 0
	var cheapAt time.Time
	for _, f := range all {
		if f.cheap {
			cheapAt = f.at
		}
	}
	for _, f := range all {
		if !f.at.After(cheapAt) {
			pos++
		}
	}
	return pos
}

// TestDSSAgingPreventsStarvationLive: under pure value-maximizing dispatch
// a cheap query starves behind a convoy of full-value queries; with the
// Section 3.3 aging boost its accumulated wait wins it a slot within a
// bounded number of dispatches. This is the DES dispatcher's starvation
// guarantee holding on the wall-clock driver.
func TestDSSAgingPreventsStarvationLive(t *testing.T) {
	if pos := runStarvationScenario(t, core.Aging{}); pos != 7 {
		t.Errorf("aging off: cheap query finished %d of 7, want dead last (starved)", pos)
	}
	pos := runStarvationScenario(t, core.Aging{Coefficient: 1, Exponent: 1.5})
	if pos > 3 {
		t.Errorf("aging on: cheap query finished %d of 7, want within the first 3", pos)
	}
}

// TestDSSBatchMQOFallbackOnWire: a GA configuration that cannot run (elite
// exceeding the population) degrades batch scheduling to submission order;
// the reports still arrive, the response carries the MQOFallback flag, and
// mqo_fallback_total ticks.
func TestDSSBatchMQOFallbackOnWire(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		GA:        scheduler.GAConfig{Population: 2, Elite: 3, Seed: 1},
	})

	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindBatch,
		Batch: []netproto.BatchQuery{
			{SQL: "SELECT count(*) AS n FROM accounts", BusinessValue: 1},
			{SQL: "SELECT sum(t_amount) AS s FROM trades", BusinessValue: 1},
			{SQL: "SELECT count(*) AS n FROM trades", BusinessValue: .8},
		},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.MQOFallback {
		t.Error("response does not flag the MQO fallback")
	}
	for i, item := range resp.Batch {
		if item.Err != "" {
			t.Errorf("member %d failed under fallback: %s", i, item.Err)
		}
		if item.Result == nil {
			t.Errorf("member %d has no result", i)
		}
	}
	m := metricsOf(t, dssAddr)
	if m["mqo_fallback_total"] < 1 {
		t.Errorf("mqo_fallback_total = %v, want ≥ 1", m["mqo_fallback_total"])
	}
}

// TestDSSBatchMQOCleanRunNotFlagged: a healthy batch must not carry the
// degraded-scheduling flag.
func TestDSSBatchMQOCleanRunNotFlagged(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindBatch,
		Batch: []netproto.BatchQuery{
			{SQL: "SELECT count(*) AS n FROM accounts", BusinessValue: 1},
			{SQL: "SELECT count(*) AS n FROM trades", BusinessValue: 1},
		},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.MQOFallback {
		t.Error("healthy batch flagged as MQO fallback")
	}
}

// TestDSSMicroBatchWindowFormsWorkloads: with MQOWindow set, concurrent ad
// hoc arrivals are held briefly, formed into a workload, GA-ordered, and
// all answered — continuous MQO on the live stream, visible in the
// scheduler metrics and in the KindStatus response.
func TestDSSMicroBatchWindowFormsWorkloads(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSSWith(t, DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		MQOWindow: 150 * time.Millisecond,
	})

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, sql := range []string{
		"SELECT count(*) AS n FROM accounts",
		"SELECT sum(t_amount) AS s FROM trades",
		"SELECT count(*) AS n FROM trades",
	} {
		sql := sql
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := netproto.Call(dssAddr, &netproto.Request{
				Kind: netproto.KindExec, SQL: sql, BusinessValue: 1,
			}, 30*time.Second)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("windowed query failed: %v", err)
		}
	}
	m := metricsOf(t, dssAddr)
	if m["workloads_formed_total"] < 1 {
		t.Errorf("workloads_formed_total = %v, want ≥ 1", m["workloads_formed_total"])
	}
	if m["mqo_fallback_total"] != 0 {
		t.Errorf("mqo_fallback_total = %v, want 0", m["mqo_fallback_total"])
	}

	// The scheduler slice of the metrics rides on KindStatus for `ivqp
	// -status`.
	st, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Metrics["workloads_formed_total"]; !ok || v < 1 {
		t.Errorf("status metrics workloads_formed_total = %v (present %v), want ≥ 1", v, ok)
	}
}
