package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

// End-to-end materialized views at the live DSS: a configured view pulls a
// projected snapshot of its base table over the wire, incremental cycles
// ship only delta rows, the status response carries a per-view row, and a
// view plan serves the materialized answer without re-executing SQL.

// exposureSQL is the covered query: per-account trade exposure. The view's
// wire pull ships only the two referenced columns.
const exposureSQL = "SELECT t_account, sum(t_amount) AS exposure FROM trades GROUP BY t_account"

// viewStatusRow fetches the first per-view status row from the DSS.
func viewStatusRow(t *testing.T, dssAddr string) (netproto.ViewStatus, bool) {
	t.Helper()
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
	if err != nil || len(resp.Views) == 0 {
		return netproto.ViewStatus{}, false
	}
	return resp.Views[0], true
}

// exposures collapses a result table into account → exposure, so the
// assertion is independent of row order.
func exposures(t *testing.T, tbl *relation.Table) map[int64]float64 {
	t.Helper()
	if tbl == nil {
		t.Fatal("nil result table")
	}
	out := make(map[int64]float64, tbl.NumRows())
	for _, r := range tbl.Rows {
		out[r[0].I] = r[1].F
	}
	return out
}

func TestDSSViewMaterializesServesAndRefreshes(t *testing.T) {
	_, remoteAddr := startRemote(t, tradesTable(t))
	dss, err := NewDSSServer(DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Views:     []ViewSpec{{SQL: exposureSQL, Period: 150 * time.Millisecond}},
		Rates:     core.DiscountRates{CL: .05, SL: .05},
		TimeScale: 10,
		MaxDelay:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dssAddr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })

	// The initial cycle materializes the view from a projected snapshot:
	// two base rows folded into two groups, cursor at the base version.
	eventually(t, 10*time.Second, "view materializes from the initial snapshot", func() bool {
		st, ok := viewStatusRow(t, dssAddr)
		return ok && st.Rows == 2 && st.Cursor == 2
	})
	st, _ := viewStatusRow(t, dssAddr)
	if st.QueryID != queryID(exposureSQL) {
		t.Errorf("status query ID = %q, want %q", st.QueryID, queryID(exposureSQL))
	}
	if st.Table != "trades" || st.Site != 1 {
		t.Errorf("status names table %q at site %d, want trades at 1", st.Table, st.Site)
	}
	if st.LastSyncMinutes < 0 || st.PeriodMinutes <= 0 {
		t.Errorf("status last sync %v / period %v, want a live cadence", st.LastSyncMinutes, st.PeriodMinutes)
	}
	m := dssMetrics(t, dssAddr)
	if m["views_materialized_total"] < 1 {
		t.Errorf("views_materialized_total = %v, want ≥ 1", m["views_materialized_total"])
	}
	id := core.ViewID("v" + strings.TrimPrefix(queryID(exposureSQL), "sql"))
	if _, ok := m["view_staleness_seconds_"+string(id)]; !ok {
		t.Errorf("view_staleness_seconds_%s gauge missing from metrics", id)
	}

	// The synchronized view enters the plan space: the catalog snapshot for
	// the base table now carries its ViewState.
	snap, err := dss.catalog.Snapshot([]core.TableID{"trades"}, dss.now(), dss.cfg.PlannerHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Views) != 1 || snap[0].Views[0].ID != id {
		t.Fatalf("catalog snapshot views = %+v, want exactly %s", snap, id)
	}

	// The covered query answers correctly over the wire regardless of the
	// plan chosen.
	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: exposureSQL, BusinessValue: 1,
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := exposures(t, resp.Result); got[1] != 30 || got[2] != -70 {
		t.Errorf("exposures = %v, want {1:30 2:-70}", got)
	}

	// Branch OLTP traffic: one more trade for account 1. The next cycle
	// ships it as a one-row projected delta and the folded answer updates.
	ins := &netproto.Request{Kind: netproto.KindInsert, Table: "trades", Rows: []relation.Row{
		{relation.IntVal(1), relation.FloatVal(12)},
	}}
	if _, err := netproto.Call(remoteAddr, ins, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, "view folds the delta row", func() bool {
		st, ok := viewStatusRow(t, dssAddr)
		return ok && st.Cursor == 3
	})
	dss.mu.RLock()
	vs := dss.views[id]
	table, syncedAt := vs.table, vs.syncedAt
	dss.mu.RUnlock()
	if got := exposures(t, table); got[1] != 42 || got[2] != -70 {
		t.Errorf("materialized exposures = %v, want {1:42 2:-70}", got)
	}
	m = dssMetrics(t, dssAddr)
	if m["view_delta_rows_total"] < 1 {
		t.Errorf("view_delta_rows_total = %v, want ≥ 1", m["view_delta_rows_total"])
	}
	if m["view_delta_bytes_total"] <= 0 {
		t.Errorf("view_delta_bytes_total = %v, want > 0", m["view_delta_bytes_total"])
	}

	// A view plan is the whole answer: the executor serves the materialized
	// table and its freshness stamp without touching SQL execution.
	plan := core.Plan{
		Query:  core.Query{ID: queryID(exposureSQL), Tables: []core.TableID{"trades"}, BusinessValue: 1},
		Access: []core.TableAccess{{Table: "trades", Site: 1, Kind: core.AccessView, View: id, Freshness: syncedAt}},
	}
	got, freshness, degraded, err := dss.executePlan(context.Background(), nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != table {
		t.Error("view plan did not serve the installed materialized table")
	}
	if freshness != syncedAt || degraded {
		t.Errorf("view plan freshness = %v degraded = %v, want %v and false", freshness, degraded, syncedAt)
	}
}
