package server

import (
	"testing"
	"time"

	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

// The versioned replication protocol served by a remote site: a snapshot
// carries the row-count version, a delta ships exactly the appended
// suffix, and a cursor from a lost history answers Resync.
func TestRemoteSnapshotAndDelta(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t))

	snap, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindSnapshot, Table: "accounts"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Result == nil || snap.Result.NumRows() != 2 {
		t.Fatalf("snapshot rows = %v, want 2", snap.Result)
	}
	if snap.Version != 2 {
		t.Fatalf("snapshot version = %d, want 2", snap.Version)
	}

	// Nothing new: an empty delta at the same version.
	d, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindDelta, Table: "accounts", Cursor: snap.Version}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DeltaRows) != 0 || d.Version != 2 || d.Resync {
		t.Fatalf("empty delta = %d rows, version %d, resync %v", len(d.DeltaRows), d.Version, d.Resync)
	}

	// Append two rows; the delta from the old cursor is exactly those rows.
	ins := &netproto.Request{Kind: netproto.KindInsert, Table: "accounts", Rows: []relation.Row{
		{relation.IntVal(3), relation.FloatVal(300)},
		{relation.IntVal(4), relation.FloatVal(400)},
	}}
	if _, err := netproto.Call(addr, ins, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	d, err = netproto.Call(addr, &netproto.Request{Kind: netproto.KindDelta, Table: "accounts", Cursor: 2}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DeltaRows) != 2 || d.Version != 4 {
		t.Fatalf("delta = %d rows, version %d, want 2 rows at version 4", len(d.DeltaRows), d.Version)
	}
	if got := d.DeltaRows[0][0].String(); got != "3" {
		t.Fatalf("first delta row key = %s, want 3", got)
	}

	// A cursor ahead of the table (the site lost history): Resync.
	d, err = netproto.Call(addr, &netproto.Request{Kind: netproto.KindDelta, Table: "accounts", Cursor: 99}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Resync {
		t.Fatal("cursor ahead of table should answer Resync")
	}

	// Unknown tables error on both kinds.
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindSnapshot, Table: "nope"}, 2*time.Second); err == nil {
		t.Fatal("snapshot of unknown table should error")
	}
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindDelta, Table: "nope"}, 2*time.Second); err == nil {
		t.Fatal("delta of unknown table should error")
	}
}
