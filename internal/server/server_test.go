package server

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

func accountsTable(t *testing.T) *relation.Table {
	t.Helper()
	tbl := relation.NewTable("accounts", relation.MustSchema(
		relation.Column{Name: "a_id", Type: relation.Int},
		relation.Column{Name: "a_balance", Type: relation.Float},
	))
	tbl.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(100)})
	tbl.MustInsert(relation.Row{relation.IntVal(2), relation.FloatVal(250)})
	return tbl
}

func tradesTable(t *testing.T) *relation.Table {
	t.Helper()
	tbl := relation.NewTable("trades", relation.MustSchema(
		relation.Column{Name: "t_account", Type: relation.Int},
		relation.Column{Name: "t_amount", Type: relation.Float},
	))
	tbl.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(30)})
	tbl.MustInsert(relation.Row{relation.IntVal(2), relation.FloatVal(-70)})
	return tbl
}

func startRemote(t *testing.T, tables ...*relation.Table) (*RemoteServer, string) {
	t.Helper()
	s := NewRemoteServer()
	for _, tbl := range tables {
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestRemoteServerPingAndTables(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t))
	resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindPing}, time.Second)
	if err != nil || resp.Err != "" {
		t.Fatalf("ping: %v %v", err, resp)
	}
	resp, err = netproto.Call(addr, &netproto.Request{Kind: netproto.KindTables}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Tables[0] != "accounts" {
		t.Errorf("tables = %v", resp.Tables)
	}
}

func TestRemoteServerScanIsSnapshot(t *testing.T) {
	tbl := accountsTable(t)
	_, addr := startRemote(t, tbl)
	resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "ACCOUNTS"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 2 {
		t.Fatalf("rows = %d", resp.Result.NumRows())
	}
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "nope"}, time.Second); err == nil {
		t.Error("scan of missing table succeeded")
	}
}

func TestRemoteServerExec(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t), tradesTable(t))
	resp, err := netproto.Call(addr, &netproto.Request{
		Kind: netproto.KindExec,
		SQL:  "SELECT a.a_id, sum(tr.t_amount) AS s FROM accounts a, trades tr WHERE a.a_id = tr.t_account GROUP BY a.a_id ORDER BY a.a_id",
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 2 || resp.Result.Rows[0][1].F != 30 {
		t.Errorf("result = %v", resp.Result.Rows)
	}
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindExec, SQL: "garbage"}, time.Second); err == nil {
		t.Error("bad SQL succeeded")
	}
}

func TestRemoteServerInsert(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t))
	_, err := netproto.Call(addr, &netproto.Request{
		Kind:  netproto.KindInsert,
		Table: "accounts",
		Rows:  []relation.Row{{relation.IntVal(3), relation.FloatVal(5)}},
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "accounts"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 3 {
		t.Errorf("rows = %d after insert", resp.Result.NumRows())
	}
	// Type-mismatched row is rejected.
	if _, err := netproto.Call(addr, &netproto.Request{
		Kind:  netproto.KindInsert,
		Table: "accounts",
		Rows:  []relation.Row{{relation.StrVal("x"), relation.FloatVal(5)}},
	}, time.Second); err == nil {
		t.Error("bad row accepted")
	}
}

func TestRemoteServerConcurrentClients(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t))
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "accounts"}, time.Second)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteServerPersistentConnection(t *testing.T) {
	_, addr := startRemote(t, accountsTable(t))
	conn, err := netproto.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		resp, err := conn.RoundTrip(&netproto.Request{Kind: netproto.KindPing})
		if err != nil || resp.Err != "" {
			t.Fatalf("round %d: %v %v", i, err, resp)
		}
	}
}

// startDSS wires one remote with accounts+trades, replicating accounts on
// a fast cycle. TimeScale 10 makes one wall second worth 10 experiment
// minutes so discounts are visible in a fast test.
func startDSS(t *testing.T, remoteAddr string) (*DSSServer, string) {
	t.Helper()
	dss, err := NewDSSServer(DSSConfig{
		Remotes:         map[core.SiteID]string{1: remoteAddr},
		Replicate:       map[core.TableID]time.Duration{"accounts": 200 * time.Millisecond},
		Rates:           core.DiscountRates{CL: .05, SL: .05},
		TimeScale:       10,
		ScheduleHorizon: 20 * time.Second,
		MaxDelay:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dss.Close() })
	return dss, addr
}

func TestDSSEndToEnd(t *testing.T) {
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_ = remote
	_, dssAddr := startDSS(t, remoteAddr)

	sql := `SELECT a.a_id, a.a_balance + sum(tr.t_amount) AS exposure
	        FROM accounts a, trades tr WHERE a.a_id = tr.t_account
	        GROUP BY a.a_id, a.a_balance ORDER BY a.a_id`
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: sql, BusinessValue: 1}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 2 {
		t.Fatalf("rows = %d", resp.Result.NumRows())
	}
	if resp.Result.Rows[0][1].F != 130 || resp.Result.Rows[1][1].F != 180 {
		t.Errorf("exposures = %v", resp.Result.Rows)
	}
	if resp.Meta == nil {
		t.Fatal("no report meta")
	}
	if resp.Meta.Value <= 0 || resp.Meta.Value > 1 {
		t.Errorf("IV = %v", resp.Meta.Value)
	}
	if resp.Meta.CLMinutes < 0 || resp.Meta.SLMinutes < 0 {
		t.Errorf("latencies = %+v", resp.Meta)
	}
	if !strings.Contains(resp.Meta.PlanSignature, "accounts=") {
		t.Errorf("plan signature = %q", resp.Meta.PlanSignature)
	}
}

func TestDSSStatus(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Replicas) != 1 || resp.Replicas[0].Table != "accounts" {
		t.Fatalf("replicas = %v", resp.Replicas)
	}
	if resp.Replicas[0].Site != 1 {
		t.Errorf("site = %d", resp.Replicas[0].Site)
	}
}

func TestDSSSyncPicksUpRemoteWrites(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	// Write to the base table at the remote.
	if _, err := netproto.Call(remoteAddr, &netproto.Request{
		Kind:  netproto.KindInsert,
		Table: "accounts",
		Rows:  []relation.Row{{relation.IntVal(3), relation.FloatVal(999)}},
	}, time.Second); err != nil {
		t.Fatal(err)
	}

	// Within a few sync cycles the replica-served count must reach 3.
	// Force a replica-only read by a query that touches only accounts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := netproto.Call(dssAddr, &netproto.Request{
			Kind: netproto.KindExec,
			SQL:  "SELECT count(*) AS n FROM accounts",
		}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.Rows[0][0].I == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: count = %d", resp.Result.Rows[0][0].I)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestDSSRejectsUnknownTable(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: "SELECT x FROM ghost"}, time.Second); err == nil {
		t.Error("query over unknown table succeeded")
	}
}

func TestDSSOnlineCalibration(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	dss, dssAddr := startDSS(t, remoteAddr)
	sql := "SELECT count(*) AS n FROM trades"
	for i := 0; i < 2; i++ {
		if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: sql}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if dss.costs.Len() == 0 {
		t.Error("no calibration entries recorded")
	}
}

func TestNewDSSServerValidation(t *testing.T) {
	if _, err := NewDSSServer(DSSConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	_, remoteAddr := startRemote(t, accountsTable(t))
	if _, err := NewDSSServer(DSSConfig{
		Remotes:   map[core.SiteID]string{0: remoteAddr},
		TimeScale: 1,
	}); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := NewDSSServer(DSSConfig{
		Remotes:   map[core.SiteID]string{1: remoteAddr},
		Replicate: map[core.TableID]time.Duration{"ghost": time.Second},
		TimeScale: 1,
	}); err == nil {
		t.Error("replication of unserved table accepted")
	}
	if _, err := NewDSSServer(DSSConfig{
		Remotes: map[core.SiteID]string{1: "127.0.0.1:1"},
	}); err == nil {
		t.Error("unreachable remote accepted")
	}
}

func TestDSSDuplicateTableAcrossSites(t *testing.T) {
	_, addr1 := startRemote(t, accountsTable(t))
	_, addr2 := startRemote(t, accountsTable(t))
	if _, err := NewDSSServer(DSSConfig{
		Remotes:   map[core.SiteID]string{1: addr1, 2: addr2},
		TimeScale: 1,
	}); err == nil {
		t.Error("duplicate table across sites accepted")
	}
}

func TestDSSMetrics(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	// Two queries, one failing.
	for _, sql := range []string{"SELECT count(*) AS n FROM trades", "SELECT nope FROM trades"} {
		_, _ = netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: sql}, time.Second)
	}
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m := resp.Metrics
	if m["queries_total"] != 2 {
		t.Errorf("queries_total = %v, want 2", m["queries_total"])
	}
	if m["query_errors_total"] != 1 {
		t.Errorf("query_errors_total = %v, want 1", m["query_errors_total"])
	}
	if m["replica_syncs_total"] < 1 {
		t.Errorf("replica_syncs_total = %v", m["replica_syncs_total"])
	}
	if m["report_value_count"] != 1 {
		t.Errorf("report_value_count = %v, want 1 (only the successful query)", m["report_value_count"])
	}
	if m["report_cl_minutes_p95"] < 0 {
		t.Errorf("report_cl_minutes_p95 = %v", m["report_cl_minutes_p95"])
	}
}

func TestRemoteServerScanDelay(t *testing.T) {
	srv := NewRemoteServer()
	srv.SetScanDelay(60 * time.Millisecond)
	if err := srv.AddTable(accountsTable(t)); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	start := time.Now()
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "accounts"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("scan returned in %v, delay not applied", elapsed)
	}
	// Ping is not delayed.
	start = time.Now()
	if _, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindPing}, time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("ping took %v, should not be delayed", elapsed)
	}
}

func TestRemoteServerRequestTimeoutCapsScans(t *testing.T) {
	srv := NewRemoteServer()
	srv.SetScanDelay(2 * time.Second)
	srv.SetRequestTimeout(80 * time.Millisecond)
	if err := srv.AddTable(accountsTable(t)); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	// The client waits generously, but the server's own cap fires first
	// and the response comes back as a typed expiry.
	start := time.Now()
	_, err = netproto.Call(addr, &netproto.Request{Kind: netproto.KindScan, Table: "accounts"}, 5*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("capped scan succeeded")
	}
	var remoteErr *netproto.RemoteError
	if !errors.As(err, &remoteErr) || !remoteErr.Expired {
		t.Fatalf("error = %v, want expired RemoteError", err)
	}
	if elapsed > time.Second {
		t.Errorf("capped scan took %v, cap not applied", elapsed)
	}
}

func TestDSSPushdown(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	// The trades filter is fully qualified, so it pushes to the remote;
	// the join predicate stays local. Results must match the unpushable
	// formulation exactly.
	pushable := `SELECT a.a_id, sum(tr.t_amount) AS s
	             FROM accounts a, trades tr
	             WHERE a.a_id = tr.t_account AND tr.t_amount > 0
	             GROUP BY a.a_id ORDER BY a.a_id`
	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: pushable}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 1 || resp.Result.Rows[0][0].I != 1 || resp.Result.Rows[0][1].F != 30 {
		t.Fatalf("result = %v", resp.Result.Rows)
	}

	m, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["pushdowns_total"] < 1 {
		t.Errorf("pushdowns_total = %v, want ≥ 1", m.Metrics["pushdowns_total"])
	}
}

func TestDSSRegisterAndRoute(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	sql := `SELECT a.a_id, a.a_balance FROM accounts a WHERE a.a_balance > 50 ORDER BY a.a_id`
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindRegister, SQL: sql}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Re-registering is idempotent.
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindRegister, SQL: sql}, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindExec, SQL: sql}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.NumRows() != 2 {
		t.Fatalf("rows = %d", resp.Result.NumRows())
	}

	m, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["registered_queries_total"] != 1 {
		t.Errorf("registered_queries_total = %v", m.Metrics["registered_queries_total"])
	}
	if m.Metrics["routed_plans_total"] < 1 {
		t.Errorf("routed_plans_total = %v, want ≥ 1", m.Metrics["routed_plans_total"])
	}
}

func TestDSSRegisterBadSQL(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindRegister, SQL: "garbage"}, time.Second); err == nil {
		t.Error("bad SQL registered")
	}
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindRegister, SQL: "SELECT x FROM ghost"}, time.Second); err == nil {
		t.Error("unknown table registered")
	}
}

func TestDSSBatchMQO(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	req := &netproto.Request{
		Kind: netproto.KindBatch,
		Batch: []netproto.BatchQuery{
			{SQL: "SELECT count(*) AS n FROM accounts", BusinessValue: .5},
			{SQL: "SELECT sum(t_amount) AS s FROM trades", BusinessValue: 1},
			{SQL: "SELECT a_id FROM accounts ORDER BY a_id", BusinessValue: .8},
		},
	}
	resp, err := netproto.Call(dssAddr, req, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Batch) != 3 {
		t.Fatalf("batch items = %d", len(resp.Batch))
	}
	for i, item := range resp.Batch {
		if item.Err != "" {
			t.Fatalf("item %d: %s", i, item.Err)
		}
		if item.Result == nil || item.Meta == nil {
			t.Fatalf("item %d incomplete", i)
		}
		if item.Meta.Value <= 0 || item.Meta.Value > 1 {
			t.Errorf("item %d IV = %v", i, item.Meta.Value)
		}
	}
	// Items stay aligned with the request regardless of execution order.
	if resp.Batch[0].Result.Rows[0][0].I != 2 {
		t.Errorf("item 0 = %v", resp.Batch[0].Result.Rows)
	}
	if resp.Batch[1].Result.Rows[0][0].F != -40 {
		t.Errorf("item 1 = %v", resp.Batch[1].Result.Rows)
	}

	m, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["batches_total"] != 1 {
		t.Errorf("batches_total = %v", m.Metrics["batches_total"])
	}
}

func TestDSSBatchPartialFailure(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindBatch,
		Batch: []netproto.BatchQuery{
			{SQL: "SELECT count(*) AS n FROM accounts"},
			{SQL: "totally not sql"},
			{SQL: "SELECT x FROM ghost"},
		},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batch[0].Err != "" || resp.Batch[0].Result == nil {
		t.Errorf("good member failed: %+v", resp.Batch[0])
	}
	if resp.Batch[1].Err == "" || resp.Batch[2].Err == "" {
		t.Error("bad members did not error individually")
	}
}

func TestDSSBatchEmpty(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t))
	_, dssAddr := startDSS(t, remoteAddr)
	if _, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindBatch}, time.Second); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestDSSCalibrationPersistence(t *testing.T) {
	_, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	dss, dssAddr := startDSS(t, remoteAddr)
	if _, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades",
	}, time.Second); err != nil {
		t.Fatal(err)
	}
	if dss.CalibrationLen() == 0 {
		t.Fatal("no calibration recorded")
	}
	var buf strings.Builder
	if err := dss.SaveCalibration(&buf); err != nil {
		t.Fatal(err)
	}

	dss2, _ := startDSS(t, remoteAddr)
	if err := dss2.LoadCalibration(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if dss2.CalibrationLen() != dss.CalibrationLen() {
		t.Errorf("restored %d entries, want %d", dss2.CalibrationLen(), dss.CalibrationLen())
	}
}

func TestDSSDegradesToReplicaWhenSiteDies(t *testing.T) {
	remote, remoteAddr := startRemote(t, accountsTable(t), tradesTable(t))
	_, dssAddr := startDSS(t, remoteAddr)

	// Let the replica of accounts materialize, then kill the site.
	time.Sleep(100 * time.Millisecond)
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}

	// accounts has a replica: the query degrades and still answers.
	resp, err := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM accounts",
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("query over replicated table failed with site down: %v", err)
	}
	if resp.Result.Rows[0][0].I != 2 {
		t.Errorf("count = %v", resp.Result.Rows[0][0])
	}

	// trades has no replica: if the planner goes to base, the error
	// surfaces; either way the server stays up.
	_, tradeErr := netproto.Call(dssAddr, &netproto.Request{
		Kind: netproto.KindExec, SQL: "SELECT count(*) AS n FROM trades",
	}, 15*time.Second)
	if tradeErr == nil {
		t.Error("query over unreplicated table succeeded with site down")
	}

	m, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindMetrics}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["degraded_reads_total"] < 1 {
		t.Errorf("degraded_reads_total = %v", m.Metrics["degraded_reads_total"])
	}
}
