package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"strings"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/sqlmini"

	"ivdss/internal/wall"
)

// Execution path of the DSS: planning one query (router fast path, bounded
// delays, degraded planning around open breakers), running its plan
// against replicas and remote sites, and the per-report IV accounting.
// Scheduling — which query runs when — lives in sched.go; this file only
// knows how to run the one it is handed.

// queryID derives a stable identifier for ad hoc SQL so repeated texts
// share calibration entries.
func queryID(sql string) string {
	sum := sha256.Sum256([]byte(strings.Join(strings.Fields(sql), " ")))
	return "sql-" + hex.EncodeToString(sum[:6])
}

// latencyBounds buckets CL/SL histograms in experiment minutes.
var latencyBounds = []float64{.1, .5, 1, 2, 5, 10, 20, 40, 80, 160}

// valueBounds buckets information-value histograms.
var valueBounds = []float64{.1, .2, .3, .4, .5, .6, .7, .8, .9, 1}

// expiryResponse classifies a mid-execution failure caused by the request
// context ending: a value-horizon cancellation, a wire-deadline expiry, or
// a client cancellation. It returns nil for ordinary errors. The matching
// counters distinguish work the admission controller killed for value
// reasons from work the client simply stopped waiting for.
func (s *DSSServer) expiryResponse(err error) *netproto.Response {
	var vee *core.ValueExpiredError
	switch {
	case errors.As(err, &vee):
		s.stats.Counter("queries_cancelled_total").Inc()
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.Counter("queries_deadline_exceeded_total").Inc()
	case errors.Is(err, context.Canceled):
		s.stats.Counter("queries_cancelled_total").Inc()
	default:
		return nil
	}
	return &netproto.Response{Err: err.Error(), Expired: true}
}

// isDegradedErr reports whether err is the typed degraded-mode failure: the
// query could not be answered because a site is down and no replica exists.
func isDegradedErr(err error) bool {
	var ue *core.SiteUnavailableError
	return errors.As(err, &ue)
}

// plannerQuery derives the planner's view of a parsed statement.
func (s *DSSServer) plannerQuery(stmt *sqlmini.SelectStmt, sql string, bv float64, submit core.Time) (core.Query, error) {
	var tables []core.TableID
	for _, name := range stmt.TableNames() {
		tables = append(tables, core.TableID(strings.ToLower(name)))
	}
	if bv == 0 {
		bv = 1
	}
	q := core.Query{ID: queryID(sql), Tables: tables, BusinessValue: bv, SubmitAt: submit}
	// Fail fast on unknown tables so batch members error individually.
	for _, id := range tables {
		if _, err := s.catalog.Placement().SiteOf(id); err != nil {
			return core.Query{}, err
		}
	}
	return q, nil
}

// runOne plans (router fast path optional), honours a bounded delay,
// executes, and records calibration and metrics for one query. The CL
// clock runs from q.SubmitAt, so queries queued behind their workload
// predecessors pay their waiting time.
func (s *DSSServer) runOne(ctx context.Context, stmt *sqlmini.SelectStmt, q core.Query, tryRouter bool) (*relation.Table, *netproto.ReportMeta, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, context.Cause(ctx)
	}
	now := s.now()
	snapshot, err := s.catalog.Snapshot(q.Tables, now, s.cfg.PlannerHorizon)
	if err != nil {
		return nil, nil, err
	}
	// Degradation policy (planner-level): a site whose breaker is open is
	// excluded from the plan space, so the search itself falls back to the
	// freshest replica — pricing the true staleness into the IV — instead
	// of the executor discovering the outage per call.
	degradedPlanning := false
	if down := s.openSites(); down != nil {
		for i := range snapshot {
			if down[snapshot[i].Site] {
				snapshot[i].BaseDown = true
				degradedPlanning = true
			}
		}
	}
	// Registered queries take the pre-calculated routing fast path; a
	// refusal (QoS violated, shape changed) falls back to the full search.
	// Routing tables were precomputed assuming healthy sites, so degraded
	// planning always takes the full search.
	var plan core.Plan
	usedRouter := false
	if tryRouter && !degradedPlanning {
		plan, usedRouter = s.router.Route(q.ID, snapshot, now)
	}
	if usedRouter {
		plan.Query = q // carry the true submission time for CL accounting
		s.stats.Counter("routed_plans_total").Inc()
	} else {
		plan, _, err = s.planner.Best(q, snapshot, now)
		if err != nil {
			return nil, nil, err
		}
	}

	// Honour a delayed plan, bounded by MaxDelay — and by the request
	// context: a deadline that fires mid-delay aborts before any work runs.
	if delay := s.wallDelay(plan.Start - s.now()); delay > 0 {
		if delay > s.cfg.MaxDelay {
			delay = s.cfg.MaxDelay
		}
		t := wall.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, nil, context.Cause(ctx)
		case <-s.closed:
			t.Stop()
			return nil, nil, fmt.Errorf("server shutting down")
		}
	}

	result, freshness, degradedExec, err := s.executePlan(ctx, stmt, plan)
	if err != nil {
		return nil, nil, err
	}
	// A degraded answer: the plan was searched around an open breaker, or
	// the executor itself had to fall back to a replica mid-read.
	degraded := degradedPlanning || degradedExec
	finish := s.now()

	// Online calibration: record the measured processing cost for this
	// (query, data-source configuration) pair. For plans without views the
	// key reduces to the legacy base-table subset, so saved calibrations
	// keep matching.
	s.costs.RecordAccess(q.ID, plan.Access, core.CostEstimate{Process: finish - plan.Start})

	lat := core.Latencies{
		CL: math.Max(finish-q.SubmitAt, 0),
		SL: math.Max(finish-freshness, 0),
	}
	value := core.InformationValue(q.BusinessValue, lat, s.cfg.Rates)
	s.stats.Histogram("report_cl_minutes", latencyBounds).Observe(lat.CL)
	s.stats.Histogram("report_sl_minutes", latencyBounds).Observe(lat.SL)
	s.stats.Histogram("report_value", valueBounds).Observe(value)
	if _, viewPlan := plan.ViewAccess(); viewPlan {
		s.stats.Counter("plans_view_total").Inc()
	} else if len(plan.BaseTables()) == 0 {
		s.stats.Counter("plans_all_replica_total").Inc()
	} else if len(plan.BaseTables()) == len(plan.Access) {
		s.stats.Counter("plans_all_base_total").Inc()
	} else {
		s.stats.Counter("plans_mixed_total").Inc()
	}
	if plan.Start > q.SubmitAt {
		s.stats.Counter("plans_delayed_total").Inc()
	}
	if degraded {
		s.stats.Counter("degraded_answers_total").Inc()
	}
	// Feed the adaptive replication loop: what this report lost to
	// staleness, charged to the replicas its plan read, and the query
	// itself for the placement review's workload window.
	s.observeSyncLoss(plan, value, lat)
	s.noteRecentQuery(q)
	return result, &netproto.ReportMeta{
		PlanSignature: plan.Signature(),
		CLMinutes:     lat.CL,
		SLMinutes:     lat.SL,
		Value:         value,
		Degraded:      degraded,
	}, nil
}

// executePlan evaluates the statement with per-table data sources chosen
// by the plan and returns the result, the oldest freshness timestamp
// actually used, and whether the answer is degraded (a base read fell back
// to a stale replica because the site was unreachable).
func (s *DSSServer) executePlan(ctx context.Context, stmt *sqlmini.SelectStmt, plan core.Plan) (*relation.Table, core.Time, bool, error) {
	// A view plan is the whole answer, already materialized and
	// pre-aggregated: serve it without re-evaluating the statement. The
	// copy-on-write refresh discipline makes the returned snapshot stable.
	if va, ok := plan.ViewAccess(); ok {
		s.mu.RLock()
		vs, ok := s.views[va.View]
		var table *relation.Table
		var syncedAt core.Time
		if ok && vs.table != nil {
			table, syncedAt = vs.table, vs.syncedAt
		}
		s.mu.RUnlock()
		if table == nil {
			return nil, 0, false, fmt.Errorf("server: no materialized answer for view %s", va.View)
		}
		return table, syncedAt, false, nil
	}
	cat := make(sqlmini.MapCatalog, len(plan.Access))
	oldest := math.Inf(1)
	degraded := false
	for _, a := range plan.Access {
		switch a.Kind {
		case core.AccessReplica:
			s.mu.RLock()
			snap, ok := s.replicas[a.Table]
			s.mu.RUnlock()
			if !ok {
				return nil, 0, false, fmt.Errorf("server: no replica snapshot for %s", a.Table)
			}
			cat.Add(string(a.Table), snap.table)
			oldest = math.Min(oldest, snap.syncedAt)
		case core.AccessBase:
			fetchedAt := s.now()
			// Query decomposition: push the table's single-alias filter
			// conjuncts to the remote site so only matching rows travel.
			// The residual WHERE still runs locally, so a refused or
			// failed pushdown only costs transfer, never correctness.
			req := &netproto.Request{Kind: netproto.KindScan, Table: string(a.Table)}
			if pushSQL, ok := sqlmini.PushdownFor(stmt, string(a.Table)); ok {
				req = &netproto.Request{Kind: netproto.KindExec, SQL: pushSQL}
				s.stats.Counter("pushdowns_total").Inc()
			}
			resp, err := s.callSite(ctx, a.Site, req)
			if err != nil {
				// A failure caused by the request's own deadline is the
				// caller's answer — degrading to a replica would spend more
				// time producing a report nobody is waiting for.
				if ctx.Err() != nil {
					return nil, 0, false, context.Cause(ctx)
				}
				// Availability degradation: an unreachable site is survivable
				// when a replica snapshot exists — serve the stale copy and
				// let the SL accounting price the staleness honestly.
				s.mu.RLock()
				snap, ok := s.replicas[a.Table]
				s.mu.RUnlock()
				if !ok {
					var remote *netproto.RemoteError
					if errors.As(err, &remote) {
						// The site answered: an application error, not an
						// outage — surface it undecorated.
						return nil, 0, false, fmt.Errorf("server: site %d: %w", a.Site, err)
					}
					return nil, 0, false, &core.SiteUnavailableError{Table: a.Table, Site: a.Site, Cause: err}
				}
				log.Printf("server: site %d unreachable for %s, degrading to replica (synced %.2f): %v", a.Site, a.Table, snap.syncedAt, err)
				s.stats.Counter("degraded_reads_total").Inc()
				degraded = true
				cat.Add(string(a.Table), snap.table)
				oldest = math.Min(oldest, snap.syncedAt)
				continue
			}
			result := resp.Result
			result.Name = string(a.Table)
			cat.Add(string(a.Table), result)
			oldest = math.Min(oldest, fetchedAt)
		case core.AccessView:
			// A view materializes a whole answer; the bypass above is the
			// only valid shape. The planner never emits mixed view plans.
			return nil, 0, false, fmt.Errorf("server: view %s cannot serve table %s inside a multi-source plan", a.View, a.Table)
		default:
			return nil, 0, false, fmt.Errorf("server: invalid access kind %d", int(a.Kind))
		}
	}
	out, err := sqlmini.ExecuteWith(ctx, stmt, cat, s.execOpts)
	if err != nil {
		return nil, 0, false, err
	}
	if math.IsInf(oldest, 1) {
		oldest = s.now()
	}
	return out, oldest, degraded, nil
}
