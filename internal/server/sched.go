package server

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/scheduler"
	"ivdss/internal/sqlmini"

	"ivdss/internal/wall"
)

// Live scheduling: the DSS drives the shared scheduler.Engine on its
// scaled wall clock. Every Exec and Batch request flows through the
// engine, which buffers arrivals in the micro-batch window, forms
// workloads of range-overlapping queries, GA-orders them (Section 3.2),
// and dispatches highest-effective-value-first with anti-starvation aging
// (Section 3.3) and horizon shedding. The DES dispatcher drives the
// identical engine on virtual time — one scheduling core, two drivers.

// liveStrategy plans dispatch candidates the way runOne will plan them:
// full IVQP search over the current catalog snapshot, with sites behind
// open breakers excluded so scheduling decisions already respect outages.
type liveStrategy struct{ s *DSSServer }

var _ scheduler.Strategy = liveStrategy{}

func (st liveStrategy) Plan(q core.Query, now core.Time) (core.Plan, error) {
	snap, err := st.s.catalog.Snapshot(q.Tables, now, st.s.cfg.PlannerHorizon)
	if err != nil {
		return core.Plan{}, err
	}
	if down := st.s.openSites(); down != nil {
		for i := range snap {
			if down[snap[i].Site] {
				snap[i].BaseDown = true
			}
		}
	}
	plan, _, err := st.s.planner.Best(q, snap, now)
	return plan, err
}

// pendingQuery is the engine payload for one admitted query: the parsed
// statement plus the path back to the waiting client — a reply channel
// for ad hoc queries, a collector slot for batch members.
type pendingQuery struct {
	ctx       context.Context
	stmt      *sqlmini.SelectStmt
	tryRouter bool
	// done receives the response for an ad hoc query (nil for batch
	// members).
	done chan *netproto.Response
	// batch/reqIdx place a batch member's result; nil for ad hoc queries.
	batch  *batchCollector
	reqIdx int
}

// deliver hands the finished response to whoever is waiting.
func (p *pendingQuery) deliver(resp *netproto.Response) {
	if p.batch != nil {
		item := &p.batch.items[p.reqIdx]
		item.Err = resp.Err
		item.Degraded = resp.Degraded
		item.Result = resp.Result
		item.Meta = resp.Meta
		if resp.MQOFallback {
			p.batch.fallback.Store(true)
		}
		p.batch.wg.Done()
		return
	}
	p.done <- resp
}

// batchCollector gathers one batch's member results. Members write
// disjoint item slots from executor goroutines; wg releases the waiting
// connection handler once every member delivered.
type batchCollector struct {
	items    []netproto.BatchItem
	fallback atomic.Bool
	wg       sync.WaitGroup
}

// newEngine wires the shared scheduling engine to this server: scaled
// wall clock, real execution, IVQP dispatch planning, and the configured
// MQO window, GA, aging, and admission bound.
func (s *DSSServer) newEngine() (*scheduler.Engine, error) {
	ecfg := scheduler.EngineConfig{
		Clock:    s.clock,
		Executor: liveExecutor{s},
		Strategy: liveStrategy{s},
		Rates:    s.cfg.Rates,
		Slots:    s.cfg.Workers,
		Aging:    s.cfg.Aging,
		Window:   core.Duration(s.cfg.MQOWindow.Seconds() * s.cfg.TimeScale),
		GA:       s.cfg.GA,
		Evaluator: &scheduler.Evaluator{
			Planner: s.planner,
			Catalog: s.catalog,
			Horizon: s.cfg.PlannerHorizon,
		},
		MaxQueue: s.cfg.QueueDepth,
		Stats:    s.stats,
		OnDrop:   s.onDrop,
	}
	if s.budgets != nil {
		// Weighted fair shedding: a full queue evicts the lowest
		// IV-per-budget-unit queued query instead of refusing the arrival.
		ecfg.Victim = s.budgets.Victim
	}
	eng, err := scheduler.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	eng.SetEpsilon(s.cfg.Epsilon)
	return eng, nil
}

// liveExecutor runs a dispatched query for real: one goroutine per
// execution slot in use, through the planning/execution path in exec.go.
type liveExecutor struct{ s *DSSServer }

var _ scheduler.Executor = liveExecutor{}

func (x liveExecutor) Execute(d scheduler.Dispatch, done func(core.Outcome)) {
	go func() {
		s := x.s
		p := d.Payload.(*pendingQuery)
		s.stats.Counter("queries_total").Inc()
		start := wall.Now()
		result, meta, err := s.runOne(p.ctx, p.stmt, d.Query, p.tryRouter)
		var resp *netproto.Response
		if err != nil {
			resp = s.expiryResponse(err)
			if resp == nil {
				s.stats.Counter("query_errors_total").Inc()
				resp = &netproto.Response{Err: err.Error(), Degraded: isDegradedErr(err)}
			}
		} else {
			resp = &netproto.Response{Result: result, Meta: meta, Degraded: meta.Degraded}
		}
		resp.MQOFallback = d.MQOFallback
		if p.batch == nil {
			// Only single-query service times feed the admission projection;
			// a batch member's duration says nothing about the next ad hoc
			// query.
			s.observeService(wall.Since(start))
		}
		o := core.Outcome{Query: d.Query, Err: err}
		if meta != nil {
			o.Value = meta.Value
		}
		if s.budgets != nil {
			s.budgets.Charge(d.Query.Tenant, o.Value)
		}
		p.deliver(resp)
		s.noteQueueDepth()
		done(o)
	}()
}

// onDrop answers queries the engine dropped without executing: expired in
// the queue (value-horizon shedding) or impossible to plan.
func (s *DSSServer) onDrop(o core.Outcome, payload any) {
	p := payload.(*pendingQuery)
	var resp *netproto.Response
	if o.Expired {
		s.stats.Counter("queries_shed_total").Inc()
		err := &core.ValueExpiredError{
			Query:   o.Query.ID,
			Horizon: o.Query.ValueHorizon(s.cfg.Rates, s.cfg.Epsilon),
			Reason:  "expired-queued",
		}
		resp = &netproto.Response{Err: err.Error(), Expired: true}
	} else {
		s.stats.Counter("queries_total").Inc()
		s.stats.Counter("query_errors_total").Inc()
		resp = &netproto.Response{Err: o.Err.Error(), Degraded: isDegradedErr(o.Err)}
	}
	p.deliver(resp)
	s.noteQueueDepth()
}

// noteQueueDepth mirrors the engine's queue length into the admission
// gauge.
func (s *DSSServer) noteQueueDepth() {
	s.stats.Gauge("admission_queue_depth").Set(float64(s.engine.QueueLen()))
}

// submitExec admits one ad hoc query into the engine and waits for its
// report. Parse and catalog errors answer immediately — they are query
// errors, not scheduling outcomes.
func (s *DSSServer) submitExec(ctx context.Context, req *netproto.Request, id string, horizon core.Duration) *netproto.Response {
	stmt, err := sqlmini.Parse(req.SQL)
	if err != nil {
		return s.execError(err)
	}
	q, err := s.plannerQuery(stmt, req.SQL, req.BusinessValue, s.now())
	if err != nil {
		return s.execError(err)
	}
	q.Tenant = req.Tenant
	p := &pendingQuery{ctx: ctx, stmt: stmt, tryRouter: true, done: make(chan *netproto.Response, 1)}
	if !s.engine.Submit(q, p) {
		return s.shed(id, horizon, "queue-full")
	}
	s.noteQueueDepth()
	select {
	case resp := <-p.done:
		return resp
	case <-s.closed:
		return &netproto.Response{Err: "server shutting down"}
	}
}

// execError counts a query that failed before it could be scheduled.
func (s *DSSServer) execError(err error) *netproto.Response {
	s.stats.Counter("queries_total").Inc()
	s.stats.Counter("query_errors_total").Inc()
	return &netproto.Response{Err: err.Error()}
}

// submitBatch admits a client workload as one engine group: members that
// parse are formed into workloads and GA-ordered immediately (Section
// 3.2), then dispatched by the same engine that schedules ad hoc queries.
// Admission against the queue bound is all-or-nothing, as a batch was one
// admission unit on the wire.
func (s *DSSServer) submitBatch(ctx context.Context, req *netproto.Request, id string, horizon core.Duration) *netproto.Response {
	if len(req.Batch) == 0 {
		return &netproto.Response{Err: "empty batch"}
	}
	s.stats.Counter("batches_total").Inc()
	submit := s.now()

	col := &batchCollector{items: make([]netproto.BatchItem, len(req.Batch))}
	queries := make([]core.Query, 0, len(req.Batch))
	payloads := make([]any, 0, len(req.Batch))
	for i, bq := range req.Batch {
		stmt, err := sqlmini.Parse(bq.SQL)
		if err != nil {
			col.items[i].Err = err.Error()
			continue
		}
		q, err := s.plannerQuery(stmt, bq.SQL, bq.BusinessValue, submit)
		if err != nil {
			col.items[i].Err = err.Error()
			continue
		}
		q.Tenant = req.Tenant
		col.wg.Add(1)
		queries = append(queries, q)
		payloads = append(payloads, &pendingQuery{ctx: ctx, stmt: stmt, batch: col, reqIdx: i})
	}
	if len(queries) == 0 {
		return &netproto.Response{Batch: col.items}
	}
	if !s.engine.SubmitGroup(queries, payloads) {
		return s.shed(id, horizon, "queue-full")
	}
	s.noteQueueDepth()

	delivered := make(chan struct{})
	go func() {
		col.wg.Wait()
		close(delivered)
	}()
	select {
	case <-delivered:
	case <-s.closed:
		return &netproto.Response{Err: "server shutting down"}
	}
	return &netproto.Response{Batch: col.items, MQOFallback: col.fallback.Load()}
}

// schedulerStatusMetrics is the scheduling slice of the registry included
// in KindStatus responses, so `ivqp -status` shows the live MQO engine
// without a full metrics dump.
func (s *DSSServer) schedulerStatusMetrics() map[string]float64 {
	out := make(map[string]float64)
	for name, v := range s.stats.Flatten() {
		if strings.HasPrefix(name, "workloads_formed") ||
			strings.HasPrefix(name, "workload_size") ||
			strings.HasPrefix(name, "mqo_") ||
			strings.HasPrefix(name, "aging_") ||
			strings.HasPrefix(name, "router_") ||
			strings.HasPrefix(name, "gossip_") ||
			strings.HasPrefix(name, "steal") {
			out[name] = v
		}
	}
	return out
}
