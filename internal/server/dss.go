package server

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ivdss/internal/cluster"
	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/faults"
	"ivdss/internal/federation"
	"ivdss/internal/metrics"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/replsync"
	"ivdss/internal/router"
	"ivdss/internal/scheduler"
	"ivdss/internal/sqlmini"
)

// DSSConfig wires a DSS server to its remote sites.
type DSSConfig struct {
	// Remotes maps each remote site to its TCP address.
	Remotes map[core.SiteID]string
	// Replicate lists the tables to replicate locally with their
	// synchronization periods (wall-clock).
	Replicate map[core.TableID]time.Duration
	// Views lists the materialized views to maintain locally. Each covers
	// one query's full answer and refreshes on base-table deltas filtered
	// through the view's predicate at the base site.
	Views []ViewSpec
	// Rates are the information-value discount rates (per experiment
	// minute).
	Rates core.DiscountRates
	// TimeScale converts wall-clock seconds to experiment minutes. The
	// default 1/60 makes an experiment minute a real minute; tests and
	// demos speed it up (e.g. 10 makes every wall second worth ten
	// experiment minutes).
	TimeScale float64
	// PlannerHorizon bounds how far ahead the planner may delay execution,
	// in experiment minutes. Default 30.
	PlannerHorizon core.Duration
	// ScheduleHorizon bounds how much synchronization schedule is
	// materialized, wall-clock. Default 24h.
	ScheduleHorizon time.Duration
	// MaxDelay caps how long the executor honours a delayed plan,
	// wall-clock. Default 30s.
	MaxDelay time.Duration
	// DialTimeout bounds remote calls: both establishing a connection and
	// each round trip run under this deadline. Default 5s.
	DialTimeout time.Duration
	// BaseContext roots every request context and the replication engine;
	// it is cancelled on Close in addition to whatever its owner does.
	// Defaults to a fresh background context for embedded servers.
	BaseContext context.Context

	// SyncBudget caps replication traffic, in bytes per wall-clock second
	// shared across all tables. Zero means unlimited. Cycles that would
	// overdraw the budget defer until it refills.
	SyncBudget float64
	// AdaptiveSync enables the IV-adaptive cadence controller: sync rate is
	// periodically re-divided across tables in proportion to the
	// information value each is losing to staleness, and the replica set
	// itself is reviewed online against the recent workload.
	AdaptiveSync bool
	// SyncAdjustEvery is the cadence controller's interval (wall-clock).
	// Default 10s.
	SyncAdjustEvery time.Duration

	// SQLEngine selects the sqlmini execution engine for local plan
	// evaluation: the bytecode VM (default) or the tree-walk reference
	// oracle. The VM shares one columnar/join-build cache per server, so
	// micro-batched workloads over the same replica snapshots skip
	// re-conversion and re-building.
	SQLEngine sqlmini.Engine

	// RetryAttempts is the total tries per remote call, including the
	// first. Default 3.
	RetryAttempts int
	// RetryBaseDelay seeds the exponential backoff between retries.
	// Default 25ms.
	RetryBaseDelay time.Duration
	// RetryBudget caps the cumulative backoff sleep per logical call.
	// Default 1s.
	RetryBudget time.Duration
	// BreakerFailures is how many consecutive failed calls (after retries)
	// open a site's circuit breaker. Default 3.
	BreakerFailures int
	// BreakerOpenTimeout is how long an open breaker rejects before
	// half-open probes are admitted. Default 3s.
	BreakerOpenTimeout time.Duration
	// BreakerProbes caps concurrent half-open probes per site. Default 1.
	BreakerProbes int
	// RetrySeed seeds the backoff jitter of remote-call retries, so a run
	// replays the same retry timing. Default 1.
	RetrySeed int64

	// Workers sizes the scheduling engine's execution slots serving KindExec
	// and KindBatch requests; connection handlers only submit. Default 8.
	Workers int
	// QueueDepth bounds how many queries may wait in the scheduling engine;
	// arrivals beyond it are shed immediately. Default 64.
	QueueDepth int
	// Epsilon is the admission controller's value-expiry threshold: a query
	// whose projected information value at completion falls below it is shed
	// instead of executed, and a running query is cancelled once its value
	// horizon passes. Default 0.01; negative disables value-based shedding
	// (the queue stays bounded regardless).
	Epsilon float64

	// Aging is the anti-starvation policy (Section 3.3) applied at every
	// dispatch decision: queries are ranked by information value plus a
	// boost that grows superlinearly with queue time. The zero value
	// disables it — pure value-maximizing dispatch, which can starve cheap
	// queries under sustained high-value load.
	Aging core.Aging
	// ShardID identifies this front-end in a shard cluster; meaningful only
	// when Peers is set. Shard IDs are the cluster.ShardMap indices clients
	// route against, 0-based.
	ShardID int
	// Peers maps the other shards' IDs to their TCP addresses. A non-empty
	// map turns on the anti-entropy gossip layer (breaker state, replica
	// freshness, queue depth over KindGossip) and, with StealHighWater,
	// work-stealing between front-ends. Entries for ShardID itself are
	// ignored.
	Peers map[int]string
	// GossipInterval is the mean gap between gossip rounds (wall-clock).
	// Default 2s.
	GossipInterval time.Duration
	// GossipSeed seeds the gossip peer choice and round jitter. Default 1.
	GossipSeed int64
	// StealHighWater hands whole Exec/Batch requests to the least-loaded
	// covering peer once the local admission queue reaches this depth; 0
	// disables work-stealing.
	StealHighWater int
	// Tenants maps tenant names to positive weights. A non-empty map turns
	// queue-full refusal into weighted fair shedding: the engine evicts the
	// queued query with the lowest business value × weight / (1 + spent)
	// priority when a higher-priority query arrives at a full queue.
	Tenants map[string]float64
	// MQOWindow is the continuous micro-batch window (wall-clock). Ad hoc
	// queries arriving while a window is open are held until it closes,
	// then formed into range-overlapping workloads and GA-ordered together
	// — Section 3.2's multi-query optimization applied continuously to the
	// live stream instead of only to explicit KindBatch requests. Zero
	// disables micro-batching; explicit batches are MQO-ordered regardless.
	MQOWindow time.Duration
	// GA parameterizes the genetic workload ordering used for explicit
	// batches and micro-batch windows. Zero fields take the scheduler
	// defaults; a zero Seed becomes 1 so runs are reproducible.
	GA scheduler.GAConfig
}

func (c DSSConfig) withDefaults() DSSConfig {
	if c.TimeScale == 0 {
		c.TimeScale = 1.0 / 60
	}
	if c.PlannerHorizon == 0 {
		c.PlannerHorizon = 30
	}
	if c.ScheduleHorizon == 0 {
		c.ScheduleHorizon = 24 * time.Hour
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 30 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SyncAdjustEvery == 0 {
		c.SyncAdjustEvery = 10 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 25 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = time.Second
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerOpenTimeout == 0 {
		c.BreakerOpenTimeout = 3 * time.Second
	}
	if c.BreakerProbes == 0 {
		c.BreakerProbes = 1
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 2 * time.Second
	}
	if c.GossipSeed == 0 {
		c.GossipSeed = 1
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Epsilon == 0 {
		c.Epsilon = .01
	}
	if c.GA.Seed == 0 {
		c.GA.Seed = 1
	}
	return c
}

// replicaSnapshot is one synchronized table copy plus its freshness.
type replicaSnapshot struct {
	table    *relation.Table
	syncedAt core.Time
}

// DSSServer is the live federation/DSS server.
type DSSServer struct {
	cfg     DSSConfig
	clock   *scheduler.WallClock
	catalog *federation.Catalog
	planner *core.Planner
	costs   *costmodel.CalibratedModel
	stats   *metrics.Registry

	// Remote I/O fault tolerance: pooled connections with per-round-trip
	// deadlines, budget-capped retries, and a circuit breaker per site.
	pool     *netproto.Pool
	retrier  netproto.Retrier
	breakers map[core.SiteID]*faults.Breaker

	// router is internally locked (RWMutex): Route is the concurrent fast
	// path, Register the rare write.
	router *router.Router

	// Cluster front-end state: the gossip ring (nil when not clustered),
	// the digest version counter, and the tenant budget accounts (nil when
	// no tenants are configured). See gossip.go.
	gossiper     *cluster.Gossiper
	shardVersion atomic.Uint64
	budgets      *cluster.Budgets

	mu       sync.RWMutex
	replicas map[core.TableID]replicaSnapshot
	// views holds the runtime state of every registered materialized view,
	// keyed by ViewID. The map itself is immutable after construction;
	// each entry's mutable fields are guarded by mu.
	views map[core.ViewID]*viewState

	// execOpts carries the configured sqlmini engine plus the server-wide
	// execution cache (columnar images, hash-join builds).
	execOpts sqlmini.Options

	// sync is the live replication engine; it owns every replica write.
	sync *replsync.Agent
	// recent is the sliding window of executed queries the adaptive
	// placement review scores against.
	recentMu  sync.Mutex
	recent    []core.Query
	recentIdx int

	// Scheduling: connection handlers submit Exec/Batch work into the
	// shared engine (bounded queue, micro-batch MQO, value-ranked dispatch
	// over Workers slots); baseCtx roots every request context and is
	// cancelled on Close.
	engine     *scheduler.Engine
	baseCtx    context.Context
	baseCancel context.CancelFunc
	svcMu      sync.Mutex
	svcEWMA    time.Duration // smoothed per-query service time

	listener  net.Listener
	live      connSet
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewDSSServer validates the config, discovers remote placements, builds
// the catalog and planner, and pulls the initial replica snapshots. The
// synchronization loop starts with Listen.
func NewDSSServer(cfg DSSConfig) (*DSSServer, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Remotes) == 0 {
		return nil, fmt.Errorf("server: DSS needs at least one remote site")
	}
	if err := cfg.Rates.Validate(); err != nil {
		return nil, err
	}
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("server: TimeScale must be positive")
	}

	// Discover which tables each remote serves, in site order so the
	// first configuration error surfaced is the same on every run.
	siteOf := make(map[core.TableID]core.SiteID)
	for _, site := range sortedKeys(cfg.Remotes) {
		addr := cfg.Remotes[site]
		if site < 1 {
			return nil, fmt.Errorf("server: remote site IDs start at 1, got %d", site)
		}
		discoverCtx, cancel := context.WithTimeout(cfg.BaseContext, cfg.DialTimeout)
		resp, err := netproto.CallContext(discoverCtx, addr, &netproto.Request{Kind: netproto.KindTables}, cfg.DialTimeout)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("server: discover site %d at %s: %w", site, addr, err)
		}
		for _, name := range resp.Tables {
			id := core.TableID(strings.ToLower(name))
			if prev, ok := siteOf[id]; ok {
				return nil, fmt.Errorf("server: table %s served by both site %d and site %d", id, prev, site)
			}
			siteOf[id] = site
		}
	}
	placement, err := federation.NewPlacement(siteOf)
	if err != nil {
		return nil, err
	}

	mgr := replication.NewManager()
	for _, id := range sortedKeys(cfg.Replicate) {
		period := cfg.Replicate[id]
		if _, ok := siteOf[id]; !ok {
			return nil, fmt.Errorf("server: replicated table %s not served by any remote", id)
		}
		if period <= 0 {
			return nil, fmt.Errorf("server: replication period for %s must be positive", id)
		}
		// Registered bare: the sync agent records completions and mirrors
		// its live cadence as it runs, so the planner's view tracks what
		// the replica store actually holds rather than a materialized
		// wall-clock schedule it may drift from.
		if err := mgr.Register(id, replication.Schedule{}); err != nil {
			return nil, err
		}
	}
	catalog, err := federation.NewCatalog(placement, mgr)
	if err != nil {
		return nil, err
	}

	costs, err := costmodel.NewCalibratedModel(&costmodel.CountModel{
		LocalProcess: .02,
		PerBaseTable: .05,
		TransmitFlat: .02,
	})
	if err != nil {
		return nil, err
	}
	planner, err := core.NewPlanner(costs, core.PlannerConfig{
		Rates:   cfg.Rates,
		Horizon: cfg.PlannerHorizon,
	})
	if err != nil {
		return nil, err
	}

	reg := metrics.NewRegistry()
	fastRouter, err := router.New(router.Config{Cost: costs, Rates: cfg.Rates, Stats: reg})
	if err != nil {
		return nil, err
	}
	s := &DSSServer{
		cfg:      cfg,
		clock:    scheduler.NewWallClock(cfg.TimeScale),
		catalog:  catalog,
		planner:  planner,
		costs:    costs,
		stats:    reg,
		pool:     netproto.NewPool(cfg.DialTimeout, cfg.DialTimeout),
		router:   fastRouter,
		replicas: make(map[core.TableID]replicaSnapshot),
		views:    make(map[core.ViewID]*viewState),
		execOpts: sqlmini.Options{Engine: cfg.SQLEngine, Cache: sqlmini.NewExecCache()},
		closed:   make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(cfg.BaseContext)
	// Pre-create the admission metrics so a -metrics dump shows them at
	// zero before the first query is shed or cancelled.
	s.stats.Counter("queries_shed_total")
	s.stats.Counter("queries_cancelled_total")
	s.stats.Counter("queries_deadline_exceeded_total")
	s.stats.Gauge("admission_queue_depth").Set(0)
	if len(cfg.Tenants) > 0 {
		budgets, err := cluster.NewBudgets(cluster.BudgetConfig{Weights: cfg.Tenants, Now: s.clock.Now})
		if err != nil {
			return nil, err
		}
		s.budgets = budgets
	}
	eng, err := s.newEngine()
	if err != nil {
		return nil, err
	}
	s.engine = eng
	gossiper, err := s.newGossiper()
	if err != nil {
		return nil, err
	}
	s.gossiper = gossiper
	if s.gossiper != nil {
		// Pre-create the steal counters so a dump shows the cluster layer
		// at zero before the first hand-off.
		s.stats.Counter("steals_out_total")
		s.stats.Counter("steals_in_total")
		s.stats.Counter("steal_forward_failures_total")
	}
	s.retrier = netproto.Retrier{
		MaxAttempts: cfg.RetryAttempts,
		BaseDelay:   cfg.RetryBaseDelay,
		Budget:      cfg.RetryBudget,
		Rand:        netproto.NewJitter(cfg.RetrySeed),
	}
	s.breakers = make(map[core.SiteID]*faults.Breaker, len(cfg.Remotes))
	for _, site := range sortedKeys(cfg.Remotes) {
		site := site
		s.breakers[site] = faults.NewBreaker(faults.BreakerConfig{
			FailureThreshold: cfg.BreakerFailures,
			// Wall-clock config to experiment minutes, on the same scaled
			// clock the engine runs on — which is what lets the identical
			// breaker logic run under the DES.
			OpenTimeout:    cfg.BreakerOpenTimeout.Seconds() * cfg.TimeScale,
			HalfOpenProbes: cfg.BreakerProbes,
			Clock:          s.clock,
			OnTransition: func(from, to faults.BreakerState) {
				s.stats.Counter("breaker_transitions_total").Inc()
				//lint:allow metriccheck(per-site gauge family, bounded by cfg.Remotes)
				s.stats.Gauge(breakerGaugeName(site)).Set(float64(to))
				log.Printf("server: site %d breaker %v -> %v", site, from, to)
			},
		})
		s.stats.Gauge(breakerGaugeName(site)).Set(float64(faults.Closed)) //lint:allow metriccheck(per-site gauge family, bounded by cfg.Remotes)
	}
	if err := s.registerViews(); err != nil {
		return nil, err
	}
	agent, err := s.newSyncAgent()
	if err != nil {
		return nil, err
	}
	s.sync = agent
	// Initial snapshot pulls so replicas are usable immediately; periodic
	// cycles (deltas from here on) start with Listen.
	for _, id := range agent.Tables() {
		if err := agent.SyncNow(id); err != nil {
			return nil, fmt.Errorf("server: initial sync of %s: %w", id, err)
		}
	}
	return s, nil
}

// breakerGaugeName is the per-site breaker state metric: 0 closed,
// 1 half-open, 2 open (faults.BreakerState values).
func breakerGaugeName(site core.SiteID) string {
	return fmt.Sprintf("breaker_state_site_%d", site)
}

// callSite runs one logical request against a remote site through the
// full fault-tolerance stack: circuit breaker admission, pooled
// connections with per-round-trip deadlines, and budget-capped retries on
// transport failures. Transport outcomes feed the breaker; a remote that
// answers with an application-level error is alive, so that surfaces as a
// RemoteError without penalizing the site.
func (s *DSSServer) callSite(ctx context.Context, site core.SiteID, req *netproto.Request) (*netproto.Response, error) {
	addr, ok := s.cfg.Remotes[site]
	if !ok {
		return nil, fmt.Errorf("server: no address for site %d", site)
	}
	br := s.breakers[site]
	if !br.Allow() {
		s.stats.Counter("breaker_rejects_total").Inc()
		return nil, &faults.OpenError{Key: fmt.Sprintf("site %d", site)}
	}
	var resp *netproto.Response
	err := s.retrier.DoContext(ctx, func(attempt int) error {
		if attempt > 0 {
			s.stats.Counter("remote_retries_total").Inc()
		}
		s.stats.Counter("remote_calls_total").Inc()
		r, err := s.pool.CallContext(ctx, addr, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		br.Failure()
		s.stats.Counter("remote_call_errors_total").Inc()
		return nil, fmt.Errorf("server: site %d: %w", site, err)
	}
	br.Success()
	if err := resp.ErrOrNil(); err != nil {
		return resp, err
	}
	return resp, nil
}

// openSites returns the sites whose breaker currently rejects calls.
func (s *DSSServer) openSites() map[core.SiteID]bool {
	var down map[core.SiteID]bool
	for _, site := range sortedKeys(s.breakers) {
		if s.breakers[site].State() == faults.Open {
			if down == nil {
				down = make(map[core.SiteID]bool)
			}
			down[site] = true
		}
	}
	return down
}

// LoadCalibration merges a previously saved calibration snapshot into the
// cost model, so a restarted DSS keeps its learned plan costs.
func (s *DSSServer) LoadCalibration(r io.Reader) error { return s.costs.ReadJSON(r) }

// SaveCalibration writes the current calibration snapshot.
func (s *DSSServer) SaveCalibration(w io.Writer) error { return s.costs.WriteJSON(w) }

// CalibrationLen reports how many plan configurations have measured costs.
func (s *DSSServer) CalibrationLen() int { return s.costs.Len() }

// now returns the current experiment time.
func (s *DSSServer) now() core.Time { return s.clock.Now() }

// wallDelay converts an experiment-minute delay to wall-clock.
func (s *DSSServer) wallDelay(minutes core.Duration) time.Duration {
	return s.clock.WallDelay(minutes)
}

// Listen binds the DSS to addr, starts the replication engine's periodic
// cycles, and serves clients in the background. It returns the bound
// address.
func (s *DSSServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = l
	s.sync.Start()
	if s.gossiper != nil {
		s.gossiper.Start()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return l.Addr().String(), nil
}

func (s *DSSServer) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("server: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			conn := netproto.NewConn(raw)
			s.live.add(conn)
			defer s.live.remove(conn)
			s.handleConn(conn)
		}()
	}
}

func (s *DSSServer) handleConn(conn *netproto.Conn) {
	defer conn.Close()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			return
		}
		var resp *netproto.Response
		switch req.Kind {
		case netproto.KindPing:
			resp = &netproto.Response{}
		case netproto.KindStatus:
			resp = s.handleStatus()
		case netproto.KindMetrics:
			s.sync.RefreshStaleness()
			resp = &netproto.Response{Metrics: s.stats.Flatten()}
		case netproto.KindRegister:
			resp = s.handleRegister(req)
		case netproto.KindGossip:
			resp = s.handleGossip(req)
		case netproto.KindBatch, netproto.KindExec:
			// Execution goes through admission control and the scheduling
			// engine: bounded queue, micro-batch MQO, value-ranked dispatch,
			// value-horizon shedding.
			resp = s.submit(req)
		default:
			resp = &netproto.Response{Err: fmt.Sprintf("DSS does not serve request kind %d", int(req.Kind))}
		}
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}

func (s *DSSServer) handleStatus() *netproto.Response {
	now := s.now()
	mgr := s.catalog.Replication()
	syncStatus := s.syncStatuses(now)
	var out []netproto.ReplicaStatus
	for _, id := range mgr.Tables() {
		site, err := s.catalog.Placement().SiteOf(id)
		if err != nil {
			continue
		}
		st := netproto.ReplicaStatus{Table: string(id), Site: int(site),
			LastSyncAgeMinutes: -1, NextSyncMinutes: -1}
		if agentView, ok := syncStatus[id]; ok {
			st.LastSyncAgeMinutes = agentView.LastSyncAgeMinutes
			st.NextSyncMinutes = agentView.NextSyncMinutes
			st.PeriodMinutes = agentView.PeriodMinutes
			st.Cursor = agentView.Cursor
		}
		s.mu.RLock()
		snap, ok := s.replicas[id]
		s.mu.RUnlock()
		if ok {
			st.LastSyncMinutes = snap.syncedAt
			st.StalenessMinutes = now - snap.syncedAt
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	var sites []netproto.SiteStatus
	for _, site := range sortedKeys(s.cfg.Remotes) {
		addr := s.cfg.Remotes[site]
		br := s.breakers[site]
		sites = append(sites, netproto.SiteStatus{
			Site:                int(site),
			Addr:                addr,
			Breaker:             br.State().String(),
			ConsecutiveFailures: br.Failures(),
		})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Site < sites[j].Site })
	return &netproto.Response{Replicas: out, Views: s.viewStatuses(now), Sites: sites, Metrics: s.schedulerStatusMetrics()}
}

// handleRegister pre-computes routing for a query (Section 3.1): plans for
// every staleness bucket within the replication QoS window are tabulated
// once, and later executions of the same SQL resolve by table lookup.
func (s *DSSServer) handleRegister(req *netproto.Request) *netproto.Response {
	stmt, err := sqlmini.Parse(req.SQL)
	if err != nil {
		return &netproto.Response{Err: err.Error()}
	}
	bv := req.BusinessValue
	if bv == 0 {
		bv = 1
	}
	var tables []core.TableID
	for _, name := range stmt.TableNames() {
		tables = append(tables, core.TableID(strings.ToLower(name)))
	}
	q := core.Query{ID: queryID(req.SQL), Tables: tables, BusinessValue: bv}

	repl := s.catalog.Replication()
	sites := make([]core.SiteID, len(tables))
	replicated := make([]bool, len(tables))
	// QoS window: replicas refresh on fixed periods, so staleness is
	// bounded by the largest period among the query's replicated tables.
	window := core.Duration(0)
	for i, id := range tables {
		site, err := s.catalog.Placement().SiteOf(id)
		if err != nil {
			return &netproto.Response{Err: err.Error()}
		}
		sites[i] = site
		if repl.Replicated(id) {
			replicated[i] = true
			if period, ok := s.cfg.Replicate[id]; ok {
				if m := period.Seconds() * s.cfg.TimeScale; m > window {
					window = m
				}
			}
		}
	}
	if window == 0 {
		// No replicated tables: routing is trivial (always all-base), but
		// the router still needs a positive window to tabulate against.
		window = 1
	}
	if s.router.Registered(q.ID) {
		return &netproto.Response{} // idempotent
	}
	if err := s.router.Register(q, sites, replicated, window); err != nil {
		if s.router.Registered(q.ID) {
			return &netproto.Response{} // lost a registration race: idempotent
		}
		return &netproto.Response{Err: err.Error()}
	}
	s.stats.Counter("registered_queries_total").Inc()
	return &netproto.Response{}
}

// Close stops the listener and the synchronization loop. It is idempotent.
func (s *DSSServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		s.sync.Stop()
		if s.gossiper != nil {
			s.gossiper.Stop()
		}
		s.engine.Stop()
		s.baseCancel() // cancel every in-flight request context
		if s.listener != nil {
			err = s.listener.Close()
		}
		s.live.closeAll()
		s.wg.Wait()
		if cerr := s.pool.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// sortedKeys returns m's keys in ascending order, so configuration
// walks, status tables, and teardown visit sites and tables
// deterministically.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
