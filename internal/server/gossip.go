package server

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ivdss/internal/cluster"
	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/netproto"
	"ivdss/internal/sqlmini"
)

// Cluster front-end wiring: when DSSConfig.Peers names other shards, the
// server joins the anti-entropy gossip ring (exchanging breaker state,
// replica freshness and queue depth over netproto KindGossip) and, with
// StealHighWater set, hands whole Exec/Batch requests to the least-loaded
// peer whose replica set covers the footprint once its own admission queue
// backs up. Routing queries TO shards is the client's job (ivqp-loadgen
// builds the same cluster.ShardMap); this file only keeps shards honest
// about each other's load and freshness.

// shardDigest cuts this server's current gossip state. It is the
// cluster.GossipConfig.State provider: called once per outgoing round and
// once per answered exchange.
func (s *DSSServer) shardDigest() cluster.Digest {
	now := s.now()
	s.mu.RLock()
	fresh := make(map[core.TableID]core.Time, len(s.replicas))
	for id, snap := range s.replicas {
		fresh[id] = snap.syncedAt
	}
	s.mu.RUnlock()
	var open map[core.SiteID]bool
	for _, site := range sortedKeys(s.breakers) {
		if s.breakers[site].State() == faults.Open {
			if open == nil {
				open = make(map[core.SiteID]bool)
			}
			open[site] = true
		}
	}
	return cluster.Digest{
		Node:         cluster.ShardID(s.cfg.ShardID),
		Version:      s.shardVersion.Add(1),
		Clock:        now,
		QueueDepth:   s.engine.QueueLen(),
		Slots:        s.cfg.Workers,
		OpenBreakers: open,
		Freshness:    fresh,
	}
}

// digestToWire converts a gossip digest to its netproto form.
func digestToWire(d cluster.Digest) *netproto.GossipDigest {
	g := &netproto.GossipDigest{
		Node:       int(d.Node),
		Version:    d.Version,
		Clock:      float64(d.Clock),
		QueueDepth: d.QueueDepth,
		Slots:      d.Slots,
		TotalIV:    d.TotalIV,
	}
	if len(d.OpenBreakers) > 0 {
		g.OpenBreakers = make(map[int]bool, len(d.OpenBreakers))
		for site, v := range d.OpenBreakers {
			g.OpenBreakers[int(site)] = v
		}
	}
	if len(d.Freshness) > 0 {
		g.Freshness = make(map[string]float64, len(d.Freshness))
		for id, t := range d.Freshness {
			g.Freshness[string(id)] = float64(t)
		}
	}
	return g
}

// digestFromWire converts a netproto digest back to the cluster form.
func digestFromWire(g *netproto.GossipDigest) cluster.Digest {
	d := cluster.Digest{
		Node:       cluster.ShardID(g.Node),
		Version:    g.Version,
		Clock:      core.Time(g.Clock),
		QueueDepth: g.QueueDepth,
		Slots:      g.Slots,
		TotalIV:    g.TotalIV,
	}
	if len(g.OpenBreakers) > 0 {
		d.OpenBreakers = make(map[core.SiteID]bool, len(g.OpenBreakers))
		for site, v := range g.OpenBreakers {
			d.OpenBreakers[core.SiteID(site)] = v
		}
	}
	if len(g.Freshness) > 0 {
		d.Freshness = make(map[core.TableID]core.Time, len(g.Freshness))
		for id, t := range g.Freshness {
			d.Freshness[core.TableID(id)] = core.Time(t)
		}
	}
	return d
}

// netTransport carries gossip exchanges over netproto. It runs on the
// gossiper's round goroutine, outside every server lock.
type netTransport struct{ s *DSSServer }

var _ cluster.Transport = netTransport{}

// Exchange implements cluster.Transport.
func (t netTransport) Exchange(peer cluster.ShardID, d cluster.Digest) (cluster.Digest, error) {
	addr, ok := t.s.cfg.Peers[int(peer)]
	if !ok {
		return cluster.Digest{}, fmt.Errorf("server: no address for peer shard %d", peer)
	}
	ctx, cancel := context.WithTimeout(t.s.baseCtx, t.s.cfg.DialTimeout)
	defer cancel()
	resp, err := netproto.CallContext(ctx, addr, &netproto.Request{
		Kind:   netproto.KindGossip,
		Gossip: digestToWire(d),
	}, t.s.cfg.DialTimeout)
	if err != nil {
		return cluster.Digest{}, err
	}
	if err := resp.ErrOrNil(); err != nil {
		return cluster.Digest{}, err
	}
	if resp.Gossip == nil {
		return cluster.Digest{}, fmt.Errorf("server: gossip reply from shard %d carried no digest", peer)
	}
	return digestFromWire(resp.Gossip), nil
}

// newGossiper assembles the gossip layer from the config's peer set; nil
// when the server is not clustered.
func (s *DSSServer) newGossiper() (*cluster.Gossiper, error) {
	if len(s.cfg.Peers) == 0 {
		return nil, nil
	}
	var peers []cluster.ShardID
	for id := range s.cfg.Peers {
		if id != s.cfg.ShardID {
			peers = append(peers, cluster.ShardID(id))
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return cluster.NewGossiper(cluster.GossipConfig{
		Self:      cluster.ShardID(s.cfg.ShardID),
		Peers:     peers,
		Clock:     s.clock,
		Transport: netTransport{s},
		State:     s.shardDigest,
		Interval:  core.Duration(s.cfg.GossipInterval.Seconds() * s.cfg.TimeScale),
		Seed:      s.cfg.GossipSeed,
		Stats:     s.stats,
	})
}

// handleGossip answers an incoming anti-entropy exchange.
func (s *DSSServer) handleGossip(req *netproto.Request) *netproto.Response {
	if s.gossiper == nil {
		return &netproto.Response{Err: "server is not clustered"}
	}
	if req.Gossip == nil {
		return &netproto.Response{Err: "gossip request without digest"}
	}
	reply := s.gossiper.Handle(digestFromWire(req.Gossip))
	return &netproto.Response{Gossip: digestToWire(reply)}
}

// requestFootprint derives the lowercased table footprint of an Exec or
// Batch request without touching the catalog; parse failures yield nil
// (the local path will produce the real error).
func requestFootprint(req *netproto.Request) []core.TableID {
	seen := make(map[core.TableID]bool)
	var out []core.TableID
	add := func(sql string) {
		stmt, err := sqlmini.Parse(sql)
		if err != nil {
			return
		}
		for _, name := range stmt.TableNames() {
			id := core.TableID(strings.ToLower(name))
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	if req.Kind == netproto.KindBatch {
		for _, m := range req.Batch {
			add(m.SQL)
		}
	} else {
		add(req.SQL)
	}
	return out
}

// maybeSteal hands a whole request to the least-loaded covering peer when
// this shard's admission queue has backed up past StealHighWater. The
// forwarded request carries Forwarded so the receiver serves it locally —
// one hop, never a steal chain. Any forwarding failure falls back to local
// admission: stealing is an optimization, not a correctness path.
func (s *DSSServer) maybeSteal(req *netproto.Request) (*netproto.Response, bool) {
	if s.gossiper == nil || s.cfg.StealHighWater <= 0 || req.Forwarded {
		return nil, false
	}
	depth := s.engine.QueueLen()
	if depth < s.cfg.StealHighWater {
		return nil, false
	}
	footprint := requestFootprint(req)
	maxAge := core.Duration(5 * s.cfg.GossipInterval.Seconds() * s.cfg.TimeScale)
	target, ok := cluster.ChooseTarget(s.gossiper.Table(), depth, footprint, s.now(),
		cluster.StealConfig{HighWater: s.cfg.StealHighWater, MaxAge: maxAge})
	if !ok {
		return nil, false
	}
	addr, ok := s.cfg.Peers[int(target)]
	if !ok {
		return nil, false
	}
	fwd := *req
	fwd.Forwarded = true
	// The wire wait is bounded by the request's value horizon: past it the
	// report is worthless anyway, so there is no point waiting longer for a
	// peer than we would work locally.
	timeout := s.cfg.DialTimeout
	if h := s.requestHorizon(&fwd); h > 0 && !math.IsInf(float64(h), 1) {
		if w := s.wallDelay(h); w > timeout {
			timeout = w
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	resp, err := netproto.CallContext(ctx, addr, &fwd, timeout)
	if err != nil {
		s.stats.Counter("steal_forward_failures_total").Inc()
		return nil, false
	}
	s.stats.Counter("steals_out_total").Inc()
	return resp, true
}
