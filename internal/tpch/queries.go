package tpch

import (
	"fmt"
	"sort"
	"strings"

	"ivdss/internal/relation"
	"ivdss/internal/sqlmini"
)

// Query is one of the 22 benchmark queries restated in the sqlmini dialect.
// Where the official query uses constructs outside the dialect (scalar and
// correlated sub-queries, CASE, EXTRACT, DISTINCT, outer joins), the
// restatement keeps the join graph, filters, and grouping and simplifies
// the rest; the Note field records each deviation.
type Query struct {
	ID   string
	SQL  string
	Note string // "" when the query is structurally faithful
}

// Queries returns the 22 queries in benchmark order.
func Queries() []Query {
	return []Query{
		{ID: "Q1", SQL: `
			SELECT l_returnflag, l_linestatus,
			       sum(l_quantity) AS sum_qty,
			       sum(l_extendedprice) AS sum_base_price,
			       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
			       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
			       avg(l_quantity) AS avg_qty,
			       avg(l_extendedprice) AS avg_price,
			       avg(l_discount) AS avg_disc,
			       count(*) AS count_order
			FROM lineitem
			WHERE l_shipdate <= DATE '1998-09-02'
			GROUP BY l_returnflag, l_linestatus
			ORDER BY l_returnflag, l_linestatus`},
		{ID: "Q2", Note: "min-supplycost correlated sub-query dropped; join graph and filters kept", SQL: `
			SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr
			FROM part p, supplier s, partsupp ps, nation n, region r
			WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
			  AND p.p_size = 15 AND p.p_type LIKE '%STEEL'
			  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			  AND r.r_name = 'EUROPE'
			ORDER BY s.s_acctbal DESC, n.n_name, s.s_name LIMIT 100`},
		{ID: "Q3", SQL: `
			SELECT l.l_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
			       o.o_orderdate, o.o_shippriority
			FROM customer c, orders o, lineitem l
			WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey
			  AND l.l_orderkey = o.o_orderkey
			  AND o.o_orderdate < DATE '1995-03-15' AND l.l_shipdate > DATE '1995-03-15'
			GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
			ORDER BY revenue DESC, o.o_orderdate LIMIT 10`},
		{ID: "Q4", Note: "EXISTS sub-query rewritten as a join with COUNT(DISTINCT order)", SQL: `
			SELECT o.o_orderpriority, count(DISTINCT o.o_orderkey) AS order_count
			FROM orders o, lineitem l
			WHERE o.o_orderkey = l.l_orderkey
			  AND o.o_orderdate >= DATE '1993-07-01' AND o.o_orderdate < DATE '1993-10-01'
			  AND l.l_commitdate < l.l_receiptdate
			GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`},
		{ID: "Q5", SQL: `
			SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM customer c, orders o, lineitem l, supplier s, nation n, region r
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			  AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
			  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			  AND r.r_name = 'ASIA'
			  AND o.o_orderdate >= DATE '1994-01-01' AND o.o_orderdate < DATE '1995-01-01'
			GROUP BY n.n_name ORDER BY revenue DESC`},
		{ID: "Q6", SQL: `
			SELECT sum(l_extendedprice * l_discount) AS revenue
			FROM lineitem
			WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
			  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`},
		{ID: "Q7", Note: "per-year split (EXTRACT) dropped; nation pair fixed one way", SQL: `
			SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
			       sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
			WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			  AND c.c_custkey = o.o_custkey
			  AND s.s_nationkey = n1.n_nationkey AND c.c_nationkey = n2.n_nationkey
			  AND n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
			  AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
			GROUP BY n1.n_name, n2.n_name ORDER BY revenue DESC`},
		{ID: "Q8", Note: "market-share CASE ratio reduced to the numerator revenue", SQL: `
			SELECT n2.n_name AS supp_nation, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM part p, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r
			WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
			  AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
			  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
			  AND r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey
			  AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
			  AND p.p_type = 'ECONOMY ANODIZED STEEL'
			GROUP BY n2.n_name ORDER BY revenue DESC`},
		{ID: "Q9", Note: "per-year split (EXTRACT) dropped; grouped by nation only", SQL: `
			SELECT n.n_name AS nation,
			       sum(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS profit
			FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
			WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
			  AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
			  AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
			  AND p.p_name LIKE '%green%'
			GROUP BY n.n_name ORDER BY profit DESC`},
		{ID: "Q10", SQL: `
			SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
			       c.c_acctbal, n.n_name
			FROM customer c, orders o, lineitem l, nation n
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			  AND o.o_orderdate >= DATE '1993-10-01' AND o.o_orderdate < DATE '1994-01-01'
			  AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
			GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name
			ORDER BY revenue DESC LIMIT 20`},
		{ID: "Q11", Note: "fraction-of-total sub-query replaced by a fixed HAVING threshold", SQL: `
			SELECT ps.ps_partkey, sum(ps.ps_supplycost * ps.ps_availqty) AS stock_value
			FROM partsupp ps, supplier s, nation n
			WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
			  AND n.n_name = 'GERMANY'
			GROUP BY ps.ps_partkey
			HAVING sum(ps.ps_supplycost * ps.ps_availqty) > 100000
			ORDER BY stock_value DESC`},
		{ID: "Q12", Note: "priority CASE split reduced to a single line count", SQL: `
			SELECT l.l_shipmode, count(*) AS line_count
			FROM orders o, lineitem l
			WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP')
			  AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate
			  AND l.l_receiptdate >= DATE '1994-01-01' AND l.l_receiptdate < DATE '1995-01-01'
			GROUP BY l.l_shipmode ORDER BY l.l_shipmode`},
		{ID: "Q13", Note: "left outer join reduced to inner join (customers with no orders drop out)", SQL: `
			SELECT c.c_custkey, count(*) AS c_count
			FROM customer c, orders o
			WHERE c.c_custkey = o.o_custkey
			GROUP BY c.c_custkey ORDER BY c_count DESC, c.c_custkey LIMIT 100`},
		{ID: "Q14", Note: "promo-share CASE ratio reduced to promo revenue", SQL: `
			SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
			FROM lineitem l, part p
			WHERE l.l_partkey = p.p_partkey AND p.p_type LIKE 'PROMO%'
			  AND l.l_shipdate >= DATE '1995-09-01' AND l.l_shipdate < DATE '1995-10-01'`},
		{ID: "Q15", Note: "revenue view + MAX sub-query replaced by ORDER BY ... LIMIT 1", SQL: `
			SELECT s.s_suppkey, s.s_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue
			FROM supplier s, lineitem l
			WHERE s.s_suppkey = l.l_suppkey
			  AND l.l_shipdate >= DATE '1996-01-01' AND l.l_shipdate < DATE '1996-04-01'
			GROUP BY s.s_suppkey, s.s_name
			ORDER BY total_revenue DESC LIMIT 1`},
		{ID: "Q16", Note: "excluded-supplier sub-query dropped", SQL: `
			SELECT p.p_brand, p.p_type, p.p_size, count(DISTINCT ps.ps_suppkey) AS supplier_cnt
			FROM partsupp ps, part p
			WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45'
			  AND p.p_size IN (1, 4, 7, 14, 23, 36, 45, 49)
			GROUP BY p.p_brand, p.p_type, p.p_size
			ORDER BY supplier_cnt DESC, p.p_brand, p.p_type, p.p_size`},
		{ID: "Q17", Note: "per-part average-quantity sub-query replaced by a constant threshold", SQL: `
			SELECT sum(l.l_extendedprice) / 7 AS avg_yearly
			FROM lineitem l, part p
			WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23'
			  AND p.p_container = 'MED BOX' AND l.l_quantity < 5`},
		{ID: "Q18", SQL: `
			SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice,
			       sum(l.l_quantity) AS total_qty
			FROM customer c, orders o, lineitem l
			WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
			GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
			HAVING sum(l.l_quantity) > 150
			ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100`},
		{ID: "Q19", SQL: `
			SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l, part p
			WHERE p.p_partkey = l.l_partkey
			  AND ((p.p_brand = 'Brand#12' AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size BETWEEN 1 AND 5)
			    OR (p.p_brand = 'Brand#23' AND l.l_quantity BETWEEN 10 AND 20 AND p.p_size BETWEEN 1 AND 10)
			    OR (p.p_brand = 'Brand#34' AND l.l_quantity BETWEEN 20 AND 30 AND p.p_size BETWEEN 1 AND 15))`},
		{ID: "Q20", Note: "nested availability sub-queries flattened into joins with a fixed quantity bound", SQL: `
			SELECT s.s_name, s.s_phone
			FROM supplier s, nation n, partsupp ps, part p
			WHERE s.s_suppkey = ps.ps_suppkey AND ps.ps_partkey = p.p_partkey
			  AND p.p_name LIKE 'forest%' AND s.s_nationkey = n.n_nationkey
			  AND n.n_name = 'CANADA' AND ps.ps_availqty > 100
			ORDER BY s.s_name`},
		{ID: "Q21", Note: "multi-supplier EXISTS/NOT EXISTS conditions dropped; late-delivery join kept", SQL: `
			SELECT s.s_name, count(*) AS numwait
			FROM supplier s, lineitem l, orders o, nation n
			WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			  AND o.o_orderstatus = 'F' AND l.l_receiptdate > l.l_commitdate
			  AND s.s_nationkey = n.n_nationkey AND n.n_name = 'SAUDI ARABIA'
			GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100`},
		{ID: "Q22", Note: "phone-prefix SUBSTRING and NOT EXISTS dropped; grouped by nation key", SQL: `
			SELECT c.c_nationkey, count(*) AS numcust, sum(c.c_acctbal) AS totacctbal
			FROM customer c
			WHERE c.c_acctbal > 0
			GROUP BY c.c_nationkey ORDER BY c.c_nationkey`},
	}
}

// QueryByID returns the query with the given ID.
func QueryByID(id string) (Query, error) {
	for _, q := range Queries() {
		if strings.EqualFold(q.ID, id) {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: unknown query %q", id)
}

// Tables returns the base tables the query reads (lower-cased, in
// first-appearance order).
func (q Query) Tables() ([]string, error) {
	stmt, err := sqlmini.Parse(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("tpch: %s: %w", q.ID, err)
	}
	names := stmt.TableNames()
	for i, n := range names {
		names[i] = strings.ToLower(n)
	}
	return names, nil
}

// Weights derives a deterministic per-query cost weight from the catalog:
// the total row count of the tables each query touches, normalized so the
// mean weight over all 22 queries is 1. It is the offline stand-in for the
// paper's calibration step ("this step needs to be done only once and can
// be done in advance").
func Weights(catalog map[string]*relation.Table) (map[string]float64, error) {
	raw := make(map[string]float64, 22)
	var total float64
	for _, q := range Queries() {
		tables, err := q.Tables()
		if err != nil {
			return nil, err
		}
		var rows float64
		for _, t := range tables {
			tbl, ok := catalog[t]
			if !ok {
				return nil, fmt.Errorf("tpch: weights: catalog missing table %s for %s", t, q.ID)
			}
			rows += float64(tbl.NumRows())
		}
		raw[q.ID] = rows
		total += rows
	}
	mean := total / float64(len(raw))
	for id := range raw {
		raw[id] /= mean
	}
	return raw, nil
}

// MidCostQueries returns the IDs of the k queries with mid-range weights —
// the paper's Figure 6 "15 queries which are neither too cheap nor too
// expensive" selection — ordered cheapest first.
func MidCostQueries(weights map[string]float64, k int) []string {
	type wq struct {
		id string
		w  float64
	}
	all := make([]wq, 0, len(weights))
	for id, w := range weights {
		all = append(all, wq{id, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w < all[j].w
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	drop := len(all) - k
	lo := drop / 2
	mid := all[lo : lo+k]
	ids := make([]string, k)
	for i, q := range mid {
		ids[i] = q.id
	}
	return ids
}
