// Package tpch is the TPC-H substrate for the paper's experiments: a
// deterministic scaled-down data generator for the eight benchmark tables,
// the 22 benchmark queries restated in the internal/sqlmini dialect (same
// join graphs and groupings, with the sub-query idioms the dialect omits
// simplified away), and the LineItem partitioning helper the paper's
// Section 4.2 setup uses ("we first split LineItem table into 5
// partitions, therefore there are totally 12 tables").
package tpch

import (
	"fmt"

	"ivdss/internal/relation"
)

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Part     = "part"
	PartSupp = "partsupp"
	Orders   = "orders"
	LineItem = "lineitem"
)

// TableNames lists the eight base tables in generation order.
func TableNames() []string {
	return []string{Region, Nation, Supplier, Customer, Part, PartSupp, Orders, LineItem}
}

func col(name string, t relation.Type) relation.Column {
	return relation.Column{Name: name, Type: t}
}

// Schemas returns the column layout of every table.
func Schemas() map[string]relation.Schema {
	return map[string]relation.Schema{
		Region: relation.MustSchema(
			col("r_regionkey", relation.Int),
			col("r_name", relation.Str),
		),
		Nation: relation.MustSchema(
			col("n_nationkey", relation.Int),
			col("n_name", relation.Str),
			col("n_regionkey", relation.Int),
		),
		Supplier: relation.MustSchema(
			col("s_suppkey", relation.Int),
			col("s_name", relation.Str),
			col("s_nationkey", relation.Int),
			col("s_acctbal", relation.Float),
			col("s_phone", relation.Str),
		),
		Customer: relation.MustSchema(
			col("c_custkey", relation.Int),
			col("c_name", relation.Str),
			col("c_nationkey", relation.Int),
			col("c_acctbal", relation.Float),
			col("c_mktsegment", relation.Str),
			col("c_phone", relation.Str),
		),
		Part: relation.MustSchema(
			col("p_partkey", relation.Int),
			col("p_name", relation.Str),
			col("p_mfgr", relation.Str),
			col("p_brand", relation.Str),
			col("p_type", relation.Str),
			col("p_size", relation.Int),
			col("p_container", relation.Str),
			col("p_retailprice", relation.Float),
		),
		PartSupp: relation.MustSchema(
			col("ps_partkey", relation.Int),
			col("ps_suppkey", relation.Int),
			col("ps_availqty", relation.Int),
			col("ps_supplycost", relation.Float),
		),
		Orders: relation.MustSchema(
			col("o_orderkey", relation.Int),
			col("o_custkey", relation.Int),
			col("o_orderstatus", relation.Str),
			col("o_totalprice", relation.Float),
			col("o_orderdate", relation.Date),
			col("o_orderpriority", relation.Str),
			col("o_shippriority", relation.Int),
		),
		LineItem: relation.MustSchema(
			col("l_orderkey", relation.Int),
			col("l_partkey", relation.Int),
			col("l_suppkey", relation.Int),
			col("l_linenumber", relation.Int),
			col("l_quantity", relation.Float),
			col("l_extendedprice", relation.Float),
			col("l_discount", relation.Float),
			col("l_tax", relation.Float),
			col("l_returnflag", relation.Str),
			col("l_linestatus", relation.Str),
			col("l_shipdate", relation.Date),
			col("l_commitdate", relation.Date),
			col("l_receiptdate", relation.Date),
			col("l_shipmode", relation.Str),
		),
	}
}

// PartitionLineItem splits the lineitem table into n hash partitions by
// l_orderkey, named lineitem_p0 .. lineitem_p<n-1>, mirroring the paper's
// 5-way split. The input catalog is not modified; the returned catalog has
// the partitions in place of the original lineitem table.
func PartitionLineItem(catalog map[string]*relation.Table, n int) (map[string]*relation.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tpch: partition count %d must be positive", n)
	}
	li, ok := catalog[LineItem]
	if !ok {
		return nil, fmt.Errorf("tpch: catalog has no %s table", LineItem)
	}
	out := make(map[string]*relation.Table, len(catalog)+n-1)
	for name, t := range catalog {
		if name != LineItem {
			out[name] = t
		}
	}
	parts := make([]*relation.Table, n)
	for i := range parts {
		parts[i] = relation.NewTable(PartitionName(i), li.Schema)
		out[parts[i].Name] = parts[i]
	}
	keyIdx := li.Schema.ColIndex("l_orderkey")
	for _, row := range li.Rows {
		p := int(row[keyIdx].I % int64(n))
		parts[p].Rows = append(parts[p].Rows, row)
	}
	return out, nil
}

// PartitionName returns the name of lineitem partition i.
func PartitionName(i int) string { return fmt.Sprintf("%s_p%d", LineItem, i) }

// PartitionedTableNames lists the 8−1+n table names of a catalog whose
// lineitem was split n ways (12 names for the paper's n=5 setup).
func PartitionedTableNames(n int) []string {
	names := make([]string, 0, 7+n)
	for _, t := range TableNames() {
		if t == LineItem {
			continue
		}
		names = append(names, t)
	}
	for i := 0; i < n; i++ {
		names = append(names, PartitionName(i))
	}
	return names
}

// ExpandPartitions rewrites a query's table set for a partitioned catalog:
// a reference to lineitem becomes references to all n partitions, matching
// how a federation decomposes a scan over a partitioned table.
func ExpandPartitions(tables []string, n int) []string {
	out := make([]string, 0, len(tables)+n)
	for _, t := range tables {
		if t == LineItem {
			for i := 0; i < n; i++ {
				out = append(out, PartitionName(i))
			}
			continue
		}
		out = append(out, t)
	}
	return out
}
