package tpch

import (
	"fmt"
	"time"

	"ivdss/internal/relation"
	"ivdss/internal/stats"
)

// Config sizes the generated data set. Scale 1 produces roughly one
// ten-thousandth of the official SF-1 volume (≈600 lineitem rows), which
// keeps experiments laptop-fast while preserving the official cardinality
// *ratios* between tables — the property the paper's latency shapes depend
// on. Use larger scales for heavier runs.
type Config struct {
	Scale float64
	Seed  int64
}

// Counts returns the per-table row counts at this scale.
func (c Config) Counts() map[string]int {
	scaled := func(n float64) int {
		v := int(n * c.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return map[string]int{
		Region:   5,
		Nation:   25,
		Supplier: scaled(10),
		Customer: scaled(150),
		Part:     scaled(200),
		PartSupp: scaled(200) * 4,
		Orders:   scaled(150) * 10,
		// lineitem rows follow from orders (1–7 lines each).
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationSpec pairs each of the 25 official nations with its region index.
var nationSpec = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP BAG"}
	typeSylls1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSylls2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSylls3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partNouns  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse", "chiffon", "chocolate", "coral", "forest", "green"}
)

// dateRange covers the official order-date span 1992-01-01 .. 1998-08-02.
var (
	minOrderDate = dateDays(1992, time.January, 1)
	maxOrderDate = dateDays(1998, time.August, 2)
)

func dateDays(y int, m time.Month, d int) int64 {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// Generate builds the full eight-table catalog deterministically from the
// config.
func Generate(cfg Config) (map[string]*relation.Table, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("tpch: scale %v must be positive", cfg.Scale)
	}
	src := stats.NewSource(cfg.Seed)
	counts := cfg.Counts()
	schemas := Schemas()
	catalog := make(map[string]*relation.Table, 8)
	for _, name := range TableNames() {
		catalog[name] = relation.NewTable(name, schemas[name])
	}

	region := catalog[Region]
	for i, name := range regionNames {
		region.MustInsert(relation.Row{relation.IntVal(int64(i)), relation.StrVal(name)})
	}

	nation := catalog[Nation]
	for i, spec := range nationSpec {
		nation.MustInsert(relation.Row{
			relation.IntVal(int64(i)),
			relation.StrVal(spec.name),
			relation.IntVal(int64(spec.region)),
		})
	}

	nSupp := counts[Supplier]
	supplier := catalog[Supplier]
	for i := 1; i <= nSupp; i++ {
		supplier.MustInsert(relation.Row{
			relation.IntVal(int64(i)),
			relation.StrVal(fmt.Sprintf("Supplier#%09d", i)),
			relation.IntVal(int64(src.Intn(len(nationSpec)))),
			relation.FloatVal(-999 + src.Float64()*10998),
			relation.StrVal(phone(src)),
		})
	}

	nCust := counts[Customer]
	customer := catalog[Customer]
	for i := 1; i <= nCust; i++ {
		customer.MustInsert(relation.Row{
			relation.IntVal(int64(i)),
			relation.StrVal(fmt.Sprintf("Customer#%09d", i)),
			relation.IntVal(int64(src.Intn(len(nationSpec)))),
			relation.FloatVal(-999 + src.Float64()*10998),
			relation.StrVal(segments[src.Intn(len(segments))]),
			relation.StrVal(phone(src)),
		})
	}

	nPart := counts[Part]
	part := catalog[Part]
	retail := make([]float64, nPart+1)
	for i := 1; i <= nPart; i++ {
		price := 900 + float64(i%1000)/10 + 100*float64(i%10)
		retail[i] = price
		part.MustInsert(relation.Row{
			relation.IntVal(int64(i)),
			relation.StrVal(partNouns[src.Intn(len(partNouns))] + " " + partNouns[src.Intn(len(partNouns))]),
			relation.StrVal(fmt.Sprintf("Manufacturer#%d", 1+src.Intn(5))),
			relation.StrVal(fmt.Sprintf("Brand#%d%d", 1+src.Intn(5), 1+src.Intn(5))),
			relation.StrVal(typeSylls1[src.Intn(len(typeSylls1))] + " " + typeSylls2[src.Intn(len(typeSylls2))] + " " + typeSylls3[src.Intn(len(typeSylls3))]),
			relation.IntVal(int64(1 + src.Intn(50))),
			relation.StrVal(containers[src.Intn(len(containers))]),
			relation.FloatVal(price),
		})
	}

	partsupp := catalog[PartSupp]
	type psKey struct{ part, supp int }
	psCost := make(map[psKey]float64)
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			s := 1 + (p+j*(nSupp/4+1))%nSupp
			cost := 1 + src.Float64()*999
			psCost[psKey{p, s}] = cost
			partsupp.MustInsert(relation.Row{
				relation.IntVal(int64(p)),
				relation.IntVal(int64(s)),
				relation.IntVal(int64(1 + src.Intn(9999))),
				relation.FloatVal(cost),
			})
		}
	}

	orders := catalog[Orders]
	lineitem := catalog[LineItem]
	nOrders := counts[Orders]
	orderKey := int64(0)
	for i := 0; i < nOrders; i++ {
		orderKey++
		custkey := int64(1 + src.Intn(nCust))
		odate := minOrderDate + int64(src.Intn(int(maxOrderDate-minOrderDate+1)))
		lines := 1 + src.Intn(7)
		var total float64
		status := "O"
		if src.Float64() < .5 {
			status = "F"
		}
		for ln := 1; ln <= lines; ln++ {
			partkey := 1 + src.Intn(nPart)
			suppkey := 1 + (partkey+(ln%4)*(nSupp/4+1))%nSupp
			qty := float64(1 + src.Intn(50))
			price := qty * retail[partkey] / 10
			disc := float64(src.Intn(11)) / 100
			tax := float64(src.Intn(9)) / 100
			ship := odate + int64(1+src.Intn(121))
			commit := odate + int64(30+src.Intn(61))
			receipt := ship + int64(1+src.Intn(30))
			flag := "N"
			if receipt <= dateDays(1995, time.June, 17) {
				if src.Float64() < .5 {
					flag = "R"
				} else {
					flag = "A"
				}
			}
			lstatus := "O"
			if ship <= dateDays(1995, time.June, 17) {
				lstatus = "F"
			}
			total += price * (1 - disc) * (1 + tax)
			lineitem.MustInsert(relation.Row{
				relation.IntVal(orderKey),
				relation.IntVal(int64(partkey)),
				relation.IntVal(int64(suppkey)),
				relation.IntVal(int64(ln)),
				relation.FloatVal(qty),
				relation.FloatVal(price),
				relation.FloatVal(disc),
				relation.FloatVal(tax),
				relation.StrVal(flag),
				relation.StrVal(lstatus),
				relation.DateVal(ship),
				relation.DateVal(commit),
				relation.DateVal(receipt),
				relation.StrVal(shipModes[src.Intn(len(shipModes))]),
			})
		}
		orders.MustInsert(relation.Row{
			relation.IntVal(orderKey),
			relation.IntVal(custkey),
			relation.StrVal(status),
			relation.FloatVal(total),
			relation.DateVal(odate),
			relation.StrVal(priorities[src.Intn(len(priorities))]),
			relation.IntVal(0),
		})
	}
	return catalog, nil
}

func phone(src *stats.Source) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+src.Intn(25), src.Intn(1000), src.Intn(1000), src.Intn(10000))
}
