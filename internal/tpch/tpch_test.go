package tpch

import (
	"strings"
	"testing"

	"ivdss/internal/relation"
	"ivdss/internal/sqlmini"
)

func generate(t *testing.T, scale float64) map[string]*relation.Table {
	t.Helper()
	catalog, err := Generate(Config{Scale: scale, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return catalog
}

func TestGenerateCardinalities(t *testing.T) {
	catalog := generate(t, 1)
	if got := catalog[Region].NumRows(); got != 5 {
		t.Errorf("regions = %d, want 5", got)
	}
	if got := catalog[Nation].NumRows(); got != 25 {
		t.Errorf("nations = %d, want 25", got)
	}
	if got := catalog[Customer].NumRows(); got != 150 {
		t.Errorf("customers = %d, want 150", got)
	}
	if got := catalog[Orders].NumRows(); got != 1500 {
		t.Errorf("orders = %d, want 1500", got)
	}
	li := catalog[LineItem].NumRows()
	if li < 1500 || li > 1500*7 {
		t.Errorf("lineitems = %d, want within [1500, 10500]", li)
	}
	if got := catalog[PartSupp].NumRows(); got != catalog[Part].NumRows()*4 {
		t.Errorf("partsupp = %d, want 4 per part", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, 0.5)
	b := generate(t, 0.5)
	for name, ta := range a {
		tb := b[name]
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, ta.NumRows(), tb.NumRows())
		}
		for i := range ta.Rows {
			for j := range ta.Rows[i] {
				if !relation.Equal(ta.Rows[i][j], tb.Rows[i][j]) {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Config{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	catalog := generate(t, 1)
	custKeys := make(map[int64]bool)
	for _, r := range catalog[Customer].Rows {
		custKeys[r[0].I] = true
	}
	for _, r := range catalog[Orders].Rows {
		if !custKeys[r[1].I] {
			t.Fatalf("order %d references missing customer %d", r[0].I, r[1].I)
		}
	}
	orderKeys := make(map[int64]bool)
	for _, r := range catalog[Orders].Rows {
		orderKeys[r[0].I] = true
	}
	nSupp := int64(catalog[Supplier].NumRows())
	nPart := int64(catalog[Part].NumRows())
	for _, r := range catalog[LineItem].Rows {
		if !orderKeys[r[0].I] {
			t.Fatalf("lineitem references missing order %d", r[0].I)
		}
		if r[1].I < 1 || r[1].I > nPart {
			t.Fatalf("lineitem references part %d outside [1, %d]", r[1].I, nPart)
		}
		if r[2].I < 1 || r[2].I > nSupp {
			t.Fatalf("lineitem references supplier %d outside [1, %d]", r[2].I, nSupp)
		}
	}
	for _, r := range catalog[Nation].Rows {
		if r[2].I < 0 || r[2].I > 4 {
			t.Fatalf("nation %s references region %d", r[1].S, r[2].I)
		}
	}
}

func TestGenerateDateOrdering(t *testing.T) {
	catalog := generate(t, 1)
	li := catalog[LineItem]
	ship := li.Schema.ColIndex("l_shipdate")
	receipt := li.Schema.ColIndex("l_receiptdate")
	for _, r := range li.Rows {
		if r[receipt].I <= r[ship].I {
			t.Fatalf("receipt %d not after ship %d", r[receipt].I, r[ship].I)
		}
	}
}

func TestAll22QueriesParseAndRun(t *testing.T) {
	catalog := generate(t, 1)
	cat := sqlmini.MapCatalog(catalog)
	queries := Queries()
	if len(queries) != 22 {
		t.Fatalf("have %d queries, want 22", len(queries))
	}
	nonEmpty := 0
	for _, q := range queries {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			out, err := sqlmini.Run(q.SQL, cat)
			if err != nil {
				t.Fatalf("%s failed: %v", q.ID, err)
			}
			if out.NumRows() > 0 {
				nonEmpty++
			}
		})
	}
	// Filters on tiny data legitimately empty some results, but the bulk of
	// the workload must produce rows or the generator is off.
	if nonEmpty < 15 {
		t.Errorf("only %d/22 queries returned rows", nonEmpty)
	}
}

func TestQ1Shape(t *testing.T) {
	catalog := generate(t, 1)
	out, err := sqlmini.Run(Queries()[0].SQL, sqlmini.MapCatalog(catalog))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Arity() != 10 {
		t.Errorf("Q1 arity = %d, want 10", out.Schema.Arity())
	}
	// At most 3 returnflags × 2 linestatuses.
	if out.NumRows() == 0 || out.NumRows() > 6 {
		t.Errorf("Q1 groups = %d", out.NumRows())
	}
	// sum_disc_price <= sum_base_price for every group (discounts ≥ 0).
	for _, r := range out.Rows {
		if r[4].F > r[3].F {
			t.Errorf("group %v: disc price %v exceeds base price %v", r[0], r[4].F, r[3].F)
		}
	}
}

func TestQueryByID(t *testing.T) {
	q, err := QueryByID("q17")
	if err != nil || q.ID != "Q17" {
		t.Errorf("QueryByID(q17) = %v, %v", q.ID, err)
	}
	if _, err := QueryByID("Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestQueryTables(t *testing.T) {
	q, _ := QueryByID("Q5")
	tables, err := q.Tables()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{Customer: true, Orders: true, LineItem: true, Supplier: true, Nation: true, Region: true}
	if len(tables) != len(want) {
		t.Fatalf("Q5 tables = %v", tables)
	}
	for _, tb := range tables {
		if !want[tb] {
			t.Errorf("unexpected table %s", tb)
		}
	}
	// Q7 references nation twice but it must appear once.
	q7, _ := QueryByID("Q7")
	t7, err := q7.Tables()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tb := range t7 {
		if tb == Nation {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Q7 lists nation %d times", count)
	}
}

func TestPartitionLineItem(t *testing.T) {
	catalog := generate(t, 1)
	liRows := catalog[LineItem].NumRows()
	parted, err := PartitionLineItem(catalog, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := parted[LineItem]; ok {
		t.Error("original lineitem still present")
	}
	if len(parted) != 12 {
		t.Errorf("partitioned catalog has %d tables, want 12", len(parted))
	}
	total := 0
	for i := 0; i < 5; i++ {
		p, ok := parted[PartitionName(i)]
		if !ok {
			t.Fatalf("missing partition %d", i)
		}
		total += p.NumRows()
		if p.NumRows() == 0 {
			t.Errorf("partition %d empty", i)
		}
	}
	if total != liRows {
		t.Errorf("partitions hold %d rows, want %d", total, liRows)
	}
	// Partitioning must not mutate the input catalog.
	if catalog[LineItem].NumRows() != liRows {
		t.Error("input catalog mutated")
	}
}

func TestPartitionLineItemErrors(t *testing.T) {
	catalog := generate(t, 1)
	if _, err := PartitionLineItem(catalog, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := PartitionLineItem(map[string]*relation.Table{}, 5); err == nil {
		t.Error("missing lineitem accepted")
	}
}

func TestPartitionedTableNames(t *testing.T) {
	names := PartitionedTableNames(5)
	if len(names) != 12 {
		t.Fatalf("names = %d, want 12", len(names))
	}
	for _, n := range names {
		if n == LineItem {
			t.Error("unsplit lineitem listed")
		}
	}
}

func TestExpandPartitions(t *testing.T) {
	in := []string{Customer, LineItem, Orders}
	out := ExpandPartitions(in, 3)
	if len(out) != 5 {
		t.Fatalf("expanded = %v", out)
	}
	if out[1] != PartitionName(0) || out[3] != PartitionName(2) {
		t.Errorf("expanded = %v", out)
	}
}

func TestWeights(t *testing.T) {
	catalog := generate(t, 1)
	weights, err := Weights(catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 22 {
		t.Fatalf("weights for %d queries", len(weights))
	}
	var sum float64
	for id, w := range weights {
		if w <= 0 {
			t.Errorf("%s weight %v not positive", id, w)
		}
		sum += w
	}
	if mean := sum / 22; mean < .999 || mean > 1.001 {
		t.Errorf("mean weight = %v, want 1", mean)
	}
	// Q22 touches only customer; Q9 joins six tables including lineitem.
	if weights["Q22"] >= weights["Q9"] {
		t.Errorf("Q22 (%v) should be cheaper than Q9 (%v)", weights["Q22"], weights["Q9"])
	}
}

func TestMidCostQueries(t *testing.T) {
	catalog := generate(t, 1)
	weights, err := Weights(catalog)
	if err != nil {
		t.Fatal(err)
	}
	mid := MidCostQueries(weights, 15)
	if len(mid) != 15 {
		t.Fatalf("mid = %d queries", len(mid))
	}
	seen := make(map[string]bool)
	for i, id := range mid {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
		if i > 0 && weights[mid[i-1]] > weights[id] {
			t.Errorf("not sorted by weight at %d", i)
		}
	}
	if got := MidCostQueries(weights, 100); len(got) != 22 {
		t.Errorf("oversized k returned %d", len(got))
	}
}

func TestQueriesHaveUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, q := range Queries() {
		if seen[q.ID] {
			t.Errorf("duplicate ID %s", q.ID)
		}
		seen[q.ID] = true
		if !strings.HasPrefix(q.ID, "Q") {
			t.Errorf("bad ID %s", q.ID)
		}
	}
}

// TestQ6MatchesManualComputation recomputes Q6's revenue by hand over the
// generated rows and compares with the engine's answer.
func TestQ6MatchesManualComputation(t *testing.T) {
	catalog := generate(t, 1)
	li := catalog[LineItem]
	ship := li.Schema.ColIndex("l_shipdate")
	disc := li.Schema.ColIndex("l_discount")
	qty := li.Schema.ColIndex("l_quantity")
	price := li.Schema.ColIndex("l_extendedprice")
	lo, _ := relation.ParseDate("1994-01-01")
	hi, _ := relation.ParseDate("1995-01-01")
	var want float64
	for _, r := range li.Rows {
		if r[ship].I >= lo.I && r[ship].I < hi.I &&
			r[disc].F >= .05 && r[disc].F <= .07 && r[qty].F < 24 {
			want += r[price].F * r[disc].F
		}
	}
	q, _ := QueryByID("Q6")
	out, err := sqlmini.Run(q.SQL, sqlmini.MapCatalog(catalog))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Rows[0][0].F
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Q6 revenue = %v, manual = %v", got, want)
	}
}

// TestQ1MatchesManualComputation validates all ten aggregate columns of
// Q1 against a hand computation for one group.
func TestQ1MatchesManualComputation(t *testing.T) {
	catalog := generate(t, 1)
	li := catalog[LineItem]
	flagIdx := li.Schema.ColIndex("l_returnflag")
	statusIdx := li.Schema.ColIndex("l_linestatus")
	ship := li.Schema.ColIndex("l_shipdate")
	qty := li.Schema.ColIndex("l_quantity")
	price := li.Schema.ColIndex("l_extendedprice")
	disc := li.Schema.ColIndex("l_discount")
	tax := li.Schema.ColIndex("l_tax")
	cut, _ := relation.ParseDate("1998-09-02")

	q, _ := QueryByID("Q1")
	out, err := sqlmini.Run(q.SQL, sqlmini.MapCatalog(catalog))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() == 0 {
		t.Fatal("Q1 returned no groups")
	}
	wantFlag, wantStatus := out.Rows[0][0].S, out.Rows[0][1].S

	var sumQty, sumBase, sumDisc, sumCharge, sumDiscount float64
	var n int64
	for _, r := range li.Rows {
		if r[ship].I > cut.I || r[flagIdx].S != wantFlag || r[statusIdx].S != wantStatus {
			continue
		}
		sumQty += r[qty].F
		sumBase += r[price].F
		sumDisc += r[price].F * (1 - r[disc].F)
		sumCharge += r[price].F * (1 - r[disc].F) * (1 + r[tax].F)
		sumDiscount += r[disc].F
		n++
	}
	row := out.Rows[0]
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"sum_qty", row[2].F, sumQty},
		{"sum_base_price", row[3].F, sumBase},
		{"sum_disc_price", row[4].F, sumDisc},
		{"sum_charge", row[5].F, sumCharge},
		{"avg_qty", row[6].F, sumQty / float64(n)},
		{"avg_price", row[7].F, sumBase / float64(n)},
		{"avg_disc", row[8].F, sumDiscount / float64(n)},
	}
	for _, c := range checks {
		if diff := c.got - c.want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s = %v, manual = %v", c.name, c.got, c.want)
		}
	}
	if row[9].I != n {
		t.Errorf("count_order = %d, manual = %d", row[9].I, n)
	}
}

// TestQ3TopKOrdered: Q3's LIMIT 10 must be the revenue-descending prefix.
func TestQ3TopKOrdered(t *testing.T) {
	catalog := generate(t, 1)
	q, _ := QueryByID("Q3")
	out, err := sqlmini.Run(q.SQL, sqlmini.MapCatalog(catalog))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() > 10 {
		t.Fatalf("LIMIT violated: %d rows", out.NumRows())
	}
	for i := 1; i < out.NumRows(); i++ {
		if out.Rows[i][1].F > out.Rows[i-1][1].F {
			t.Fatalf("revenue not descending at row %d", i)
		}
	}
}
