// Package randcheck forbids the global math/rand source in library
// code. Every random decision in the system — GA ordering, retry
// jitter, fault-proxy coin flips, Zipf workloads — must come from an
// injected, seeded *rand.Rand so a run replays bit-identically from its
// seed. The global source is shared, lockstep with every other caller
// in the process, and unseedable per-component: using it silently
// breaks replayability.
//
// The check resolves objects through go/types, so the global source
// reached under an import alias, a dot import, or as a captured
// function value (`pick := rand.Intn`) is flagged the same as a direct
// call.
package randcheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// constructors build sources or derived generators from an injected
// seed or generator, which is exactly the sanctioned pattern.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer is the randcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "randcheck",
	Doc: "forbid package-level math/rand functions and freshly-computed seeds in library code; " +
		"randomness must be an injected seeded *rand.Rand",
	Run: run,
}

func isRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || !isRandPkg(fn.Pkg()) || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !constructors[fn.Name()] {
				pass.Reportf(id.Pos(),
					"randcheck: global math/rand source via rand.%s: inject a seeded *rand.Rand instead", fn.Name())
				return true
			}
			return true
		})
		// rand.NewSource(<call>) computes a fresh seed (the classic
		// time.Now().UnixNano() idiom): the seed must be a value plumbed
		// in from configuration.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeOf(call)
			if fn == nil || !isRandPkg(fn.Pkg()) || fn.Name() != "NewSource" || len(call.Args) != 1 {
				return true
			}
			if _, isCall := call.Args[0].(*ast.CallExpr); isCall {
				pass.Reportf(call.Pos(),
					"randcheck: rand.NewSource seed is computed at the call site: plumb an injected seed value instead")
			}
			return true
		})
	}
}
