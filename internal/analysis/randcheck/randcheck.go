// Package randcheck forbids the global math/rand source in library
// code. Every random decision in the system — GA ordering, retry
// jitter, fault-proxy coin flips, Zipf workloads — must come from an
// injected, seeded *rand.Rand so a run replays bit-identically from its
// seed. The global source is shared, lockstep with every other caller
// in the process, and unseedable per-component: using it silently
// breaks replayability.
package randcheck

import (
	"go/ast"

	"ivdss/internal/analysis"
)

// constructors build sources or derived generators from an injected
// seed or generator, which is exactly the sanctioned pattern.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer is the randcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "randcheck",
	Doc: "forbid package-level math/rand functions and freshly-computed seeds in library code; " +
		"randomness must be an injected seeded *rand.Rand",
	Run: run,
}

func run(pass *analysis.Pass) {
	if pass.PkgName == "main" {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		locals := make([]string, 0, 2)
		for _, path := range [2]string{"math/rand", "math/rand/v2"} {
			if local, ok := analysis.ImportName(f, path); ok {
				locals = append(locals, local)
			}
		}
		if len(locals) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, local := range locals {
				name := analysis.PkgCall(call, local)
				if name == "" {
					continue
				}
				if !constructors[name] {
					pass.Reportf(call.Pos(),
						"randcheck: global math/rand source via rand.%s: inject a seeded *rand.Rand instead", name)
					return true
				}
				// rand.NewSource(<call>) computes a fresh seed (the
				// classic time.Now().UnixNano() idiom): the seed must be
				// a value plumbed in from configuration.
				if name == "NewSource" && len(call.Args) == 1 {
					if _, isCall := call.Args[0].(*ast.CallExpr); isCall {
						pass.Reportf(call.Pos(),
							"randcheck: rand.NewSource seed is computed at the call site: plumb an injected seed value instead")
					}
				}
			}
			return true
		})
	}
}
