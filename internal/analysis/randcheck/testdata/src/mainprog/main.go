// Command mainprog may roll dice however it likes.
package main

import "math/rand"

func main() {
	_ = rand.Intn(6)
}
