// Package a exercises randcheck: global math/rand use in library code.
package a

import "math/rand"

func seedFn() int64 { return 42 }

func bad() {
	_ = rand.Intn(5)                       // want `randcheck: global math/rand source via rand\.Intn`
	rand.Shuffle(2, func(i, j int) {})     // want `randcheck: global math/rand source via rand\.Shuffle`
	_ = rand.New(rand.NewSource(seedFn())) // want `randcheck: rand\.NewSource seed is computed at the call site`
}

func good(seed int64) *rand.Rand {
	// The sanctioned pattern: a seeded generator built from an injected
	// seed and threaded to whoever needs randomness.
	return rand.New(rand.NewSource(seed))
}

func goodZipf(rng *rand.Rand, n uint64) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 1, n)
}

func escaped() {
	_ = rand.Int() //lint:allow randcheck(fixture models an exempted one-off)
	_ = rand.Int() //lint:allow randcheck // want `randcheck: //lint:allow randcheck needs a reason`
}
