package a

import (
	"math/rand"
	"testing"
)

// Test files may use the global source.
func TestRandAllowed(t *testing.T) {
	_ = rand.Intn(3)
}
