package randcheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/randcheck"
)

func TestRandcheck(t *testing.T) {
	analysistest.Run(t, "testdata", randcheck.Analyzer, "a", "mainprog")
}
