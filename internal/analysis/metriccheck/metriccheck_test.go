package metriccheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/metriccheck"
)

func TestMetriccheck(t *testing.T) {
	analysistest.Run(t, "testdata", metriccheck.Analyzer, "a", "mainprog")
}
