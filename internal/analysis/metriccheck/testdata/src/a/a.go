// Package a exercises metriccheck: metric-name discipline.
package a

type registry struct{}

func (registry) Counter(name string) int   { return 0 }
func (registry) Gauge(name string) int     { return 0 }
func (registry) Histogram(name string) int { return 0 }

func metrics(r registry, dyn string) {
	_ = r.Counter("queries_total")
	_ = r.Counter("queries_total") // same name, same kind: get-or-create is fine
	_ = r.Histogram("service_seconds")
	_ = r.Gauge("queries_total") // want `metriccheck: metric "queries_total" registered as Gauge here but as Counter at`
	_ = r.Counter("BadName")     // want `metriccheck: metric name "BadName" must be snake_case`
	_ = r.Counter("kebab-case")  // want `metriccheck: metric name "kebab-case" must be snake_case`
	_ = r.Counter(dyn)           // want `metriccheck: Counter name must be a compile-time string literal`
	_ = r.Counter("dyn_" + dyn)  // want `metriccheck: Counter name must be a compile-time string literal`
	_ = r.Gauge(dyn)             //lint:allow metriccheck(fixture models a bounded per-site family)
	_ = r.Gauge(dyn)             //lint:allow metriccheck // want `metriccheck: //lint:allow metriccheck needs a reason`
}
