// Package a exercises metriccheck: metric-name discipline.
package a

import (
	reg "example.com/internal/metrics"
)

func metrics(r *reg.Registry, dyn string) {
	_ = r.Counter("queries_total")
	_ = r.Counter("queries_total") // same name, same kind: get-or-create is fine
	_ = r.Histogram("service_seconds", nil)
	_ = r.Gauge("queries_total") // want `metriccheck: metric "queries_total" registered as Gauge here but as Counter at`
	_ = r.Counter("BadName")     // want `metriccheck: metric name "BadName" must be snake_case`
	_ = r.Counter("kebab-case")  // want `metriccheck: metric name "kebab-case" must be snake_case`
	_ = r.Counter(dyn)           // want `metriccheck: Counter name must be a compile-time string literal`
	_ = r.Counter("dyn_" + dyn)  // want `metriccheck: Counter name must be a compile-time string literal`
	_ = r.Gauge(dyn)             //lint:allow metriccheck(fixture models a bounded per-site family)
	_ = r.Gauge(dyn)             //lint:allow metriccheck // want `metriccheck: //lint:allow metriccheck needs a reason`
}

// lookalike has the registry's method names but is not the registry:
// the retired syntactic pass flagged any .Counter("Bad Name") call by
// selector name alone; the type-aware pass resolves the receiver.
type lookalike struct{}

func (lookalike) Counter(name string) int { return 0 }

func notTheRegistry(l lookalike, dyn string) {
	_ = l.Counter(dyn)         // dynamic name on an unrelated type: fine
	_ = l.Counter("Not Snake") // unrelated type: not a metric
}
