// Package metrics is a fixture stub of the instrument registry.
package metrics

// Registry hands out named instruments, get-or-create.
type Registry struct{}

// Counter is a monotone counter.
type Counter struct{}

// Gauge is a set-to-value instrument.
type Gauge struct{}

// Histogram is a bucketed distribution.
type Histogram struct{}

func (*Registry) Counter(name string) *Counter                       { return nil }
func (*Registry) Gauge(name string) *Gauge                           { return nil }
func (*Registry) Histogram(name string, bounds []float64) *Histogram { return nil }
