// Command mainprog: metric discipline is a library concern.
package main

type registry struct{}

func (registry) Counter(name string) int { return 0 }

func main() {
	var r registry
	_ = r.Counter("whatever-Goes")
}
