// Package metriccheck enforces metric-name discipline on the
// get-or-create registry calls (Counter/Gauge/Histogram): names must be
// compile-time string literals (so the full metric surface is grep-able
// and stable across runs), snake_case (one naming scheme in dashboards
// and the DES/live comparison harness), and consistent within a package
// — the same name registered under two instrument kinds is always a
// bug, because the registry would silently hand back whichever kind won
// the race to create it.
//
// The registry methods are resolved by go/types: only methods declared
// in internal/metrics count, so an unrelated type that happens to have
// a Counter method no longer trips the check, and the registry reached
// through a helper or a renamed import no longer evades it.
package metriccheck

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"ivdss/internal/analysis"
)

// Analyzer is the metriccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "metriccheck",
	Doc:  "metric names must be literal snake_case strings, and one name must map to one instrument kind per package",
	Run:  run,
}

var kinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type registration struct {
	kind string
	pos  token.Position
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	seen := make(map[string]registration)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			fn := pass.CalleeOf(call)
			if fn == nil || !kinds[fn.Name()] || !analysis.FuncIn(fn, "internal/metrics") {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Pos(),
					"metriccheck: %s name must be a compile-time string literal so the metric surface is grep-able", fn.Name())
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !snakeCase.MatchString(name) {
				pass.Reportf(lit.Pos(), "metriccheck: metric name %q must be snake_case", name)
				return true
			}
			if prev, dup := seen[name]; dup && prev.kind != fn.Name() {
				pass.Reportf(lit.Pos(),
					"metriccheck: metric %q registered as %s here but as %s at %s", name, fn.Name(), prev.kind, prev.pos)
				return true
			}
			seen[name] = registration{kind: fn.Name(), pos: pass.Fset.Position(lit.Pos())}
			return true
		})
	}
}
