// A lightweight intra-package static call graph. Each FuncDecl becomes
// a node; every statically-resolvable call in its body (including
// inside nested function literals, which execute with the enclosing
// frame's locks and lifecycles as far as these analyzers care) becomes
// an edge carrying the call site. Dynamic calls through function
// values stay out — analyzers over the graph are expected to be
// conservative about what they cannot see.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// A CallSite is one static call: the syntax plus the resolved callee.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// A FuncNode is one declared function or method and its outgoing calls.
type FuncNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// A CallGraph indexes a package's functions by object.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
}

// Node returns fn's node, or nil when fn is not declared in this
// package (or has no body here).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Funcs lists the graph's nodes in source order.
func (g *CallGraph) Funcs() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// ReachableCall walks the graph from fn (inclusive of fn's own body)
// and returns the first call site for which found returns true, plus
// the chain of package-local functions traversed to reach it (empty
// when the hit is in fn itself). The walk is depth-first in source
// order, memoized against revisiting, so it terminates on recursion.
func (g *CallGraph) ReachableCall(fn *types.Func, found func(CallSite) bool) (CallSite, []*types.Func, bool) {
	seen := make(map[*types.Func]bool)
	var walk func(cur *types.Func, chain []*types.Func) (CallSite, []*types.Func, bool)
	walk = func(cur *types.Func, chain []*types.Func) (CallSite, []*types.Func, bool) {
		if seen[cur] {
			return CallSite{}, nil, false
		}
		seen[cur] = true
		node := g.nodes[cur]
		if node == nil {
			return CallSite{}, nil, false
		}
		for _, cs := range node.Calls {
			if found(cs) {
				return cs, chain, true
			}
		}
		for _, cs := range node.Calls {
			if cs.Callee == nil || g.nodes[cs.Callee] == nil {
				continue
			}
			if hit, via, ok := walk(cs.Callee, append(chain[:len(chain):len(chain)], cs.Callee)); ok {
				return hit, via, ok
			}
		}
		return CallSite{}, nil, false
	}
	return walk(fn, nil)
}

func buildCallGraph(p *Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := p.FuncFor(fd)
			if fn == nil {
				continue
			}
			node := &FuncNode{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				node.Calls = append(node.Calls, CallSite{Call: call, Callee: p.CalleeOf(call)})
				return true
			})
			g.nodes[fn] = node
		}
	}
	return g
}
