// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer/Pass
// plumbing to host the ivdss-lint invariant checkers without pulling a
// module the build must not depend on. Analyzers are type-aware: every
// Pass carries a go/types-checked Package (load.go builds them from
// module trees, golden testdata trees, or `go vet` export data), so
// checkers resolve callees by object — an aliased import, a dot
// import, or a same-package wrapper no longer evades them — and can
// walk the package's static call graph (callgraph.go).
//
// Escape hatch: a finding may be suppressed with a trailing comment on
// the offending line (or the line above):
//
//	//lint:allow clockcheck(reason the wall clock is correct here)
//
// The reason is mandatory; a bare `//lint:allow clockcheck` is itself a
// diagnostic. Each directive names exactly one analyzer, so a line that
// needs two exemptions carries two directives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"path/filepath"
	"regexp"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects the pass's files
// and reports findings via pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass)
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// A Pass hands one analyzer one type-checked package. The embedded
// Package exposes the parsed files, go/types info, object resolution
// (CalleeOf), and the lazily-built call graph (Graph).
type Pass struct {
	Analyzer *Analyzer
	*Package

	diags  []Diagnostic
	allows map[*ast.File]map[int][]*allowDirective
}

// PkgName returns the package's declared name.
func (p *Pass) PkgName() string { return p.Package.Name }

// ImportPath returns the package's import path.
func (p *Pass) ImportPath() string { return p.Package.Path }

type allowDirective struct {
	analyzer   string
	reason     string
	pos        token.Pos
	complained bool // needs-a-reason reported once, not per suppressed finding
}

var allowRe = regexp.MustCompile(`//lint:allow\s+(\w+)(?:\(([^)]*)\))?`)

// Reportf records a finding at pos unless an //lint:allow directive for
// this analyzer covers the line (trailing, or on the line above). A
// directive without a reason does not suppress: it replaces the finding
// with a demand for one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if f := p.fileFor(pos); f != nil {
		for _, line := range [2]int{posn.Line, posn.Line - 1} {
			for _, d := range p.allowsFor(f)[line] {
				if d.analyzer != p.Analyzer.Name {
					continue
				}
				if d.reason == "" {
					if !d.complained {
						d.complained = true
						p.diags = append(p.diags, Diagnostic{
							Analyzer: p.Analyzer.Name,
							Pos:      posn,
							Message: fmt.Sprintf("%s: //lint:allow %s needs a reason: //lint:allow %s(why this line is exempt)",
								p.Analyzer.Name, p.Analyzer.Name, p.Analyzer.Name),
						})
					}
					return
				}
				return // suppressed with a reason
			}
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      posn,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func (p *Pass) allowsFor(f *ast.File) map[int][]*allowDirective {
	if p.allows == nil {
		p.allows = make(map[*ast.File]map[int][]*allowDirective)
	}
	if m, ok := p.allows[f]; ok {
		return m
	}
	m := make(map[int][]*allowDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ms := allowRe.FindAllStringSubmatch(c.Text, -1)
			if ms == nil {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			for _, sub := range ms {
				m[line] = append(m[line], &allowDirective{
					analyzer: sub[1],
					reason:   strings.TrimSpace(sub[2]),
					pos:      c.Pos(),
				})
			}
		}
	}
	p.allows[f] = m
	return m
}

// Run executes one analyzer over one type-checked package and returns
// its findings.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	p := &Pass{Analyzer: a, Package: pkg}
	a.Run(p)
	return p.diags
}

// ImportName returns the local name under which f imports importPath
// ("" and false if it does not, or imports it blank or dot).
func ImportName(f *ast.File, importPath string) (string, bool) {
	for _, spec := range f.Imports {
		p := strings.Trim(spec.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if spec.Name == nil {
			return path.Base(p), true
		}
		if spec.Name.Name == "_" || spec.Name.Name == "." {
			return "", false
		}
		return spec.Name.Name, true
	}
	return "", false
}

// ImportNameSuffix returns the local name of the first import whose
// path's trailing segments equal suffix (e.g. "internal/netproto"
// matches both the real module path and a test fixture's).
func ImportNameSuffix(f *ast.File, suffix string) (string, bool) {
	for _, spec := range f.Imports {
		p := strings.Trim(spec.Path.Value, `"`)
		if !PathEndsWith(p, suffix) {
			continue
		}
		if spec.Name == nil {
			return path.Base(p), true
		}
		if spec.Name.Name == "_" || spec.Name.Name == "." {
			return "", false
		}
		return spec.Name.Name, true
	}
	return "", false
}

// PathEndsWith reports whether importPath's trailing slash-separated
// segments equal suffix's.
func PathEndsWith(importPath, suffix string) bool {
	return importPath == suffix || strings.HasSuffix(importPath, "/"+suffix)
}

// IsTestFile reports whether f was parsed from a _test.go file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Filename returns the base name of the file f was parsed from.
func Filename(fset *token.FileSet, f *ast.File) string {
	return filepath.Base(fset.Position(f.Pos()).Filename)
}

// PkgCall matches a call of the form pkgLocal.Name(...) and returns the
// called name ("" if the expression is not such a call).
func PkgCall(call *ast.CallExpr, pkgLocal string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgLocal {
		return ""
	}
	return sel.Sel.Name
}
