package ctxcheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/ctxcheck"
)

func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcheck.Analyzer, "a", "mainprog")
}
