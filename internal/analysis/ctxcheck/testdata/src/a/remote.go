package a

import (
	"context"

	"example.com/internal/federation"
	"example.com/internal/netproto"
)

func roundTrips(ctx context.Context, addr string) {
	netproto.Call(addr, nil, 0)                 // want `ctxcheck: netproto\.Call drops the caller's context`
	_, _ = netproto.Dial(addr, 0)               // want `ctxcheck: netproto\.Dial drops the caller's context`
	federation.ExecutePlan(nil, nil)            // want `ctxcheck: federation\.ExecutePlan drops the caller's context`
	_ = netproto.CallContext(ctx, addr, nil, 0) // threading ctx is the fix
}
