// Package a exercises ctxcheck: fresh root contexts below cmd/.
package a

import "context"

var pkgRoot = context.Background() // want `ctxcheck: context\.Background below cmd/`

func bad(addr string) {
	ctx := context.Background() // want `ctxcheck: context\.Background below cmd/`
	todo := context.TODO()      // want `ctxcheck: context\.TODO below cmd/`
	_, _ = ctx, todo
}

// Call is the sanctioned ctx-less public wrapper: the fresh root is
// born and consumed on one line, so nothing mid-stack captures it.
func Call(addr string) error {
	return CallContext(context.Background(), addr)
}

func CallContext(ctx context.Context, addr string) error { return nil }

type config struct{ Context context.Context }

func (c *config) withDefaults() {
	// The nil-default guard is the other sanctioned idiom.
	if c.Context == nil {
		c.Context = context.Background()
	}
}

func escaped() {
	_ = context.Background() //lint:allow ctxcheck(fixture models a justified request root)
	_ = context.Background() //lint:allow ctxcheck // want `ctxcheck: //lint:allow ctxcheck needs a reason`
}
