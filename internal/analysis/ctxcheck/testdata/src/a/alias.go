package a

import (
	"context"

	np "example.com/internal/netproto"
)

// The retired syntactic pass matched the literal selector
// "netproto.Call", so an aliased import evaded it. Object resolution
// flags the same function under any spelling.
func aliased(ctx context.Context, addr string) {
	np.Call(addr, nil, 0) // want `ctxcheck: netproto\.Call drops the caller's context`
	_ = np.CallContext(ctx, addr, nil, 0)
}
