// Package federation is a fixture stub of the federation engine.
package federation

import "context"

// Plan is a chosen execution plan.
type Plan struct{}

// Result is an executed plan's answer.
type Result struct{}

// ExecutePlan evaluates a plan without a context (the banned entry point).
func ExecutePlan(p *Plan, r *Result) error { return nil }

// ExecutePlanContext is the sanctioned context-threading sibling.
func ExecutePlanContext(ctx context.Context, p *Plan, r *Result) error { return nil }
