// Package netproto is a fixture stub of the wire client: just enough
// surface for the golden packages to type-check.
package netproto

import "context"

// Request is the wire request envelope.
type Request struct{}

// Conn is a client connection.
type Conn struct{}

// Call round-trips without a context (the banned entry point).
func Call(addr string, req *Request, timeoutMillis int64) error { return nil }

// Dial connects without a context (the banned entry point).
func Dial(addr string, timeoutMillis int64) (*Conn, error) { return nil, nil }

// CallContext is the sanctioned context-threading sibling.
func CallContext(ctx context.Context, addr string, req *Request, timeoutMillis int64) error {
	return nil
}
