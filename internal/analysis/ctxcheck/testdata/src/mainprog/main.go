// Command mainprog owns the process root context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
