// Package ctxcheck enforces context discipline below cmd/: remote
// round-trips must thread the caller's context.Context, and library
// code must not mint fresh root contexts with context.Background() or
// context.TODO(). A Background() mid-stack detaches the work from the
// caller's deadline and cancellation — exactly how a shed or expired
// query keeps burning a branch server after nobody wants the answer.
//
// Two idioms stay legal without an escape hatch, because they preserve
// rather than break the discipline:
//
//   - the ctx-less public wrapper, a single-return delegation such as
//     `func Call(...) { return CallContext(context.Background(), ...) }`;
//   - the nil-default guard `if cfg.Context == nil { cfg.Context =
//     context.Background() }`.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "remote round-trips must thread context.Context; no context.Background()/TODO() below cmd/ " +
		"outside ctx-less delegating wrappers and nil-default guards",
	Run: run,
}

// ctxless maps an import-path suffix to the package-level functions
// that drop the caller's context and therefore must not be called from
// library code (each has a Context-taking sibling).
var ctxless = map[string]map[string]bool{
	"internal/netproto":   {"Call": true, "Dial": true},
	"internal/federation": {"ExecutePlan": true},
}

func run(pass *analysis.Pass) {
	if pass.PkgName == "main" {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		checkFile(pass, f)
	}
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	ctxLocal, hasCtx := analysis.ImportName(f, "context")
	type remote struct{ local, suffix string }
	var remotes []remote
	for suffix := range ctxless {
		if local, ok := analysis.ImportNameSuffix(f, suffix); ok {
			remotes = append(remotes, remote{local, suffix})
		}
	}
	if !hasCtx && len(remotes) == 0 {
		return
	}

	for _, decl := range f.Decls {
		fn, isFunc := decl.(*ast.FuncDecl)
		if isFunc && fn.Body == nil {
			continue
		}
		// A ctx-less delegating wrapper: the whole body is one return
		// that hands a fresh root to the Context-taking sibling. The
		// root is born and consumed on the same line, so nothing
		// mid-stack can capture it.
		if isFunc && isDelegatingWrapper(fn, ctxLocal) {
			continue
		}
		exempt := map[*ast.CallExpr]bool{}
		if isFunc && hasCtx {
			markNilDefaults(fn.Body, ctxLocal, exempt)
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if hasCtx && !exempt[call] {
				if name := analysis.PkgCall(call, ctxLocal); name == "Background" || name == "TODO" {
					pass.Reportf(call.Pos(),
						"ctxcheck: context.%s below cmd/ detaches from the caller's deadline: accept and thread a ctx", name)
				}
			}
			for _, r := range remotes {
				if name := analysis.PkgCall(call, r.local); ctxless[r.suffix][name] {
					pass.Reportf(call.Pos(),
						"ctxcheck: %s.%s drops the caller's context: call %s.%sContext and thread ctx", r.local, name, r.local, name)
				}
			}
			return true
		})
	}
}

// isDelegatingWrapper reports whether fn's body is exactly one return
// statement that passes context.Background()/TODO() as an argument of a
// call (the sanctioned ctx-less public wrapper shape).
func isDelegatingWrapper(fn *ast.FuncDecl, ctxLocal string) bool {
	if ctxLocal == "" || len(fn.Body.List) != 1 {
		return false
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if inner, ok := arg.(*ast.CallExpr); ok {
			if name := analysis.PkgCall(inner, ctxLocal); name == "Background" || name == "TODO" {
				return true
			}
		}
	}
	return false
}

// markNilDefaults records Background/TODO calls of the shape
//
//	if x == nil { x = context.Background() }
//
// (either comparison order) as exempt.
func markNilDefaults(body *ast.BlockStmt, ctxLocal string, exempt map[*ast.CallExpr]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		target := nilComparee(ifs.Cond)
		if target == "" {
			return true
		}
		for _, stmt := range ifs.Body.List {
			asg, ok := stmt.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				continue
			}
			if types.ExprString(asg.Lhs[0]) != target {
				continue
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			if name := analysis.PkgCall(call, ctxLocal); name == "Background" || name == "TODO" {
				exempt[call] = true
			}
		}
		return true
	})
}

// nilComparee returns the printed form of X for a condition `X == nil`
// or `nil == X`, and "" otherwise.
func nilComparee(cond ast.Expr) string {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return ""
	}
	if id, ok := bin.Y.(*ast.Ident); ok && id.Name == "nil" {
		return types.ExprString(bin.X)
	}
	if id, ok := bin.X.(*ast.Ident); ok && id.Name == "nil" {
		return types.ExprString(bin.Y)
	}
	return ""
}
