// Package ctxcheck enforces context discipline below cmd/: remote
// round-trips must thread the caller's context.Context, and library
// code must not mint fresh root contexts with context.Background() or
// context.TODO(). A Background() mid-stack detaches the work from the
// caller's deadline and cancellation — exactly how a shed or expired
// query keeps burning a branch server after nobody wants the answer.
//
// Two idioms stay legal without an escape hatch, because they preserve
// rather than break the discipline:
//
//   - the ctx-less public wrapper, a single-return delegation such as
//     `func Call(...) { return CallContext(context.Background(), ...) }`;
//   - the nil-default guard `if cfg.Context == nil { cfg.Context =
//     context.Background() }`.
//
// Resolution is by go/types object, so an aliased or dot import of
// context, or a ctx-less remote call reached under a renamed import,
// is flagged the same as the direct spelling.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "remote round-trips must thread context.Context; no context.Background()/TODO() below cmd/ " +
		"outside ctx-less delegating wrappers and nil-default guards",
	Run: run,
}

// ctxless lists, per import-path suffix, the package-level functions
// that drop the caller's context and therefore must not be called from
// library code (each has a Context-taking sibling).
var ctxless = []struct {
	suffix string
	names  map[string]bool
}{
	{"internal/netproto", map[string]bool{"Call": true, "Dial": true}},
	{"internal/federation", map[string]bool{"ExecutePlan": true}},
}

// rootCtxFn classifies fn as context.Background or context.TODO.
func rootCtxFn(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// ctxlessRemote classifies fn as one of the banned ctx-less remote
// round-trip entry points.
func ctxlessRemote(fn *types.Func) (pkg, name string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	for _, entry := range ctxless {
		if analysis.PathEndsWith(fn.Pkg().Path(), entry.suffix) && entry.names[fn.Name()] {
			return fn.Pkg().Name(), fn.Name(), true
		}
	}
	return "", "", false
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, isFunc := decl.(*ast.FuncDecl)
		if isFunc && fn.Body == nil {
			continue
		}
		// A ctx-less delegating wrapper: the whole body is one return
		// that hands a fresh root to the Context-taking sibling. The
		// root is born and consumed on the same line, so nothing
		// mid-stack can capture it.
		if isFunc && isDelegatingWrapper(pass, fn) {
			continue
		}
		exempt := map[*ast.CallExpr]bool{}
		if isFunc {
			markNilDefaults(pass, fn.Body, exempt)
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.CalleeOf(call)
			if !exempt[call] {
				if name, ok := rootCtxFn(callee); ok {
					pass.Reportf(call.Pos(),
						"ctxcheck: context.%s below cmd/ detaches from the caller's deadline: accept and thread a ctx", name)
					return true
				}
			}
			if pkg, name, ok := ctxlessRemote(callee); ok {
				pass.Reportf(call.Pos(),
					"ctxcheck: %s.%s drops the caller's context: call %s.%sContext and thread ctx", pkg, name, pkg, name)
			}
			return true
		})
	}
}

// isDelegatingWrapper reports whether fn's body is exactly one return
// statement that passes context.Background()/TODO() as an argument of a
// call (the sanctioned ctx-less public wrapper shape).
func isDelegatingWrapper(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if inner, ok := arg.(*ast.CallExpr); ok {
			if _, ok := rootCtxFn(pass.CalleeOf(inner)); ok {
				return true
			}
		}
	}
	return false
}

// markNilDefaults records Background/TODO calls of the shape
//
//	if x == nil { x = context.Background() }
//
// (either comparison order) as exempt.
func markNilDefaults(pass *analysis.Pass, body *ast.BlockStmt, exempt map[*ast.CallExpr]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		target := nilComparee(ifs.Cond)
		if target == "" {
			return true
		}
		for _, stmt := range ifs.Body.List {
			asg, ok := stmt.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				continue
			}
			if types.ExprString(asg.Lhs[0]) != target {
				continue
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, ok := rootCtxFn(pass.CalleeOf(call)); ok {
				exempt[call] = true
			}
		}
		return true
	})
}

// nilComparee returns the printed form of X for a condition `X == nil`
// or `nil == X`, and "" otherwise.
func nilComparee(cond ast.Expr) string {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return ""
	}
	if id, ok := bin.Y.(*ast.Ident); ok && id.Name == "nil" {
		return types.ExprString(bin.X)
	}
	if id, ok := bin.X.(*ast.Ident); ok && id.Name == "nil" {
		return types.ExprString(bin.Y)
	}
	return ""
}
