package goroutinecheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/goroutinecheck"
)

func TestGoroutinecheck(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinecheck.Analyzer, "a")
}
