// Package goroutinecheck requires every `go` statement in library code
// to be tied to a visible lifecycle. A goroutine nobody can stop or
// wait for outlives its server: the gossiper keeps gossiping after
// Stop, the sync agent keeps pulling deltas from a dead remote, a test
// leaks workers into the next test's race window. Accepted lifecycle
// evidence, anywhere in the spawned body or in same-package functions
// it (transitively) calls:
//
//   - a reference to a context.Context (cancellation is threaded);
//   - a channel receive, a range over a channel, or a channel send
//     (the goroutine is tied to a consumer or a done/stop channel);
//   - a sync.WaitGroup Done/Wait (the spawner can join it);
//   - for spawns of functions this package cannot see into, a
//     sync.WaitGroup Add lexically before the `go` in the same
//     function.
//
// The walk is type-aware and cross-file: `go s.loop()` is checked by
// loading loop's body through the package call graph, so moving the
// loop into a helper in another file does not hide it — exactly the
// wrapper evasion the syntactic engine could not follow.
package goroutinecheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// Analyzer is the goroutinecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinecheck",
	Doc: "every go statement in library code must have a visible lifecycle: " +
		"a ctx/done channel, a sync.WaitGroup, or a channel tying it to its consumer",
	Run: run,
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGo(pass, fn, g)
				return true
			})
		}
	}
}

func checkGo(pass *analysis.Pass, enclosing *ast.FuncDecl, g *ast.GoStmt) {
	seen := make(map[*types.Func]bool)
	// The spawned body: a literal, or a named same-package function
	// resolved through the call graph.
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if bodyHasLifecycle(pass, fun.Body, seen) {
			return
		}
	default:
		callee := pass.CalleeOf(g.Call)
		if callee != nil {
			if node := pass.Graph().Node(callee); node != nil {
				if bodyHasLifecycle(pass, node.Decl.Body, seen) {
					return
				}
			} else if analysis.FuncIn(callee, "sync") || addBefore(pass, enclosing, g) {
				// wg.Wait in a goroutine, or an externally-defined body
				// joined through a WaitGroup at the spawn site.
				return
			}
			pass.Reportf(g.Pos(),
				"goroutinecheck: go %s has no visible lifecycle: tie it to a ctx/done channel or a sync.WaitGroup", callee.Name())
			return
		}
		// A dynamic call (function value): only the spawn site can
		// prove a lifecycle.
		if addBefore(pass, enclosing, g) {
			return
		}
	}
	pass.Reportf(g.Pos(),
		"goroutinecheck: goroutine has no visible lifecycle: tie it to a ctx/done channel, a sync.WaitGroup, or its consumer's channel")
}

// bodyHasLifecycle reports lifecycle evidence in body or in any
// same-package function it transitively calls.
func bodyHasLifecycle(pass *analysis.Pass, body ast.Node, seen map[*types.Func]bool) bool {
	if hasDirectEvidence(pass, body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeOf(call)
		if callee == nil || seen[callee] {
			return true
		}
		seen[callee] = true
		if node := pass.Graph().Node(callee); node != nil {
			if bodyHasLifecycle(pass, node.Decl.Body, seen) {
				found = true
			}
		}
		return true
	})
	return found
}

// hasDirectEvidence scans one body for the lifecycle signals.
func hasDirectEvidence(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				if analysis.IsType(obj.Type(), "context", "Context") {
					found = true
				}
			}
		case *ast.CallExpr:
			if callee := pass.CalleeOf(x); callee != nil && analysis.FuncIn(callee, "sync") {
				switch callee.Name() {
				case "Done", "Wait":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// addBefore reports a sync.WaitGroup Add call lexically before g in the
// enclosing function — the spawn-site join pattern for bodies this
// package cannot see into.
func addBefore(pass *analysis.Pass, enclosing *ast.FuncDecl, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if callee := pass.CalleeOf(call); callee != nil && analysis.FuncIn(callee, "sync") && callee.Name() == "Add" {
			found = true
		}
		return !found
	})
	return found
}
