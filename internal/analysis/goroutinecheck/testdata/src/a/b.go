package a

// spin loops forever with no lifecycle signal — the cross-file body
// `go s.spin()` must be checked through the package call graph.
func (s *server) spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// pump drains until the done channel closes.
func (s *server) pump() {
	for {
		select {
		case <-s.done:
			return
		default:
		}
	}
}
