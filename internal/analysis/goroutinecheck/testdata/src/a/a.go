package a

import (
	"context"
	"sync"
)

type server struct {
	done chan struct{}
	wg   sync.WaitGroup
	out  chan int
}

// A bare spin loop: nothing can stop it, nothing can wait for it.
func (s *server) startLeak() {
	go func() { // want `goroutinecheck: goroutine has no visible lifecycle: tie it to a ctx/done channel, a sync\.WaitGroup, or its consumer's channel`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// Cancellation is threaded: a context reference is lifecycle evidence.
func (s *server) startCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// A done/stop channel receive ties the goroutine to its spawner.
func (s *server) startDone() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			default:
			}
		}
	}()
}

// The spawner can join through the WaitGroup.
func (s *server) startJoined() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// A send ties the goroutine to its consumer: it parks (and dies with a
// panic on close) rather than spinning unobserved.
func (s *server) startProducer() {
	go func() {
		s.out <- 42
	}()
}

// The body moved into a named helper in another file. The retired
// syntactic pass only scanned the literal spawned block, so this
// wrapper hid the leak; the call-graph walk loads spin's body.
func (s *server) startHelpers() {
	go s.spin() // want `goroutinecheck: go spin has no visible lifecycle: tie it to a ctx/done channel or a sync\.WaitGroup`
	go s.pump()
}

// Lifecycle evidence two hops away still counts: relay calls pump,
// which drains the done channel.
func (s *server) startRelay() {
	go s.relay()
}

func (s *server) relay() {
	s.pump()
}

// A dynamic call: only the spawn site can prove a lifecycle.
func spawnDyn(f func()) {
	go f() // want `goroutinecheck: goroutine has no visible lifecycle: tie it to a ctx/done channel, a sync\.WaitGroup, or its consumer's channel`
}

func spawnDynJoined(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go f()
}

func work() {}

func spinFree() {
	for i := 0; ; i++ {
		_ = i
	}
}

func escapes() {
	go spinFree() //lint:allow goroutinecheck(fixture models a process-lifetime daemon)
	go spinFree() //lint:allow goroutinecheck // want `goroutinecheck: //lint:allow goroutinecheck needs a reason`
}
