package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ivdss/internal/analysis/lint"
)

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the meta-test the tentpole demands: the
// repository itself must produce zero findings, so the analyzers stay
// honest (every rule they enforce is a rule the tree actually obeys)
// and CI's `go vet -vettool` step cannot rot.
func TestRepoIsLintClean(t *testing.T) {
	diags, err := lint.RunModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVetToolProtocol proves the binary speaks the `go vet -vettool`
// protocol end to end against a scratch module: -flags and -V=full
// answer, a dirty package fails the vet run with a clockcheck finding,
// and the cleaned package passes.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary and shells out to go vet")
	}
	root := moduleRoot(t)
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "ivdss-lint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ivdss-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ivdss-lint: %v\n%s", err, out)
	}

	mod := filepath.Join(scratch, "mod")
	if err := os.MkdirAll(filepath.Join(mod, "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module lintme\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "lib", "lib.go"), `package lib

import "time"

// Nap trips clockcheck.
func Nap() { time.Sleep(time.Millisecond) }
`)

	env := append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod", "GOWORK=off")
	runVet := func() (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = mod
		cmd.Env = env
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	out, err := runVet()
	if err == nil {
		t.Fatalf("go vet passed on a package with a raw time.Sleep:\n%s", out)
	}
	if !strings.Contains(out, "clockcheck") {
		t.Fatalf("go vet failed without a clockcheck finding:\n%s", out)
	}

	writeFile(t, filepath.Join(mod, "lib", "lib.go"), `package lib

// Pure no longer reads the clock.
func Pure() int { return 1 }
`)
	if out, err := runVet(); err != nil {
		t.Fatalf("go vet failed on a clean package: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
