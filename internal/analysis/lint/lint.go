// Package lint assembles the five ivdss invariant analyzers into one
// suite and provides the two drivers cmd/ivdss-lint fronts: a
// standalone walk of the module tree, and the `go vet -vettool`
// unit-checker protocol (-flags, -V=full, single foo.cfg argument).
package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ivdss/internal/analysis"
	"ivdss/internal/analysis/clockcheck"
	"ivdss/internal/analysis/ctxcheck"
	"ivdss/internal/analysis/lockcheck"
	"ivdss/internal/analysis/metriccheck"
	"ivdss/internal/analysis/randcheck"
)

// Analyzers returns the suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		randcheck.Analyzer,
		ctxcheck.Analyzer,
		lockcheck.Analyzer,
		metriccheck.Analyzer,
	}
}

// runAll parses nothing itself: it runs every analyzer over one parsed
// file group and merges findings in position order.
func runAll(fset *token.FileSet, files []*ast.File, pkgName, importPath string) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		diags = append(diags, analysis.Run(a, fset, files, pkgName, importPath)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// RunModule lints every package under the module rooted at root
// (which must contain go.mod) and returns the findings.
func RunModule(root string) ([]analysis.Diagnostic, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w (RunModule wants a module root)", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(modData), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}

	byDir := make(map[string][]string)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			byDir[dir] = append(byDir[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var all []analysis.Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		fset := token.NewFileSet()
		// A directory can hold several package clauses (pkg, pkg_test,
		// ignored mains); lint each group against its own name.
		groups := make(map[string][]*ast.File)
		sort.Strings(byDir[dir])
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			groups[f.Name.Name] = append(groups[f.Name.Name], f)
		}
		names := make([]string, 0, len(groups))
		for name := range groups {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			all = append(all, runAll(fset, groups[name], name, importPath)...)
		}
	}
	return all, nil
}

// vetConfig is the subset of the `go vet` unit-checker Config this tool
// reads from the JSON .cfg file it is handed per package.
type vetConfig struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet analyzes the single compilation unit described by cfgPath and
// prints findings to stderr in the file:line:col form `go vet` relays.
// It returns the process exit code.
func RunVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "ivdss-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file for every unit, even an empty one;
	// these analyzers are syntactic and export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	diags := runAll(fset, files, files[0].Name.Name, cfg.ImportPath)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// PrintFlags emits the tool's flags as the JSON array `go vet` requests
// via -flags. The suite has no tuning flags; an empty array is valid.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// PrintVersion emits the -V=full line `go vet` hashes into its build
// cache key: marking the version "devel" with a buildID derived from
// the binary's own contents makes the cache invalidate exactly when the
// tool changes.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(w, "%s version devel buildID=%x\n", filepath.Base(os.Args[0]), sum[:16])
	return nil
}

// Main is the shared entry point for cmd/ivdss-lint. With a single
// *.cfg argument it speaks the `go vet -vettool` protocol; with
// directory arguments (or none: the current module) it lints whole
// module trees standalone. It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	var roots []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			if err := PrintVersion(stdout); err != nil {
				fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
				return 1
			}
			return 0
		case arg == "-flags":
			PrintFlags(stdout)
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			return RunVet(arg, stderr)
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(stderr, "ivdss-lint: unknown flag %s\n", arg)
			return 2
		case arg == "./...":
			roots = append(roots, ".")
		default:
			roots = append(roots, arg)
		}
	}
	if len(roots) == 0 {
		roots = []string{"."}
	}
	exit := 0
	for _, root := range roots {
		diags, err := RunModule(root)
		if err != nil {
			fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
			exit = 1
		}
	}
	return exit
}
