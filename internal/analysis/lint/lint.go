// Package lint assembles the nine ivdss invariant analyzers into one
// suite and provides the two drivers cmd/ivdss-lint fronts: a
// standalone type-checked walk of the module tree (stdlib source
// importer, module-internal imports resolved recursively), and the
// `go vet -vettool` unit-checker protocol (-flags, -V=full, single
// foo.cfg argument), where type information comes from the gc export
// data `go vet` lists in the .cfg.
package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ivdss/internal/analysis"
	"ivdss/internal/analysis/clockcheck"
	"ivdss/internal/analysis/ctxcheck"
	"ivdss/internal/analysis/detordercheck"
	"ivdss/internal/analysis/goroutinecheck"
	"ivdss/internal/analysis/lockcheck"
	"ivdss/internal/analysis/lockflowcheck"
	"ivdss/internal/analysis/metriccheck"
	"ivdss/internal/analysis/outcomecheck"
	"ivdss/internal/analysis/randcheck"
)

// Analyzers returns the suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		randcheck.Analyzer,
		ctxcheck.Analyzer,
		lockcheck.Analyzer,
		lockflowcheck.Analyzer,
		metriccheck.Analyzer,
		detordercheck.Analyzer,
		goroutinecheck.Analyzer,
		outcomecheck.Analyzer,
	}
}

// runAll runs every analyzer over one type-checked package and merges
// findings in position order.
func runAll(pkg *analysis.Package) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		diags = append(diags, analysis.Run(a, pkg)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// RunModule lints every package under the module rooted at root
// (which must contain go.mod) and returns the findings.
func RunModule(root string) ([]analysis.Diagnostic, error) {
	loader, modPath, err := analysis.NewModuleLoader(root)
	if err != nil {
		return nil, err
	}

	hasGo := make(map[string]bool)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			hasGo[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(hasGo))
	for dir := range hasGo {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var all []analysis.Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			return nil, err
		}
		all = append(all, runAll(pkg)...)
	}
	return all, nil
}

// vetConfig is the subset of the `go vet` unit-checker Config this tool
// reads from the JSON .cfg file it is handed per package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetImporter resolves imports through the export data `go vet` lists:
// ImportMap canonicalizes the as-written path, PackageFile locates its
// compiled export file, and the stdlib gc importer reads it.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	compiler := cfg.Compiler
	if compiler == "" || compiler == "gc" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &vetImporter{cfg: cfg, gc: gc}
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := i.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return i.gc.Import(path)
}

// RunVet analyzes the single compilation unit described by cfgPath and
// prints findings to stderr in the file:line:col form `go vet` relays.
// It returns the process exit code.
func RunVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		_, _ = fmt.Fprintf(stderr, "ivdss-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file for every unit, even an empty one;
	// these analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		// Test files are exempt from every analyzer in the suite; the
		// remaining files still form a valid (sub)package to check.
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := analysis.NewPackage(fset, files, cfg.ImportPath, newVetImporter(fset, &cfg))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
		return 1
	}
	diags := runAll(pkg)
	for _, d := range diags {
		_, _ = fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// PrintFlags emits the tool's flags as the JSON array `go vet` requests
// via -flags. The suite has no tuning flags; an empty array is valid.
func PrintFlags(w io.Writer) {
	_, _ = fmt.Fprintln(w, "[]")
}

// PrintVersion emits the -V=full line `go vet` hashes into its build
// cache key: marking the version "devel" with a buildID derived from
// the binary's own contents makes the cache invalidate exactly when the
// tool changes.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	_, _ = fmt.Fprintf(w, "%s version devel buildID=%x\n", filepath.Base(os.Args[0]), sum[:16])
	return nil
}

// Main is the shared entry point for cmd/ivdss-lint. With a single
// *.cfg argument it speaks the `go vet -vettool` protocol; with
// directory arguments (or none: the current module) it lints whole
// module trees standalone. It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	var roots []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			if err := PrintVersion(stdout); err != nil {
				_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
				return 1
			}
			return 0
		case arg == "-flags":
			PrintFlags(stdout)
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			return RunVet(arg, stderr)
		case strings.HasPrefix(arg, "-"):
			_, _ = fmt.Fprintf(stderr, "ivdss-lint: unknown flag %s\n", arg)
			return 2
		case arg == "./...":
			roots = append(roots, ".")
		default:
			roots = append(roots, arg)
		}
	}
	if len(roots) == 0 {
		roots = []string{"."}
	}
	exit := 0
	for _, root := range roots {
		diags, err := RunModule(root)
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "ivdss-lint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			_, _ = fmt.Fprintf(stdout, "%s\n", d)
			exit = 1
		}
	}
	return exit
}
