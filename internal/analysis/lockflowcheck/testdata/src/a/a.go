package a

import (
	"context"
	"sync"

	"example.com/internal/netproto"
)

type coordinator struct {
	mu    sync.Mutex
	addrs []string
}

// refresh performs the round-trip. Extracting it into a helper hid the
// blocking call from the retired syntactic pass, which only matched
// netproto selectors lexically inside the critical section.
func (c *coordinator) refresh(ctx context.Context) {
	for _, a := range c.addrs {
		_ = netproto.CallContext(ctx, a, nil, 0)
	}
}

func (c *coordinator) oneHop(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refresh(ctx) // want `lockflowcheck: refresh reaches netproto\.CallContext \(via refresh\) while c\.mu is held: snapshot under the lock, call after unlocking`
}

func (c *coordinator) outer(ctx context.Context) {
	c.refresh(ctx)
}

// Two hops of laundering: the chain names every step.
func (c *coordinator) twoHop(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outer(ctx) // want `lockflowcheck: outer reaches netproto\.CallContext \(via outer → refresh\) while c\.mu is held`
}

// A direct blocking call under the lock is lockcheck's finding, not
// this analyzer's: one finding per bug.
func (c *coordinator) direct(ctx context.Context, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = netproto.CallContext(ctx, addr, nil, 0)
}

// The sanctioned shape: snapshot under the lock, round-trip after
// unlocking.
func (c *coordinator) snapshotThenCall(ctx context.Context) {
	c.mu.Lock()
	addrs := append([]string(nil), c.addrs...)
	c.mu.Unlock()
	for _, a := range addrs {
		_ = netproto.CallContext(ctx, a, nil, 0)
	}
}

// Helpers that never reach the network are fine under the lock.
func (c *coordinator) count() int {
	return len(c.addrs)
}

func (c *coordinator) sized() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count()
}

func (c *coordinator) escapes(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refresh(ctx) //lint:allow lockflowcheck(fixture models a bounded local round-trip)
	c.refresh(ctx) //lint:allow lockflowcheck // want `lockflowcheck: //lint:allow lockflowcheck needs a reason`
}
