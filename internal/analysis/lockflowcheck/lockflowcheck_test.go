package lockflowcheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/lockflowcheck"
)

func TestLockflowcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockflowcheck.Analyzer, "a")
}
