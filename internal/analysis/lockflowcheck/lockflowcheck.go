// Package lockflowcheck is the cross-function extension of lockcheck:
// while a sync.Mutex/RWMutex is held, no call may *reach* a network
// round-trip through any chain of same-package functions. lockcheck
// sees `s.mu.Lock(); netproto.CallContext(...)`; only a call-graph walk
// sees `s.mu.Lock(); s.refresh()` where refresh — possibly in another
// file — performs the round-trip. Helper extraction must not launder a
// blocking call back under the coordinator lock.
//
// Direct blocking calls are left to lockcheck (one finding per bug);
// this analyzer reports only indirect ones, naming the chain so the
// reader can follow the laundering path.
package lockflowcheck

import (
	"go/ast"
	"strings"

	"ivdss/internal/analysis"
	"ivdss/internal/analysis/lockcheck"
)

// Analyzer is the lockflowcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockflowcheck",
	Doc: "no network round-trip reachable through same-package calls while a mutex is held " +
		"(cross-function lockcheck via the package call graph)",
	Run: run,
}

func run(pass *analysis.Pass) {
	graph := pass.Graph()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lockcheck.ForEachHeldCall(pass, fn, func(call *ast.CallExpr, lockName string) {
				callee := pass.CalleeOf(call)
				if callee == nil || graph.Node(callee) == nil {
					return
				}
				if _, direct := lockcheck.Blocking(pass, call, callee); direct {
					return // lockcheck's finding
				}
				hit, via, found := graph.ReachableCall(callee, func(cs analysis.CallSite) bool {
					_, ok := lockcheck.Blocking(pass, cs.Call, cs.Callee)
					return ok
				})
				if !found {
					return
				}
				name, _ := lockcheck.Blocking(pass, hit.Call, hit.Callee)
				chain := make([]string, 0, len(via)+1)
				chain = append(chain, callee.Name())
				for _, step := range via {
					chain = append(chain, step.Name())
				}
				pass.Reportf(call.Pos(),
					"lockflowcheck: %s reaches %s (via %s) while %s is held: snapshot under the lock, call after unlocking",
					callee.Name(), name, strings.Join(chain, " → "), lockName)
			})
		}
	}
}
