// Package analysistest runs an analyzer over golden packages under
// testdata/src and checks its findings against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that the golden files read the same way. Packages are
// fully type-checked: imports among fixtures resolve GOPATH-style
// under testdata/src (so a fixture can model example.com/internal/
// netproto), and standard-library imports resolve from GOROOT source.
//
// A want comment trails the offending line and holds one or more
// double- or back-quoted regexps, each of which must be matched by a
// distinct diagnostic reported on that line:
//
//	time.Sleep(d) // want `clockcheck: time\.Sleep`
//
// Lines without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ivdss/internal/analysis"
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run analyzes each package directory testdata/src/<pkg> with a and
// reports mismatches between diagnostics and want comments on t. All
// listed packages share one loader, so fixture packages that import
// each other type-check once.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewTreeLoader(filepath.Join(testdata, "src"))
	for _, pkg := range pkgs {
		runPkg(t, loader, pkg, a)
	}
}

func runPkg(t *testing.T, loader *analysis.Loader, importPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loader.Load(importPath)
	if err != nil {
		t.Fatalf("%s: %v", importPath, err)
	}
	var wants []*want
	for _, f := range pkg.Files {
		ws, err := parseWants(pkg.Fset, f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	diags := analysis.Run(a, pkg)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts want expectations from a file's comments. The
// marker may share a comment with an //lint:allow directive, so it is
// located by substring rather than by the comment's full text.
func parseWants(fset *token.FileSet, f *ast.File) ([]*want, error) {
	var wants []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			i := strings.Index(c.Text, "// want ")
			if i < 0 {
				continue
			}
			posn := fset.Position(c.Pos())
			rest := strings.TrimSpace(c.Text[i+len("// want "):])
			any := false
			for rest != "" {
				var lit string
				switch rest[0] {
				case '"':
					end := strings.Index(rest[1:], `"`)
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated want pattern", posn)
					}
					var err error
					lit, err = strconv.Unquote(rest[:end+2])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", posn, rest[:end+2], err)
					}
					rest = strings.TrimSpace(rest[end+2:])
				case '`':
					end := strings.Index(rest[1:], "`")
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated want pattern", posn)
					}
					lit = rest[1 : end+1]
					rest = strings.TrimSpace(rest[end+2:])
				default:
					return nil, fmt.Errorf("%s: want patterns must be quoted, got %q", posn, rest)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", posn, lit, err)
				}
				wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, raw: lit})
				any = true
			}
			if !any {
				return nil, fmt.Errorf("%s: empty want comment", posn)
			}
		}
	}
	return wants, nil
}
