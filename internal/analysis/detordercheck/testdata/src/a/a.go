package a

import (
	"fmt"
	"sort"
)

// Order-insensitive bodies stay legal without escape hatches.
func legalFolds(m map[string]int) (int, int, int) {
	n := 0
	sum := 0
	best := 0
	for _, v := range m {
		n++
		sum += v
		best = max(best, v)
	}
	return n, sum, best
}

// Keyed writes touch a distinct entry per iteration.
func legalKeyed(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range m {
		out[k] = v * 2
		out[k] += 1
	}
	return out
}

// The sanctioned sorted-keys idiom: collect, then sort after the loop.
func legalSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// delete/clear commute; membership probes return constants.
func legalProbe(m map[string]int, want string) bool {
	for k := range m {
		delete(m, k)
		if k == want {
			return true
		}
	}
	return false
}

// An append never sorted afterwards leaks visit order into the slice.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `detordercheck: map iteration order escapes via an append in map order that is never sorted afterwards`
	}
	return keys
}

// Float addition is not associative: the low bits differ run to run.
func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `detordercheck: map iteration order escapes via a floating-point accumulation \(addition is not associative\)`
	}
	return total
}

// Returning the loop variable selects an arbitrary element.
func anyKey(m map[string]int) string {
	for k := range m {
		return k // want `detordercheck: map iteration order escapes via a return of the loop variable \(arbitrary element selection\)`
	}
	return ""
}

// Last visit wins: which one that is changes per run.
func lastKey(m map[string]int) string {
	chosen := ""
	for k := range m {
		chosen = k // want `detordercheck: map iteration order escapes via an assignment of the loop variable to outer state \(last-visited wins\)`
	}
	return chosen
}

// Output in visit order differs byte-for-byte between runs.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `detordercheck: map iteration order escapes via a call whose effect this pass cannot prove order-insensitive`
	}
}

// Sends deliver elements to the consumer in visit order.
func feed(m map[string]int, out chan string) {
	for k := range m {
		out <- k // want `detordercheck: map iteration order escapes via a channel send`
	}
}

// Registry's underlying type is a map: the retired syntactic pass
// matched the literal `map[...]` spelling of the range operand, so a
// named map type evaded it. go/types sees through the name.
type Registry map[string]int

func drain(r Registry, out chan string) {
	for k := range r {
		out <- k // want `detordercheck: map iteration order escapes via a channel send`
	}
}

func escapes(m map[string]int, out chan string) {
	for k := range m {
		out <- k //lint:allow detordercheck(fixture models an order-free notification fan-out)
	}
	for k := range m {
		out <- k //lint:allow detordercheck // want `detordercheck: //lint:allow detordercheck needs a reason`
	}
}
