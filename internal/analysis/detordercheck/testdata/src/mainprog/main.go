// Command mainprog shows the pass is silent in package main: a CLI's
// printing loop is the operator's business, not the DES twin's.
package main

import "fmt"

func main() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
