// Package detordercheck flags map iteration whose order can escape
// into observable state. Go randomizes map range order per run, so any
// map-range whose body's effect depends on visit order — appending to
// a slice that is never sorted, sending on a channel, writing output,
// arg-max selection with nondeterministic tie-breaks, accumulating
// floats (addition is not associative) — is a determinism bug: the
// classic DES-vs-live twin killer, a gossip digest that differs
// byte-for-byte between runs, a BENCH JSON that won't diff.
//
// Order-insensitive bodies stay legal without escape hatches:
//
//   - integer accumulation (`n++`, `sum += v` on integer types) and
//     builtin min/max folds;
//   - idempotent flag/constant assignment (RHS independent of the
//     loop variables);
//   - writes keyed by the loop variable (`out[k] = f(v)`, `delete`);
//   - collecting keys into a slice that the same function passes to
//     sort.* or slices.Sort* after the loop — the sanctioned
//     sorted-keys idiom;
//   - membership probes that return or break on loop-var-independent
//     results.
//
// Everything else is a finding. The analysis is type-aware: float
// accumulation is distinguished from integer, and the sorted-keys
// idiom is matched on the actual slice object, not its spelling.
package detordercheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ivdss/internal/analysis"
)

// Analyzer is the detordercheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "detordercheck",
	Doc: "map iteration order must not reach scheduling, digests, or output: " +
		"iterate sorted keys, or keep the loop body order-insensitive",
	Run: run,
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &checker{pass: pass, fn: fn, rng: rng, loopVars: map[types.Object]bool{}}
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pass.Info.Defs[id]; obj != nil {
					c.loopVars[obj] = true
				}
				if obj := c.pass.Info.Uses[id]; obj != nil {
					c.loopVars[obj] = true // `k = range m` over a pre-declared var
				}
			}
		}
		c.checkBody(rng.Body.List)
		return true
	})
}

type checker struct {
	pass     *analysis.Pass
	fn       *ast.FuncDecl
	rng      *ast.RangeStmt
	loopVars map[types.Object]bool
}

func (c *checker) report(pos token.Pos, what string) {
	c.pass.Reportf(pos,
		"detordercheck: map iteration order escapes via %s: iterate sorted keys, or make the body order-insensitive", what)
}

// checkBody validates every statement of a map-range body as
// order-insensitive, reporting the first offending construct per
// statement.
func (c *checker) checkBody(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		c.checkStmt(stmt)
	}
}

func (c *checker) checkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- commute.
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.ExprStmt:
		c.checkCall(s.X)
	case *ast.IfStmt:
		// Condition evaluation must be effect-free of calls; the bodies
		// are checked recursively (an if guarding an idempotent effect
		// stays order-free, an if guarding an arg-max does not).
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		c.checkEffectFree(s.Cond)
		c.checkBody(s.Body.List)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.BlockStmt:
		c.checkBody(s.List)
	case *ast.BranchStmt:
		// break/continue/goto carry no value.
	case *ast.ReturnStmt:
		// Returning something derived from the loop variables selects
		// an arbitrary element; returning a constant (membership probe)
		// does not.
		for _, r := range s.Results {
			if c.usesLoopVar(r) {
				c.report(s.Pos(), "a return of the loop variable (arbitrary element selection)")
				return
			}
			c.checkEffectFree(r)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if v, ok := n.(*ast.ValueSpec); ok {
				for _, val := range v.Values {
					c.checkEffectFree(val)
				}
			}
			return true
		})
	case *ast.RangeStmt:
		// A nested range is order-sensitive in its own right only if it
		// ranges a map; recurse with the outer loop vars still tracked.
		inner := &checker{pass: c.pass, fn: c.fn, rng: c.rng, loopVars: c.loopVars}
		if t := c.pass.Info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				// The inner map range is checked by the outer Inspect.
				return
			}
		}
		inner.checkBody(s.Body.List)
	case *ast.ForStmt:
		c.checkBody(s.Body.List)
	case *ast.SendStmt:
		c.report(s.Pos(), "a channel send")
	case *ast.GoStmt, *ast.DeferStmt:
		c.report(stmt.Pos(), "spawned work")
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.checkBody(cc.Body)
			}
		}
	case *ast.EmptyStmt, *ast.LabeledStmt:
	default:
		c.report(stmt.Pos(), "a statement this pass cannot prove order-insensitive")
	}
}

// checkAssign classifies one assignment inside the loop body.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		// Iteration-local definition: no cross-iteration state, but the
		// RHS may not smuggle effects out through calls.
		for _, r := range s.Rhs {
			c.checkEffectFree(r)
		}
		return
	case token.ASSIGN:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// `_ = expr` discards the value: only the expression's own
			// effects matter, same as a bare statement.
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				c.checkCall(s.Rhs[0])
				return
			}
			if c.plainAssignOK(s.Lhs[0], s.Rhs[0], s) {
				return
			}
			return
		}
		c.report(s.Pos(), "a multi-value assignment to outer state")
		return
	default:
		// Compound assignment (+=, -=, *=, /=, ...).
		if len(s.Lhs) == 1 {
			// m[k] op= v keyed by the loop variable touches a distinct
			// entry per iteration: order-free for any operator and
			// element type.
			if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok && c.usesLoopVar(idx.Index) {
				for _, r := range s.Rhs {
					c.checkEffectFree(r)
				}
				return
			}
			// v op= x where v is an iteration variable mutates per-
			// iteration state that dies with the iteration: order-free.
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if obj := c.pass.Info.Uses[id]; obj != nil && c.loopVars[obj] {
					for _, r := range s.Rhs {
						c.checkEffectFree(r)
					}
					return
				}
			}
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// Commutative-fold compound assignment — but only over
			// integer types: float addition is not associative, so a
			// float sum over map order differs in the low bits run to
			// run, and string += concatenates in visit order.
			if len(s.Lhs) == 1 {
				if t := c.pass.Info.TypeOf(s.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						for _, r := range s.Rhs {
							c.checkEffectFree(r)
						}
						return
					}
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						c.report(s.Pos(), "a floating-point accumulation (addition is not associative)")
						return
					}
				}
			}
		}
		c.report(s.Pos(), "a compound assignment this pass cannot prove commutative")
	}
}

// plainAssignOK validates `lhs = rhs` and reports when it is
// order-sensitive. It returns true in every case (reporting happened
// inside); the result only signals the caller not to double-report.
func (c *checker) plainAssignOK(lhs, rhs ast.Expr, s *ast.AssignStmt) bool {
	// out[k] = ... keyed by the loop variable: each iteration writes a
	// distinct key, so visit order cannot matter.
	if idx, ok := lhs.(*ast.IndexExpr); ok && c.usesLoopVar(idx.Index) {
		c.checkEffectFree(rhs)
		return true
	}
	// x = min(x, v) / x = max(x, v): a commutative, associative fold.
	if call, ok := rhs.(*ast.CallExpr); ok {
		switch c.builtinName(call.Fun) {
		case "min", "max":
			for _, a := range call.Args {
				c.checkEffectFree(a)
			}
			return true
		case "append":
			// slice = append(slice, ...): legal only when the function
			// sorts the slice after the loop (the sorted-keys idiom).
			if c.sortedAfterLoop(lhs) {
				for _, a := range call.Args {
					c.checkEffectFree(a)
				}
				return true
			}
			c.report(s.Pos(), "an append in map order that is never sorted afterwards")
			return true
		}
	}
	// Idempotent: the assigned value does not depend on which iteration
	// performed it.
	if !c.usesLoopVar(rhs) && !c.usesLoopVar(lhs) {
		c.checkEffectFree(rhs)
		return true
	}
	c.report(s.Pos(), "an assignment of the loop variable to outer state (last-visited wins)")
	return true
}

// checkCall validates a bare call statement: only effect-free builtins
// and deletes keyed anywhere are order-insensitive.
func (c *checker) checkCall(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		c.checkEffectFree(e)
		return
	}
	switch c.builtinName(call.Fun) {
	case "delete", "clear", "panic":
		// delete/clear commute; a panic aborts the run regardless of
		// which iteration fires it.
		return
	}
	c.report(call.Pos(), "a call whose effect this pass cannot prove order-insensitive")
}

// checkEffectFree reports calls and receives buried inside an
// expression position (they observe or produce order).
func (c *checker) checkEffectFree(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if c.builtinName(x.Fun) != "" {
				return true // len, cap, min, max, append, ... have no hidden effects
			}
			if c.isConversion(x) || c.isPure(x) {
				return true
			}
			c.report(x.Pos(), "a call whose effect this pass cannot prove order-insensitive")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.report(x.Pos(), "a channel receive")
				return false
			}
		}
		return true
	})
}

// isConversion reports whether call is a type conversion.
func (c *checker) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the builtin's name when fun resolves to one
// ("" otherwise).
func (c *checker) builtinName(fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// pureFuncs are well-known pure functions safe in any order.
var pureFuncs = map[string]map[string]bool{
	"math":    {"Abs": true, "Max": true, "Min": true, "Inf": true, "NaN": true, "IsNaN": true, "IsInf": true, "Floor": true, "Ceil": true, "Sqrt": true},
	"strings": {"HasPrefix": true, "HasSuffix": true, "Contains": true, "EqualFold": true, "Compare": true},
}

func (c *checker) isPure(call *ast.CallExpr) bool {
	fn := c.pass.CalleeOf(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return pureFuncs[fn.Pkg().Path()][fn.Name()]
}

// usesLoopVar reports whether e references one of the range statement's
// iteration variables.
func (c *checker) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.Info.Uses[id]; obj != nil && c.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfterLoop reports whether the enclosing function sorts the
// slice object appended to in the loop, at a position after the loop —
// the sorted-keys idiom. The slice is matched by object when lhs is a
// plain identifier, by printed expression otherwise.
func (c *checker) sortedAfterLoop(lhs ast.Expr) bool {
	target := types.ExprString(lhs)
	var targetObj types.Object
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		targetObj = c.pass.Info.Uses[id]
		if targetObj == nil {
			targetObj = c.pass.Info.Defs[id]
		}
	}
	sorted := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() || len(call.Args) < 1 {
			return true
		}
		fn := c.pass.CalleeOf(call)
		if fn == nil {
			return true
		}
		if fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		arg := call.Args[0]
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && targetObj != nil {
			if c.pass.Info.Uses[id] == targetObj {
				sorted = true
			}
		} else if types.ExprString(arg) == target {
			sorted = true
		}
		return true
	})
	return sorted
}
