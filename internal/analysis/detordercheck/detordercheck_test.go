package detordercheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/detordercheck"
)

func TestDetordercheck(t *testing.T) {
	analysistest.Run(t, "testdata", detordercheck.Analyzer, "a", "mainprog")
}
