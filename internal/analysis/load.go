// Loaders: every analyzer now runs over a type-checked Package, and
// this file builds them three ways with nothing but the standard
// library. The module loader walks a go.mod tree and type-checks each
// package from source, resolving module-internal imports recursively
// and the standard library through the stdlib source importer. The
// tree loader does the same over a GOPATH-style testdata/src root for
// golden tests. The vet loader (lint package) reuses newPackage with
// the gc export-data importer `go vet` hands it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked compilation unit: the parsed non-test
// files plus the go/types objects analyzers resolve calls against.
// Test files are excluded by construction — every analyzer in the
// suite exempts them, and excluding them keeps the loader from having
// to type-check external test dependencies.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Name  string // package name from the package clauses
	Path  string // import path ("" only in ad-hoc tools)
	Types *types.Package
	Info  *types.Info

	graph *CallGraph
}

// Graph returns the package's static call graph, built on first use.
func (p *Package) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}

// CalleeOf resolves the statically-known callee of call: a package
// function, a method (value or pointer receiver, through interfaces it
// returns the interface method), or a function reached through a
// qualified identifier under any import alias. It returns nil for
// dynamic calls (function values, conversions, builtins).
func (p *Package) CalleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncFor returns the object a FuncDecl declares.
func (p *Package) FuncFor(decl *ast.FuncDecl) *types.Func {
	fn, _ := p.Info.Defs[decl.Name].(*types.Func)
	return fn
}

// FuncIn reports whether fn is declared at package level (or as a
// method) in a package whose import path ends with suffix. It is the
// alias-proof replacement for matching a call's printed receiver
// against an import name.
func FuncIn(fn *types.Func, suffix string) bool {
	return fn != nil && fn.Pkg() != nil && PathEndsWith(fn.Pkg().Path(), suffix)
}

// IsType reports whether t (after unwrapping pointers and aliases) is
// the named type pkgSuffix.name.
func IsType(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name {
		return false
	}
	if obj.Pkg() == nil {
		return pkgSuffix == ""
	}
	return PathEndsWith(obj.Pkg().Path(), pkgSuffix)
}

// A Loader type-checks packages from source, memoizing by import path.
// SrcDir decides which import paths it owns (everything else falls
// through to the stdlib source importer, so "time" or "net" resolve
// from GOROOT).
type Loader struct {
	Fset   *token.FileSet
	SrcDir func(importPath string) (string, bool)

	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader resolving non-stdlib imports via srcDir.
func NewLoader(srcDir func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		SrcDir: srcDir,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		busy:   make(map[string]bool),
	}
}

// NewModuleLoader reads root/go.mod and returns a loader mapping the
// module's import paths onto its directory tree, plus the module path.
func NewModuleLoader(root string) (*Loader, string, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", fmt.Errorf("analysis: %w (module loading wants a go.mod root)", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(modData), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	l := NewLoader(func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(importPath, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	})
	return l, modPath, nil
}

// NewTreeLoader maps every import path that exists as a directory
// under srcRoot (GOPATH-style), for golden-test fixtures.
func NewTreeLoader(srcRoot string) *Loader {
	return NewLoader(func(importPath string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// Import implements types.Importer over the loader's source tree.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.SrcDir(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at importPath (memoized).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.busy[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.busy[importPath] = true
	defer delete(l.busy, importPath)

	dir, ok := l.SrcDir(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: no source directory for %s", importPath)
	}
	files, err := parseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	pkg, err := newPackage(l.Fset, files, importPath, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses the directory's non-test Go files in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newPackage type-checks one file group with the given importer and
// wraps it as a Package. Type errors are joined and returned — an
// analyzer must never run over a half-checked tree, because missing
// objects would silently disable the invariants.
func newPackage(fset *token.FileSet, files []*ast.File, importPath string, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	cfg := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(importPath, fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 5 {
			msgs = append(msgs[:5], fmt.Sprintf("... and %d more", len(errs)-5))
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	return &Package{
		Fset:  fset,
		Files: files,
		Name:  files[0].Name.Name,
		Path:  importPath,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewPackage is the exported constructor the vet driver uses with the
// export-data importer `go vet` provides.
func NewPackage(fset *token.FileSet, files []*ast.File, importPath string, imp types.Importer) (*Package, error) {
	return newPackage(fset, files, importPath, imp)
}
