// Package a exercises lockcheck: network round-trips under a mutex.
package a

import (
	"context"
	"sync"

	"example.com/internal/netproto"
)

type server struct {
	mu    sync.Mutex
	state int
	pool  interface {
		CallContext(ctx context.Context, addr string) error
	}
}

func (s *server) heldAcrossCall(ctx context.Context, addr string) {
	s.mu.Lock()
	netproto.CallContext(ctx, addr, nil, 0) // want `lockcheck: netproto\.CallContext may block on the network while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) heldByDefer(ctx context.Context, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.pool.CallContext(ctx, addr) // want `lockcheck: s\.pool\.CallContext may block on the network while s\.mu is held`
}

func (s *server) snapshotThenCall(ctx context.Context, addr string) {
	s.mu.Lock()
	snapshot := s.state
	s.mu.Unlock()
	_ = snapshot
	netproto.CallContext(ctx, addr, nil, 0) // lock released: fine
}

func (s *server) goroutineDoesNotHold(ctx context.Context, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		// A spawned goroutine runs without this function's locks.
		netproto.CallContext(ctx, addr, nil, 0)
	}()
}

func (s *server) lockedInLoop(ctx context.Context, addrs []string) {
	for _, addr := range addrs {
		s.mu.Lock()
		netproto.CallContext(ctx, addr, nil, 0) // want `lockcheck: netproto\.CallContext may block on the network while s\.mu is held`
		s.mu.Unlock()
	}
}

func (s *server) branchRelease(ctx context.Context, addr string, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		netproto.CallContext(ctx, addr, nil, 0) // released in this branch: fine
		return
	}
	s.mu.Unlock()
}

func (s *server) escaped(ctx context.Context, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	netproto.CallContext(ctx, addr, nil, 0) //lint:allow lockcheck(fixture models a justified short critical section)
	netproto.CallContext(ctx, addr, nil, 0) //lint:allow lockcheck // want `lockcheck: //lint:allow lockcheck needs a reason`
}
