package a

import (
	"context"
	"sync"

	wire "example.com/internal/netproto"
)

type aliased struct {
	mu sync.Mutex
}

// The retired syntactic pass keyed on the literal package name
// "netproto", so a renamed import held a round-trip under the lock
// unnoticed. The import path, not the spelling, is what matters.
func (a *aliased) heldUnderAlias(ctx context.Context, addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = wire.CallContext(ctx, addr, nil, 0) // want `lockcheck: netproto\.CallContext may block on the network while a\.mu is held`
}

type embedsMutex struct {
	sync.Mutex
}

// A type that merely *names* its methods Lock/Unlock is not a sync
// mutex; only operations resolving to the sync package track.
type fakeLock struct{}

func (fakeLock) Lock()   {}
func (fakeLock) Unlock() {}

func notALock(ctx context.Context, addr string) {
	var l fakeLock
	l.Lock()
	_ = wire.CallContext(ctx, addr, nil, 0) // not held: fakeLock is not sync
	l.Unlock()
}

func embedded(ctx context.Context, e *embedsMutex, addr string) {
	e.Lock()
	defer e.Unlock()
	_ = wire.CallContext(ctx, addr, nil, 0) // want `lockcheck: netproto\.CallContext may block on the network while e is held`
}
