package lockcheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")
}
