// Package lockcheck flags calls that can block on the network while a
// sync.Mutex/RWMutex locked in the same function is still held. A
// round-trip under the server lock turns one slow branch site into a
// full coordinator stall — the hazard the copy-on-write replica swap
// exists to avoid. The walk is linear and type-aware: Lock/RLock and
// Unlock/RUnlock pairs are tracked by receiver expression within a
// function body (a deferred unlock holds to function end), and only
// methods resolved to the sync package count as lock operations — so a
// type that merely embeds a mutex is tracked, and an unrelated Lock
// method is not. Blocking callees are classified by their package's
// import path (netproto/replsync/federation under any alias) or by a
// known round-trip method name. lockflowcheck extends the same walk
// across function boundaries via the package call graph.
package lockcheck

import (
	"go/ast"
	"go/types"
	"sort"

	"ivdss/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "no network-blocking calls while a sync.Mutex/RWMutex is held: snapshot under the lock, call after unlocking",
	Run:  run,
}

// blockingPkgs are import-path suffixes whose package-level calls may
// block on the network.
var blockingPkgs = [3]string{"internal/netproto", "internal/replsync", "internal/federation"}

// blockingMethods are method names that perform a remote round-trip
// regardless of receiver (client pools, retriers, federation engines).
var blockingMethods = map[string]bool{
	"CallContext":        true,
	"RoundTripContext":   true,
	"DoContext":          true,
	"FetchContext":       true,
	"ExecutePlanContext": true,
}

// Blocking classifies call as a potential network round-trip and
// returns a printable name for it. Package-level functions of the
// blocking packages count when called from *outside* that package
// (inside it, reachability is lockflowcheck's job — a same-package
// helper is not a round-trip just because of where it lives). The
// callee may be nil (dynamic call): then only the method-name
// heuristic applies.
func Blocking(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) (string, bool) {
	if callee != nil && callee.Pkg() != pass.Types &&
		callee.Type().(*types.Signature).Recv() == nil {
		for _, suffix := range blockingPkgs {
			if analysis.FuncIn(callee, suffix) {
				return callee.Pkg().Name() + "." + callee.Name(), true
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && blockingMethods[sel.Sel.Name] {
		return types.ExprString(call.Fun), true
	}
	return "", false
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ForEachHeldCall(pass, fn, func(call *ast.CallExpr, lockName string) {
				if name, ok := Blocking(pass, call, pass.CalleeOf(call)); ok {
					pass.Reportf(call.Pos(),
						"lockcheck: %s may block on the network while %s is held: snapshot under the lock, call after unlocking", name, lockName)
				}
			})
		}
	}
}

// ForEachHeldCall walks fn's body linearly, tracking the set of held
// sync.Mutex/RWMutex receivers, and invokes visit for every call made
// while at least one is held (function literals excluded: their bodies
// run later, without these locks). lockflowcheck shares this walk.
func ForEachHeldCall(pass *analysis.Pass, fn *ast.FuncDecl, visit func(call *ast.CallExpr, lockName string)) {
	w := &walker{pass: pass, visit: visit}
	w.scanBlock(fn.Body.List, map[string]bool{})
}

type walker struct {
	pass  *analysis.Pass
	visit func(call *ast.CallExpr, lockName string)
}

// lockOp classifies a statement's expression as a Lock/RLock or
// Unlock/RUnlock call on a sync mutex (direct field or embedded) and
// returns the receiver's printed form.
func (w *walker) lockOp(expr ast.Expr) (recv string, acquire, release bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	callee := w.pass.CalleeOf(call)
	if callee == nil || !analysis.FuncIn(callee, "sync") {
		return "", false, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// scanBlock walks stmts linearly with the set of held lock receivers,
// recursing into nested blocks with a copy; after a nested block, any
// lock it unlocks anywhere inside is treated as released (conservative
// toward silence — path-sensitive analysis is out of scope).
func (w *walker) scanBlock(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, acquire, release := w.lockOp(s.X); acquire {
				held[recv] = true
				continue
			} else if release {
				delete(held, recv)
				continue
			}
			w.checkCalls(s, held)
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held to function end:
			// leave it in the set. Deferred blocking calls run after the
			// body, beyond a linear pass's reach — skip them.
			continue
		case *ast.GoStmt:
			// A spawned goroutine does not hold this function's locks.
			continue
		case *ast.BlockStmt:
			w.scanBlock(s.List, copyHeld(held))
			w.releaseUnlocked(held, s)
		case *ast.IfStmt:
			if s.Init != nil {
				w.checkCalls(s.Init, held)
			}
			w.checkCalls(s.Cond, held)
			w.scanBlock(s.Body.List, copyHeld(held))
			if s.Else != nil {
				w.scanBlock([]ast.Stmt{s.Else}, copyHeld(held))
			}
			w.releaseUnlocked(held, s)
		case *ast.ForStmt:
			w.scanBlock(s.Body.List, copyHeld(held))
			w.releaseUnlocked(held, s)
		case *ast.RangeStmt:
			w.checkCalls(s.X, held)
			w.scanBlock(s.Body.List, copyHeld(held))
			w.releaseUnlocked(held, s)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, clause := range clauseBodies(s) {
				w.scanBlock(clause, copyHeld(held))
			}
			w.releaseUnlocked(held, s)
		default:
			w.checkCalls(stmt, held)
			w.releaseUnlocked(held, stmt)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// releaseUnlocked drops from held any lock that stmt unlocks somewhere
// inside (conservative toward silence).
func (w *walker) releaseUnlocked(held map[string]bool, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if expr, ok := n.(*ast.CallExpr); ok {
			if recv, _, release := w.lockOp(expr); release {
				delete(held, recv)
			}
		}
		return true
	})
}

// clauseBodies returns the statement lists of a switch/select's clauses.
func clauseBodies(stmt ast.Stmt) [][]ast.Stmt {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out [][]ast.Stmt
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// checkCalls visits every call inside n while any lock is held,
// skipping function literals (their bodies run later, without these
// locks) and the lock operations themselves.
func (w *walker) checkCalls(n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for recv := range held {
		names = append(names, recv)
	}
	sort.Strings(names)
	lockName := names[0]
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, release := w.lockOp(call); release {
			return true
		}
		w.visit(call, lockName)
		return true
	})
}
