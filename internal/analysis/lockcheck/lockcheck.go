// Package lockcheck flags calls that can block on the network while a
// sync.Mutex/RWMutex locked in the same function is still held. A
// round-trip under the server lock turns one slow branch site into a
// full coordinator stall — the hazard the copy-on-write replica swap
// exists to avoid. The check is a linear, syntactic walk: it tracks
// Lock/RLock and Unlock/RUnlock pairs by receiver expression within a
// function body (a deferred unlock holds to function end) and reports
// any statement in the held window that calls into a remote-I/O package
// (import path ending internal/netproto, internal/replsync, or
// internal/federation) or a known round-trip method.
package lockcheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "no network-blocking calls while a sync.Mutex/RWMutex is held: snapshot under the lock, call after unlocking",
	Run:  run,
}

// blockingPkgs are import-path suffixes whose package-level calls may
// block on the network.
var blockingPkgs = [3]string{"internal/netproto", "internal/replsync", "internal/federation"}

// blockingMethods are method names that perform a remote round-trip
// regardless of receiver (client pools, retriers, federation engines).
var blockingMethods = map[string]bool{
	"CallContext":        true,
	"RoundTripContext":   true,
	"DoContext":          true,
	"FetchContext":       true,
	"ExecutePlanContext": true,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		var pkgLocals []string
		for _, suffix := range blockingPkgs {
			if local, ok := analysis.ImportNameSuffix(f, suffix); ok {
				pkgLocals = append(pkgLocals, local)
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanBlock(pass, fn.Body.List, map[string]bool{}, pkgLocals)
		}
	}
}

// lockOp classifies a statement's expression as a Lock/RLock or
// Unlock/RUnlock call and returns the receiver's printed form.
func lockOp(expr ast.Expr) (recv string, acquire, release bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// scanBlock walks stmts linearly with the set of held lock receivers,
// recursing into nested blocks with a copy; after a nested block, any
// lock it unlocks anywhere inside is treated as released (conservative
// toward silence — branch analysis is out of scope for a syntax pass).
func scanBlock(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool, pkgLocals []string) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, acquire, release := lockOp(s.X); acquire {
				held[recv] = true
				continue
			} else if release {
				delete(held, recv)
				continue
			}
			checkBlocking(pass, s, held, pkgLocals)
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held to function end:
			// leave it in the set. Deferred blocking calls run after the
			// body, beyond a linear pass's reach — skip them.
			continue
		case *ast.GoStmt:
			// A spawned goroutine does not hold this function's locks.
			continue
		case *ast.BlockStmt:
			scanBlock(pass, s.List, copyHeld(held), pkgLocals)
			releaseUnlocked(held, s)
		case *ast.IfStmt:
			if s.Init != nil {
				checkBlocking(pass, s.Init, held, pkgLocals)
			}
			checkBlocking(pass, s.Cond, held, pkgLocals)
			scanBlock(pass, s.Body.List, copyHeld(held), pkgLocals)
			if s.Else != nil {
				scanBlock(pass, []ast.Stmt{s.Else}, copyHeld(held), pkgLocals)
			}
			releaseUnlocked(held, s)
		case *ast.ForStmt:
			scanBlock(pass, s.Body.List, copyHeld(held), pkgLocals)
			releaseUnlocked(held, s)
		case *ast.RangeStmt:
			checkBlocking(pass, s.X, held, pkgLocals)
			scanBlock(pass, s.Body.List, copyHeld(held), pkgLocals)
			releaseUnlocked(held, s)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, clause := range clauseBodies(s) {
				scanBlock(pass, clause, copyHeld(held), pkgLocals)
			}
			releaseUnlocked(held, s)
		default:
			checkBlocking(pass, stmt, held, pkgLocals)
			releaseUnlocked(held, stmt)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// releaseUnlocked drops from held any lock that stmt unlocks somewhere
// inside (conservative toward silence — branch analysis is out of
// scope for a syntax pass).
func releaseUnlocked(held map[string]bool, stmt ast.Stmt) {
	for _, recv := range unlockedWithin(stmt) {
		delete(held, recv)
	}
}

// clauseBodies returns the statement lists of a switch/select's clauses.
func clauseBodies(stmt ast.Stmt) [][]ast.Stmt {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out [][]ast.Stmt
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// checkBlocking reports network-capable calls inside n while any lock
// is held, skipping function literals (their bodies run later, without
// these locks).
func checkBlocking(pass *analysis.Pass, n ast.Node, held map[string]bool, pkgLocals []string) {
	if len(held) == 0 {
		return
	}
	var lockName string
	for recv := range held {
		lockName = recv
		break
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, local := range pkgLocals {
			if name := analysis.PkgCall(call, local); name != "" {
				pass.Reportf(call.Pos(),
					"lockcheck: %s.%s may block on the network while %s is held: snapshot under the lock, call after unlocking", local, name, lockName)
				return true
			}
		}
		if blockingMethods[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"lockcheck: %s may block on the network while %s is held: snapshot under the lock, call after unlocking",
				types.ExprString(call.Fun), lockName)
		}
		return true
	})
}

// unlockedWithin collects receivers unlocked anywhere inside stmt
// (outside function literals).
func unlockedWithin(stmt ast.Stmt) []string {
	var recvs []string
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if expr, ok := n.(*ast.CallExpr); ok {
			if recv, _, release := lockOp(expr); release {
				recvs = append(recvs, recv)
			}
		}
		return true
	})
	return recvs
}
