// Package clockcheck forbids reading the process clock outside the
// sanctioned implementations. The DES↔live equivalence guarantee holds
// only if every scheduling-relevant instant flows through a
// scheduler.Clock; a stray time.Now is a determinism bug waiting for a
// slow machine. Wall-bound I/O (socket deadlines, retry backoffs) must
// route through internal/wall so each wall dependence is explicit.
//
// The check is type-aware: it flags every *use* of a forbidden
// standard-library time function — calls under any import alias or a
// dot import, and references captured as function values (`f :=
// time.Now; f()`), which the old syntactic pass could not see.
package clockcheck

import (
	"go/ast"
	"go/types"

	"ivdss/internal/analysis"
)

// forbidden are the time-package functions that read or schedule on the
// process clock. Constructors like time.Unix or time.Date are pure and
// stay legal everywhere.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the clockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid time.Now/Sleep/After/NewTimer/NewTicker outside clock implementations; " +
		"thread scheduler.Clock, or use internal/wall for inherently wall-bound I/O",
	Run: run,
}

// allowedPkg reports whether an entire package may touch the clock:
// main packages (process entry points own their wall clock) and the two
// sanctioned implementation packages.
func allowedPkg(pkgName, importPath string) bool {
	if pkgName == "main" {
		return true
	}
	return analysis.PathEndsWith(importPath, "internal/sim") ||
		analysis.PathEndsWith(importPath, "internal/wall")
}

func run(pass *analysis.Pass) {
	if allowedPkg(pass.PkgName(), pass.ImportPath()) {
		return
	}
	for _, f := range pass.Files {
		// The live driver's Clock implementation is the one scheduler
		// file allowed to read wall time.
		if pass.PkgName() == "scheduler" && analysis.Filename(pass.Fset, f) == "wallclock.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || !forbidden[fn.Name()] || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods like time.Time.After are pure comparisons; only
			// the package-level clock readers are forbidden.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			pass.Reportf(id.Pos(),
				"clockcheck: time.%s outside a clock implementation: thread scheduler.Clock, or use internal/wall for wall-bound I/O", fn.Name())
			return true
		})
	}
}
