// Package clockcheck forbids reading the process clock outside the
// sanctioned implementations. The DES↔live equivalence guarantee holds
// only if every scheduling-relevant instant flows through a
// scheduler.Clock; a stray time.Now is a determinism bug waiting for a
// slow machine. Wall-bound I/O (socket deadlines, retry backoffs) must
// route through internal/wall so each wall dependence is explicit.
package clockcheck

import (
	"go/ast"

	"ivdss/internal/analysis"
)

// forbidden are the time-package functions that read or schedule on the
// process clock. Constructors like time.Unix or time.Date are pure and
// stay legal everywhere.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the clockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid time.Now/Sleep/After/NewTimer/NewTicker outside clock implementations; " +
		"thread scheduler.Clock, or use internal/wall for inherently wall-bound I/O",
	Run: run,
}

// allowedPkg reports whether an entire package may touch the clock:
// main packages (process entry points own their wall clock) and the two
// sanctioned implementation packages.
func allowedPkg(pkgName, importPath string) bool {
	if pkgName == "main" {
		return true
	}
	return analysis.PathEndsWith(importPath, "internal/sim") ||
		analysis.PathEndsWith(importPath, "internal/wall")
}

func run(pass *analysis.Pass) {
	if allowedPkg(pass.PkgName, pass.ImportPath) {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		// The live driver's Clock implementation is the one scheduler
		// file allowed to read wall time.
		if pass.PkgName == "scheduler" && analysis.Filename(pass.Fset, f) == "wallclock.go" {
			continue
		}
		local, ok := analysis.ImportName(f, "time")
		if !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := analysis.PkgCall(call, local); forbidden[name] {
				pass.Reportf(call.Pos(),
					"clockcheck: time.%s outside a clock implementation: thread scheduler.Clock, or use internal/wall for wall-bound I/O", name)
			}
			return true
		})
	}
}
