package clockcheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/clockcheck"
)

func TestClockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", clockcheck.Analyzer,
		"a", "internal/sim", "mainprog", "scheduler")
}
