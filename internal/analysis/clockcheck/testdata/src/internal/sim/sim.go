// Package sim stands in for the DES package, which owns virtual time
// and is allowed to consult the wall clock.
package sim

import "time"

func epoch() time.Time { return time.Now() }
