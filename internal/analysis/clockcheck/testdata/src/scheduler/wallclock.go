// Package scheduler's wallclock.go is the one file in the package
// allowed to read wall time: it is the live Clock implementation.
package scheduler

import "time"

func now() time.Time { return time.Now() }
