package scheduler

import "time"

func bad() time.Time {
	return time.Now() // want `clockcheck: time\.Now`
}
