// Command mainprog shows that process entry points own their wall clock.
package main

import "time"

func main() {
	time.Sleep(time.Nanosecond)
	_ = time.Now()
}
