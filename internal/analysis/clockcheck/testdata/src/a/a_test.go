package a

import (
	"testing"
	"time"
)

// Test files may read the wall clock freely.
func TestClockAllowed(t *testing.T) {
	_ = time.Now()
	time.Sleep(time.Microsecond)
}
