package a

import stdtime "time"

func renamed() {
	_ = stdtime.Now() // want `clockcheck: time\.Now`
}
