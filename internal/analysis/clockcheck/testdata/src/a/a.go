// Package a exercises clockcheck: raw clock reads in library code.
package a

import "time"

func bad(d time.Duration) {
	_ = time.Now()                  // want `clockcheck: time\.Now outside a clock implementation`
	time.Sleep(d)                   // want `clockcheck: time\.Sleep`
	_ = time.After(d)               // want `clockcheck: time\.After`
	_ = time.NewTimer(d)            // want `clockcheck: time\.NewTimer`
	_ = time.NewTicker(d)           // want `clockcheck: time\.NewTicker`
	_ = time.Since(time.Unix(1, 0)) // want `clockcheck: time\.Since`
}

func pure() time.Time {
	// Constructors that do not read the clock stay legal.
	return time.Unix(42, 0).Add(3 * time.Minute)
}

func escaped(d time.Duration) {
	time.Sleep(d) //lint:allow clockcheck(this fixture models an exempted wall-bound sleep)
	time.Sleep(d) //lint:allow clockcheck // want `clockcheck: //lint:allow clockcheck needs a reason`
}
