package outcomecheck_test

import (
	"testing"

	"ivdss/internal/analysis/analysistest"
	"ivdss/internal/analysis/outcomecheck"
)

func TestOutcomecheck(t *testing.T) {
	analysistest.Run(t, "testdata", outcomecheck.Analyzer, "a")
}
