// Package outcomecheck guards the IV accounting identity: every query
// that enters an engine or queue must leave as exactly one accounted
// core.Outcome (completion, expiry, eviction, or plan failure via
// OnDrop). A removal path that forgets its outcome silently deflates
// total information value — the quantity every shedding and eviction
// policy in the paper optimizes — and no example-based test catches
// the path nobody exercised.
//
// Two rules, both type-aware:
//
//  1. Removal accounting: a statement that removes an element from a
//     query-carrying container (slice-delete `x = append(x[:i],
//     x[i+1:]...)`, head-drop `x = x[1:]`, or a keyed `delete` on a
//     query-carrying map) must have outcome accounting in reach: the
//     enclosing function, one of its (transitive) callees, or a direct
//     caller must construct a core.Outcome, build a scheduler
//     Dispatch (the launch path — the executor's done callback
//     accounts it), or invoke an OnDrop hook. "Query-carrying" means
//     the element type is, or is a struct holding, a core.Query —
//     resolved through go/types, so wrapper entry structs count.
//
//  2. Discarded errors: library code may not drop an error-returning
//     call as a bare statement or `go` statement. `_ =` remains legal
//     as an explicit, grep-able waiver; deferred Close stays legal on
//     the grounds PR 5 established (write paths check Close
//     explicitly). Writes that cannot fail by contract — methods of
//     strings.Builder/bytes.Buffer, and fmt.Fprint* targeting one —
//     are exempt: their error results exist only to satisfy
//     io.Writer.
package outcomecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"ivdss/internal/analysis"
)

// Analyzer is the outcomecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "outcomecheck",
	Doc: "queue removals of query-carrying elements must account a core.Outcome (or reach OnDrop/Dispatch), " +
		"and error returns in library code may not be discarded",
	Run: run,
}

func run(pass *analysis.Pass) {
	if pass.PkgName() == "main" {
		return
	}
	checkDiscardedErrors(pass)
	checkRemovals(pass)
}

// --- rule 2: discarded errors -----------------------------------------

func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// neverFailingWriter reports whether t (after unwrapping a pointer) is
// an in-memory writer whose Write-family methods return a nil error by
// documented contract.
func neverFailingWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return analysis.IsType(t, "strings", "Builder") || analysis.IsType(t, "bytes", "Buffer")
}

// infallible reports whether call's error result is dead by contract: a
// method on strings.Builder/bytes.Buffer, or an fmt.Fprint* call whose
// destination writer is one.
func infallible(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) bool {
	if callee == nil {
		return false
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		return neverFailingWriter(recv.Type())
	}
	if analysis.FuncIn(callee, "fmt") && strings.HasPrefix(callee.Name(), "Fprint") && len(call.Args) > 0 {
		return neverFailingWriter(pass.Info.TypeOf(call.Args[0]))
	}
	return false
}

func checkDiscardedErrors(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				c, ok := ast.Unparen(s.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.GoStmt:
				call = s.Call
			default:
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			if infallible(pass, call, pass.CalleeOf(call)) {
				return true
			}
			name := types.ExprString(call.Fun)
			if callee := pass.CalleeOf(call); callee != nil {
				name = callee.Name()
			}
			pass.Reportf(call.Pos(),
				"outcomecheck: %s returns an error that is discarded: handle it, or waive explicitly with _ =", name)
			return true
		})
	}
}

// --- rule 1: removal accounting ---------------------------------------

// carriesQuery reports whether elem (after unwrapping pointers) is
// core.Query or a struct with a core.Query-typed field.
func carriesQuery(elem types.Type) bool {
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	if analysis.IsType(elem, "internal/core", "Query") {
		return true
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if analysis.IsType(st.Field(i).Type(), "internal/core", "Query") {
			return true
		}
	}
	return false
}

// queryElem returns the query-carrying element type of a slice or map
// type, if any.
func queryElem(t types.Type) (types.Type, bool) {
	if t == nil {
		return nil, false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if carriesQuery(u.Elem()) {
			return u.Elem(), true
		}
	case *types.Map:
		if carriesQuery(u.Elem()) {
			return u.Elem(), true
		}
	}
	return nil, false
}

// accounts reports direct outcome-accounting evidence in fn's body: a
// core.Outcome composite literal, a scheduler Dispatch literal, or a
// call through an OnDrop hook.
func accounts(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(x)
			if analysis.IsType(t, "internal/core", "Outcome") || analysis.IsType(t, "internal/scheduler", "Dispatch") {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "OnDrop" {
				found = true
			}
		}
		return !found
	})
	return found
}

// accountsInReach reports accounting evidence in fn or any function it
// transitively calls within the package.
func accountsInReach(pass *analysis.Pass, fn *types.Func, memo map[*types.Func]int) bool {
	const (
		inProgress = 1
		yes        = 2
		no         = 3
	)
	switch memo[fn] {
	case yes:
		return true
	case no, inProgress:
		return false
	}
	memo[fn] = inProgress
	node := pass.Graph().Node(fn)
	if node == nil {
		memo[fn] = no
		return false
	}
	if accounts(pass, node.Decl.Body) {
		memo[fn] = yes
		return true
	}
	for _, cs := range node.Calls {
		if cs.Callee != nil && accountsInReach(pass, cs.Callee, memo) {
			memo[fn] = yes
			return true
		}
	}
	memo[fn] = no
	return false
}

func checkRemovals(pass *analysis.Pass) {
	graph := pass.Graph()
	memo := make(map[*types.Func]int)

	// callers: reverse edges of the package graph.
	callers := make(map[*types.Func][]*types.Func)
	for _, node := range graph.Funcs() {
		for _, cs := range node.Calls {
			if cs.Callee != nil && graph.Node(cs.Callee) != nil {
				callers[cs.Callee] = append(callers[cs.Callee], node.Fn)
			}
		}
	}

	accounted := func(fn *types.Func) bool {
		if accountsInReach(pass, fn, memo) {
			return true
		}
		for _, caller := range callers[fn] {
			if accountsInReach(pass, caller, memo) {
				return true
			}
		}
		return false
	}

	for _, node := range graph.Funcs() {
		fn := node.Fn
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if !removesQueryElement(pass, s) {
					return true
				}
				if !accounted(fn) {
					pass.Reportf(s.Pos(),
						"outcomecheck: removes a query-carrying element with no core.Outcome accounting in reach: emit exactly one Outcome (or OnDrop) per removed query")
				}
			case *ast.CallExpr:
				if !deletesQueryElement(pass, s) {
					return true
				}
				if !accounted(fn) {
					pass.Reportf(s.Pos(),
						"outcomecheck: deletes a query-carrying map entry with no core.Outcome accounting in reach: emit exactly one Outcome (or OnDrop) per removed query")
				}
			}
			return true
		})
	}
}

// removesQueryElement matches the slice removal idioms
// `x = append(x[:i], x[i+1:]...)` and `x = x[1:]` on query-carrying
// slices.
func removesQueryElement(pass *analysis.Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	if _, ok := queryElem(pass.Info.TypeOf(s.Lhs[0])); !ok {
		return false
	}
	lhs := types.ExprString(s.Lhs[0])
	switch rhs := ast.Unparen(s.Rhs[0]).(type) {
	case *ast.CallExpr:
		// append(x[:i], x[i+1:]...) assigned back to x.
		id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(rhs.Args) != 2 || rhs.Ellipsis == 0 {
			return false
		}
		first, ok := ast.Unparen(rhs.Args[0]).(*ast.SliceExpr)
		if !ok || first.Low != nil || first.High == nil {
			return false
		}
		second, ok := ast.Unparen(rhs.Args[1]).(*ast.SliceExpr)
		if !ok || second.Low == nil {
			return false
		}
		return types.ExprString(first.X) == lhs && types.ExprString(second.X) == lhs
	case *ast.SliceExpr:
		// x = x[1:] head-drop. x = x[:0] (reset) and x = x[:n]
		// (truncate-from-filter) are handled as filters — the filter
		// loop re-appends survivors, so the kept/shed split is visible.
		return types.ExprString(rhs.X) == lhs && rhs.Low != nil && rhs.High == nil
	}
	return false
}

// deletesQueryElement matches `delete(m, k)` on query-carrying maps.
func deletesQueryElement(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" || len(call.Args) != 2 {
		return false
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	_, ok = queryElem(pass.Info.TypeOf(call.Args[0]))
	return ok
}
