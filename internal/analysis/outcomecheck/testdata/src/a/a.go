package a

import (
	"fmt"
	"io"
	"strings"

	core "example.com/internal/core"
)

// entry wraps a query: the retired syntactic pass keyed on the literal
// element type core.Query, so a wrapper struct hid the queue. The
// type-aware pass resolves the field through go/types.
type entry struct {
	Q    core.Query
	cost float64
}

type queue struct {
	items []entry
	byID  map[int]entry
}

// A head-drop that loses the query with no accounting anywhere.
func (q *queue) dropHead() {
	q.items = q.items[1:] // want `outcomecheck: removes a query-carrying element with no core\.Outcome accounting in reach`
}

// Removal with the outcome constructed in the same function.
func (q *queue) expire(i int) core.Outcome {
	e := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return core.Outcome{Q: e.Q, Status: "expired"}
}

// A keyed delete that loses the query.
func (q *queue) forget(id int) {
	delete(q.byID, id) // want `outcomecheck: deletes a query-carrying map entry with no core\.Outcome accounting in reach`
}

// Accounting through a transitive callee still counts.
func (q *queue) shed() {
	e := q.items[0]
	q.items = q.items[1:]
	q.record(e)
}

func (q *queue) record(e entry) {
	_ = core.Outcome{Q: e.Q, Status: "shed"}
}

// pop removes without accounting, but its caller accounts the launch —
// the executor's done callback owns the outcome.
func (q *queue) pop() entry {
	e := q.items[0]
	q.items = q.items[1:]
	return e
}

func (q *queue) launch() core.Outcome {
	e := q.pop()
	return core.Outcome{Q: e.Q, Status: "done"}
}

// An eviction hook is accounting: the owner observes the drop.
type dropper struct {
	byID   map[int]entry
	OnDrop func(core.Query)
}

func (d *dropper) evict(id int) {
	e := d.byID[id]
	delete(d.byID, id)
	d.OnDrop(e.Q)
}

// Slices that carry no queries are out of scope.
func trimInts(xs []int) []int {
	xs = xs[1:]
	return xs
}

// --- discarded errors -------------------------------------------------

func mayFail() error { return nil }

func sloppy() {
	mayFail()    // want `outcomecheck: mayFail returns an error that is discarded: handle it, or waive explicitly with _ =`
	go mayFail() // want `outcomecheck: mayFail returns an error that is discarded`
	_ = mayFail()
}

// In-memory writers cannot fail by contract: their error results exist
// only to satisfy io.Writer.
func render() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 7)
	return b.String()
}

// Deferred Close stays legal: write paths check Close explicitly.
func deferred(c io.Closer) {
	defer c.Close()
}

func escapes() {
	mayFail() //lint:allow outcomecheck(fixture models an advisory side effect)
	mayFail() //lint:allow outcomecheck // want `outcomecheck: //lint:allow outcomecheck needs a reason`
}
