// Package core is a fixture stub of the query/outcome model: just
// enough surface for the golden packages to type-check.
package core

// Query is one in-flight query.
type Query struct {
	ID  int
	Arg string
}

// Outcome is the accounted end of one query.
type Outcome struct {
	Q      Query
	Status string
}
