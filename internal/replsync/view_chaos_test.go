package replsync

import (
	"context"
	"fmt"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/metrics"
	"ivdss/internal/scheduler"
)

// routeFetcher dispatches each sync unit to its own model fetcher, so a
// breaker can open on one view's base table without touching siblings.
type routeFetcher struct {
	units map[core.TableID]*modelFetcher
}

func (r routeFetcher) Snapshot(ctx context.Context, table core.TableID) (Snapshot, error) {
	f, ok := r.units[table]
	if !ok {
		return Snapshot{}, fmt.Errorf("routeFetcher: unknown unit %s", table)
	}
	return f.Snapshot(ctx, table)
}

func (r routeFetcher) Delta(ctx context.Context, table core.TableID, cursor uint64) (Delta, error) {
	f, ok := r.units[table]
	if !ok {
		return Delta{}, fmt.Errorf("routeFetcher: unknown unit %s", table)
	}
	return f.Delta(ctx, table, cursor)
}

// TestViewDeltasDeferIndependently is the chaos case: two materialized
// views sync as namespaced units; the breaker opens on one view's base
// table, and that view's cycles defer while the sibling keeps advancing.
// When the breaker heals, the deferred view resumes deltas from its cursor.
func TestViewDeltasDeferIndependently(t *testing.T) {
	clk := &scheduler.ManualClock{}
	v1, v2 := core.ViewUnit("v1"), core.ViewUnit("v2")
	f1 := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 2, rowBytes: 8}
	f2 := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 2, rowBytes: 8}
	stats := metrics.NewRegistry()
	log := &eventLog{}
	a, err := New(Config{
		Clock: clk,
		Fetch: routeFetcher{units: map[core.TableID]*modelFetcher{v1: f1, v2: f2}},
		Apply: &countApplier{},
		Tables: []TableConfig{
			{ID: v1, Period: 5},
			{ID: v2, Period: 5},
		},
		Stats:  stats,
		OnSync: log.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SyncNow(v1); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncNow(v2); err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(6) // first periodic delta for both at t=5

	// Chaos: v1's base site trips its breaker.
	f1.fail = fmt.Errorf("site 1: %w", &faults.OpenError{Key: "site-1"})
	clk.RunUntil(16) // cycles at 10 and 15

	kinds := map[core.TableID]map[SyncKind]int{v1: {}, v2: {}}
	for _, ev := range log.all() {
		if ev.At > 5 {
			kinds[ev.Table][ev.Kind]++
		}
	}
	if kinds[v1][DeferredSync] < 2 {
		t.Fatalf("open breaker on v1's base: want ≥2 deferrals, got %v", kinds[v1])
	}
	if kinds[v1][FailedSync] != 0 {
		t.Fatalf("open breaker must defer, not fail: %v", kinds[v1])
	}
	if kinds[v2][DeltaSync] < 2 || kinds[v2][DeferredSync] != 0 {
		t.Fatalf("sibling view stalled by v1's breaker: %v", kinds[v2])
	}
	if got := stats.Counter("view_refresh_deferred_total").Value(); got < 2 {
		t.Errorf("view_refresh_deferred_total = %d, want ≥2", got)
	}

	// Heal: v1 resumes deltas from its cursor, no re-snapshot.
	f1.fail = nil
	before := stats.Counter("views_materialized_total").Value()
	clk.RunUntil(21)
	resumed := false
	for _, ev := range log.all() {
		if ev.Table == v1 && ev.At > 16 && ev.Kind == DeltaSync {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("v1 did not resume delta syncs after the breaker healed")
	}
	if after := stats.Counter("views_materialized_total").Value(); after != before {
		t.Errorf("healing must not re-materialize: %d -> %d", before, after)
	}
	if stats.Counter("views_materialized_total").Value() != 2 {
		t.Errorf("views_materialized_total = %d, want 2 (one per view snapshot)",
			stats.Counter("views_materialized_total").Value())
	}
	if stats.Counter("view_delta_bytes_total").Value() <= 0 {
		t.Error("view_delta_bytes_total stayed zero despite delta syncs")
	}
}

// TestSharedBucketThrottlesOutsideCharges pins the shared-budget contract:
// bytes charged by another consumer (the federation engine pre-warming a
// replica) put the common bucket into debt, and the agent's next cycle
// defers until the refill catches up.
func TestSharedBucketThrottlesOutsideCharges(t *testing.T) {
	clk := &scheduler.ManualClock{}
	bucket, err := NewBucket(clk, 100, 200) // 100 B/min, burst 200
	if err != nil {
		t.Fatal(err)
	}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 1, rowBytes: 8, fixedBytes: 10}
	log := &eventLog{}
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t1", Period: 5}},
		Bucket: bucket,
		OnSync: log.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SyncNow("t1"); err != nil {
		t.Fatal(err)
	}
	a.Start()

	// An outside consumer drains the bucket deep into debt: 200 tokens
	// minus 1200 bytes = 1000 bytes of debt, 10 minutes of refill.
	bucket.Charge(1200)
	clk.RunUntil(6) // the t=5 cycle must defer

	var deferred, synced int
	for _, ev := range log.all() {
		if ev.At > 0 {
			switch ev.Kind {
			case DeferredSync:
				deferred++
			case DeltaSync, SnapshotSync:
				synced++
			}
		}
	}
	if deferred == 0 || synced != 0 {
		t.Fatalf("outside charge not honored: %d deferred, %d synced by t=6", deferred, synced)
	}

	clk.RunUntil(20) // debt refilled by t≈10; later cycles proceed
	synced = 0
	for _, ev := range log.all() {
		if ev.Kind == DeltaSync || ev.Kind == SnapshotSync {
			synced++
		}
	}
	if synced == 0 {
		t.Fatal("agent never resumed after the shared bucket refilled")
	}
}
