package replsync

import (
	"fmt"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/replication"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
)

// newAdaptiveAgent wires a two-table adaptive agent on the given clock.
func newAdaptiveAgent(t *testing.T, clk scheduler.Clock, reg *metrics.Registry, log *eventLog, placer Placer) *Agent {
	t.Helper()
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 1, rowBytes: 8}
	cfg := Config{
		Clock:       clk,
		Fetch:       fetch,
		Apply:       &countApplier{},
		Tables:      []TableConfig{{ID: "hot", Period: 10}, {ID: "cold", Period: 10}},
		Adaptive:    true,
		AdjustEvery: 10,
		MinPeriod:   1,
		MaxPeriod:   100,
		Placer:      placer,
		PlaceEvery:  2,
		Stats:       reg,
	}
	if log != nil {
		cfg.OnSync = log.observe
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The cadence controller moves sync rate toward the table losing IV:
// after loss lands on "hot", its period shrinks and "cold"'s grows, with
// the total rate budget conserved.
func TestAdaptiveCadenceShiftsRateTowardLoss(t *testing.T) {
	clk := &scheduler.ManualClock{}
	reg := metrics.NewRegistry()
	a := newAdaptiveAgent(t, clk, reg, nil, nil)
	a.Start()

	// Feed loss observations on "hot" only, between cycles.
	for i := 1; i <= 30; i++ {
		at := core.Time(i)
		clk.AfterFunc(at-clk.Now(), func() { a.ObserveLoss([]core.TableID{"hot"}, 5) })
	}
	clk.RunUntil(35)

	var hot, cold TableStatus
	for _, st := range a.Status() {
		switch st.Table {
		case "hot":
			hot = st
		case "cold":
			cold = st
		}
	}
	if hot.Period >= 10 {
		t.Fatalf("hot period = %v, want < 10 (rate shifted toward loss)", hot.Period)
	}
	if cold.Period <= 10 {
		t.Fatalf("cold period = %v, want > 10 (rate shifted away)", cold.Period)
	}
	// Total rate stays within the budget Σ 1/p = 0.2 (clamping can only
	// reduce it).
	if rate := 1/hot.Period + 1/cold.Period; rate > 0.2+1e-9 {
		t.Fatalf("total sync rate %v exceeds the 0.2 budget", rate)
	}
	if got := reg.Counter("cadence_adjustments_total").Value(); got == 0 {
		t.Fatal("controller should have counted an adjustment")
	}
}

// With no loss anywhere the controller keeps the uniform division and
// counts no adjustments.
func TestAdaptiveCadenceStableWithoutLoss(t *testing.T) {
	clk := &scheduler.ManualClock{}
	reg := metrics.NewRegistry()
	a := newAdaptiveAgent(t, clk, reg, nil, nil)
	a.Start()
	clk.RunUntil(60)
	if got := reg.Counter("cadence_adjustments_total").Value(); got != 0 {
		t.Fatalf("cadence_adjustments_total = %d, want 0 with a symmetric workload", got)
	}
	for _, st := range a.Status() {
		if st.Period != 10 {
			t.Fatalf("table %s period drifted to %v without loss", st.Table, st.Period)
		}
	}
}

// stubPlacer recommends a fixed set once asked.
type stubPlacer struct {
	rec   []core.TableID
	calls int
}

func (p *stubPlacer) Recommend(current []core.TableID) ([]core.TableID, error) {
	p.calls++
	if p.rec == nil {
		return current, nil
	}
	return p.rec, nil
}

// A placement review applies the Placer's recommendation online: the
// demoted table is dropped (replica discarded, Manager unregistered) and
// the promoted table snapshots immediately and joins the cadence.
func TestPlacementReviewPromotesAndDemotes(t *testing.T) {
	clk := &scheduler.ManualClock{}
	reg := metrics.NewRegistry()
	placer := &stubPlacer{rec: []core.TableID{"hot", "fresh"}}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 1, rowBytes: 8}
	apply := &countApplier{}
	mgr := replication.NewManager()
	for _, id := range []core.TableID{"hot", "cold"} {
		if err := mgr.Register(id, replication.Schedule{}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := New(Config{
		Clock:       clk,
		Fetch:       fetch,
		Apply:       apply,
		Manager:     mgr,
		Tables:      []TableConfig{{ID: "hot", Period: 10}, {ID: "cold", Period: 10}},
		Adaptive:    true,
		AdjustEvery: 10,
		MinPeriod:   1,
		MaxPeriod:   100,
		Placer:      placer,
		PlaceEvery:  2,
		Stats:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(45) // reviews at adjust ticks 20, 40

	if placer.calls == 0 {
		t.Fatal("placer was never consulted")
	}
	got := fmt.Sprint(a.Tables())
	if got != fmt.Sprint([]core.TableID{"fresh", "hot"}) {
		t.Fatalf("replica set = %v, want [fresh hot]", got)
	}
	if len(apply.drops) != 1 || apply.drops[0] != "cold" {
		t.Fatalf("dropped replicas = %v, want [cold]", apply.drops)
	}
	if mgr.Replicated("cold") {
		t.Fatal("cold should be unregistered from the manager")
	}
	if !mgr.Replicated("fresh") {
		t.Fatal("fresh should be registered in the manager")
	}
	// The promoted table snapshotted and is on a cadence.
	st, _ := mgr.Staleness("fresh", 45)
	if st > 100 {
		t.Fatalf("fresh staleness %v: promoted table never synced", st)
	}
	if reg.Counter("replicas_promoted_total").Value() != 1 ||
		reg.Counter("replicas_demoted_total").Value() != 1 {
		t.Fatal("promotion/demotion counters should both read 1")
	}
}

// driveEquiv runs an identical adaptive scenario on the given clock and
// returns the event log. The scenario seeds loss on "hot" at fixed
// instants so the cadence controller acts.
func driveEquiv(t *testing.T, clk scheduler.Clock, run func(until core.Time)) []Event {
	t.Helper()
	reg := metrics.NewRegistry()
	log := &eventLog{}
	a := newAdaptiveAgent(t, clk, reg, log, nil)
	a.Start()
	for i := 1; i <= 40; i++ {
		at := core.Time(i) * 1.5
		clk.AfterFunc(at-clk.Now(), func() { a.ObserveLoss([]core.TableID{"hot"}, 3) })
	}
	run(70)
	return log.all()
}

// The engine is clock-agnostic: the discrete event simulator and the
// hand-stepped manual clock drive byte-for-byte identical sync histories
// through the identical code path — the property that makes DES results
// transfer to the live server.
func TestEngineEquivalentUnderSimAndManualClock(t *testing.T) {
	s := sim.New()
	simEvents := driveEquiv(t, scheduler.SimClock{Sim: s}, func(until core.Time) { s.RunUntil(until) })

	clk := &scheduler.ManualClock{}
	manEvents := driveEquiv(t, clk, func(until core.Time) { clk.RunUntil(until) })

	if len(simEvents) == 0 {
		t.Fatal("scenario produced no sync events")
	}
	if len(simEvents) != len(manEvents) {
		t.Fatalf("sim produced %d events, manual clock %d", len(simEvents), len(manEvents))
	}
	for i := range simEvents {
		se, me := simEvents[i], manEvents[i]
		if se.Table != me.Table || se.At != me.At || se.Kind != me.Kind ||
			se.Bytes != me.Bytes || se.Version != me.Version {
			t.Fatalf("event %d diverges:\n  sim:    %+v\n  manual: %+v", i, se, me)
		}
	}
	// The scenario must exercise the adaptive path to be a meaningful
	// equivalence check.
	sawDelta := false
	for _, ev := range simEvents {
		if ev.Kind == DeltaSync {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatal("scenario never produced a delta sync")
	}
}
