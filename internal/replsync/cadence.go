package replsync

import (
	"math"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/replication"
)

// This file is the adaptive cadence controller: every AdjustEvery minutes
// it re-divides the agent's total sync rate across tables in proportion to
// the square root of each table's decayed IV-loss-to-staleness, and every
// PlaceEvery adjustments it asks the Placer whether the replica set itself
// should change.
//
// The square-root allocation is the classic result for staleness-linear
// loss under a rate budget: a table synced with period p accrues loss at
// roughly (loss rate)×p/2 on average, so total loss Σ lᵢpᵢ is minimized
// subject to Σ 1/pᵢ = R by pᵢ ∝ 1/√lᵢ — i.e. rate ∝ √lᵢ.

// ObserveLoss attributes an observed IV loss to staleness across the
// tables whose replicas the report read. The executor calls it once per
// completed query with the erosion of the (1−λSL)^SL factor; the loss is
// split evenly across the accessed replicated tables (the oldest-freshness
// semantics of SL make exact attribution impossible, and an even split
// keeps hot tables hot).
func (a *Agent) ObserveLoss(tables []core.TableID, loss float64) {
	if loss <= 0 || len(tables) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.decayLocked(a.cfg.Clock.Now())
	share := loss / float64(len(tables))
	for _, id := range tables {
		if _, ok := a.tables[id]; ok {
			a.losses[id] += share
		}
	}
}

// decayLocked ages the loss accounting to now with the configured
// half-life, so demand that stopped materializing fades out.
func (a *Agent) decayLocked(now core.Time) {
	dt := float64(now - a.lossAt)
	if dt <= 0 {
		return
	}
	a.lossAt = now
	f := math.Pow(0.5, dt/float64(a.cfg.DecayHalfLife))
	for id, l := range a.losses {
		l *= f
		if l < 1e-12 {
			delete(a.losses, id)
			continue
		}
		a.losses[id] = l
	}
}

// armAdjustLocked schedules the next controller tick.
func (a *Agent) armAdjustLocked() {
	if !a.started || a.stopped {
		return
	}
	gen := a.adjustGen
	a.cfg.Clock.AfterFunc(a.cfg.AdjustEvery, func() { a.adjustTick(gen) })
}

// adjustTick is one controller step: re-divide the rate budget, re-arm the
// table timers that moved, mirror the new cadence into the Manager, and
// every PlaceEvery steps review placement.
func (a *Agent) adjustTick(gen uint64) {
	a.mu.Lock()
	if a.stopped || gen != a.adjustGen {
		a.mu.Unlock()
		return
	}
	now := a.cfg.Clock.Now()
	a.decayLocked(now)
	a.rebalanceLocked(now)
	a.placeLeft--
	doPlace := a.cfg.Placer != nil && a.placeLeft <= 0
	if doPlace {
		a.placeLeft = a.cfg.PlaceEvery
	}
	a.armAdjustLocked()
	a.mu.Unlock()
	if doPlace {
		a.reviewPlacement()
	}
}

// rebalanceLocked recomputes every table's period from the loss weights
// and re-arms moved timers.
func (a *Agent) rebalanceLocked(now core.Time) {
	ids := a.tablesLocked()
	if len(ids) == 0 || a.rateBudget <= 0 {
		return
	}
	weights := make([]float64, len(ids))
	var wsum float64
	for i, id := range ids {
		weights[i] = math.Sqrt(a.losses[id])
		wsum += weights[i]
	}
	if wsum == 0 {
		// No observed loss anywhere: divide the rate evenly.
		for i := range weights {
			weights[i] = 1
		}
	}
	periods := a.allocatePeriods(weights)
	changed := false
	for i, id := range ids {
		if rel := math.Abs(periods[i]-a.tables[id].period) / a.tables[id].period; rel > 0.05 {
			changed = true
		}
	}
	if !changed {
		return
	}
	a.stats.Counter("cadence_adjustments_total").Inc()
	for i, id := range ids {
		ts := a.tables[id]
		old := ts.period
		ts.period = periods[i]
		if ts.syncing || ts.period == old {
			// An in-flight cycle re-arms itself with the new period when it
			// completes; nothing to move now.
			continue
		}
		// Move the armed timer: next cycle one (new) period after the last
		// sync, never before now. Bumping gen orphans the old timer.
		ts.gen = a.nextGenLocked()
		next := now
		if ts.lastSync >= 0 {
			next = math.Max(now, ts.lastSync+ts.period)
		}
		a.armLocked(ts, now, next-now)
		a.mirrorCadenceLocked(ts)
	}
}

// allocatePeriods divides the rate budget across tables in proportion to
// the weights, water-filling against the [MinPeriod, MaxPeriod] clamp:
// a clamped table consumes its clamped rate and the residual budget is
// redistributed among the rest, so the total rate never exceeds the
// budget because of a clamp (a zero-weight table pinned at MaxPeriod
// still costs 1/MaxPeriod, which must come out of someone's share).
func (a *Agent) allocatePeriods(weights []float64) []core.Duration {
	n := len(weights)
	periods := make([]core.Duration, n)
	fixed := make([]bool, n)
	for round := 0; round < n; round++ {
		residual := a.rateBudget
		var wsum float64
		for i := range weights {
			if fixed[i] {
				residual -= 1 / periods[i]
			} else {
				wsum += weights[i]
			}
		}
		clampedMore := false
		for i := range weights {
			if fixed[i] {
				continue
			}
			p := a.cfg.MaxPeriod
			if weights[i] > 0 && residual > 0 && wsum > 0 {
				p = wsum / (residual * weights[i])
			}
			if p <= a.cfg.MinPeriod || p >= a.cfg.MaxPeriod {
				periods[i] = clamp(p, a.cfg.MinPeriod, a.cfg.MaxPeriod)
				fixed[i] = true
				clampedMore = true
			} else {
				periods[i] = p
			}
		}
		if !clampedMore {
			break
		}
	}
	return periods
}

// mirrorCadenceLocked rewrites the table's upcoming schedule in the
// Manager to match the new cadence (completions stay untouched).
func (a *Agent) mirrorCadenceLocked(ts *tableState) {
	mgr := a.cfg.Manager
	if mgr == nil || ts.nextAt < 0 {
		return
	}
	future := make([]core.Time, a.cfg.MirrorSyncs)
	for i := range future {
		future[i] = ts.nextAt + core.Time(i)*ts.period
	}
	if ts.lastSync >= 0 && len(future) > 0 && future[0] <= ts.lastSync {
		return // degenerate float case; the completion mirror will fix it
	}
	_ = mgr.Reschedule(ts.id, future)
}

// reviewPlacement asks the Placer for the replica set and applies the
// difference: promote tables it adds (snapshot first), demote tables it
// drops. Called without the agent lock held — the Placer may plan.
func (a *Agent) reviewPlacement() {
	current := a.Tables()
	rec, err := a.cfg.Placer.Recommend(current)
	if err != nil || len(rec) == 0 {
		return
	}
	target := make(map[core.TableID]bool, len(rec))
	for _, id := range rec {
		target[id] = true
	}

	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	now := a.cfg.Clock.Now()
	var demote []core.TableID
	for _, id := range a.tablesLocked() {
		if !target[id] {
			demote = append(demote, id)
		}
	}
	var promote []core.TableID
	for id := range target {
		if _, ok := a.tables[id]; !ok {
			promote = append(promote, id)
		}
	}
	sort.Slice(promote, func(i, j int) bool { return promote[i] < promote[j] })

	for _, id := range demote {
		ts := a.tables[id]
		ts.gen = a.nextGenLocked() // orphan any armed timer
		delete(a.tables, id)
		delete(a.losses, id)
		if a.cfg.Manager != nil {
			a.cfg.Manager.Unregister(id)
		}
		a.cfg.Apply.Drop(id)
		a.stats.Counter("replicas_demoted_total").Inc()
	}
	period := clamp(float64(len(a.tables)+len(promote))/a.rateBudget,
		a.cfg.MinPeriod, a.cfg.MaxPeriod)
	for _, id := range promote {
		ts := &tableState{id: id, period: period, lastSync: -1, nextAt: -1, gen: a.nextGenLocked()}
		a.tables[id] = ts
		if a.cfg.Manager != nil {
			// Ignore "already registered": the caller may track the table
			// for other reasons; the completion mirror will line it up.
			_ = a.cfg.Manager.Register(id, replication.Schedule{})
		}
		a.armLocked(ts, now, 0) // first cycle (a snapshot) right away
		a.stats.Counter("replicas_promoted_total").Inc()
	}
	a.mu.Unlock()
}

// nextGenLocked issues a fresh timer generation.
func (a *Agent) nextGenLocked() uint64 {
	a.genSeq++
	return a.genSeq
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
