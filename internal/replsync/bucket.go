package replsync

import (
	"fmt"
	"math"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
)

// Bucket is a bandwidth token bucket over experiment time, shared by every
// consumer of the DSS's sync budget: the replication agent's cycles and the
// federation engine's replica pre-warming both charge the same bucket, so
// their combined traffic respects one -sync-budget.
//
// The bucket is post-paid: a consumer checks Debt before moving bytes and
// Charges the actual payload afterwards, which may overdraw the bucket.
// Overdraw puts the bucket into debt and later consumers defer until the
// refill catches up — a payload is never split or truncated to fit.
//
// A nil *Bucket is a valid unlimited budget: Debt is always zero and
// Charge is a no-op. Bucket is safe for concurrent use.
type Bucket struct {
	mu         sync.Mutex
	clock      scheduler.Clock
	rate       float64 // bytes per experiment minute
	burst      float64 // token cap
	tokens     float64
	lastRefill core.Time
}

// NewBucket returns a bucket refilling at rate bytes per experiment minute,
// starting full. A zero burst defaults to five minutes' worth of rate.
func NewBucket(clock scheduler.Clock, rate, burst float64) (*Bucket, error) {
	if clock == nil {
		return nil, fmt.Errorf("replsync: bucket needs a Clock")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("replsync: bucket rate %g must be positive (nil bucket = unlimited)", rate)
	}
	if burst < 0 {
		return nil, fmt.Errorf("replsync: negative bucket burst %g", burst)
	}
	if burst == 0 {
		burst = 5 * rate
	}
	return &Bucket{
		clock:      clock,
		rate:       rate,
		burst:      burst,
		tokens:     burst,
		lastRefill: clock.Now(),
	}, nil
}

// Rate returns the refill rate in bytes per experiment minute (0 for a nil
// bucket).
func (b *Bucket) Rate() float64 {
	if b == nil {
		return 0
	}
	return b.rate
}

// Debt refreshes the bucket to the current instant and returns the bytes
// of outstanding debt — zero when spending is allowed. Dividing a nonzero
// debt by Rate gives the minutes until the bucket is whole again.
func (b *Bucket) Debt() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.clock.Now())
	if b.tokens < 0 {
		return -b.tokens
	}
	return 0
}

// Charge post-pays a payload, possibly driving the bucket into debt.
func (b *Bucket) Charge(bytes int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.clock.Now())
	b.tokens -= float64(bytes)
}

// refillLocked accrues tokens up to the burst cap.
func (b *Bucket) refillLocked(now core.Time) {
	if dt := float64(now - b.lastRefill); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.lastRefill = now
}
