package replsync

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/metrics"
	"ivdss/internal/replication"
	"ivdss/internal/scheduler"
)

// modelFetcher is a byte-accurate model of a remote site: the table grows
// rowsPerMin rows per experiment minute, each rowBytes wide, from baseRows
// at t=0. It answers snapshots and deltas from the model, and can be
// forced to fail or answer Resync.
type modelFetcher struct {
	clock      scheduler.Clock
	baseRows   uint64
	rowsPerMin float64
	rowBytes   int64

	// fixedBytes, when positive, overrides the modeled payload size — for
	// budget tests that need constant-size transfers.
	fixedBytes int64

	mu        sync.Mutex
	fail      error
	forceSync bool
	calls     []string
}

func (f *modelFetcher) version() uint64 {
	return f.baseRows + uint64(f.rowsPerMin*float64(f.clock.Now()))
}

func (f *modelFetcher) Snapshot(_ context.Context, table core.TableID) (Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf("snapshot %s", table))
	if f.fail != nil {
		return Snapshot{}, f.fail
	}
	v := f.version()
	b := int64(v) * f.rowBytes
	if f.fixedBytes > 0 {
		b = f.fixedBytes
	}
	return Snapshot{Version: v, Bytes: b}, nil
}

func (f *modelFetcher) Delta(_ context.Context, table core.TableID, cursor uint64) (Delta, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf("delta %s @%d", table, cursor))
	if f.fail != nil {
		return Delta{}, f.fail
	}
	if f.forceSync {
		return Delta{Resync: true}, nil
	}
	v := f.version()
	if cursor > v {
		return Delta{Resync: true}, nil
	}
	b := int64(v-cursor) * f.rowBytes
	if f.fixedBytes > 0 {
		b = f.fixedBytes
	}
	return Delta{Version: v, Bytes: b}, nil
}

// countApplier counts applications; it tolerates nil payload tables.
type countApplier struct {
	mu        sync.Mutex
	snapshots int
	deltas    int
	drops     []core.TableID
	lastAt    core.Time
}

func (ap *countApplier) ApplySnapshot(_ core.TableID, _ Snapshot, at core.Time) error {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	ap.snapshots++
	ap.lastAt = at
	return nil
}

func (ap *countApplier) ApplyDelta(_ core.TableID, _ Delta, at core.Time) error {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	ap.deltas++
	ap.lastAt = at
	return nil
}

func (ap *countApplier) Drop(t core.TableID) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	ap.drops = append(ap.drops, t)
}

// eventLog collects sync events.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) observe(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) all() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event{}, l.events...)
}

// The basic engine cycle: snapshot on the first sync, deltas after, the
// Manager mirror tracking every completion and the upcoming cadence.
func TestAgentSnapshotThenDeltas(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 100, rowsPerMin: 10, rowBytes: 8}
	apply := &countApplier{}
	mgr := replication.NewManager()
	if err := mgr.Register("accounts", replication.Schedule{}); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	reg := metrics.NewRegistry()
	a, err := New(Config{
		Clock:   clk,
		Fetch:   fetch,
		Apply:   apply,
		Manager: mgr,
		Tables:  []TableConfig{{ID: "accounts", Period: 5}},
		Stats:   reg,
		OnSync:  log.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(21) // cycles at 0, 5, 10, 15, 20

	evs := log.all()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(evs), evs)
	}
	if evs[0].Kind != SnapshotSync || evs[0].Version != 100 {
		t.Fatalf("first event = %+v, want snapshot at version 100", evs[0])
	}
	for i, ev := range evs[1:] {
		if ev.Kind != DeltaSync {
			t.Fatalf("event %d = %+v, want delta", i+1, ev)
		}
		if ev.Bytes != 50*8 {
			t.Fatalf("delta bytes = %d, want %d (50 rows)", ev.Bytes, 50*8)
		}
	}
	if apply.snapshots != 1 || apply.deltas != 4 {
		t.Fatalf("applier saw %d snapshots, %d deltas; want 1, 4", apply.snapshots, apply.deltas)
	}

	// The Manager mirror: last sync at 20, upcoming syncs at 25, 30, ...
	st := mgr.StateFor("accounts", 21, 0)
	if st == nil || st.LastSync != 20 {
		t.Fatalf("StateFor last sync = %+v, want 20", st)
	}
	if len(st.NextSyncs) == 0 || st.NextSyncs[0] != 25 {
		t.Fatalf("StateFor next syncs = %v, want [25 ...]", st.NextSyncs)
	}
	if got := reg.Counter("syncs_total").Value(); got != 5 {
		t.Fatalf("syncs_total = %d, want 5", got)
	}
	if got := reg.Counter("delta_syncs_total").Value(); got != 4 {
		t.Fatalf("delta_syncs_total = %d, want 4", got)
	}
}

// SyncNow runs the initial pull synchronously (for server construction)
// and Start resumes one period later, not immediately.
func TestAgentSyncNowThenStart(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 0, rowBytes: 8}
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SyncNow("t"); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if len(st) != 1 || st[0].LastSync != 0 || !st[0].HaveSnapshot {
		t.Fatalf("status after SyncNow = %+v", st)
	}
	if clk.Pending() != 0 {
		t.Fatal("SyncNow must not arm timers")
	}
	a.Start()
	clk.RunUntil(9) // cycles at 4 and 8 only — not at 0 again
	if got := len(fetch.calls); got != 3 {
		t.Fatalf("fetch calls = %v, want snapshot + 2 deltas", fetch.calls)
	}
	if err := a.SyncNow("missing"); err == nil {
		t.Fatal("SyncNow of unknown table should error")
	}
}

// An open circuit breaker defers the cycle — no retry burst, no failure
// count — and the agent recovers on the next period once the site heals.
func TestAgentBreakerOpenDefers(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 1, rowBytes: 8}
	reg := metrics.NewRegistry()
	log := &eventLog{}
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 5}},
		Stats:  reg,
		OnSync: log.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(1) // initial snapshot lands

	fetch.mu.Lock()
	fetch.fail = fmt.Errorf("site 1: %w", &faults.OpenError{Key: "site-1"})
	fetch.mu.Unlock()
	clk.RunUntil(16) // cycles at 5, 10, 15 all deferred

	if got := reg.Counter("sync_deferred_total").Value(); got != 3 {
		t.Fatalf("sync_deferred_total = %d, want 3", got)
	}
	if got := reg.Counter("sync_errors_total").Value(); got != 0 {
		t.Fatalf("sync_errors_total = %d, want 0 (deferrals are not failures)", got)
	}

	fetch.mu.Lock()
	fetch.fail = nil
	fetch.mu.Unlock()
	clk.RunUntil(21) // cycle at 20 succeeds again
	evs := log.all()
	last := evs[len(evs)-1]
	if last.Kind != DeltaSync || last.At != 20 {
		t.Fatalf("post-heal event = %+v, want delta at 20", last)
	}
	for _, ev := range evs {
		if ev.Kind == DeferredSync && !strings.Contains(ev.Err.Error(), "site 1") {
			t.Fatalf("deferred event should carry the breaker error, got %v", ev.Err)
		}
	}
}

// A non-breaker failure counts as an error (not a deferral) and the cycle
// retries next period.
func TestAgentFetchErrorCounts(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 0, rowBytes: 8}
	fetch.fail = errors.New("connection reset")
	reg := metrics.NewRegistry()
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 5}},
		Stats:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(6)
	if got := reg.Counter("sync_errors_total").Value(); got != 2 {
		t.Fatalf("sync_errors_total = %d, want 2", got)
	}
	if got := reg.Counter("sync_deferred_total").Value(); got != 0 {
		t.Fatalf("sync_deferred_total = %d, want 0", got)
	}
}

// A Resync answer falls back to a full snapshot within the same cycle.
func TestAgentResyncFallsBackToSnapshot(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 1, rowBytes: 8}
	log := &eventLog{}
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 5}},
		OnSync: log.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(1)
	fetch.mu.Lock()
	fetch.forceSync = true
	fetch.mu.Unlock()
	clk.RunUntil(6)

	evs := log.all()
	if len(evs) != 2 || evs[1].Kind != SnapshotSync {
		t.Fatalf("events = %+v, want [snapshot snapshot] (resync fallback)", evs)
	}
	wantCalls := []string{"snapshot t", "delta t @10", "snapshot t"}
	if fmt.Sprint(fetch.calls) != fmt.Sprint(wantCalls) {
		t.Fatalf("fetch calls = %v, want %v", fetch.calls, wantCalls)
	}
}

// The bandwidth budget: a payload that overdraws the token bucket puts it
// into debt, and subsequent cycles defer until the debt refills — total
// bytes moved stay near the budget rate instead of the demand rate.
func TestAgentBandwidthBudgetDefers(t *testing.T) {
	clk := &scheduler.ManualClock{}
	// 80 bytes/min of demand (an 80-byte payload every 1-minute period)
	// against a 40 bytes/min budget with a small burst.
	fetch := &modelFetcher{clock: clk, baseRows: 0, rowsPerMin: 10, rowBytes: 8, fixedBytes: 80}
	reg := metrics.NewRegistry()
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 1}},
		Budget: 40,
		Burst:  40,
		Stats:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(100)

	moved := float64(reg.Counter("sync_bytes_total").Value())
	// ~40 bytes/min over 100 minutes, plus the initial burst and the one
	// payload the post-paid bucket lets overdraw.
	if moved > 40*100+40+80 {
		t.Fatalf("moved %v bytes, want ≤ budget × horizon + burst + payload", moved)
	}
	if moved < 3000 {
		t.Fatalf("moved only %v bytes; the budget should sustain ≈4000", moved)
	}
	if got := reg.Counter("sync_deferred_total").Value(); got == 0 {
		t.Fatal("over-budget demand should defer some cycles")
	}
	// The agent must not stall: syncs keep completing at the budget rate.
	if got := reg.Counter("syncs_total").Value(); got < 20 {
		t.Fatalf("syncs_total = %d, want a sustained cadence", got)
	}
}

// Stop orphans armed timers; nothing fires after it.
func TestAgentStop(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk, baseRows: 10, rowsPerMin: 0, rowBytes: 8}
	reg := metrics.NewRegistry()
	a, err := New(Config{
		Clock:  clk,
		Fetch:  fetch,
		Apply:  &countApplier{},
		Tables: []TableConfig{{ID: "t", Period: 5}},
		Stats:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	clk.RunUntil(6)
	a.Stop()
	before := reg.Counter("syncs_total").Value()
	clk.RunUntil(100)
	if got := reg.Counter("syncs_total").Value(); got != before {
		t.Fatalf("syncs after Stop: %d → %d", before, got)
	}
}

// Config validation rejects the unusable.
func TestAgentConfigValidation(t *testing.T) {
	clk := &scheduler.ManualClock{}
	fetch := &modelFetcher{clock: clk}
	apply := &countApplier{}
	cases := []Config{
		{Fetch: fetch, Apply: apply},                             // no clock
		{Clock: clk, Apply: apply},                               // no fetcher
		{Clock: clk, Fetch: fetch},                               // no applier
		{Clock: clk, Fetch: fetch, Apply: apply, Budget: -1},     // negative budget
		{Clock: clk, Fetch: fetch, Apply: apply, Adaptive: true}, // adaptive, no tables
		{Clock: clk, Fetch: fetch, Apply: apply,
			Tables: []TableConfig{{ID: "t", Period: 0}}}, // zero period
		{Clock: clk, Fetch: fetch, Apply: apply,
			Tables: []TableConfig{{ID: "t", Period: 1}, {ID: "t", Period: 2}}}, // dup
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}
