package replsync

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/replication"
	"ivdss/internal/scheduler"
)

// TableConfig is one replicated table's starting cadence.
type TableConfig struct {
	ID core.TableID
	// Period is the sync period in experiment minutes; must be positive.
	Period core.Duration
}

// Config wires an Agent.
type Config struct {
	// Clock is the time source; the agent never sleeps or reads wall time,
	// so a SimClock drives the identical code path as the live server's
	// scaled wall clock.
	Clock scheduler.Clock
	// Fetch obtains sync payloads; Apply installs them.
	Fetch Fetcher
	Apply Applier
	// Manager, when set, mirrors every completion (RecordSync) and the
	// upcoming cadence (Reschedule) so the planner's StateFor view matches
	// the replica store exactly. The caller registers the initial Tables;
	// the agent registers/unregisters tables it promotes/demotes.
	Manager *replication.Manager
	// Context roots fetches; cancelling it aborts in-flight pulls on
	// shutdown. Defaults to context.Background().
	Context context.Context
	// Tables is the initial replica set with starting periods.
	Tables []TableConfig

	// Budget is the global bandwidth budget in bytes per experiment
	// minute, shared by all tables; 0 means unlimited. The budget is a
	// token bucket: a sync whose payload overdraws it puts the bucket into
	// debt, and cycles defer until the debt refills rather than retrying.
	Budget float64
	// Burst caps accumulated budget. Default 5 minutes' worth.
	Burst float64
	// Bucket, when set, is the shared token bucket the agent charges
	// instead of building a private one from Budget/Burst — so other
	// byte movers (the federation engine's replica pre-warming) draw
	// from the same -sync-budget.
	Bucket *Bucket
	// MirrorSyncs is how many upcoming syncs are mirrored into the Manager
	// per table (the planner's delayed-execution lookahead). Default 4.
	MirrorSyncs int

	// Adaptive enables the cadence controller: every AdjustEvery minutes
	// the total sync rate (Σ 1/period, fixed at construction) is
	// re-divided across tables in proportion to the square root of each
	// table's decayed IV-loss-to-staleness, clamped to
	// [MinPeriod, MaxPeriod].
	Adaptive bool
	// AdjustEvery is the controller interval in experiment minutes.
	// Default 10.
	AdjustEvery core.Duration
	// MinPeriod / MaxPeriod clamp adaptive periods. Defaults: a quarter of
	// the fastest configured period, and four times the slowest.
	MinPeriod core.Duration
	MaxPeriod core.Duration
	// DecayHalfLife is the half-life of the loss accounting, so stale
	// demand fades. Default 2×AdjustEvery.
	DecayHalfLife core.Duration
	// Placer, when set (and Adaptive), is consulted every PlaceEvery
	// adjustments: tables it recommends that are not replicated are
	// promoted (snapshot first), replicated tables it omits are demoted.
	Placer Placer
	// PlaceEvery is how many adjustments pass between placement reviews.
	// Default 3.
	PlaceEvery int

	// Stats receives the agent's metrics; nil allocates a private registry.
	Stats *metrics.Registry
	// OnSync observes every sync event (completions, deferrals, failures),
	// invoked outside the agent lock.
	OnSync func(Event)
}

// tableState is one replicated table's live sync state.
type tableState struct {
	id           core.TableID
	period       core.Duration
	cursor       uint64
	haveSnapshot bool
	lastSync     core.Time // -1 before the first completed sync
	nextAt       core.Time // -1 when no cycle is armed
	gen          uint64    // invalidates armed timers on reschedule/demote
	syncing      bool      // a cycle is in flight (live mode)
}

// TableStatus is one table's sync state as reported by Status.
type TableStatus struct {
	Table        core.TableID
	Period       core.Duration
	Cursor       uint64
	LastSync     core.Time // -1: never synced
	NextAt       core.Time // -1: no cycle armed
	HaveSnapshot bool
}

// Agent runs the synchronization cycles. Construct with New; call SyncNow
// for synchronous initial pulls, Start to begin the periodic cycles, Stop
// to cease.
type Agent struct {
	cfg Config
	ctx context.Context

	mu      sync.Mutex
	tables  map[core.TableID]*tableState
	genSeq  uint64
	started bool
	stopped bool

	// bucket is the bandwidth budget; nil means unlimited.
	bucket *Bucket

	// rateBudget is Σ 1/period at construction — the total sync rate the
	// adaptive controller re-divides but never exceeds.
	rateBudget float64
	adjustGen  uint64
	losses     map[core.TableID]float64
	lossAt     core.Time
	placeLeft  int

	stats *metrics.Registry
}

// New validates the config and returns an Agent. No cycles run until
// SyncNow or Start.
func New(cfg Config) (*Agent, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("replsync: config needs a Clock")
	}
	if cfg.Fetch == nil {
		return nil, fmt.Errorf("replsync: config needs a Fetcher")
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("replsync: config needs an Applier")
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("replsync: negative bandwidth budget %g", cfg.Budget)
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	if cfg.MirrorSyncs == 0 {
		cfg.MirrorSyncs = 4
	}
	if cfg.AdjustEvery == 0 {
		cfg.AdjustEvery = 10
	}
	if cfg.AdjustEvery < 0 {
		return nil, fmt.Errorf("replsync: negative adjust interval %v", cfg.AdjustEvery)
	}
	if cfg.DecayHalfLife == 0 {
		cfg.DecayHalfLife = 2 * cfg.AdjustEvery
	}
	if cfg.PlaceEvery == 0 {
		cfg.PlaceEvery = 3
	}
	if cfg.Stats == nil {
		cfg.Stats = metrics.NewRegistry()
	}

	a := &Agent{
		cfg:    cfg,
		ctx:    cfg.Context,
		tables: make(map[core.TableID]*tableState, len(cfg.Tables)),
		losses: make(map[core.TableID]float64),
		stats:  cfg.Stats,
	}
	minP, maxP := core.Duration(math.Inf(1)), core.Duration(0)
	for _, tc := range cfg.Tables {
		if tc.ID == "" {
			return nil, fmt.Errorf("replsync: empty table ID")
		}
		if tc.Period <= 0 {
			return nil, fmt.Errorf("replsync: table %s: period %v must be positive", tc.ID, tc.Period)
		}
		if _, ok := a.tables[tc.ID]; ok {
			return nil, fmt.Errorf("replsync: table %s configured twice", tc.ID)
		}
		a.tables[tc.ID] = &tableState{id: tc.ID, period: tc.Period, lastSync: -1, nextAt: -1}
		a.rateBudget += 1 / float64(tc.Period)
		minP = math.Min(minP, tc.Period)
		maxP = math.Max(maxP, tc.Period)
	}
	if a.cfg.MinPeriod == 0 && len(cfg.Tables) > 0 {
		a.cfg.MinPeriod = minP / 4
	}
	if a.cfg.MaxPeriod == 0 && len(cfg.Tables) > 0 {
		a.cfg.MaxPeriod = maxP * 4
	}
	if a.cfg.Adaptive {
		if len(cfg.Tables) == 0 {
			return nil, fmt.Errorf("replsync: adaptive cadence needs at least one table")
		}
		if a.cfg.MinPeriod <= 0 || a.cfg.MaxPeriod < a.cfg.MinPeriod {
			return nil, fmt.Errorf("replsync: invalid period clamp [%v, %v]", a.cfg.MinPeriod, a.cfg.MaxPeriod)
		}
	}
	a.bucket = cfg.Bucket
	if a.bucket == nil && cfg.Budget > 0 {
		b, err := NewBucket(cfg.Clock, cfg.Budget, cfg.Burst)
		if err != nil {
			return nil, err
		}
		a.bucket = b
	}
	a.lossAt = cfg.Clock.Now()
	a.placeLeft = a.cfg.PlaceEvery

	// Pre-create the counters so a metrics dump shows zeros before the
	// first cycle.
	for _, name := range []string{
		"syncs_total", "snapshot_syncs_total", "delta_syncs_total",
		"sync_bytes_total", "sync_deferred_total", "sync_errors_total",
		"cadence_adjustments_total", "replicas_promoted_total", "replicas_demoted_total",
		"views_materialized_total", "view_delta_rows_total",
		"view_delta_bytes_total", "view_refresh_deferred_total",
	} {
		a.stats.Counter(name) //lint:allow metriccheck(pre-creation loop over the literal names listed just above)
	}
	return a, nil
}

// Tables returns the currently replicated table IDs, sorted.
func (a *Agent) Tables() []core.TableID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tablesLocked()
}

func (a *Agent) tablesLocked() []core.TableID {
	ids := make([]core.TableID, 0, len(a.tables))
	for id := range a.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Status reports every table's sync state, sorted by table ID.
func (a *Agent) Status() []TableStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TableStatus, 0, len(a.tables))
	for _, id := range a.tablesLocked() {
		ts := a.tables[id]
		out = append(out, TableStatus{
			Table:        ts.id,
			Period:       ts.period,
			Cursor:       ts.cursor,
			LastSync:     ts.lastSync,
			NextAt:       ts.nextAt,
			HaveSnapshot: ts.haveSnapshot,
		})
	}
	return out
}

// RefreshStaleness updates the per-table replica_staleness_seconds gauges
// to the current instant (staleness in experiment seconds). Called before
// metric dumps; sync completions also reset their table's gauge.
func (a *Agent) RefreshStaleness() {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Clock.Now()
	for _, id := range a.tablesLocked() {
		if ts := a.tables[id]; ts.lastSync >= 0 {
			//lint:allow metriccheck(per-table gauge family, bounded by the replication plan)
			a.stats.Gauge(stalenessGauge(id)).Set(float64(now-ts.lastSync) * 60)
		}
	}
}

// stalenessGauge is the per-unit staleness metric name: replicas report
// under replica_staleness_seconds_<table>, materialized views under
// view_staleness_seconds_<view>.
func stalenessGauge(id core.TableID) string {
	if vid, ok := core.ViewOfUnit(id); ok {
		return "view_staleness_seconds_" + string(vid)
	}
	return "replica_staleness_seconds_" + string(id)
}

// countViewDeferral bumps the view deferral counter when the deferred unit
// is a materialized view.
func (a *Agent) countViewDeferral(id core.TableID) {
	if _, ok := core.ViewOfUnit(id); ok {
		a.stats.Counter("view_refresh_deferred_total").Inc()
	}
}

// SyncNow runs one synchronous cycle for the table — the initial snapshot
// pull at registration. It does not arm a timer; Start does.
func (a *Agent) SyncNow(id core.TableID) error {
	a.mu.Lock()
	ts, ok := a.tables[id]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("replsync: table %s not replicated", id)
	}
	if a.stopped {
		a.mu.Unlock()
		return fmt.Errorf("replsync: agent stopped")
	}
	if ts.syncing {
		a.mu.Unlock()
		return fmt.Errorf("replsync: table %s already syncing", id)
	}
	ts.syncing = true
	gen, cursor, have := ts.gen, ts.cursor, ts.haveSnapshot
	a.mu.Unlock()
	ev := a.perform(id, gen, cursor, have, false)
	a.emit(ev)
	return ev.Err
}

// Start arms the periodic cycles (and, when Adaptive, the cadence
// controller). Tables never synced are pulled immediately; tables with a
// completed SyncNow resume one period after it.
func (a *Agent) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started || a.stopped {
		return
	}
	a.started = true
	now := a.cfg.Clock.Now()
	for _, id := range a.tablesLocked() {
		ts := a.tables[id]
		delay := core.Duration(0)
		if ts.lastSync >= 0 {
			delay = math.Max(0, float64(ts.lastSync)+ts.period-float64(now))
		}
		a.armLocked(ts, now, delay)
	}
	if a.cfg.Adaptive {
		a.armAdjustLocked()
	}
}

// Stop ceases all cycles. Armed timers become no-ops; an in-flight fetch
// completes but its result is discarded.
func (a *Agent) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
}

// armLocked schedules the table's next cycle `delay` minutes from `now`.
func (a *Agent) armLocked(ts *tableState, now core.Time, delay core.Duration) {
	if !a.started || a.stopped {
		return
	}
	ts.nextAt = now + math.Max(delay, 0)
	id, gen := ts.id, ts.gen
	a.cfg.Clock.AfterFunc(delay, func() { a.tick(id, gen) })
}

// tick runs one scheduled cycle: budget check, then fetch/apply.
func (a *Agent) tick(id core.TableID, gen uint64) {
	a.mu.Lock()
	ts, ok := a.tables[id]
	if !ok || a.stopped || ts.gen != gen || ts.syncing {
		a.mu.Unlock()
		return
	}
	now := a.cfg.Clock.Now()
	if debt := a.bucket.Debt(); debt > 0 {
		// The bucket is in debt from an earlier payload: defer until it
		// refills instead of overdrawing further. The deferral is a cycle
		// outcome, not a retry loop.
		wait := debt / a.bucket.Rate()
		a.stats.Counter("sync_deferred_total").Inc()
		a.countViewDeferral(id)
		ev := Event{Table: id, At: now, Kind: DeferredSync,
			Err: fmt.Errorf("replsync: bandwidth budget exhausted (debt %.0f bytes)", debt)}
		a.armLocked(ts, now, wait*1.0001+1e-9)
		a.mu.Unlock()
		a.emit(ev)
		return
	}
	ts.syncing = true
	cursor, have := ts.cursor, ts.haveSnapshot
	a.mu.Unlock()
	ev := a.perform(id, gen, cursor, have, true)
	a.emit(ev)
}

// perform fetches and applies one cycle's payload, updates cursors,
// budget, metrics, and the Manager mirror, and (when rearm) schedules the
// next cycle. It returns the cycle's Event.
func (a *Agent) perform(id core.TableID, gen uint64, cursor uint64, have, rearm bool) Event {
	var (
		snap    Snapshot
		delta   Delta
		asSnap  bool
		bytes   int64
		version uint64
		err     error
	)
	if !have {
		asSnap = true
		snap, err = a.cfg.Fetch.Snapshot(a.ctx, id)
	} else {
		delta, err = a.cfg.Fetch.Delta(a.ctx, id, cursor)
		if err == nil && delta.Resync {
			// The site cannot serve our cursor (history lost): fall back to
			// a full snapshot within the same cycle.
			asSnap = true
			snap, err = a.cfg.Fetch.Snapshot(a.ctx, id)
		}
	}
	if err == nil {
		if asSnap {
			bytes, version = snap.Bytes, snap.Version
		} else {
			bytes, version = delta.Bytes, delta.Version
		}
	}

	a.mu.Lock()
	ts, ok := a.tables[id]
	if !ok || a.stopped || ts.gen != gen {
		// Demoted or stopped while the fetch was in flight: discard.
		if ok {
			ts.syncing = false
		}
		a.mu.Unlock()
		return Event{Table: id, At: a.cfg.Clock.Now(), Kind: FailedSync,
			Err: fmt.Errorf("replsync: table %s cycle superseded", id)}
	}
	ts.syncing = false
	now := a.cfg.Clock.Now()

	if err == nil {
		// Apply atomically (the applier owns the replica store's lock)
		// and stamp the manager mirror with the same instant, so the
		// planner's freshness view and the store agree exactly.
		if asSnap {
			err = a.cfg.Apply.ApplySnapshot(id, snap, now)
		} else {
			err = a.cfg.Apply.ApplyDelta(id, delta, now)
		}
	}
	if err != nil {
		kind := FailedSync
		if deferrable(err) {
			// The site's circuit breaker is open: no bytes moved and no
			// retries burned. Push the cycle back one period; once the
			// breaker half-opens, the next cycle doubles as its probe.
			kind = DeferredSync
			a.stats.Counter("sync_deferred_total").Inc()
			a.countViewDeferral(id)
		} else {
			a.stats.Counter("sync_errors_total").Inc()
		}
		if rearm {
			a.armLocked(ts, now, ts.period)
		}
		a.mu.Unlock()
		return Event{Table: id, At: now, Kind: kind, Err: err}
	}

	ts.cursor = version
	ts.haveSnapshot = true
	ts.lastSync = now
	a.bucket.Charge(bytes)
	a.stats.Counter("syncs_total").Inc()
	a.stats.Counter("sync_bytes_total").Add(bytes)
	if asSnap {
		a.stats.Counter("snapshot_syncs_total").Inc()
	} else {
		a.stats.Counter("delta_syncs_total").Inc()
	}
	if _, isView := core.ViewOfUnit(id); isView {
		if asSnap {
			a.stats.Counter("views_materialized_total").Inc()
		} else {
			a.stats.Counter("view_delta_rows_total").Add(int64(len(delta.Rows)))
			a.stats.Counter("view_delta_bytes_total").Add(bytes)
		}
	}
	a.stats.Gauge(stalenessGauge(id)).Set(0) //lint:allow metriccheck(per-table gauge family, bounded by the replication plan)
	if rearm {
		a.armLocked(ts, now, ts.period)
	}
	a.mirrorLocked(ts, now)
	a.mu.Unlock()

	kind := DeltaSync
	if asSnap {
		kind = SnapshotSync
	}
	return Event{Table: id, At: now, Kind: kind, Bytes: bytes, Version: version}
}

// mirrorLocked records the completion and the upcoming cadence in the
// replication manager, so StateFor tracks the live schedule.
func (a *Agent) mirrorLocked(ts *tableState, at core.Time) {
	mgr := a.cfg.Manager
	if mgr == nil {
		return
	}
	if err := mgr.RecordSync(ts.id, at); err != nil {
		return // e.g. unregistered concurrently; nothing to mirror
	}
	future := make([]core.Time, a.cfg.MirrorSyncs)
	next := at + ts.period
	if ts.nextAt > at {
		next = ts.nextAt
	}
	for i := range future {
		future[i] = next + core.Time(i)*ts.period
	}
	_ = mgr.Reschedule(ts.id, future)
}

// emit hands the event to the observer, outside the agent lock.
func (a *Agent) emit(ev Event) {
	if a.cfg.OnSync != nil {
		a.cfg.OnSync(ev)
	}
}
