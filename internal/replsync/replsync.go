// Package replsync is the live replication engine: it actually moves
// replica data on synchronization cycles and adapts the cadence to the
// information value the workload is losing to staleness.
//
// The split of responsibilities:
//
//   - A Fetcher obtains sync payloads — a full snapshot on a replica's
//     first cycle, cursor-based deltas thereafter (base tables are
//     append-only, so the row count is a complete change cursor). The live
//     server's fetcher speaks netproto through the fault-tolerance stack;
//     benchmarks plug in a byte-accurate model so the DES exercises the
//     identical engine.
//   - An Applier installs payloads atomically into the replica store and
//     is the only party that touches replica data.
//   - The Agent owns the cycles: per-table periods, a global bandwidth
//     budget (token bucket over experiment time), deferral instead of
//     retries when a circuit breaker is open, and mirroring every
//     completion and upcoming sync into replication.Manager so the
//     planner's StateFor view stays exact.
//   - The adaptive cadence controller (cadence.go) re-divides the total
//     sync rate across tables in proportion to each table's measured
//     IV-loss-to-staleness, and periodically asks a Placer whether the
//     replica set itself should change (online promotion/demotion).
//
// The Agent is parameterized over scheduler.Clock, so the DES simulator
// drives the same code path as the wall-clock server.
package replsync

import (
	"context"
	"errors"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/relation"
)

// Snapshot is a full-copy sync payload.
type Snapshot struct {
	// Table is the replica contents; model fetchers may leave it nil when
	// only the traffic accounting matters (the Applier must tolerate it).
	Table *relation.Table
	// Version is the base table's change cursor at the snapshot instant.
	Version uint64
	// Bytes is the payload size charged against the bandwidth budget.
	Bytes int64
}

// Delta is an incremental sync payload: the rows appended between the
// caller's cursor and Version.
type Delta struct {
	Rows    []relation.Row
	Version uint64
	Bytes   int64
	// Resync means the cursor could not be served (the site lost history);
	// the agent falls back to a full snapshot.
	Resync bool
}

// Fetcher obtains sync payloads for one table.
type Fetcher interface {
	Snapshot(ctx context.Context, table core.TableID) (Snapshot, error)
	Delta(ctx context.Context, table core.TableID, cursor uint64) (Delta, error)
}

// Applier installs fetched payloads into the replica store. Installations
// must be atomic with respect to concurrent readers; `at` is the
// experiment-time freshness stamp of the new contents. Implementations
// must not call back into the Agent.
type Applier interface {
	ApplySnapshot(table core.TableID, snap Snapshot, at core.Time) error
	ApplyDelta(table core.TableID, delta Delta, at core.Time) error
	// Drop discards a replica on demotion.
	Drop(table core.TableID)
}

// Placer recommends the replica set, consulted by the cadence controller
// at placement-review ticks. Returning the current set (or an empty set)
// means no change. The live server implements it with internal/advisor
// over its recent query window.
type Placer interface {
	Recommend(current []core.TableID) ([]core.TableID, error)
}

// SyncKind classifies one sync event.
type SyncKind int

const (
	// SnapshotSync moved a full copy.
	SnapshotSync SyncKind = iota + 1
	// DeltaSync moved an appended-rows delta.
	DeltaSync
	// DeferredSync moved nothing: the site's breaker was open or the
	// bandwidth budget was exhausted, and the cycle was pushed back rather
	// than retried.
	DeferredSync
	// FailedSync moved nothing because the fetch or apply errored.
	FailedSync
)

// String names the kind.
func (k SyncKind) String() string {
	switch k {
	case SnapshotSync:
		return "snapshot"
	case DeltaSync:
		return "delta"
	case DeferredSync:
		return "deferred"
	case FailedSync:
		return "failed"
	default:
		return "unknown"
	}
}

// Event records one sync cycle's outcome, for observers and tests.
type Event struct {
	Table   core.TableID
	At      core.Time
	Kind    SyncKind
	Bytes   int64
	Version uint64
	// Err carries the deferral or failure cause for DeferredSync and
	// FailedSync events.
	Err error
}

// deferrable reports whether err is a "site temporarily refusing work"
// condition — an open circuit breaker — that should defer the cycle
// instead of counting as a sync failure.
func deferrable(err error) bool {
	var open *faults.OpenError
	return errors.As(err, &open)
}
