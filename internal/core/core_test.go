package core

import (
	"math"
	"testing"
	"time"
)

func TestInformationValue(t *testing.T) {
	tests := []struct {
		name  string
		bv    float64
		lat   Latencies
		rates DiscountRates
		want  float64
	}{
		{"zero latencies keep full value", 1, Latencies{}, DiscountRates{CL: .1, SL: .1}, 1},
		{"paper figure 4 scatter seed", 1, Latencies{CL: 10, SL: 10}, DiscountRates{CL: .1, SL: .1}, math.Pow(.9, 20)},
		{"only CL discounts", 2, Latencies{CL: 3}, DiscountRates{CL: .5}, 2 * math.Pow(.5, 3)},
		{"only SL discounts", 2, Latencies{SL: 3}, DiscountRates{SL: .5}, 2 * math.Pow(.5, 3)},
		{"zero rates never decay", 5, Latencies{CL: 100, SL: 100}, DiscountRates{}, 5},
		{"zero business value", 0, Latencies{CL: 1, SL: 1}, DiscountRates{CL: .1, SL: .1}, 0},
		{"negative latency clamps to zero", 1, Latencies{CL: -5, SL: -5}, DiscountRates{CL: .1, SL: .1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := InformationValue(tt.bv, tt.lat, tt.rates)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("InformationValue = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInformationValueMonotoneInLatency(t *testing.T) {
	rates := DiscountRates{CL: .05, SL: .05}
	prev := math.Inf(1)
	for cl := 0.0; cl <= 50; cl += 5 {
		v := InformationValue(1, Latencies{CL: cl, SL: 10}, rates)
		if v > prev {
			t.Fatalf("IV increased with CL at %v", cl)
		}
		prev = v
	}
}

func TestToleratedCL(t *testing.T) {
	rates := DiscountRates{CL: .1, SL: .1}
	// Paper: IV = 0.9^20 tolerates exactly CL = 20 at zero SL.
	opt := math.Pow(.9, 20)
	if got := ToleratedCL(1, opt, rates); math.Abs(got-20) > 1e-9 {
		t.Errorf("ToleratedCL = %v, want 20", got)
	}
	if got := ToleratedCL(1, 1, rates); got != 0 {
		t.Errorf("target at full value should tolerate 0, got %v", got)
	}
	if got := ToleratedCL(1, .5, DiscountRates{}); !math.IsInf(got, 1) {
		t.Errorf("zero λCL should tolerate infinity, got %v", got)
	}
	if got := ToleratedCL(1, 0, rates); !math.IsInf(got, 1) {
		t.Errorf("zero target should tolerate infinity, got %v", got)
	}
}

func TestToleratedCLRoundTrip(t *testing.T) {
	rates := DiscountRates{CL: .05}
	for _, target := range []float64{.9, .5, .1, .01} {
		b := ToleratedCL(1, target, rates)
		back := InformationValue(1, Latencies{CL: b}, rates)
		if math.Abs(back-target) > 1e-9 {
			t.Errorf("target %v: IV at bound = %v", target, back)
		}
	}
}

func TestDiscountRatesValidate(t *testing.T) {
	tests := []struct {
		name    string
		rates   DiscountRates
		wantErr bool
	}{
		{"zero rates valid", DiscountRates{}, false},
		{"typical", DiscountRates{CL: .01, SL: .05}, false},
		{"negative CL", DiscountRates{CL: -.1}, true},
		{"SL of one", DiscountRates{SL: 1}, true},
		{"NaN", DiscountRates{CL: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.rates.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestQueryValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       Query
		wantErr bool
	}{
		{"valid", Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: 1}, false},
		{"empty id", Query{Tables: []TableID{"a"}}, true},
		{"no tables", Query{ID: "q"}, true},
		{"duplicate tables", Query{ID: "q", Tables: []TableID{"a", "a"}}, true},
		{"negative value", Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: -1}, true},
		{"NaN value", Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.q.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTableStateValidate(t *testing.T) {
	good := TableState{ID: "t", Site: 1, Replica: &ReplicaState{LastSync: 5, NextSyncs: []Time{7, 9}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	bad := TableState{ID: "t", Replica: &ReplicaState{LastSync: 5, NextSyncs: []Time{4}}}
	if err := bad.Validate(); err == nil {
		t.Error("next sync before last sync accepted")
	}
	if err := (TableState{}).Validate(); err == nil {
		t.Error("empty ID accepted")
	}
}

func TestTimeConversionRoundTrip(t *testing.T) {
	epoch := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	wall := epoch.Add(90 * time.Second)
	vt := TimeOf(wall, epoch)
	if math.Abs(vt-1.5) > 1e-9 {
		t.Errorf("TimeOf = %v, want 1.5 minutes", vt)
	}
	back := WallClockOf(vt, epoch)
	if !back.Equal(wall) {
		t.Errorf("round trip: %v != %v", back, wall)
	}
}

func TestPlanLatenciesAllBase(t *testing.T) {
	// Pure remote plan with no queue: SL equals CL (paper, Figure 1).
	q := Query{ID: "q", Tables: []TableID{"a", "b"}, BusinessValue: 1, SubmitAt: 11}
	plan := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "a", Site: 1, Kind: AccessBase},
			{Table: "b", Site: 2, Kind: AccessBase},
		},
		Start: 11,
		Cost:  CostEstimate{Process: 8, Transmit: 2},
	}
	lat := plan.Latencies()
	if lat.CL != 10 || lat.SL != 10 {
		t.Errorf("latencies = %+v, want CL=SL=10", lat)
	}
}

func TestPlanLatenciesAllReplica(t *testing.T) {
	q := Query{ID: "q", Tables: []TableID{"a", "b"}, BusinessValue: 1, SubmitAt: 11}
	plan := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "a", Kind: AccessReplica, Freshness: 4},
			{Table: "b", Kind: AccessReplica, Freshness: 8},
		},
		Start: 11,
		Cost:  CostEstimate{Process: 2},
	}
	lat := plan.Latencies()
	if lat.CL != 2 {
		t.Errorf("CL = %v, want 2", lat.CL)
	}
	// SL governed by the earliest-synchronized replica: 13 − 4 = 9.
	if lat.SL != 9 {
		t.Errorf("SL = %v, want 9", lat.SL)
	}
}

func TestPlanLatenciesDelayedPlanPaysCL(t *testing.T) {
	// Figure 2: delaying until a future sync adds CL but can cut SL.
	q := Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: 1, SubmitAt: 10}
	delayed := Plan{
		Query:  q,
		Access: []TableAccess{{Table: "a", Kind: AccessReplica, Freshness: 15}},
		Start:  15,
		Cost:   CostEstimate{Process: 2},
	}
	lat := delayed.Latencies()
	if lat.CL != 7 { // waited 5 + processed 2
		t.Errorf("CL = %v, want 7", lat.CL)
	}
	if lat.SL != 2 { // result at 17, freshness 15
		t.Errorf("SL = %v, want 2", lat.SL)
	}
}

func TestPlanLatenciesQueueCountsTowardCL(t *testing.T) {
	q := Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: 1, SubmitAt: 0}
	plan := Plan{
		Query:  q,
		Access: []TableAccess{{Table: "a", Site: 1, Kind: AccessBase}},
		Start:  0,
		Cost:   CostEstimate{Queue: 3, Process: 4, Transmit: 1},
	}
	lat := plan.Latencies()
	if lat.CL != 8 {
		t.Errorf("CL = %v, want 8 (queue+process+transmit)", lat.CL)
	}
	// Base table is fresh as of processing start (t=3); result at 8.
	if lat.SL != 5 {
		t.Errorf("SL = %v, want 5", lat.SL)
	}
}

func TestPlanHelpers(t *testing.T) {
	q := Query{ID: "q", Tables: []TableID{"a", "b", "c"}, BusinessValue: 1}
	plan := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "a", Site: 2, Kind: AccessBase},
			{Table: "b", Site: 1, Kind: AccessReplica, Freshness: 3},
			{Table: "c", Site: 2, Kind: AccessBase},
		},
		Start: 5,
	}
	bases := plan.BaseTables()
	if len(bases) != 2 || bases[0] != "a" || bases[1] != "c" {
		t.Errorf("BaseTables = %v", bases)
	}
	sites := plan.RemoteSites()
	if len(sites) != 1 || sites[0] != 2 {
		t.Errorf("RemoteSites = %v", sites)
	}
	sig := plan.Signature()
	want := "a=base b=replica@3.0 c=base start=5.0"
	if sig != want {
		t.Errorf("Signature = %q, want %q", sig, want)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessBase.String() != "base" || AccessReplica.String() != "replica" {
		t.Error("unexpected AccessKind strings")
	}
	if AccessKind(99).String() != "AccessKind(99)" {
		t.Error("unexpected fallback string")
	}
}

func TestAgingBoost(t *testing.T) {
	var off Aging
	if off.Enabled() || off.Boost(100) != 0 {
		t.Error("zero Aging should be disabled")
	}
	a := Aging{Coefficient: .01, Exponent: 2}
	if got := a.Boost(3); math.Abs(got-.01*9) > 1e-12 {
		t.Errorf("Boost = %v, want 0.09", got)
	}
	if got := a.Boost(0); got != 0 {
		t.Errorf("Boost at zero wait = %v, want 0", got)
	}
	if got := a.EffectiveValue(.5, 3); math.Abs(got-.59) > 1e-12 {
		t.Errorf("EffectiveValue = %v, want 0.59", got)
	}
}

func TestAgingDefaultExponent(t *testing.T) {
	a := Aging{Coefficient: 1}
	if got, want := a.Boost(4), math.Pow(4, DefaultAgingExponent); math.Abs(got-want) > 1e-12 {
		t.Errorf("Boost = %v, want %v", got, want)
	}
}

func TestAgingValidate(t *testing.T) {
	tests := []struct {
		name    string
		a       Aging
		wantErr bool
	}{
		{"zero ok", Aging{}, false},
		{"typical", Aging{Coefficient: .01, Exponent: 1.5}, false},
		{"negative coefficient", Aging{Coefficient: -1}, true},
		{"sublinear exponent", Aging{Coefficient: 1, Exponent: .5}, true},
		{"exponent exactly one", Aging{Coefficient: 1, Exponent: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.a.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestAgingOutgrowsDiscount checks the design requirement from Section 3.3:
// the boost must grow faster than the discounts erode value, so that a
// waiting query eventually outranks any fresh arrival.
func TestAgingOutgrowsDiscount(t *testing.T) {
	a := Aging{Coefficient: .001, Exponent: 1.5}
	rates := DiscountRates{CL: .05, SL: .05}
	crossed := false
	for wait := 1.0; wait <= 10000; wait *= 2 {
		iv := InformationValue(1, Latencies{CL: wait, SL: wait}, rates)
		if a.EffectiveValue(iv, wait) > 1 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("aging boost never overtook the discount")
	}
}
