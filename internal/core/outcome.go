package core

// Outcome records how one query fared under a schedule. It is shared by
// every scheduling driver — the discrete-event dispatcher, the wall-clock
// DSS server, and the workload evaluator — so their results compare
// field-for-field.
type Outcome struct {
	Query     Query
	Plan      Plan
	Latencies Latencies
	Value     float64  // information value of the report
	Wait      Duration // submission to plan release
	// Expired marks a query dropped because its value horizon passed before
	// it could be dispatched: no plan ran, Value is zero, and Wait records
	// how long it sat in the queue before being shed.
	Expired bool
	// Err marks a query dropped because planning it failed at dispatch time
	// (only on drivers that do not halt on plan errors).
	Err error
}
