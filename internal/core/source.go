package core

import (
	"fmt"
	"strings"
)

// The data-source abstraction: every way a plan can answer one table
// access — the remote base table, a synchronized local replica, or an
// incrementally maintained materialized view — implements DataSource, and
// the planner enumerates plans over sources rather than branching on the
// {base, replica} pair. Replicas and views share their versioning model
// (a last completed synchronization plus scheduled future completions),
// so both wrap the same timeline arithmetic.

// ViewID names a materialized view.
type ViewID string

// viewUnitPrefix namespaces views inside the TableID space so the sync
// agent, replication manager, and placement advisor treat a view as just
// another synchronized unit.
const viewUnitPrefix = "view:"

// ViewUnit returns the namespaced unit ID a view synchronizes under.
func ViewUnit(id ViewID) TableID { return TableID(viewUnitPrefix + string(id)) }

// ViewOfUnit reports whether a unit ID names a view, and which.
func ViewOfUnit(t TableID) (ViewID, bool) {
	if rest, ok := strings.CutPrefix(string(t), viewUnitPrefix); ok {
		return ViewID(rest), true
	}
	return "", false
}

// ViewState is the planner's snapshot of one materialized view: which
// query it answers and its synchronization timeline, shaped exactly like a
// replica's.
type ViewState struct {
	ID ViewID
	// QueryID is the query whose full answer the view materializes; the
	// planner offers the view only to that query.
	QueryID   string
	LastSync  Time
	NextSyncs []Time
}

// ViewDef ties a view to its defining SQL. The catalog registers
// definitions; ViewStates are derived from the replication manager's state
// for the view's unit.
type ViewDef struct {
	ID      ViewID
	QueryID string
	// Table is the single base table the view is maintained over.
	Table TableID
	SQL   string
}

// Validate checks the definition's identifiers.
func (d ViewDef) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("core: view definition with empty ID")
	}
	if d.QueryID == "" {
		return fmt.Errorf("core: view %s has no query ID", d.ID)
	}
	if d.Table == "" {
		return fmt.Errorf("core: view %s has no base table", d.ID)
	}
	if d.SQL == "" {
		return fmt.Errorf("core: view %s has no SQL", d.ID)
	}
	return nil
}

// DataSource is one way to answer a table access. Implementations are
// immutable snapshots taken at planning time.
type DataSource interface {
	// Kind is the access kind plans built from this source carry.
	Kind() AccessKind
	// VersionAt returns the freshness timestamp of the newest version
	// available at t, and whether one exists. Base tables are always
	// current; replicas and views have the versions their sync timelines
	// say they have.
	VersionAt(t Time) (Time, bool)
	// EarliestAt returns the earliest instant ≥ now at which any version
	// exists (now itself when one already does).
	EarliestAt(now Time) (Time, bool)
	// EventsWithin lists the future version-completion times in
	// (after, until], ascending.
	EventsWithin(after, until Time) []Time
	// Access builds the plan's table access for the version with
	// freshness v.
	Access(v Time) TableAccess
}

// BaseSource is the authoritative remote base table.
type BaseSource struct {
	Table TableID
	Site  SiteID
}

// Kind returns AccessBase.
func (s BaseSource) Kind() AccessKind { return AccessBase }

// VersionAt reports the base table current at every instant.
func (s BaseSource) VersionAt(t Time) (Time, bool) { return t, true }

// EarliestAt reports the base table available immediately.
func (s BaseSource) EarliestAt(now Time) (Time, bool) { return now, true }

// EventsWithin returns nothing: the base table has no sync timeline.
func (s BaseSource) EventsWithin(after, until Time) []Time { return nil }

// Access builds a base access; base freshness is derived at evaluation
// time, so v is ignored.
func (s BaseSource) Access(Time) TableAccess {
	return TableAccess{Table: s.Table, Site: s.Site, Kind: AccessBase}
}

// ReplicaSource is a synchronized local replica.
type ReplicaSource struct {
	Table TableID
	Site  SiteID // site of the base table the replica mirrors
	State *ReplicaState
}

// Kind returns AccessReplica.
func (s ReplicaSource) Kind() AccessKind { return AccessReplica }

// VersionAt returns the newest replica version synchronized at or before t.
func (s ReplicaSource) VersionAt(t Time) (Time, bool) { return replicaVersionAt(s.State, t) }

// EarliestAt returns the earliest instant ≥ now a replica version exists.
func (s ReplicaSource) EarliestAt(now Time) (Time, bool) { return earliestReplicaAt(s.State, now) }

// EventsWithin lists the replica's scheduled completions in (after, until].
func (s ReplicaSource) EventsWithin(after, until Time) []Time {
	if s.State == nil {
		return nil
	}
	return eventsWithin(s.State.NextSyncs, after, until)
}

// Access builds a replica access at version v.
func (s ReplicaSource) Access(v Time) TableAccess {
	return TableAccess{Table: s.Table, Site: s.Site, Kind: AccessReplica, Freshness: v}
}

// ViewSource is an incrementally maintained materialized view covering one
// query over the table.
type ViewSource struct {
	Table TableID
	Site  SiteID // site of the base table the view is maintained over
	State ViewState
}

// Kind returns AccessView.
func (s ViewSource) Kind() AccessKind { return AccessView }

// VersionAt returns the newest view version refreshed at or before t.
func (s ViewSource) VersionAt(t Time) (Time, bool) {
	rs := ReplicaState{LastSync: s.State.LastSync, NextSyncs: s.State.NextSyncs}
	return replicaVersionAt(&rs, t)
}

// EarliestAt returns the earliest instant ≥ now a view version exists.
func (s ViewSource) EarliestAt(now Time) (Time, bool) {
	rs := ReplicaState{LastSync: s.State.LastSync, NextSyncs: s.State.NextSyncs}
	return earliestReplicaAt(&rs, now)
}

// EventsWithin lists the view's scheduled refresh completions in
// (after, until].
func (s ViewSource) EventsWithin(after, until Time) []Time {
	return eventsWithin(s.State.NextSyncs, after, until)
}

// Access builds a view access at version v.
func (s ViewSource) Access(v Time) TableAccess {
	return TableAccess{Table: s.Table, Site: s.Site, Kind: AccessView, Freshness: v, View: s.State.ID}
}

// eventsWithin filters an ascending timeline to (after, until].
func eventsWithin(times []Time, after, until Time) []Time {
	var out []Time
	for _, n := range times {
		if n > after && n <= until {
			out = append(out, n)
		}
	}
	return out
}

// Sources enumerates the table's data sources usable by query q, in
// canonical order: the base table, the replica (when one is registered),
// then every view covering q (snapshot order, which the catalog keeps
// sorted by ViewID). BaseDown filtering is the planner's job: the base
// source is always listed so callers see the full registry.
func (ts TableState) Sources(q Query) []DataSource {
	out := []DataSource{BaseSource{Table: ts.ID, Site: ts.Site}}
	if ts.Replica != nil {
		out = append(out, ReplicaSource{Table: ts.ID, Site: ts.Site, State: ts.Replica})
	}
	for _, vs := range ts.Views {
		if vs.QueryID == q.ID {
			out = append(out, ViewSource{Table: ts.ID, Site: ts.Site, State: vs})
		}
	}
	return out
}

// LocalSources lists the sources served from the DSS itself — everything
// except the base table. These are the fallbacks a BaseDown table can
// degrade to and the units the sync agent maintains.
func (ts TableState) LocalSources(q Query) []DataSource {
	var out []DataSource
	for _, s := range ts.Sources(q) {
		if s.Kind() != AccessBase {
			out = append(out, s)
		}
	}
	return out
}

// bestLocalAt picks the freshest local version available at t across the
// given sources; on a freshness tie the earlier-listed source wins (the
// replica, given Sources order). It is what BaseDown pinning uses.
func bestLocalAt(sources []DataSource, t Time) (TableAccess, bool) {
	var best TableAccess
	bestV := Time(0)
	found := false
	for _, s := range sources {
		v, ok := s.VersionAt(t)
		if !ok {
			continue
		}
		if !found || v > bestV {
			best, bestV, found = s.Access(v), v, true
		}
	}
	return best, found
}

// earliestLocalAt returns the earliest instant ≥ now at which any of the
// given sources has a version.
func earliestLocalAt(sources []DataSource, now Time) (Time, bool) {
	best := Time(0)
	found := false
	for _, s := range sources {
		at, ok := s.EarliestAt(now)
		if !ok {
			continue
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}
