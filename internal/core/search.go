package core

import (
	"fmt"
	"math"
	"sort"
)

// SearchMode selects the plan-space exploration strategy.
type SearchMode int

const (
	// ScatterGather is the paper's bounded search (Section 3.1, Figure 4):
	// seed with the all-base-tables plan, derive a tolerated-latency bound,
	// then walk future synchronization completions in order, enumerating at
	// each time point only the prefix chain of replicas ordered by
	// freshness. Under a cost model where remote cost depends on the number
	// (not identity) of base tables this finds the optimum; otherwise it is
	// a fast heuristic.
	ScatterGather SearchMode = iota + 1
	// ScatterGatherFull walks the same bounded timeline but enumerates all
	// 2^m base/replica subsets at every time point, so it remains optimal
	// under arbitrary cost models while still pruning by the latency bound.
	ScatterGatherFull
	// Exhaustive enumerates the cross product of every version of every
	// table (base, current replica, each scheduled future replica) without
	// the tolerated-latency bound. It exists as the correctness reference
	// for tests and for the search ablation benchmark.
	Exhaustive
)

// String names the mode for logs and benchmark output.
func (m SearchMode) String() string {
	switch m {
	case ScatterGather:
		return "scatter-gather"
	case ScatterGatherFull:
		return "scatter-gather-full"
	case Exhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("SearchMode(%d)", int(m))
	}
}

// PlannerConfig parameterizes plan search.
type PlannerConfig struct {
	Rates DiscountRates
	Mode  SearchMode
	// Horizon caps how far past the decision time the planner considers
	// delaying execution, even when the tolerated-latency bound is looser.
	// Zero means unbounded.
	Horizon Duration
	// MaxPlans aborts a search that would evaluate more than this many
	// plans (guards Exhaustive mode). Zero means the default of 1<<20.
	MaxPlans int
}

const defaultMaxPlans = 1 << 20

// SearchStats instruments one planning episode.
type SearchStats struct {
	PlansEvaluated int
	TimePoints     int      // decision instants visited on the timeline
	PrunedEvents   int      // future sync events cut off by the bound
	FinalBound     Duration // tolerated CL when the search ended
}

// Planner selects maximal-information-value plans. Construct with
// NewPlanner; the zero value is not usable.
type Planner struct {
	cost CostModel
	cfg  PlannerConfig
}

// NewPlanner validates the configuration and returns a Planner.
func NewPlanner(cost CostModel, cfg PlannerConfig) (*Planner, error) {
	if cost == nil {
		return nil, fmt.Errorf("core: planner needs a cost model")
	}
	if err := cfg.Rates.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case ScatterGather, ScatterGatherFull, Exhaustive:
	case 0:
		cfg.Mode = ScatterGather
	default:
		return nil, fmt.Errorf("core: unknown search mode %d", int(cfg.Mode))
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("core: negative horizon %v", cfg.Horizon)
	}
	if cfg.MaxPlans == 0 {
		cfg.MaxPlans = defaultMaxPlans
	}
	return &Planner{cost: cost, cfg: cfg}, nil
}

// Rates returns the discount rates the planner optimizes under.
func (p *Planner) Rates() DiscountRates { return p.cfg.Rates }

// Mode returns the configured search mode.
func (p *Planner) Mode() SearchMode { return p.cfg.Mode }

// Best returns the plan maximizing expected information value for q, given
// a catalog snapshot and the decision time `now` (usually q.SubmitAt; a
// scheduler replanning a queued query passes a later instant). The snapshot
// may contain states for tables the query does not touch; states for all
// touched tables must be present.
func (p *Planner) Best(q Query, snapshot []TableState, now Time) (Plan, SearchStats, error) {
	var stats SearchStats
	if err := q.Validate(); err != nil {
		return Plan{}, stats, err
	}
	if now < q.SubmitAt {
		return Plan{}, stats, fmt.Errorf("core: decision time %v precedes submission %v of %s", now, q.SubmitAt, q.ID)
	}
	states, err := statesFor(q, snapshot)
	if err != nil {
		return Plan{}, stats, err
	}
	switch p.cfg.Mode {
	case Exhaustive:
		return p.exhaustive(q, states, now, &stats)
	default:
		return p.scatterGather(q, states, now, p.cfg.Mode == ScatterGatherFull, &stats)
	}
}

// statesFor projects the snapshot onto the query's tables, in query order.
func statesFor(q Query, snapshot []TableState) ([]TableState, error) {
	byID := make(map[TableID]TableState, len(snapshot))
	for _, ts := range snapshot {
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		byID[ts.ID] = ts
	}
	states := make([]TableState, len(q.Tables))
	for i, id := range q.Tables {
		ts, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("core: no catalog state for table %s needed by query %s", id, q.ID)
		}
		states[i] = ts
	}
	return states, nil
}

// replicaVersionAt returns the freshness timestamp of the newest replica
// version synchronized at or before t, and whether one exists.
func replicaVersionAt(rs *ReplicaState, t Time) (Time, bool) {
	if rs == nil {
		return 0, false
	}
	version := rs.LastSync
	ok := rs.LastSync <= t
	for _, n := range rs.NextSyncs {
		if n > t {
			break
		}
		version, ok = n, true
	}
	return version, ok
}

// horizonEnd returns the absolute latest decision instant to consider.
func (p *Planner) horizonEnd(now Time) Time {
	if p.cfg.Horizon == 0 {
		return math.Inf(1)
	}
	return now + p.cfg.Horizon
}

// evaluate builds and scores a plan from a per-table access assignment.
func (p *Planner) evaluate(q Query, access []TableAccess, start Time, stats *SearchStats) (Plan, float64) {
	plan := Plan{Query: q, Access: access, Start: start}
	plan.Cost = p.cost.Estimate(q, access, start)
	stats.PlansEvaluated++
	return plan, plan.Value(p.cfg.Rates)
}

// scatterGather implements the paper's bounded timeline search.
func (p *Planner) scatterGather(q Query, states []TableState, now Time, full bool, stats *SearchStats) (Plan, SearchStats, error) {
	// Scatter: the all-base-tables plan executed immediately seeds the
	// current optimum and the tolerated-latency bound. Tables whose base
	// site is down are pinned to their freshest local source (replica or
	// view) instead; if one of them only gains a version at a future sync,
	// the seed start slides to that instant.
	seedAccess, seedStart, err := availableSeed(q, states, now, p.horizonEnd(now))
	if err != nil {
		return Plan{}, *stats, err
	}
	best, bestVal := p.evaluate(q, seedAccess, seedStart, stats)
	boundary := q.SubmitAt + ToleratedCL(q.BusinessValue, bestVal, p.cfg.Rates)

	end := math.Min(p.horizonEnd(now), boundary)
	events := syncEventsWithin(q, states, now, p.horizonEnd(now))

	// Gather: enumerate combinations at the decision time and then at each
	// future synchronization completion, shrinking the boundary as better
	// plans appear. Delayed all-base plans are never enumerated after the
	// first time point: delaying pure-base execution only adds CL.
	times := append([]Time{now}, events...)
	for i, t := range times {
		if t > end {
			stats.PrunedEvents += len(times) - i
			break
		}
		stats.TimePoints++
		improved := false
		for _, access := range p.combinationsAt(q, states, t, full, i > 0) {
			plan, val := p.evaluate(q, access, t, stats)
			if val > bestVal {
				best, bestVal = plan, val
				improved = true
			}
		}
		if improved {
			boundary = q.SubmitAt + ToleratedCL(q.BusinessValue, bestVal, p.cfg.Rates)
			end = math.Min(p.horizonEnd(now), boundary)
		}
	}
	stats.FinalBound = boundary - q.SubmitAt
	return best, *stats, nil
}

// combinationsAt enumerates candidate access assignments for a plan started
// at time t. Tables without a usable replica always read their base table.
// With full=false only the non-dominated prefix chain is produced: order
// the usable replicas by freshness (oldest first) and, for k = 0..m, send
// the k oldest to their base tables. Replacing any other replica with its
// base raises CL without raising the minimum freshness, so those plans are
// dominated whenever remote cost is identity-blind. With full=true all 2^m
// subsets are produced. When skipAllBase is set the combination using no
// replicas is suppressed (used for t beyond the first time point).
//
// A table with BaseDown is pinned to its freshest local source at t and
// excluded from the demotion chain; when it has no usable local version at
// t there is no valid assignment and nil is returned.
//
// Materialized views extend the enumeration: a view materializes the
// covered query's entire answer, so each usable view version contributes
// one whole-plan combination of its own rather than entering the per-table
// chain (views only ever cover single-table queries, enforced at
// registration).
func (p *Planner) combinationsAt(q Query, states []TableState, t Time, full, skipAllBase bool) [][]TableAccess {
	type replicated struct {
		idx       int
		freshness Time
		src       DataSource
	}
	var reps []replicated
	base := make([]TableAccess, len(states))
	var views []TableAccess
	for i, ts := range states {
		sources := ts.Sources(q)
		if len(states) == 1 {
			for _, src := range sources {
				if src.Kind() != AccessView {
					continue
				}
				if v, ok := src.VersionAt(t); ok {
					views = append(views, src.Access(v))
				}
			}
		}
		if ts.BaseDown {
			acc, ok := bestLocalAt(ts.LocalSources(q), t)
			if !ok {
				return nil
			}
			base[i] = acc
			// The pinned source gets fresher at later time points, so the
			// "no optional replicas" combination is no longer a dominated
			// pure-base delay — keep it.
			skipAllBase = false
			continue
		}
		for _, src := range sources {
			switch src.Kind() {
			case AccessBase:
				base[i] = src.Access(t)
			case AccessReplica:
				if v, ok := src.VersionAt(t); ok {
					reps = append(reps, replicated{idx: i, freshness: v, src: src})
				}
			}
		}
	}
	sort.SliceStable(reps, func(a, b int) bool { return reps[a].freshness < reps[b].freshness })

	assignment := func(replicaSet []replicated) []TableAccess {
		access := make([]TableAccess, len(base))
		copy(access, base)
		for _, r := range replicaSet {
			access[r.idx] = r.src.Access(r.freshness)
		}
		return access
	}

	var out [][]TableAccess
	if full {
		m := len(reps)
		for mask := 0; mask < 1<<m; mask++ {
			if skipAllBase && mask == 0 {
				continue
			}
			var subset []replicated
			for j := 0; j < m; j++ {
				if mask&(1<<j) != 0 {
					subset = append(subset, reps[j])
				}
			}
			out = append(out, assignment(subset))
		}
	} else {
		// Prefix chain: k oldest replicas demoted to base, the rest kept.
		for k := 0; k <= len(reps); k++ {
			if skipAllBase && k == len(reps) {
				continue
			}
			out = append(out, assignment(reps[k:]))
		}
	}
	for _, va := range views {
		out = append(out, []TableAccess{va})
	}
	return out
}

// availableSeed builds the scatter seed: base access everywhere a site is
// up, the freshest available local source (replica or view) where it is
// down. When a down table only gains its first local version at a future
// sync, the seed start slides forward to that instant; past the horizon
// (or with no local source at all) planning fails with
// SiteUnavailableError.
func availableSeed(q Query, states []TableState, now, end Time) ([]TableAccess, Time, error) {
	start := now
	for _, ts := range states {
		if !ts.BaseDown {
			continue
		}
		at, ok := earliestLocalAt(ts.LocalSources(q), now)
		if !ok || at > end {
			return nil, 0, &SiteUnavailableError{Table: ts.ID, Site: ts.Site}
		}
		if at > start {
			start = at
		}
	}
	access := make([]TableAccess, len(states))
	for i, ts := range states {
		if ts.BaseDown {
			acc, _ := bestLocalAt(ts.LocalSources(q), start)
			access[i] = acc
			continue
		}
		access[i] = TableAccess{Table: ts.ID, Site: ts.Site, Kind: AccessBase}
	}
	return access, start, nil
}

// earliestReplicaAt returns the earliest instant ≥ now at which a replica
// version exists.
func earliestReplicaAt(rs *ReplicaState, now Time) (Time, bool) {
	if rs == nil {
		return 0, false
	}
	if _, ok := replicaVersionAt(rs, now); ok {
		return now, true
	}
	// Every version completes in the future: the earliest is LastSync when
	// it is still pending, else the first scheduled sync after now.
	if rs.LastSync > now {
		return rs.LastSync, true
	}
	for _, n := range rs.NextSyncs {
		if n > now {
			return n, true
		}
	}
	return 0, false
}

// exhaustive enumerates every combination of table versions. Each table
// contributes one option per version of every usable data source: the base
// table, the current replica or view (if synchronized by now), and one per
// scheduled future synchronization within the horizon. The plan start time
// is the latest freshness among chosen future versions (never earlier than
// now). View options appear only for single-table queries, since a view
// answers its covered query whole.
func (p *Planner) exhaustive(q Query, states []TableState, now Time, stats *SearchStats) (Plan, SearchStats, error) {
	end := p.horizonEnd(now)
	options := make([][]TableAccess, len(states))
	total := 1
	for i, ts := range states {
		var opts []TableAccess
		for _, src := range ts.Sources(q) {
			switch src.Kind() {
			case AccessBase:
				if ts.BaseDown {
					continue
				}
				opts = append(opts, src.Access(now))
			case AccessView:
				if len(states) != 1 {
					continue
				}
				fallthrough
			default:
				if v, ok := src.VersionAt(now); ok {
					opts = append(opts, src.Access(v))
				}
				for _, n := range src.EventsWithin(now, end) {
					opts = append(opts, src.Access(n))
				}
			}
		}
		if len(opts) == 0 {
			return Plan{}, *stats, &SiteUnavailableError{Table: ts.ID, Site: ts.Site}
		}
		options[i] = opts
		total *= len(opts)
		if total > p.cfg.MaxPlans {
			return Plan{}, *stats, fmt.Errorf("core: exhaustive search for %s exceeds MaxPlans=%d", q.ID, p.cfg.MaxPlans)
		}
	}

	var best Plan
	bestVal := math.Inf(-1)
	access := make([]TableAccess, len(states))
	var rec func(i int, start Time)
	rec = func(i int, start Time) {
		if i == len(states) {
			chosen := make([]TableAccess, len(access))
			copy(chosen, access)
			plan, val := p.evaluate(q, chosen, start, stats)
			if val > bestVal {
				best, bestVal = plan, val
			}
			return
		}
		for _, opt := range options[i] {
			access[i] = opt
			next := start
			if opt.Kind != AccessBase && opt.Freshness > next {
				next = opt.Freshness
			}
			rec(i+1, next)
		}
	}
	rec(0, now)
	stats.TimePoints = 1
	stats.FinalBound = math.Inf(1)
	return best, *stats, nil
}

// syncEventsWithin collects the distinct future synchronization completion
// times of every local data source usable by q — replicas and covering
// views — in (after, until], ascending.
func syncEventsWithin(q Query, states []TableState, after, until Time) []Time {
	set := make(map[Time]bool)
	for _, ts := range states {
		for _, src := range ts.LocalSources(q) {
			for _, n := range src.EventsWithin(after, until) {
				set[n] = true
			}
		}
	}
	events := make([]Time, 0, len(set))
	for t := range set {
		events = append(events, t)
	}
	sort.Float64s(events)
	return events
}

// FixedPlan builds a plan that applies one access kind to every table,
// started at now — the shape both baselines use: the Federation baseline
// reads every base table, the Data Warehouse baseline reads every replica.
// It returns an error if choose selects AccessReplica for a table that has
// never synchronized a replica.
func FixedPlan(q Query, snapshot []TableState, now Time, cost CostModel, choose func(TableState) AccessKind) (Plan, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, err
	}
	states, err := statesFor(q, snapshot)
	if err != nil {
		return Plan{}, err
	}
	access := make([]TableAccess, len(states))
	for i, ts := range states {
		kind := choose(ts)
		switch kind {
		case AccessBase:
			access[i] = TableAccess{Table: ts.ID, Site: ts.Site, Kind: AccessBase}
		case AccessReplica:
			v, ok := replicaVersionAt(ts.Replica, now)
			if !ok {
				return Plan{}, fmt.Errorf("core: table %s has no replica synchronized by %v", ts.ID, now)
			}
			access[i] = TableAccess{Table: ts.ID, Site: ts.Site, Kind: AccessReplica, Freshness: v}
		default:
			return Plan{}, fmt.Errorf("core: invalid access kind %d for table %s", int(kind), ts.ID)
		}
	}
	plan := Plan{Query: q, Access: access, Start: now}
	plan.Cost = cost.Estimate(q, access, now)
	return plan, nil
}
