package core

import (
	"math"
	"math/rand"
	"testing"
)

// countCost mirrors the paper's Figure 4 cost shape: `local` time units
// when only replicas are read, plus `perBase` per remote base table. It is
// identity-blind, the regime in which prefix pruning is exact.
type countCost struct {
	local, perBase Duration
}

func (c countCost) Estimate(_ Query, access []TableAccess, _ Time) CostEstimate {
	bases := 0
	for _, a := range access {
		if a.Kind == AccessBase {
			bases++
		}
	}
	return CostEstimate{Process: c.local + c.perBase*Duration(bases)}
}

// weightedCost charges a distinct remote cost per table, which breaks
// identity-blindness and makes prefix pruning heuristic.
type weightedCost struct {
	local   Duration
	weights map[TableID]Duration
}

func (c weightedCost) Estimate(_ Query, access []TableAccess, _ Time) CostEstimate {
	process := c.local
	for _, a := range access {
		if a.Kind == AccessBase {
			process += c.weights[a.Table]
		}
	}
	return CostEstimate{Process: process}
}

// figure4State builds the catalog of the paper's Figure 4 walkthrough:
// four replicated tables; at submission time 11 the replicas were last
// synchronized at 2 (R4), 4 (R1), 6 (R2) and 8 (R3), and R4 is the next to
// synchronize again.
func figure4State() []TableState {
	return []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 4, NextSyncs: []Time{20, 36}}},
		{ID: "T2", Site: 2, Replica: &ReplicaState{LastSync: 6, NextSyncs: []Time{24, 42}}},
		{ID: "T3", Site: 3, Replica: &ReplicaState{LastSync: 8, NextSyncs: []Time{28}}},
		{ID: "T4", Site: 4, Replica: &ReplicaState{LastSync: 2, NextSyncs: []Time{12, 22, 32}}},
	}
}

func figure4Query() Query {
	return Query{
		ID:            "Q",
		Tables:        []TableID{"T1", "T2", "T3", "T4"},
		BusinessValue: 1,
		SubmitAt:      11,
	}
}

func mustPlanner(t *testing.T, cost CostModel, cfg PlannerConfig) *Planner {
	t.Helper()
	p, err := NewPlanner(cost, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlannerValidation(t *testing.T) {
	cost := countCost{local: 2, perBase: 2}
	if _, err := NewPlanner(nil, PlannerConfig{}); err == nil {
		t.Error("nil cost model accepted")
	}
	if _, err := NewPlanner(cost, PlannerConfig{Rates: DiscountRates{CL: 2}}); err == nil {
		t.Error("invalid rates accepted")
	}
	if _, err := NewPlanner(cost, PlannerConfig{Mode: SearchMode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := NewPlanner(cost, PlannerConfig{Horizon: -1}); err == nil {
		t.Error("negative horizon accepted")
	}
	p := mustPlanner(t, cost, PlannerConfig{})
	if p.Mode() != ScatterGather {
		t.Errorf("default mode = %v, want scatter-gather", p.Mode())
	}
}

func TestBestRejectsBadInput(t *testing.T) {
	p := mustPlanner(t, countCost{2, 2}, PlannerConfig{Rates: DiscountRates{CL: .1, SL: .1}})
	states := figure4State()
	if _, _, err := p.Best(Query{}, states, 0); err == nil {
		t.Error("invalid query accepted")
	}
	q := figure4Query()
	if _, _, err := p.Best(q, states, q.SubmitAt-1); err == nil {
		t.Error("decision time before submission accepted")
	}
	if _, _, err := p.Best(q, states[:2], q.SubmitAt); err == nil {
		t.Error("missing table state accepted")
	}
}

// TestFigure4Walkthrough reproduces the scatter step of the paper's worked
// example: the all-base seed plan has CL = SL = 10, information value
// 0.9^10 × 0.9^10, and a tolerated computational latency of 20 (search
// boundary 11 + 20 = 31).
func TestFigure4Walkthrough(t *testing.T) {
	rates := DiscountRates{CL: .1, SL: .1}
	cost := countCost{local: 2, perBase: 2}
	q := figure4Query()
	states := figure4State()

	seed, err := FixedPlan(q, states, q.SubmitAt, cost, func(TableState) AccessKind { return AccessBase })
	if err != nil {
		t.Fatal(err)
	}
	lat := seed.Latencies()
	if lat.CL != 10 || lat.SL != 10 {
		t.Fatalf("seed latencies = %+v, want CL=SL=10", lat)
	}
	seedVal := seed.Value(rates)
	if want := math.Pow(.9, 20); math.Abs(seedVal-want) > 1e-12 {
		t.Fatalf("seed IV = %v, want %v", seedVal, want)
	}
	if b := ToleratedCL(1, seedVal, rates); math.Abs(b-20) > 1e-9 {
		t.Fatalf("tolerated CL = %v, want 20", b)
	}

	p := mustPlanner(t, cost, PlannerConfig{Rates: rates})
	best, stats, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value(rates) < seedVal {
		t.Errorf("search returned %v, worse than the seed %v", best.Value(rates), seedVal)
	}
	if stats.PlansEvaluated == 0 || stats.TimePoints == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	// The all-replica plan at t=11 has CL=2 and SL = 13−2 = 11:
	// IV = 0.9^13 ≈ 0.254, beating the seed 0.9^20 ≈ 0.122. The boundary
	// must therefore have shrunk below the initial 20.
	if stats.FinalBound >= 20 {
		t.Errorf("final bound %v did not shrink below 20", stats.FinalBound)
	}
}

func TestScatterGatherMatchesExhaustiveOnFigure4(t *testing.T) {
	rates := DiscountRates{CL: .1, SL: .1}
	cost := countCost{local: 2, perBase: 2}
	q := figure4Query()
	states := figure4State()

	var values []float64
	var evaluated []int
	for _, mode := range []SearchMode{ScatterGather, ScatterGatherFull, Exhaustive} {
		p := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: mode})
		best, stats, err := p.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		values = append(values, best.Value(rates))
		evaluated = append(evaluated, stats.PlansEvaluated)
	}
	for i := 1; i < len(values); i++ {
		if math.Abs(values[i]-values[0]) > 1e-12 {
			t.Errorf("mode %d found value %v, mode 0 found %v", i, values[i], values[0])
		}
	}
	if evaluated[0] >= evaluated[2] {
		t.Errorf("scatter-gather evaluated %d plans, not fewer than exhaustive %d", evaluated[0], evaluated[2])
	}
}

func TestPlannerPrefersFreshDataWhenSLDominates(t *testing.T) {
	// λSL >> λCL: stale replicas hurt much more than slow remote reads, so
	// the planner should run at base tables (Figure 1, plan 1).
	cost := countCost{local: 2, perBase: 2}
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 0}},
		{ID: "T2", Site: 2, Replica: &ReplicaState{LastSync: 0}},
	}
	q := Query{ID: "q", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 100}
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .001, SL: .2}})
	best, _, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(best.BaseTables()); got != 2 {
		t.Errorf("plan uses %d base tables, want 2: %s", got, best.Signature())
	}
}

func TestPlannerPrefersReplicasWhenCLDominates(t *testing.T) {
	// λCL >> λSL: response time is everything (Figure 1, plan 2).
	cost := countCost{local: 2, perBase: 20}
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 95}},
		{ID: "T2", Site: 2, Replica: &ReplicaState{LastSync: 97}},
	}
	q := Query{ID: "q", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 100}
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .2, SL: .001}})
	best, _, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(best.BaseTables()); got != 0 {
		t.Errorf("plan uses %d base tables, want 0: %s", got, best.Signature())
	}
}

func TestPlannerDelaysForImminentSync(t *testing.T) {
	// Figure 2: a sync completes moments after submission; with λSL > λCL
	// waiting for it beats running on a very stale replica or a slow base.
	cost := countCost{local: 1, perBase: 50}
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 0, NextSyncs: []Time{101}}},
	}
	q := Query{ID: "q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 100}
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .01, SL: .1}})
	best, _, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Start != 101 {
		t.Errorf("plan start = %v, want 101 (delayed to sync): %s", best.Start, best.Signature())
	}
	if len(best.BaseTables()) != 0 {
		t.Errorf("plan should use the fresh replica: %s", best.Signature())
	}
}

func TestPlannerIgnoresSyncsBeyondBound(t *testing.T) {
	// A sync far in the future cannot beat the current optimum once the
	// discount has eaten the business value; the search must prune it.
	cost := countCost{local: 1, perBase: 2}
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 99, NextSyncs: []Time{10000}}},
	}
	q := Query{ID: "q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 100}
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .05, SL: .05}})
	best, stats, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedEvents != 1 {
		t.Errorf("PrunedEvents = %d, want 1", stats.PrunedEvents)
	}
	if best.Start != 100 {
		t.Errorf("plan start = %v, want immediate execution", best.Start)
	}
}

func TestPlannerHorizonCapsDelays(t *testing.T) {
	cost := countCost{local: 1, perBase: 100}
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 0, NextSyncs: []Time{150}}},
	}
	q := Query{ID: "q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 100}
	// Without a horizon the planner would happily wait until 150 under a
	// tiny λCL; a 10-minute horizon forbids it.
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .0001, SL: .1}, Horizon: 10})
	best, _, err := p.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Start > 110 {
		t.Errorf("plan start %v violates 10-minute horizon", best.Start)
	}
}

func TestExhaustiveMaxPlansGuard(t *testing.T) {
	cost := countCost{local: 1, perBase: 1}
	var states []TableState
	var tables []TableID
	for _, id := range []TableID{"a", "b", "c", "d", "e"} {
		states = append(states, TableState{ID: id, Site: 1, Replica: &ReplicaState{LastSync: 0, NextSyncs: []Time{5, 6, 7}}})
		tables = append(tables, id)
	}
	q := Query{ID: "q", Tables: tables, BusinessValue: 1, SubmitAt: 1}
	p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .1, SL: .1}, Mode: Exhaustive, MaxPlans: 100})
	if _, _, err := p.Best(q, states, q.SubmitAt); err == nil {
		t.Error("exhaustive search over MaxPlans accepted")
	}
}

func TestFixedPlanErrors(t *testing.T) {
	cost := countCost{local: 1, perBase: 1}
	states := []TableState{{ID: "a", Site: 1}} // no replica
	q := Query{ID: "q", Tables: []TableID{"a"}, BusinessValue: 1}
	if _, err := FixedPlan(q, states, 0, cost, func(TableState) AccessKind { return AccessReplica }); err == nil {
		t.Error("replica plan without replica accepted")
	}
	if _, err := FixedPlan(q, states, 0, cost, func(TableState) AccessKind { return AccessKind(9) }); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := FixedPlan(Query{}, states, 0, cost, func(TableState) AccessKind { return AccessBase }); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestReplicaVersionAt(t *testing.T) {
	rs := &ReplicaState{LastSync: 5, NextSyncs: []Time{8, 12}}
	tests := []struct {
		t      Time
		want   Time
		wantOK bool
	}{
		{4, 0, false}, // before first sync
		{5, 5, true},
		{7, 5, true},
		{8, 8, true},
		{20, 12, true},
	}
	for _, tt := range tests {
		got, ok := replicaVersionAt(rs, tt.t)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("replicaVersionAt(%v) = (%v, %v), want (%v, %v)", tt.t, got, ok, tt.want, tt.wantOK)
		}
	}
	if _, ok := replicaVersionAt(nil, 10); ok {
		t.Error("nil replica reported a version")
	}
}

// randomScenario builds a random planning problem for the equivalence
// properties below.
func randomScenario(rng *rand.Rand) (Query, []TableState) {
	n := 1 + rng.Intn(4)
	states := make([]TableState, n)
	tables := make([]TableID, n)
	now := 10 + rng.Float64()*20
	for i := range states {
		id := TableID(string(rune('A' + i)))
		tables[i] = id
		ts := TableState{ID: id, Site: SiteID(1 + rng.Intn(3))}
		if rng.Float64() < .8 {
			last := now - rng.Float64()*15
			rs := &ReplicaState{LastSync: last}
			next := last
			for k := rng.Intn(3); k > 0; k-- {
				next += .5 + rng.Float64()*10
				if next > last {
					rs.NextSyncs = append(rs.NextSyncs, next)
				}
			}
			ts.Replica = rs
		}
		states[i] = ts
	}
	q := Query{ID: "q", Tables: tables, BusinessValue: .5 + rng.Float64(), SubmitAt: now}
	return q, states
}

// TestScatterGatherOptimalUnderCountCost is the central search property:
// under an identity-blind cost model, the paper's prefix-pruned
// scatter-and-gather search finds the same optimal information value as the
// exhaustive reference, on hundreds of random scenarios.
func TestScatterGatherOptimalUnderCountCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rateChoices := []float64{0, .01, .05, .1, .3}
	for trial := 0; trial < 500; trial++ {
		q, states := randomScenario(rng)
		rates := DiscountRates{
			CL: rateChoices[rng.Intn(len(rateChoices))],
			SL: rateChoices[rng.Intn(len(rateChoices))],
		}
		cost := countCost{local: rng.Float64() * 3, perBase: rng.Float64() * 5}
		sg := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: ScatterGather})
		ex := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: Exhaustive})
		sgBest, _, err := sg.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		exBest, _, err := ex.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		sgVal, exVal := sgBest.Value(rates), exBest.Value(rates)
		if math.Abs(sgVal-exVal) > 1e-9 {
			t.Fatalf("trial %d: scatter-gather %v (%s) != exhaustive %v (%s); rates %+v",
				trial, sgVal, sgBest.Signature(), exVal, exBest.Signature(), rates)
		}
	}
}

// TestScatterGatherFullOptimalUnderWeightedCost: with per-table costs the
// prefix chain is only a heuristic, but the full-subset timeline search
// must still match the exhaustive optimum.
func TestScatterGatherFullOptimalUnderWeightedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		q, states := randomScenario(rng)
		rates := DiscountRates{CL: rng.Float64() * .3, SL: rng.Float64() * .3}
		weights := make(map[TableID]Duration, len(states))
		for _, ts := range states {
			weights[ts.ID] = rng.Float64() * 8
		}
		cost := weightedCost{local: rng.Float64() * 3, weights: weights}
		full := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: ScatterGatherFull})
		ex := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: Exhaustive})
		fullBest, _, err := full.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		exBest, _, err := ex.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		fullVal, exVal := fullBest.Value(rates), exBest.Value(rates)
		if math.Abs(fullVal-exVal) > 1e-9 {
			t.Fatalf("trial %d: full timeline %v (%s) != exhaustive %v (%s)",
				trial, fullVal, fullBest.Signature(), exVal, exBest.Signature())
		}
	}
}

// TestPrefixHeuristicNeverBeatsOptimum: the heuristic can fall short under
// weighted costs but must never report a value above the true optimum and
// must always at least match the all-base seed.
func TestPrefixHeuristicNeverBeatsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		q, states := randomScenario(rng)
		rates := DiscountRates{CL: rng.Float64() * .3, SL: rng.Float64() * .3}
		weights := make(map[TableID]Duration, len(states))
		for _, ts := range states {
			weights[ts.ID] = rng.Float64() * 8
		}
		cost := weightedCost{local: rng.Float64() * 3, weights: weights}
		sg := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: ScatterGather})
		ex := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: Exhaustive})
		sgBest, _, err := sg.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		exBest, _, err := ex.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		if sgBest.Value(rates) > exBest.Value(rates)+1e-9 {
			t.Fatalf("trial %d: heuristic exceeded the optimum", trial)
		}
		seed, err := FixedPlan(q, states, q.SubmitAt, cost, func(TableState) AccessKind { return AccessBase })
		if err != nil {
			t.Fatal(err)
		}
		if sgBest.Value(rates) < seed.Value(rates)-1e-9 {
			t.Fatalf("trial %d: heuristic worse than its own seed", trial)
		}
	}
}

func TestSearchModeString(t *testing.T) {
	if ScatterGather.String() != "scatter-gather" ||
		ScatterGatherFull.String() != "scatter-gather-full" ||
		Exhaustive.String() != "exhaustive" {
		t.Error("unexpected mode names")
	}
}
