package core

import (
	"math"
	"strings"
	"testing"
)

func TestValueHorizon(t *testing.T) {
	rates := DiscountRates{CL: .05, SL: .05}
	q := Query{ID: "q", Tables: []TableID{"t"}, BusinessValue: 1}

	h := q.ValueHorizon(rates, .1)
	// At the horizon the best-case value equals epsilon exactly.
	if got := InformationValue(q.BusinessValue, Latencies{CL: h}, rates); math.Abs(got-.1) > 1e-9 {
		t.Errorf("IV at horizon = %v, want 0.1", got)
	}
	// Just before the horizon the value still clears the threshold.
	if got := InformationValue(q.BusinessValue, Latencies{CL: h - 1}, rates); got <= .1 {
		t.Errorf("IV just inside horizon = %v, want > 0.1", got)
	}
}

func TestValueHorizonEdgeCases(t *testing.T) {
	rates := DiscountRates{CL: .05, SL: .05}
	q := Query{ID: "q", Tables: []TableID{"t"}, BusinessValue: 2}

	if h := q.ValueHorizon(rates, 0); !math.IsInf(h, 1) {
		t.Errorf("epsilon 0: horizon %v, want +Inf", h)
	}
	if h := q.ValueHorizon(DiscountRates{SL: .05}, .1); !math.IsInf(h, 1) {
		t.Errorf("no CL decay: horizon %v, want +Inf", h)
	}
	if h := q.ValueHorizon(rates, 2); h != 0 {
		t.Errorf("epsilon at business value: horizon %v, want 0", h)
	}
	// Zero business value defaults to 1 (wire-protocol convention).
	zero := Query{ID: "z", Tables: []TableID{"t"}}
	one := Query{ID: "o", Tables: []TableID{"t"}, BusinessValue: 1}
	if got, want := zero.ValueHorizon(rates, .1), one.ValueHorizon(rates, .1); got != want {
		t.Errorf("zero-BV horizon %v, want %v", got, want)
	}
}

func TestValueHorizonScalesWithBusinessValue(t *testing.T) {
	rates := DiscountRates{CL: .05}
	cheap := Query{ID: "c", Tables: []TableID{"t"}, BusinessValue: 1}
	rich := Query{ID: "r", Tables: []TableID{"t"}, BusinessValue: 10}
	if hc, hr := cheap.ValueHorizon(rates, .1), rich.ValueHorizon(rates, .1); hr <= hc {
		t.Errorf("richer query should tolerate more latency: %v vs %v", hr, hc)
	}
}

func TestValueExpiredError(t *testing.T) {
	err := &ValueExpiredError{Query: "q-1", Horizon: 12.5, Reason: "projected-completion"}
	msg := err.Error()
	for _, want := range []string{"q-1", "12.5", "projected-completion"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
