package core

import (
	"fmt"
	"math"
)

// Aging is the anti-starvation adjustment from Section 3.3 of the paper.
//
// The raw IV formula favours fresh arrivals: because exponential discounting
// flattens out, the marginal penalty for delaying an already-old query is
// smaller than for delaying a new one, so under load a value-maximizing
// scheduler can starve long-queued queries. Aging counteracts this by
// adding to the scheduler-visible value a term that grows superlinearly
// with queue time — by design faster than the (1−λ)^t discounts can erode
// value — so every query's effective priority eventually dominates.
//
// The boost only influences scheduling decisions; reported information
// values remain the undoctored formula.
type Aging struct {
	// Coefficient scales the boost; zero disables aging.
	Coefficient float64
	// Exponent is the power applied to queue time. It must be > 1 so the
	// boost is superlinear and eventually outgrows exponential decay. The
	// zero value selects DefaultAgingExponent.
	Exponent float64
}

// DefaultAgingExponent is used when Aging.Exponent is left zero.
const DefaultAgingExponent = 1.5

// Validate reports whether the policy is well formed.
func (a Aging) Validate() error {
	if a.Coefficient < 0 || math.IsNaN(a.Coefficient) {
		return fmt.Errorf("core: aging coefficient %v must be non-negative", a.Coefficient)
	}
	if a.Exponent != 0 && a.Exponent <= 1 {
		return fmt.Errorf("core: aging exponent %v must exceed 1 (or be 0 for the default)", a.Exponent)
	}
	return nil
}

// Enabled reports whether the policy changes anything.
func (a Aging) Enabled() bool { return a.Coefficient > 0 }

// Boost returns the additive priority boost for a query that has been
// queued for `wait` time units. The boost is deliberately independent of
// the query's business value: if it scaled with value, a cheap report
// could still be passed over forever by a stream of valuable ones, which
// is exactly the starvation the rule exists to prevent.
func (a Aging) Boost(wait Duration) float64 {
	if !a.Enabled() || wait <= 0 {
		return 0
	}
	exp := a.Exponent
	if exp == 0 {
		exp = DefaultAgingExponent
	}
	return a.Coefficient * math.Pow(wait, exp)
}

// EffectiveValue is the scheduler-visible value: information value plus the
// aging boost for the time the query has already waited.
func (a Aging) EffectiveValue(iv float64, wait Duration) float64 {
	return iv + a.Boost(wait)
}
