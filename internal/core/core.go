// Package core implements the paper's primary contribution: the information
// value (IV) model and information-value-driven query plan selection (IVQP).
//
// A decision-support report is assigned a business value; its information
// value is that business value discounted by two latencies,
//
//	IV = BusinessValue × (1−λCL)^CL × (1−λSL)^SL
//
// where CL is the computational latency (queuing + processing + result
// transmission) and SL is the synchronization latency (from the oldest
// freshness timestamp among accessed tables to result receipt). The planner
// in this package searches the plan space — per-table choice of remote base
// table, current local replica, or a future replica reached by delaying
// execution past a scheduled synchronization — for the plan with maximal IV.
package core

import (
	"fmt"
	"math"
	"time"
)

// Time is a point on the experiment clock, in minutes. The planner and the
// discrete event simulator share one virtual clock; live deployments adapt
// wall-clock time at the boundary with TimeOf.
type Time = float64

// Duration is a span of experiment time, in minutes.
type Duration = float64

// TimeOf converts a wall-clock instant to experiment time, measured in
// minutes since the supplied epoch. It is the adapter used by the live
// servers, which run on time.Time.
func TimeOf(t, epoch time.Time) Time {
	return t.Sub(epoch).Minutes()
}

// WallClockOf converts experiment time back to a wall-clock instant.
func WallClockOf(t Time, epoch time.Time) time.Time {
	return epoch.Add(time.Duration(t * float64(time.Minute)))
}

// TableID names a base table in the federation catalog.
type TableID string

// SiteID identifies a server. Site 0 is conventionally the local
// federation/DSS server; remote sites are numbered from 1.
type SiteID int

// LocalSite is the DSS (federation) server itself.
const LocalSite SiteID = 0

// Query is a decision-support query as the planner sees it: the set of base
// tables it touches, the business value of its report, and its submission
// time. The relational text of the query lives elsewhere (internal/sqlmini);
// the IV planner only needs this shape.
type Query struct {
	ID            string
	Tables        []TableID
	BusinessValue float64
	SubmitAt      Time
	// Tenant names the budget account the query draws from under
	// weighted-fair admission shedding (internal/cluster). Empty means the
	// default tenant; schedulers that do not shed by tenant ignore it.
	Tenant string
}

// Validate reports whether the query is well formed.
func (q Query) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("core: query has empty ID")
	}
	if len(q.Tables) == 0 {
		return fmt.Errorf("core: query %s touches no tables", q.ID)
	}
	seen := make(map[TableID]bool, len(q.Tables))
	for _, t := range q.Tables {
		if seen[t] {
			return fmt.Errorf("core: query %s lists table %s twice", q.ID, t)
		}
		seen[t] = true
	}
	if q.BusinessValue < 0 || math.IsNaN(q.BusinessValue) || math.IsInf(q.BusinessValue, 0) {
		return fmt.Errorf("core: query %s has invalid business value %v", q.ID, q.BusinessValue)
	}
	return nil
}

// ValueHorizon returns the query's value horizon: the duration after
// submission at which its projected information value falls below epsilon
// even in the best case of zero synchronization latency. Past this point
// the report is worth less than the threshold no matter how it is
// executed, so schedulers shed the query instead of burning resources on
// worthless work. A zero business value is treated as 1, matching the
// wire protocol's default. The horizon is +Inf when epsilon is
// non-positive or λCL is zero (no decay), and 0 when the business value
// already sits at or below epsilon.
func (q Query) ValueHorizon(r DiscountRates, epsilon float64) Duration {
	bv := q.BusinessValue
	if bv == 0 {
		bv = 1
	}
	return ToleratedCL(bv, epsilon, r)
}

// ValueExpiredError is the typed load-shedding failure: the query's
// information value fell (or was projected to fall) below the admission
// threshold before a report could be produced, so the system refused to
// spend resources on it.
type ValueExpiredError struct {
	Query string
	// Horizon is the query's value horizon in experiment minutes after
	// submission. It may be +Inf on a queue-full shed when value-based
	// shedding is disabled (a bounded queue still refuses overflow).
	Horizon Duration
	// Reason says where the decision was made: "queue-full",
	// "projected-completion", "expired-queued", or "expired-running".
	Reason string
}

// Error implements the error interface.
func (e *ValueExpiredError) Error() string {
	return fmt.Sprintf("value expired: query %s exceeds its %.2f-minute value horizon (%s)", e.Query, e.Horizon, e.Reason)
}

// DiscountRates carries the two per-minute discount rates from the IV
// formula: λCL for computational latency and λSL for synchronization
// latency. Both must lie in [0, 1).
type DiscountRates struct {
	CL float64 // λCL
	SL float64 // λSL
}

// Validate reports whether both rates are usable discount factors.
func (r DiscountRates) Validate() error {
	for _, v := range []struct {
		name string
		rate float64
	}{{"λCL", r.CL}, {"λSL", r.SL}} {
		if v.rate < 0 || v.rate >= 1 || math.IsNaN(v.rate) {
			return fmt.Errorf("core: discount rate %s = %v outside [0, 1)", v.name, v.rate)
		}
	}
	return nil
}

// Latencies are the two observed (or estimated) latencies of one report.
type Latencies struct {
	CL Duration // computational latency: queuing + processing + transmission
	SL Duration // synchronization latency: result time − oldest freshness
}

// InformationValue computes BusinessValue × (1−λCL)^CL × (1−λSL)^SL — the
// paper's central formula. Negative latencies are clamped to zero: a report
// cannot gain value from the future.
func InformationValue(businessValue float64, lat Latencies, r DiscountRates) float64 {
	cl := math.Max(lat.CL, 0)
	sl := math.Max(lat.SL, 0)
	return businessValue * math.Pow(1-r.CL, cl) * math.Pow(1-r.SL, sl)
}

// ToleratedCL returns the largest computational latency b such that a report
// with zero synchronization latency still reaches at least the target value:
// BusinessValue × (1−λCL)^b ≥ target. This is the bound that limits the
// scatter-and-gather search (Section 3.1 of the paper): once a candidate
// with value `target` is in hand, no plan finishing more than b after
// submission can beat it. It returns +Inf when λCL is zero (no decay) and 0
// when the target already equals or exceeds the full business value.
func ToleratedCL(businessValue, target float64, r DiscountRates) Duration {
	if target <= 0 {
		return math.Inf(1)
	}
	if target >= businessValue {
		return 0
	}
	if r.CL == 0 {
		return math.Inf(1)
	}
	// (1-λCL)^b = target/bv  ⇒  b = ln(target/bv) / ln(1-λCL).
	return math.Log(target/businessValue) / math.Log(1-r.CL)
}
