package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestInformationValueFactorizes: the IV formula is multiplicative in its
// two discount terms.
func TestInformationValueFactorizes(t *testing.T) {
	f := func(clRaw, slRaw uint16, clRateRaw, slRateRaw uint8) bool {
		cl := float64(clRaw) / 100
		sl := float64(slRaw) / 100
		rates := DiscountRates{
			CL: float64(clRateRaw) / 300, // < 0.85
			SL: float64(slRateRaw) / 300,
		}
		full := InformationValue(1, Latencies{CL: cl, SL: sl}, rates)
		split := InformationValue(1, Latencies{CL: cl}, rates) * InformationValue(1, Latencies{SL: sl}, rates)
		return math.Abs(full-split) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInformationValueScalesWithBusinessValue: IV is linear in the
// business value.
func TestInformationValueScalesWithBusinessValue(t *testing.T) {
	f := func(bvRaw uint16, cl, sl uint8) bool {
		bv := float64(bvRaw) / 100
		rates := DiscountRates{CL: .03, SL: .07}
		lat := Latencies{CL: float64(cl), SL: float64(sl)}
		one := InformationValue(1, lat, rates)
		scaled := InformationValue(bv, lat, rates)
		return math.Abs(scaled-bv*one) < 1e-9*math.Max(bv, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPlanLatenciesNonNegative: any structurally valid plan yields
// non-negative latencies.
func TestPlanLatenciesNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 1000; trial++ {
		submit := rng.Float64() * 100
		start := submit + rng.Float64()*20
		n := 1 + rng.Intn(4)
		access := make([]TableAccess, n)
		tables := make([]TableID, n)
		for i := range access {
			tables[i] = TableID(rune('a' + i))
			if rng.Intn(2) == 0 {
				access[i] = TableAccess{Table: tables[i], Site: 1, Kind: AccessBase}
			} else {
				access[i] = TableAccess{
					Table: tables[i], Site: 1, Kind: AccessReplica,
					Freshness: start - rng.Float64()*50,
				}
			}
		}
		plan := Plan{
			Query:  Query{ID: "q", Tables: tables, BusinessValue: 1, SubmitAt: submit},
			Access: access,
			Start:  start,
			Cost: CostEstimate{
				Queue:    rng.Float64() * 3,
				Process:  rng.Float64() * 10,
				Transmit: rng.Float64() * 2,
			},
		}
		lat := plan.Latencies()
		if lat.CL < 0 || lat.SL < 0 {
			t.Fatalf("trial %d: negative latencies %+v", trial, lat)
		}
		// CL always covers the deliberate wait plus the full cost.
		wantCL := (start - submit) + plan.Cost.Total()
		if math.Abs(lat.CL-wantCL) > 1e-9 {
			t.Fatalf("trial %d: CL = %v, want %v", trial, lat.CL, wantCL)
		}
		// SL is at least processing + transmission (data can never be
		// fresher than the moment processing starts).
		if lat.SL < plan.Cost.Process+plan.Cost.Transmit-1e-9 {
			t.Fatalf("trial %d: SL %v below process+transmit", trial, lat.SL)
		}
	}
}

// TestPlannerDominatesFixedPlans: the plan-space-inclusion property behind
// the paper's headline claim — IVQP's best plan is never worse than the
// Federation (all base) or prefer-replica shapes, on random scenarios.
func TestPlannerDominatesFixedPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cost := countCost{local: 2, perBase: 3}
	for trial := 0; trial < 400; trial++ {
		q, states := randomScenario(rng)
		rates := DiscountRates{CL: rng.Float64() * .2, SL: rng.Float64() * .2}
		planner := mustPlanner(t, cost, PlannerConfig{Rates: rates})
		best, _, err := planner.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		bestVal := best.Value(rates)

		fed, err := FixedPlan(q, states, q.SubmitAt, cost, func(TableState) AccessKind { return AccessBase })
		if err != nil {
			t.Fatal(err)
		}
		if bestVal < fed.Value(rates)-1e-9 {
			t.Fatalf("trial %d: best %v below federation %v", trial, bestVal, fed.Value(rates))
		}

		prefer, err := FixedPlan(q, states, q.SubmitAt, cost, func(ts TableState) AccessKind {
			if v, ok := replicaVersionAt(ts.Replica, q.SubmitAt); ok && v <= q.SubmitAt {
				return AccessReplica
			}
			return AccessBase
		})
		if err != nil {
			t.Fatal(err)
		}
		if bestVal < prefer.Value(rates)-1e-9 {
			t.Fatalf("trial %d: best %v below prefer-replica %v", trial, bestVal, prefer.Value(rates))
		}
	}
}

// TestPlannerDeterministic: identical inputs produce identical plans.
func TestPlannerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cost := countCost{local: 2, perBase: 2}
	for trial := 0; trial < 100; trial++ {
		q, states := randomScenario(rng)
		rates := DiscountRates{CL: .05, SL: .05}
		planner := mustPlanner(t, cost, PlannerConfig{Rates: rates})
		a, sa, err := planner.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := planner.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Signature() != b.Signature() || sa.PlansEvaluated != sb.PlansEvaluated {
			t.Fatalf("trial %d: non-deterministic planning", trial)
		}
	}
}

// TestPlannerLaterDecisionNeverGainsValue: replanning the same query at a
// later decision time (with the same catalog) cannot yield a higher IV —
// waiting is never free.
func TestPlannerLaterDecisionNeverGainsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cost := countCost{local: 2, perBase: 2}
	rates := DiscountRates{CL: .05, SL: .05}
	for trial := 0; trial < 200; trial++ {
		q, states := randomScenario(rng)
		planner := mustPlanner(t, cost, PlannerConfig{Rates: rates})
		now, _, err := planner.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatal(err)
		}
		later, _, err := planner.Best(q, states, q.SubmitAt+5)
		if err != nil {
			t.Fatal(err)
		}
		if later.Value(rates) > now.Value(rates)+1e-9 {
			t.Fatalf("trial %d: deciding later improved IV: %v vs %v (%s vs %s)",
				trial, later.Value(rates), now.Value(rates), later.Signature(), now.Signature())
		}
	}
}

// TestToleratedCLMonotone: a higher target tolerates less latency.
func TestToleratedCLMonotone(t *testing.T) {
	rates := DiscountRates{CL: .07}
	prev := math.Inf(1)
	for target := .05; target < 1; target += .05 {
		b := ToleratedCL(1, target, rates)
		if b > prev {
			t.Fatalf("tolerance increased at target %v", target)
		}
		prev = b
	}
}
