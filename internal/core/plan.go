package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AccessKind says where a plan reads one table from.
type AccessKind int

const (
	// AccessBase reads the authoritative base table at its remote site.
	AccessBase AccessKind = iota + 1
	// AccessReplica reads a synchronized replica at the local DSS server.
	// A "future replica" is an AccessReplica whose Freshness lies after the
	// query's submission time: the plan must delay its start until then.
	AccessReplica
	// AccessView reads an incrementally maintained materialized view at the
	// local DSS server. A view materializes one query's full answer, so a
	// view access always stands alone in its plan and carries the covered
	// query's result rather than a base table's rows.
	AccessView
)

// String returns a short human-readable name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessBase:
		return "base"
	case AccessReplica:
		return "replica"
	case AccessView:
		return "view"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// TableAccess is one table-level decision inside a plan.
type TableAccess struct {
	Table TableID
	Site  SiteID     // site holding the base table
	Kind  AccessKind // base vs (possibly future) replica vs materialized view
	// Freshness is the synchronization-completion timestamp of the chosen
	// replica or view version. It is meaningful only for AccessReplica and
	// AccessView; base-table freshness is the moment processing starts and
	// is derived during plan evaluation.
	Freshness Time
	// View identifies the materialized view serving an AccessView; empty
	// otherwise.
	View ViewID
}

// CostEstimate decomposes a plan's computational latency the way the paper
// defines it: queuing time, query processing time, and result transmission
// time (the last is nonzero only when remote servers participate).
type CostEstimate struct {
	Queue    Duration
	Process  Duration
	Transmit Duration
}

// Total returns the summed computational latency of the estimate.
func (c CostEstimate) Total() Duration { return c.Queue + c.Process + c.Transmit }

// CostModel estimates the computational-latency components of executing a
// query with a particular set of table accesses starting at a given time.
// Implementations live in internal/costmodel; core defines the interface it
// consumes. Estimates must be non-negative and deterministic for a fixed
// (query, access, start) triple within one planning episode.
type CostModel interface {
	Estimate(q Query, access []TableAccess, start Time) CostEstimate
}

// ReplicaState describes the local replica of one table at planning time.
type ReplicaState struct {
	// LastSync is the completion time of the most recent synchronization.
	LastSync Time
	// NextSyncs lists future scheduled synchronization completion times in
	// ascending order. An empty slice means no further syncs are known
	// within the planning horizon.
	NextSyncs []Time
}

// TableState is the catalog snapshot the planner receives for one table.
type TableState struct {
	ID      TableID
	Site    SiteID        // site holding the base table
	Replica *ReplicaState // nil when the table is not replicated locally
	// Views lists the materialized views maintained over this table, each
	// covering one query. Ordered deterministically (by ViewID) so plan
	// enumeration is reproducible.
	Views []ViewState
	// BaseDown marks the base table's site unavailable at planning time
	// (its circuit breaker is open): the planner excludes AccessBase for
	// this table and degrades to local versions — replicas or views —
	// pricing their true staleness into the information value. Planning
	// fails with SiteUnavailableError when a down table has no local
	// source to fall back on.
	BaseDown bool
}

// Validate reports whether the snapshot is internally consistent.
func (ts TableState) Validate() error {
	if ts.ID == "" {
		return fmt.Errorf("core: table state with empty ID")
	}
	if ts.Replica != nil {
		prev := ts.Replica.LastSync
		for _, n := range ts.Replica.NextSyncs {
			if n <= prev {
				return fmt.Errorf("core: table %s: next syncs not strictly ascending after last sync (%v after %v)", ts.ID, n, prev)
			}
			prev = n
		}
	}
	for _, vs := range ts.Views {
		if vs.ID == "" {
			return fmt.Errorf("core: table %s: view state with empty ID", ts.ID)
		}
		prev := vs.LastSync
		for _, n := range vs.NextSyncs {
			if n <= prev {
				return fmt.Errorf("core: table %s view %s: next syncs not strictly ascending after last sync (%v after %v)", ts.ID, vs.ID, n, prev)
			}
			prev = n
		}
	}
	return nil
}

// SiteUnavailableError is the typed degraded-mode failure: a query needs a
// table whose base site is down and no local replica exists (or none will
// exist within the planning horizon) to stand in for it.
type SiteUnavailableError struct {
	Table TableID
	Site  SiteID
	// Cause carries the underlying transport failure when the error is
	// raised at execution time rather than planning time; may be nil.
	Cause error
}

// Error implements the error interface.
func (e *SiteUnavailableError) Error() string {
	msg := fmt.Sprintf("degraded: table %s unavailable: site %d is down and no local replica exists", e.Table, e.Site)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying transport failure.
func (e *SiteUnavailableError) Unwrap() error { return e.Cause }

// Plan is a fully specified way to evaluate one query: a per-table access
// decision (aligned with Query.Tables) plus a start time and the cost
// estimate the planner used.
type Plan struct {
	Query  Query
	Access []TableAccess
	Start  Time // when the plan is released for execution (≥ submit)
	Cost   CostEstimate
}

// ExecStart returns when processing is expected to begin: release time plus
// estimated queuing delay.
func (p Plan) ExecStart() Time { return p.Start + p.Cost.Queue }

// ResultAt returns when the report is expected to arrive.
func (p Plan) ResultAt() Time { return p.ExecStart() + p.Cost.Process + p.Cost.Transmit }

// Latencies derives the plan's expected computational and synchronization
// latencies. CL runs from submission to result receipt — so a deliberately
// delayed plan pays its waiting time as computational latency, exactly as in
// Figure 2 of the paper. SL runs from the oldest freshness timestamp among
// accessed tables to result receipt; a base table is fresh as of the moment
// processing starts.
func (p Plan) Latencies() Latencies {
	exec := p.ExecStart()
	result := p.ResultAt()
	oldest := math.Inf(1)
	for _, a := range p.Access {
		fresh := a.Freshness
		if a.Kind == AccessBase {
			fresh = exec
		}
		oldest = math.Min(oldest, fresh)
	}
	if math.IsInf(oldest, 1) {
		// No accesses: a degenerate plan; treat data as perfectly fresh.
		oldest = result
	}
	return Latencies{
		CL: math.Max(result-p.Query.SubmitAt, 0),
		SL: math.Max(result-oldest, 0),
	}
}

// Value returns the plan's expected information value under the given rates.
func (p Plan) Value(r DiscountRates) float64 {
	return InformationValue(p.Query.BusinessValue, p.Latencies(), r)
}

// ViewAccess reports whether the plan is answered entirely from one
// materialized view — the only shape view plans take, since a view
// materializes a whole query's answer.
func (p Plan) ViewAccess() (TableAccess, bool) {
	if len(p.Access) == 1 && p.Access[0].Kind == AccessView {
		return p.Access[0], true
	}
	return TableAccess{}, false
}

// BaseTables returns the IDs of tables the plan reads remotely, in plan
// order.
func (p Plan) BaseTables() []TableID {
	var ids []TableID
	for _, a := range p.Access {
		if a.Kind == AccessBase {
			ids = append(ids, a.Table)
		}
	}
	return ids
}

// RemoteSites returns the distinct remote sites the plan touches, sorted.
func (p Plan) RemoteSites() []SiteID {
	set := make(map[SiteID]bool)
	for _, a := range p.Access {
		if a.Kind == AccessBase {
			set[a.Site] = true
		}
	}
	sites := make([]SiteID, 0, len(set))
	for s := range set {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// Signature returns a compact description of the plan's shape, e.g.
// "T1=base T2=replica@8.0 start=11.0". It is stable and intended for logs
// and tests.
func (p Plan) Signature() string {
	var b strings.Builder
	for i, a := range p.Access {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch a.Kind {
		case AccessBase:
			fmt.Fprintf(&b, "%s=base", a.Table)
		case AccessReplica:
			fmt.Fprintf(&b, "%s=replica@%.1f", a.Table, a.Freshness)
		case AccessView:
			fmt.Fprintf(&b, "%s=view:%s@%.1f", a.Table, a.View, a.Freshness)
		}
	}
	fmt.Fprintf(&b, " start=%.1f", p.Start)
	return b.String()
}
