package core

import (
	"testing"
)

// The tests in this file make the paper's illustrative figures (1–3)
// executable: each encodes the scenario the figure draws and asserts the
// trade-off the paper narrates.

// TestFigure1PlanSelection encodes Figure 1: a query runnable at the
// remote servers (plan 1: longer CL, SL equal to CL) or at the local
// server on replicas (plan 2: short CL, long SL). "If the discount rate of
// computational latency λCL is smaller than the discount rate of
// synchronization latency λSL, plan 1 may achieve a better information
// value than plan 2 [and vice versa]."
func TestFigure1PlanSelection(t *testing.T) {
	q := Query{ID: "Q1", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 100}
	// Replicas synchronized 20 minutes ago.
	remote := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "T1", Site: 1, Kind: AccessBase},
			{Table: "T2", Site: 2, Kind: AccessBase},
		},
		Start: 100,
		Cost:  CostEstimate{Process: 10, Transmit: 2},
	}
	local := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "T1", Kind: AccessReplica, Freshness: 80},
			{Table: "T2", Kind: AccessReplica, Freshness: 80},
		},
		Start: 100,
		Cost:  CostEstimate{Process: 3},
	}
	// Sanity: the latency structure the figure draws.
	if lr := remote.Latencies(); lr.CL != lr.SL {
		t.Fatalf("remote plan should have SL == CL, got %+v", lr)
	}
	ll := local.Latencies()
	if ll.CL >= remote.Latencies().CL {
		t.Fatalf("local plan should be faster")
	}
	if ll.SL <= remote.Latencies().SL {
		t.Fatalf("local plan should be staler")
	}

	clCheap := DiscountRates{CL: .01, SL: .10} // λCL < λSL → fresh remote wins
	if remote.Value(clCheap) <= local.Value(clCheap) {
		t.Errorf("λCL < λSL: remote %v should beat local %v",
			remote.Value(clCheap), local.Value(clCheap))
	}
	slCheap := DiscountRates{CL: .10, SL: .01} // λCL > λSL → fast local wins
	if local.Value(slCheap) <= remote.Value(slCheap) {
		t.Errorf("λCL > λSL: local %v should beat remote %v",
			local.Value(slCheap), remote.Value(slCheap))
	}
}

// TestFigure2DelayedExecution encodes Figure 2: a query issued between two
// synchronization cycles can either run immediately on the current replica
// or delay until the next synchronization completes. "If the discount rate
// of synchronization latency is greater than that of computational
// latency, such delayed plan is probable to generate a greater information
// value than executing the query immediately."
func TestFigure2DelayedExecution(t *testing.T) {
	q := Query{ID: "Q2", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 50}
	immediate := Plan{
		Query:  q,
		Access: []TableAccess{{Table: "T1", Kind: AccessReplica, Freshness: 30}},
		Start:  50,
		Cost:   CostEstimate{Process: 2},
	}
	delayed := Plan{
		Query:  q,
		Access: []TableAccess{{Table: "T1", Kind: AccessReplica, Freshness: 56}},
		Start:  56,
		Cost:   CostEstimate{Process: 2},
	}
	di, dd := immediate.Latencies(), delayed.Latencies()
	if dd.CL <= di.CL {
		t.Fatalf("delaying must add CL: %v vs %v", dd.CL, di.CL)
	}
	if dd.SL >= di.SL {
		t.Fatalf("delaying must cut SL: %v vs %v", dd.SL, di.SL)
	}
	slHeavy := DiscountRates{CL: .01, SL: .10}
	if delayed.Value(slHeavy) <= immediate.Value(slHeavy) {
		t.Errorf("λSL > λCL: delayed %v should beat immediate %v",
			delayed.Value(slHeavy), immediate.Value(slHeavy))
	}
	clHeavy := DiscountRates{CL: .10, SL: .01}
	if immediate.Value(clHeavy) <= delayed.Value(clHeavy) {
		t.Errorf("λCL > λSL: immediate %v should beat delayed %v",
			immediate.Value(clHeavy), delayed.Value(clHeavy))
	}
}

// TestFigure3PlanExploration encodes Figure 3: two tables T1 and T2 with
// replicas R1 and R2 on different cycles. At submission (t1) four
// immediate plans exist ({R1,R2}, {R1,T2}, {T1,R2}, {T1,T2}); waiting for
// R1's next synchronization (t2) adds two more; the paper stops the
// exploration there because "any plan based [on] replicas with time stamps
// newer than [that] will generate an information value less than plans 1
// to 8" — which is exactly what the search bound enforces.
func TestFigure3PlanExploration(t *testing.T) {
	// R1 synchronizes frequently, R2 slowly (as drawn).
	states := []TableState{
		{ID: "T1", Site: 1, Replica: &ReplicaState{LastSync: 90, NextSyncs: []Time{103, 106, 109}}},
		{ID: "T2", Site: 2, Replica: &ReplicaState{LastSync: 70, NextSyncs: []Time{130}}},
	}
	q := Query{ID: "Q", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 100}
	cost := countCost{local: 2, perBase: 4}
	rates := DiscountRates{CL: .05, SL: .05}

	sg := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: ScatterGatherFull})
	best, stats, err := sg.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	// The timeline must not run past the bound: with λ=.05 the all-base
	// seed (CL=SL=10) tolerates ~27 extra minutes, so t=130 (R2's next
	// sync) is within reach but later R1-only refreshes add nothing and
	// the search must stay finite and small.
	if stats.PlansEvaluated > 40 {
		t.Errorf("explored %d plans; the figure's pruning should keep this small", stats.PlansEvaluated)
	}
	ex := mustPlanner(t, cost, PlannerConfig{Rates: rates, Mode: Exhaustive})
	ref, _, err := ex.Best(q, states, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value(rates) < ref.Value(rates)-1e-9 {
		t.Errorf("bounded exploration missed the optimum: %v vs %v", best.Value(rates), ref.Value(rates))
	}
}

// TestFigure3InferiorCombinationsPruned: the paper notes that "{R1, R2'}
// is inferior to {R1', R2'} regardless of how values of the discount rates
// SL and CL are configured" — using an older version of a replica when a
// newer one is available at the same instant can never help.
func TestFigure3InferiorCombinationsPruned(t *testing.T) {
	q := Query{ID: "Q", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 100}
	newer := Plan{
		Query: q,
		Access: []TableAccess{
			{Table: "T1", Kind: AccessReplica, Freshness: 95},
			{Table: "T2", Kind: AccessReplica, Freshness: 90},
		},
		Start: 100,
		Cost:  CostEstimate{Process: 2},
	}
	older := newer
	older.Access = []TableAccess{
		{Table: "T1", Kind: AccessReplica, Freshness: 80}, // stale version
		{Table: "T2", Kind: AccessReplica, Freshness: 90},
	}
	for _, rates := range []DiscountRates{
		{CL: .01, SL: .01}, {CL: .2, SL: .01}, {CL: .01, SL: .2}, {CL: .1, SL: .1},
	} {
		if older.Value(rates) > newer.Value(rates)+1e-12 {
			t.Errorf("rates %+v: older replica version beat newer", rates)
		}
	}
}
