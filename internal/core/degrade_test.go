package core

import (
	"errors"
	"testing"
)

// Tests for planner-level failure degradation: BaseDown tables must never
// be read from their base site, replicas stand in with their true
// staleness, and an unreplicated down table raises SiteUnavailableError.

func baseDownState(states []TableState, id TableID) []TableState {
	out := make([]TableState, len(states))
	copy(out, states)
	for i := range out {
		if out[i].ID == id {
			out[i].BaseDown = true
		}
	}
	return out
}

func assertNoBaseAccess(t *testing.T, plan Plan, id TableID) {
	t.Helper()
	for _, a := range plan.Access {
		if a.Table == id && a.Kind == AccessBase {
			t.Fatalf("plan reads %s from its down base site: %s", id, plan.Signature())
		}
	}
}

func TestPlannerExcludesDownSiteAllModes(t *testing.T) {
	cost := countCost{local: 2, perBase: 2}
	q := figure4Query()
	for _, mode := range []SearchMode{ScatterGather, ScatterGatherFull, Exhaustive} {
		p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}, Mode: mode})
		states := baseDownState(figure4State(), "T2")
		plan, _, err := p.Best(q, states, q.SubmitAt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assertNoBaseAccess(t, plan, "T2")
	}
}

func TestPlannerDownTableUsesTrueStaleness(t *testing.T) {
	// One table, replica synced at 2, submission at 11: with the base site
	// down the only immediate option is the stale replica, so SL must
	// reflect the sync age plus processing.
	p := mustPlanner(t, countCost{local: 2, perBase: 2}, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}, Horizon: 5})
	states := []TableState{
		{ID: "T1", Site: 1, BaseDown: true, Replica: &ReplicaState{LastSync: 2}},
	}
	q := Query{ID: "Q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 11}
	plan, _, err := p.Best(q, states, 11)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access[0].Kind != AccessReplica || plan.Access[0].Freshness != 2 {
		t.Fatalf("plan = %s, want replica@2", plan.Signature())
	}
	lat := plan.Latencies()
	if lat.SL <= lat.CL {
		t.Errorf("SL %v not larger than CL %v despite 9-minute-stale replica", lat.SL, lat.CL)
	}
}

func TestPlannerUnreplicatedDownTableFailsTyped(t *testing.T) {
	cost := countCost{local: 2, perBase: 2}
	q := Query{ID: "Q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 0}
	for _, mode := range []SearchMode{ScatterGather, ScatterGatherFull, Exhaustive} {
		p := mustPlanner(t, cost, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}, Mode: mode})
		states := []TableState{{ID: "T1", Site: 3, BaseDown: true}}
		_, _, err := p.Best(q, states, 0)
		var ue *SiteUnavailableError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: err = %v, want SiteUnavailableError", mode, err)
		}
		if ue.Table != "T1" || ue.Site != 3 {
			t.Errorf("%v: error identifies %s/site %d", mode, ue.Table, ue.Site)
		}
	}
}

func TestPlannerDownTableWithOnlyFutureReplicaDelays(t *testing.T) {
	// The down table's first replica materializes at t=5: the plan must
	// wait for it rather than fail or read base.
	p := mustPlanner(t, countCost{local: 2, perBase: 2}, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}, Horizon: 30})
	states := []TableState{
		{ID: "T1", Site: 1, BaseDown: true, Replica: &ReplicaState{LastSync: 5, NextSyncs: []Time{15}}},
	}
	q := Query{ID: "Q", Tables: []TableID{"T1"}, BusinessValue: 1, SubmitAt: 0}
	plan, _, err := p.Best(q, states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access[0].Kind != AccessReplica {
		t.Fatalf("plan = %s", plan.Signature())
	}
	if plan.Start < 5 {
		t.Errorf("plan starts at %v, before the first replica exists", plan.Start)
	}

	// Outside the horizon the same state is a typed failure.
	tight := mustPlanner(t, countCost{local: 2, perBase: 2}, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}, Horizon: 2})
	_, _, err = tight.Best(q, states, 0)
	var ue *SiteUnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want SiteUnavailableError beyond horizon", err)
	}
}

func TestPlannerMixedDownAndUpSites(t *testing.T) {
	// T1's site is down (replica available), T2's site is up and
	// unreplicated: the plan must pair T1's replica with T2's base.
	p := mustPlanner(t, countCost{local: 2, perBase: 2}, PlannerConfig{Rates: DiscountRates{CL: .02, SL: .02}})
	states := []TableState{
		{ID: "T1", Site: 1, BaseDown: true, Replica: &ReplicaState{LastSync: 8}},
		{ID: "T2", Site: 2},
	}
	q := Query{ID: "Q", Tables: []TableID{"T1", "T2"}, BusinessValue: 1, SubmitAt: 10}
	plan, _, err := p.Best(q, states, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertNoBaseAccess(t, plan, "T1")
	if plan.Access[1].Kind != AccessBase {
		t.Errorf("T2 access = %v, want base", plan.Access[1].Kind)
	}
}
