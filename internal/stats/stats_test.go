package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialStreamMean(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{"mean 1", 1},
		{"mean 10", 10},
		{"mean 0.1", 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewExponentialStream(tt.mean, 42)
			const n = 200000
			var sum float64
			for i := 0; i < n; i++ {
				sum += s.Next()
			}
			got := sum / n
			if rel := math.Abs(got-tt.mean) / tt.mean; rel > 0.02 {
				t.Errorf("empirical mean %v, want %v (rel err %v)", got, tt.mean, rel)
			}
		})
	}
}

func TestExponentialStreamDeterministic(t *testing.T) {
	a := NewExponentialStream(5, 7)
	b := NewExponentialStream(5, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("sample %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestExponentialStreamPositive(t *testing.T) {
	s := NewExponentialStream(3, 1)
	for i := 0; i < 10000; i++ {
		if x := s.Next(); x < 0 {
			t.Fatalf("negative sample %v", x)
		}
	}
}

func TestExponentialStreamPanicsOnBadMean(t *testing.T) {
	for _, mean := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mean %v: expected panic", mean)
				}
			}()
			NewExponentialStream(mean, 1)
		}()
	}
}

func TestUniformStreamBounds(t *testing.T) {
	s := NewUniformStream(2, 9, 11)
	for i := 0; i < 10000; i++ {
		x := s.Next()
		if x < 2 || x >= 9 {
			t.Fatalf("sample %v outside [2, 9)", x)
		}
	}
}

func TestUniformStreamPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUniformStream(5, 5, 1)
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10, 1.5, 3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("zipf counts not skewed: %v", counts)
	}
}

func TestSourcePickN(t *testing.T) {
	s := NewSource(5)
	picked := s.PickN(20, 7)
	if len(picked) != 7 {
		t.Fatalf("len = %d, want 7", len(picked))
	}
	seen := make(map[int]bool)
	for _, p := range picked {
		if p < 0 || p >= 20 {
			t.Errorf("pick %d outside [0, 20)", p)
		}
		if seen[p] {
			t.Errorf("duplicate pick %d", p)
		}
		seen[p] = true
	}
}

func TestSourcePickNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	NewSource(1).PickN(3, 4)
}

func TestSourceForkIndependence(t *testing.T) {
	a := NewSource(9).Fork(1)
	b := NewSource(9).Fork(1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("forked sources with identical lineage diverged")
		}
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev({1,3}) = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		got := Percentile(xs, pp)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
