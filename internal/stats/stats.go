// Package stats provides the deterministic random streams used by the
// simulator and the workload generators.
//
// It is the substitute for the JavaSim stream classes the paper relies on
// (notably ExponentialStream): every stream is seeded explicitly so that a
// whole experiment is reproducible bit-for-bit from its seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Stream produces an endless sequence of float64 samples.
type Stream interface {
	// Next returns the next sample from the stream.
	Next() float64
}

// ExponentialStream draws exponentially distributed samples with a fixed
// mean. It mirrors JavaSim's ExponentialStream, which the paper uses to
// model both data-synchronization cycles and query arrivals.
type ExponentialStream struct {
	mean float64
	rng  *rand.Rand
}

var _ Stream = (*ExponentialStream)(nil)

// NewExponentialStream returns a stream with the given mean inter-sample
// value, seeded deterministically. It panics if mean is not positive; a
// non-positive mean is a programming error, not a runtime condition.
func NewExponentialStream(mean float64, seed int64) *ExponentialStream {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %v", mean))
	}
	return &ExponentialStream{mean: mean, rng: rand.New(rand.NewSource(seed))}
}

// Mean returns the configured mean of the stream.
func (s *ExponentialStream) Mean() float64 { return s.mean }

// Next returns the next exponentially distributed sample.
func (s *ExponentialStream) Next() float64 {
	return s.rng.ExpFloat64() * s.mean
}

// UniformStream draws samples uniformly from [low, high).
type UniformStream struct {
	low, high float64
	rng       *rand.Rand
}

var _ Stream = (*UniformStream)(nil)

// NewUniformStream returns a uniform stream over [low, high). It panics if
// high <= low.
func NewUniformStream(low, high float64, seed int64) *UniformStream {
	if high <= low {
		panic(fmt.Sprintf("stats: uniform bounds inverted: [%v, %v)", low, high))
	}
	return &UniformStream{low: low, high: high, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next uniformly distributed sample.
func (s *UniformStream) Next() float64 {
	return s.low + s.rng.Float64()*(s.high-s.low)
}

// Zipf draws integers in [0, n) with a Zipfian (skewed) distribution. The
// paper's skewed table placement (half the tables on site 0, a quarter on
// site 1, ...) is a special case with exponent ~1 over site ranks; Zipf is
// also used to skew table popularity in synthetic workloads.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf source over [0, n) with skew s > 1.
// It panics on invalid parameters.
func NewZipf(n uint64, s float64, seed int64) *Zipf {
	if n == 0 {
		panic("stats: zipf requires n > 0")
	}
	if s <= 1 {
		panic(fmt.Sprintf("stats: zipf skew must be > 1, got %v", s))
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Next returns the next Zipf-distributed integer.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Source is a deterministic convenience wrapper around math/rand used by
// generators that need several primitive draw kinds from one seed.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a deterministic Source for the given seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Float64 returns a uniform sample from [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Expo returns an exponential sample with the given mean.
func (s *Source) Expo(mean float64) float64 { return s.rng.ExpFloat64() * mean }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomly reorders n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// PickN returns k distinct integers sampled uniformly from [0, n), in random
// order. It panics if k > n or k < 0.
func (s *Source) PickN(n, k int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("stats: PickN(%d, %d) out of range", n, k))
	}
	return s.rng.Perm(n)[:k]
}

// Fork derives a child source whose stream is a deterministic function of
// the parent state plus the supplied label, so that adding a new consumer
// does not perturb unrelated streams.
func (s *Source) Fork(label int64) *Source {
	return NewSource(s.rng.Int63() ^ label)
}

// FNV1a hashes a string (FNV-1a, 64-bit). It is the repo's canonical way
// to turn a stable name into seed material.
func FNV1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SubSeed derives an independent stream seed from a base seed and a stable
// label. Unlike chaining draws off one shared source, a labelled sub-seed
// is a pure function of (base, label): adding or removing one consumer
// never perturbs another consumer's stream.
func SubSeed(base int64, label string) int64 {
	return base ^ int64(FNV1a(label))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input need not be sorted; xs is
// not modified. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sortFloats(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func sortFloats(xs []float64) {
	// Insertion sort is sufficient here: Percentile is used on small
	// per-experiment result sets, never on hot paths.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
