package sqlmini

import (
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// env binds column references to positions in a working table whose columns
// carry qualified names ("alias.col") or derived-expression names.
type env struct {
	schema relation.Schema
	memo   *envMemo
}

// envMemo caches name resolution per schema, keyed by AST node identity:
// resolution is a pure function of (node, schema), so resolving once per
// env instead of once per row takes the lower-cased suffix scan (and the
// String() rendering behind derived-column lookups) out of the row loop.
type envMemo struct {
	cols    map[*ColumnRef]colRes
	derived map[Expr]int
}

type colRes struct {
	idx int
	err error
}

// newEnv returns an env with resolution memoization enabled. The zero
// env still works (memo checks are nil-guarded) but resolves per call.
func newEnv(schema relation.Schema) env {
	return env{schema: schema, memo: &envMemo{}}
}

// resolve finds the column position for a reference. Qualified references
// match "qualifier.name" exactly; unqualified references match either a
// whole column name (derived columns) or a unique ".name" suffix. Results
// are memoized per env: the scan runs once per reference, not per row.
func (e env) resolve(ref *ColumnRef) (int, error) {
	if e.memo != nil {
		if r, ok := e.memo.cols[ref]; ok {
			return r.idx, r.err
		}
	}
	idx, err := e.resolveScan(ref)
	if e.memo != nil {
		if e.memo.cols == nil {
			e.memo.cols = make(map[*ColumnRef]colRes)
		}
		e.memo.cols[ref] = colRes{idx: idx, err: err}
	}
	return idx, err
}

func (e env) resolveScan(ref *ColumnRef) (int, error) {
	if ref.Qualifier != "" {
		if i := e.schema.ColIndex(ref.Qualifier + "." + ref.Name); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("sqlmini: unknown column %s", ref)
	}
	if i := e.schema.ColIndex(ref.Name); i >= 0 {
		return i, nil
	}
	found := -1
	suffix := "." + strings.ToLower(ref.Name)
	for i, c := range e.schema.Cols {
		if strings.HasSuffix(strings.ToLower(c.Name), suffix) {
			if found >= 0 {
				return -1, fmt.Errorf("sqlmini: ambiguous column %s (matches %s and %s)",
					ref.Name, e.schema.Cols[found].Name, c.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sqlmini: unknown column %s", ref)
	}
	return found, nil
}

// lookupDerived finds a column whose name equals the rendered expression,
// used to read back materialized aggregate and group-key columns. The
// result is memoized by node identity so the rendering happens once per
// env, not once per row.
func (e env) lookupDerived(expr Expr) (int, bool) {
	if e.memo != nil {
		if i, ok := e.memo.derived[expr]; ok {
			return i, i >= 0
		}
	}
	i := e.schema.ColIndex(expr.String())
	if e.memo != nil {
		if e.memo.derived == nil {
			e.memo.derived = make(map[Expr]int)
		}
		e.memo.derived[expr] = i
	}
	return i, i >= 0
}

// eval computes an expression over one row. Boolean results are
// represented as Int 1/0. Aggregates are invalid here: the executor
// materializes them into columns before any per-row evaluation, so hitting
// one means the query used an aggregate where none is allowed.
func eval(e Expr, en env, row relation.Row) (relation.Value, error) {
	// Derived columns (materialized aggregates, group keys) shadow
	// structural evaluation.
	if _, ok := e.(*ColumnRef); !ok {
		if i, ok := en.lookupDerived(e); ok {
			return row[i], nil
		}
	}
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		i, err := en.resolve(x)
		if err != nil {
			return relation.Value{}, err
		}
		return row[i], nil
	case *BinaryExpr:
		return evalBinary(x, en, row)
	case *NotExpr:
		b, err := evalBool(x.Inner, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		return boolVal(!b), nil
	case *BetweenExpr:
		s, err := eval(x.Subject, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		lo, err := eval(x.Lo, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		hi, err := eval(x.Hi, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		cLo, err := compareCoerced(s, lo)
		if err != nil {
			return relation.Value{}, err
		}
		cHi, err := compareCoerced(s, hi)
		if err != nil {
			return relation.Value{}, err
		}
		return boolVal(cLo >= 0 && cHi <= 0), nil
	case *InExpr:
		s, err := eval(x.Subject, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		for _, opt := range x.Options {
			o, err := eval(opt, en, row)
			if err != nil {
				return relation.Value{}, err
			}
			c, err := compareCoerced(s, o)
			if err != nil {
				return relation.Value{}, err
			}
			if c == 0 {
				return boolVal(true), nil
			}
		}
		return boolVal(false), nil
	case *LikeExpr:
		s, err := eval(x.Subject, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		if s.T != relation.Str {
			return relation.Value{}, fmt.Errorf("sqlmini: LIKE over non-string %s", s.T)
		}
		return boolVal(likeMatch(s.S, x.Pattern)), nil
	case *AggExpr:
		return relation.Value{}, fmt.Errorf("sqlmini: aggregate %s not allowed here", x)
	default:
		return relation.Value{}, fmt.Errorf("sqlmini: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, en env, row relation.Row) (relation.Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalBool(x.Left, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		if !l {
			return boolVal(false), nil
		}
		r, err := evalBool(x.Right, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		return boolVal(r), nil
	case "OR":
		l, err := evalBool(x.Left, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		if l {
			return boolVal(true), nil
		}
		r, err := evalBool(x.Right, en, row)
		if err != nil {
			return relation.Value{}, err
		}
		return boolVal(r), nil
	}

	l, err := eval(x.Left, en, row)
	if err != nil {
		return relation.Value{}, err
	}
	r, err := eval(x.Right, en, row)
	if err != nil {
		return relation.Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := compareCoerced(l, r)
		if err != nil {
			return relation.Value{}, err
		}
		switch x.Op {
		case "=":
			return boolVal(c == 0), nil
		case "<>":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case "+", "-", "*", "/":
		return arith(x.Op, l, r)
	default:
		return relation.Value{}, fmt.Errorf("sqlmini: unknown operator %q", x.Op)
	}
}

func evalBool(e Expr, en env, row relation.Row) (bool, error) {
	v, err := eval(e, en, row)
	if err != nil {
		return false, err
	}
	switch v.T {
	case relation.Int:
		return v.I != 0, nil
	case relation.Float:
		return v.F != 0, nil
	default:
		return false, fmt.Errorf("sqlmini: non-boolean value %s in predicate", v)
	}
}

func boolVal(b bool) relation.Value {
	if b {
		return relation.IntVal(1)
	}
	return relation.IntVal(0)
}

// compareCoerced compares values, additionally coercing a string literal to
// a Date when compared against a Date column (so `ship_date <= '1998-09-02'`
// works without the DATE keyword).
func compareCoerced(a, b relation.Value) (int, error) {
	if a.T == relation.Date && b.T == relation.Str {
		parsed, err := relation.ParseDate(b.S)
		if err != nil {
			return 0, err
		}
		b = parsed
	}
	if a.T == relation.Str && b.T == relation.Date {
		parsed, err := relation.ParseDate(a.S)
		if err != nil {
			return 0, err
		}
		a = parsed
	}
	return relation.Compare(a, b)
}

func arith(op string, l, r relation.Value) (relation.Value, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return relation.Value{}, fmt.Errorf("sqlmini: arithmetic %q over %s and %s", op, l.T, r.T)
	}
	bothInt := l.T == relation.Int && r.T == relation.Int
	switch op {
	case "+":
		if bothInt {
			return relation.IntVal(l.I + r.I), nil
		}
		return relation.FloatVal(lf + rf), nil
	case "-":
		if bothInt {
			return relation.IntVal(l.I - r.I), nil
		}
		return relation.FloatVal(lf - rf), nil
	case "*":
		if bothInt {
			return relation.IntVal(l.I * r.I), nil
		}
		return relation.FloatVal(lf * rf), nil
	case "/":
		if rf == 0 {
			return relation.Value{}, fmt.Errorf("sqlmini: division by zero")
		}
		return relation.FloatVal(lf / rf), nil
	default:
		return relation.Value{}, fmt.Errorf("sqlmini: unknown arithmetic op %q", op)
	}
}

// likeMatch implements SQL LIKE with % wildcards (no underscore support).
func likeMatch(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return strings.HasSuffix(s, last)
}

// inferType predicts an expression's output type so empty results still
// carry a schema.
func inferType(e Expr, en env) relation.Type {
	if _, ok := e.(*ColumnRef); !ok {
		if i, ok := en.lookupDerived(e); ok {
			return en.schema.Cols[i].Type
		}
	}
	switch x := e.(type) {
	case *Literal:
		return x.Val.T
	case *ColumnRef:
		if i, err := en.resolve(x); err == nil {
			return en.schema.Cols[i].Type
		}
		return relation.Float
	case *BinaryExpr:
		switch x.Op {
		case "+", "-", "*":
			if inferType(x.Left, en) == relation.Int && inferType(x.Right, en) == relation.Int {
				return relation.Int
			}
			return relation.Float
		case "/":
			return relation.Float
		default:
			return relation.Int // boolean
		}
	case *NotExpr, *BetweenExpr, *InExpr, *LikeExpr:
		return relation.Int // boolean
	case *AggExpr:
		switch x.Fn {
		case relation.Count, relation.CountDistinct:
			return relation.Int
		case relation.Min, relation.Max:
			if x.Arg != nil {
				return inferType(x.Arg, en)
			}
			return relation.Float
		default:
			return relation.Float
		}
	default:
		return relation.Float
	}
}
