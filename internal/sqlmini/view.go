package sqlmini

import (
	"context"
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// Incremental view maintenance: CompileView turns a maintainable SELECT
// into a delta program that folds base-table delta rows into running
// aggregate state (or a filtered detail-row buffer) and re-renders the
// query's full answer on demand.
//
// Exactness argument: base tables in this system are append-only, and the
// supported aggregates (SUM, COUNT, AVG, MIN, MAX, COUNT DISTINCT) are all
// distributive or algebraic over row insertion, so folding deltas group by
// group reproduces relation.Aggregate's result over the full table. The
// one order-sensitive output property — first-seen group order — is also
// preserved, because deltas arrive in base-table append order, which is
// exactly the order a full scan would visit rows in. The differential test
// in view_test.go pins this equivalence over randomized delta sequences.
//
// Maintainability is deliberately narrow: a single FROM table and no
// JOINs. A join delta would need the other side's full state to compute
// its contribution, which is precisely the shipping cost views exist to
// avoid.

// ViewMaintainable reports whether the statement can be maintained
// incrementally as a materialized view.
func ViewMaintainable(stmt *SelectStmt) error {
	if len(stmt.From) != 1 {
		return fmt.Errorf("sqlmini: view not maintainable: needs exactly one FROM table, got %d", len(stmt.From))
	}
	if len(stmt.Joins) != 0 {
		return fmt.Errorf("sqlmini: view not maintainable: JOIN requires the join partner's full state per delta")
	}
	return nil
}

// ViewWire derives what the sync agent asks the base site to ship for a
// view: the base table name, a filter predicate rendered in the base
// table's bare column names (empty when the view has no WHERE), and the
// columns the view reads (nil means every column — either the view selects
// *, or it reads none by name and the wire needs some column to carry row
// existence). Filtering and projecting at the base site is a pure byte
// optimization: the delta program re-applies the WHERE clause locally, so
// an unfiltered stream produces the same view.
func ViewWire(stmt *SelectStmt) (table, filter string, columns []string, err error) {
	if err := ViewMaintainable(stmt); err != nil {
		return "", "", nil, err
	}
	ref := stmt.From[0]
	alias := ref.EffectiveAlias()

	// Output column names, as project derives them: an unqualified ORDER BY
	// reference matching one is a sort over the result, not a base column.
	outNames := make(map[string]bool)
	for _, it := range stmt.Items {
		if it.Star {
			continue
		}
		name := it.Alias
		if name == "" {
			if ref, ok := it.Expr.(*ColumnRef); ok {
				name = ref.Name
			} else {
				name = it.Expr.String()
			}
		}
		outNames[strings.ToLower(name)] = true
	}

	var refs []*ColumnRef
	for _, it := range stmt.Items {
		if !it.Star {
			collectColumnRefs(it.Expr, &refs)
		}
	}
	collectColumnRefs(stmt.Where, &refs)
	for _, g := range stmt.GroupBy {
		collectColumnRefs(g, &refs)
	}
	collectColumnRefs(stmt.Having, &refs)
	for _, o := range stmt.OrderBy {
		if ref, ok := o.Expr.(*ColumnRef); ok && ref.Qualifier == "" && outNames[strings.ToLower(ref.Name)] {
			continue
		}
		collectColumnRefs(o.Expr, &refs)
	}
	for _, r := range refs {
		if r.Qualifier != "" && !strings.EqualFold(r.Qualifier, alias) {
			return "", "", nil, fmt.Errorf("sqlmini: view over %s: column %s qualified by unknown alias", ref.Name, r)
		}
	}

	star := false
	for _, it := range stmt.Items {
		if it.Star {
			star = true
			break
		}
	}
	if !star {
		seen := make(map[string]bool)
		for _, r := range refs {
			key := strings.ToLower(r.Name)
			if !seen[key] {
				seen[key] = true
				columns = append(columns, r.Name)
			}
		}
	}
	if len(columns) == 0 {
		columns = nil
	}

	if stmt.Where != nil {
		filter = stripQualifier(stmt.Where, alias).String()
	}
	return ref.Name, filter, columns, nil
}

// WireSQL renders the shipping query for a view's ViewWire triple: the
// SELECT the sync agent (or a base site applying delta projection) runs
// over base rows to produce exactly the rows the view's delta program
// consumes. Nil columns ship every column.
func WireSQL(table, filter string, columns []string) string {
	sel := "*"
	if columns != nil {
		sel = strings.Join(columns, ", ")
	}
	sql := "SELECT " + sel + " FROM " + table
	if filter != "" {
		sql += " WHERE " + filter
	}
	return sql
}

// collectColumnRefs appends every column reference in the expression.
func collectColumnRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case nil:
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		collectColumnRefs(x.Left, out)
		collectColumnRefs(x.Right, out)
	case *NotExpr:
		collectColumnRefs(x.Inner, out)
	case *BetweenExpr:
		collectColumnRefs(x.Subject, out)
		collectColumnRefs(x.Lo, out)
		collectColumnRefs(x.Hi, out)
	case *InExpr:
		collectColumnRefs(x.Subject, out)
		for _, o := range x.Options {
			collectColumnRefs(o, out)
		}
	case *LikeExpr:
		collectColumnRefs(x.Subject, out)
	case *AggExpr:
		collectColumnRefs(x.Arg, out)
	}
}

// viewGroup is the running state of one group, mirroring the accumulator
// inside relation.Aggregate cell for cell.
type viewGroup struct {
	key      relation.Row
	sums     []float64
	counts   []int64
	mins     []relation.Value
	maxs     []relation.Value
	distinct []map[any]bool
	n        int64
}

// ViewProgram is a compiled delta program for one materialized view. Apply
// folds shipped delta rows into the program's state; Result re-renders the
// query's answer as a fresh table (copy-on-write: tables returned earlier
// are never mutated by later Applies). The program is not safe for
// concurrent use; the view's owner serializes Apply and Result. Apply
// retains the rows it is given.
type ViewProgram struct {
	stmt   *SelectStmt     // star-expanded against the shipped schema
	alias  string          // effective alias of the single FROM table
	schema relation.Schema // shipped schema qualified as "alias.col"
	en     env
	where  Expr
	agg    bool

	// Aggregate pipeline (agg == true): derived-row layout and group state.
	derived   relation.Schema
	exprs     []Expr
	groupCols []int
	specs     []relation.AggSpec
	groups    map[string]*viewGroup
	order     []string // first-seen group order

	// Detail buffer (agg == false): filtered rows in arrival order.
	rows []relation.Row

	folded int64
}

// CompileView compiles the statement into a delta program over the shipped
// schema — the base table's columns as named by ViewWire (bare names; the
// program qualifies them with the FROM alias, exactly as the full executor
// would after loading the table).
func CompileView(stmt *SelectStmt, shipped relation.Schema) (*ViewProgram, error) {
	if err := ViewMaintainable(stmt); err != nil {
		return nil, err
	}
	alias := stmt.From[0].EffectiveAlias()
	cols := make([]relation.Column, len(shipped.Cols))
	for i, c := range shipped.Cols {
		cols[i] = relation.Column{Name: alias + "." + c.Name, Type: c.Type}
	}
	schema := relation.Schema{Cols: cols}
	en := newEnv(schema)

	stmtX, err := expandStars(stmt, schema)
	if err != nil {
		return nil, err
	}
	agg := len(stmtX.GroupBy) > 0 || containsAggregate(stmtX)
	if !agg && stmtX.Having != nil {
		return nil, fmt.Errorf("sqlmini: HAVING without aggregation")
	}

	p := &ViewProgram{
		stmt:   stmtX,
		alias:  alias,
		schema: schema,
		en:     en,
		where:  stmtX.Where,
		agg:    agg,
	}
	if !agg {
		return p, nil
	}

	// Derived-row layout: group-key columns then aggregate-arg columns,
	// matching the executor's aggregate() phase.
	aggs := collectAggs(stmtX)
	derivedCols := make([]relation.Column, 0, len(stmtX.GroupBy)+len(aggs))
	exprs := make([]Expr, 0, cap(derivedCols))
	for _, g := range stmtX.GroupBy {
		derivedCols = append(derivedCols, relation.Column{Name: groupColName(g), Type: inferType(g, en)})
		exprs = append(exprs, g)
	}
	for _, a := range aggs {
		typ := relation.Float
		if a.Star || a.Arg == nil {
			typ = relation.Int
		} else {
			typ = inferType(a.Arg, en)
		}
		derivedCols = append(derivedCols, relation.Column{Name: "arg:" + a.String(), Type: typ})
		if a.Star {
			exprs = append(exprs, &Literal{Val: relation.IntVal(1)})
		} else {
			exprs = append(exprs, a.Arg)
		}
	}
	p.derived = relation.Schema{Cols: derivedCols}
	p.exprs = exprs
	p.groupCols = make([]int, len(stmtX.GroupBy))
	for i := range stmtX.GroupBy {
		p.groupCols[i] = i
	}
	p.specs = make([]relation.AggSpec, len(aggs))
	for i, a := range aggs {
		col := len(stmtX.GroupBy) + i
		if a.Star {
			p.specs[i] = relation.AggSpec{Fn: relation.Count, Col: col, As: a.String()}
			continue
		}
		p.specs[i] = relation.AggSpec{Fn: a.Fn, Col: col, As: a.String()}
	}
	p.groups = make(map[string]*viewGroup)
	return p, nil
}

// Folded returns how many delta rows the program has folded in (after the
// local WHERE re-filter).
func (p *ViewProgram) Folded() int64 { return p.folded }

// Reset clears the program's state so a full snapshot can be re-applied
// from scratch — the view's recovery path when its delta cursor is lost.
func (p *ViewProgram) Reset() {
	p.folded = 0
	p.rows = nil
	p.order = nil
	if p.agg {
		p.groups = make(map[string]*viewGroup)
	}
}

// Apply folds a batch of shipped delta rows (shaped by the shipped schema,
// in base-table append order) into the view state. The WHERE clause is
// re-applied locally, so Apply accepts both pre-filtered wire streams and
// raw base rows.
func (p *ViewProgram) Apply(ctx context.Context, rows []relation.Row) error {
	cc := canceller{ctx: ctx}
	for _, row := range rows {
		if err := cc.tick(); err != nil {
			return err
		}
		if len(row) != p.schema.Arity() {
			return fmt.Errorf("sqlmini: view delta row has %d cells, shipped schema has %d", len(row), p.schema.Arity())
		}
		if p.where != nil {
			ok, err := evalBool(p.where, p.en, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if !p.agg {
			p.rows = append(p.rows, row)
			p.folded++
			continue
		}
		if err := p.fold(row); err != nil {
			return err
		}
		p.folded++
	}
	return nil
}

// fold accumulates one filtered row into its group, mirroring
// relation.Aggregate's per-row switch exactly.
func (p *ViewProgram) fold(row relation.Row) error {
	nr := make(relation.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := eval(e, p.en, row)
		if err != nil {
			return err
		}
		nr[i] = v
	}
	k := relation.RowKey(nr, p.groupCols)
	g, ok := p.groups[k]
	if !ok {
		g = &viewGroup{
			sums:     make([]float64, len(p.specs)),
			counts:   make([]int64, len(p.specs)),
			mins:     make([]relation.Value, len(p.specs)),
			maxs:     make([]relation.Value, len(p.specs)),
			distinct: make([]map[any]bool, len(p.specs)),
		}
		g.key = make(relation.Row, len(p.groupCols))
		for i, c := range p.groupCols {
			g.key[i] = nr[c]
		}
		p.groups[k] = g
		p.order = append(p.order, k)
	}
	g.n++
	for i, a := range p.specs {
		switch a.Fn {
		case relation.Count:
			g.counts[i]++
		case relation.CountDistinct:
			if g.distinct[i] == nil {
				g.distinct[i] = make(map[any]bool)
			}
			g.distinct[i][nr[a.Col].Key()] = true
		case relation.Sum, relation.Avg:
			f, ok := nr[a.Col].AsFloat()
			if !ok {
				return fmt.Errorf("sqlmini: %s over non-numeric column %s", a.Fn, p.derived.Cols[a.Col].Name)
			}
			g.sums[i] += f
			g.counts[i]++
		case relation.Min, relation.Max:
			v := nr[a.Col]
			cur := g.mins[i]
			if a.Fn == relation.Max {
				cur = g.maxs[i]
			}
			if cur.T == 0 {
				g.mins[i], g.maxs[i] = v, v
				continue
			}
			c, err := relation.Compare(v, cur)
			if err != nil {
				return err
			}
			if a.Fn == relation.Min && c < 0 {
				g.mins[i] = v
			}
			if a.Fn == relation.Max && c > 0 {
				g.maxs[i] = v
			}
		default:
			return fmt.Errorf("sqlmini: unknown aggregate %d", int(a.Fn))
		}
	}
	return nil
}

// renderAggregate materializes the group state as the table
// relation.Aggregate would produce over the full filtered input, including
// the single zero row a global aggregate yields over an empty set.
func (p *ViewProgram) renderAggregate() *relation.Table {
	outCols := make([]relation.Column, 0, len(p.groupCols)+len(p.specs))
	for _, c := range p.groupCols {
		outCols = append(outCols, p.derived.Cols[c])
	}
	for _, a := range p.specs {
		typ := relation.Float
		if a.Fn == relation.Count || a.Fn == relation.CountDistinct {
			typ = relation.Int
		}
		if a.Fn == relation.Min || a.Fn == relation.Max {
			typ = p.derived.Cols[a.Col].Type
		}
		outCols = append(outCols, relation.Column{Name: a.As, Type: typ})
	}
	out := &relation.Table{Name: p.alias, Schema: relation.Schema{Cols: outCols}}

	if len(p.order) == 0 && len(p.groupCols) == 0 {
		row := make(relation.Row, 0, len(p.specs))
		for _, a := range p.specs {
			switch a.Fn {
			case relation.Count, relation.CountDistinct:
				row = append(row, relation.IntVal(0))
			case relation.Min, relation.Max:
				row = append(row, relation.Value{T: out.Schema.Cols[len(p.groupCols)+len(row)].Type})
			default:
				row = append(row, relation.FloatVal(0))
			}
		}
		out.Rows = append(out.Rows, row)
		return out
	}

	for _, k := range p.order {
		g := p.groups[k]
		row := make(relation.Row, 0, out.Schema.Arity())
		row = append(row, g.key...)
		for i, a := range p.specs {
			switch a.Fn {
			case relation.Count:
				row = append(row, relation.IntVal(g.counts[i]))
			case relation.CountDistinct:
				row = append(row, relation.IntVal(int64(len(g.distinct[i]))))
			case relation.Sum:
				row = append(row, relation.FloatVal(g.sums[i]))
			case relation.Avg:
				row = append(row, relation.FloatVal(g.sums[i]/float64(g.counts[i])))
			case relation.Min:
				row = append(row, g.mins[i])
			case relation.Max:
				row = append(row, g.maxs[i])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Result renders the view's current answer: the same HAVING / SELECT /
// DISTINCT / ORDER BY / LIMIT pipeline the full executor runs, fed from
// the incrementally maintained state instead of a fresh scan. The returned
// table shares nothing mutable with the program.
func (p *ViewProgram) Result(ctx context.Context) (*relation.Table, error) {
	if !p.agg {
		working := &relation.Table{Name: p.alias, Schema: p.schema, Rows: p.rows}
		return project(ctx, p.stmt, working, p.en)
	}
	working := p.renderAggregate()
	en := newEnv(working.Schema)
	if p.stmt.Having != nil {
		var err error
		working, err = filterTable(ctx, working, en, p.stmt.Having)
		if err != nil {
			return nil, err
		}
	}
	return project(ctx, p.stmt, working, en)
}
