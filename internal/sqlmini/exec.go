package sqlmini

import (
	"context"
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// Catalog supplies the executor with tables by name. The federation layer
// implements it to hand the executor either local replicas or base-table
// data fetched from remote sites, depending on the chosen plan.
type Catalog interface {
	Table(name string) (*relation.Table, error)
}

// MapCatalog is a Catalog over an in-memory map, keyed case-insensitively.
// Keys should be lower case — build one with NewMapCatalog to normalize at
// insertion — so that lookups stay O(1) for any case a query uses.
type MapCatalog map[string]*relation.Table

// NewMapCatalog builds a MapCatalog with every key folded to lower case
// once, up front, so Table never has to scan for a case-insensitive match.
func NewMapCatalog(tables map[string]*relation.Table) MapCatalog {
	m := make(MapCatalog, len(tables))
	for name, t := range tables {
		m[strings.ToLower(name)] = t
	}
	return m
}

// Add inserts a table under its lower-cased name.
func (m MapCatalog) Add(name string, t *relation.Table) {
	m[strings.ToLower(name)] = t
}

// Table implements Catalog: an exact lookup, then a lower-cased one. Both
// are O(1); keys inserted via NewMapCatalog/Add are already lower case.
func (m MapCatalog) Table(name string) (*relation.Table, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	if t, ok := m[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("sqlmini: unknown table %q", name)
}

// maxCrossRows guards runaway cross products from disconnected FROM lists.
const maxCrossRows = 1 << 22

// checkEvery is how many rows an executor loop processes between
// cancellation checkpoints. Small enough that a multi-million-row join or
// scan notices an expired deadline within one batch; large enough that the
// atomic-free counter check costs nothing measurable per row.
const checkEvery = 4096

// canceller amortizes context checks over executor row loops: tick returns
// the context's cause once per checkEvery rows after the context ends.
type canceller struct {
	ctx context.Context
	n   int
}

func (c *canceller) tick() error {
	c.n++
	if c.n%checkEvery != 0 {
		return nil
	}
	if c.ctx.Err() != nil {
		return context.Cause(c.ctx)
	}
	return nil
}

// Run parses and executes a query against the catalog.
func Run(query string, cat Catalog) (*relation.Table, error) {
	return RunContext(context.Background(), query, cat)
}

// RunContext is Run under a context: execution loops checkpoint the
// context every few thousand rows, so an expired deadline or cancellation
// aborts a long join/filter/aggregate promptly with the context's cause.
func RunContext(ctx context.Context, query string, cat Catalog) (*relation.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, stmt, cat)
}

// Execute evaluates a parsed statement against the catalog and returns the
// result as a table whose columns are the SELECT items.
func Execute(stmt *SelectStmt, cat Catalog) (*relation.Table, error) {
	return ExecuteContext(context.Background(), stmt, cat)
}

// ExecuteContext is Execute under a context; see RunContext. It runs the
// default engine (the bytecode VM); ExecuteWith selects explicitly.
func ExecuteContext(ctx context.Context, stmt *SelectStmt, cat Catalog) (*relation.Table, error) {
	return ExecuteWith(ctx, stmt, cat, Options{})
}

// executeTree is the tree-walking evaluator: the original row-at-a-time
// interpreter, kept as the reference oracle the VM is differentially
// tested against (and selectable via Options.Engine).
func executeTree(ctx context.Context, stmt *SelectStmt, cat Catalog) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	working, err := buildJoinTree(ctx, stmt, cat)
	if err != nil {
		return nil, err
	}
	en := newEnv(working.Schema)

	if stmt.Where != nil {
		working, err = filterTable(ctx, working, en, stmt.Where)
		if err != nil {
			return nil, err
		}
	}

	stmt, err = expandStars(stmt, working.Schema)
	if err != nil {
		return nil, err
	}

	if len(stmt.GroupBy) > 0 || containsAggregate(stmt) {
		working, err = aggregate(ctx, stmt, working, en)
		if err != nil {
			return nil, err
		}
		en = newEnv(working.Schema)
		if stmt.Having != nil {
			working, err = filterTable(ctx, working, en, stmt.Having)
			if err != nil {
				return nil, err
			}
		}
	} else if stmt.Having != nil {
		return nil, fmt.Errorf("sqlmini: HAVING without aggregation")
	}

	return project(ctx, stmt, working, en)
}

// expandStars replaces `*` select items with explicit column references
// over the working schema (qualified names become bare output columns).
// The statement is copied, never mutated: callers may re-execute it.
func expandStars(stmt *SelectStmt, schema relation.Schema) (*SelectStmt, error) {
	hasStar := false
	for _, it := range stmt.Items {
		if it.Star {
			hasStar = true
			break
		}
	}
	if !hasStar {
		return stmt, nil
	}
	out := *stmt
	out.Items = make([]SelectItem, 0, len(stmt.Items)+schema.Arity())
	for _, it := range stmt.Items {
		if !it.Star {
			out.Items = append(out.Items, it)
			continue
		}
		for _, col := range schema.Cols {
			name := col.Name
			alias := name
			if dot := strings.LastIndex(name, "."); dot >= 0 {
				alias = name[dot+1:]
			}
			out.Items = append(out.Items, SelectItem{
				Expr:  &ColumnRef{Name: name},
				Alias: alias,
			})
		}
	}
	return &out, nil
}

// buildJoinTree loads and joins all referenced tables. Explicit JOIN ... ON
// clauses join in statement order; comma-listed FROM tables join greedily
// along equijoin conjuncts found in WHERE, falling back to a (guarded)
// cross product for disconnected tables.
func buildJoinTree(ctx context.Context, stmt *SelectStmt, cat Catalog) (*relation.Table, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqlmini: no FROM tables")
	}
	aliases := make(map[string]bool)
	load := func(ref TableRef) (*relation.Table, error) {
		alias := strings.ToLower(ref.EffectiveAlias())
		if aliases[alias] {
			return nil, fmt.Errorf("sqlmini: duplicate table alias %q", ref.EffectiveAlias())
		}
		aliases[alias] = true
		t, err := cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		return qualify(t, ref.EffectiveAlias()), nil
	}

	working, err := load(stmt.From[0])
	if err != nil {
		return nil, err
	}

	// Conjuncts of WHERE drive join ordering for comma-FROM tables.
	conjuncts := splitConjuncts(stmt.Where)

	pending := make([]*relation.Table, 0, len(stmt.From)-1)
	for _, ref := range stmt.From[1:] {
		t, err := load(ref)
		if err != nil {
			return nil, err
		}
		pending = append(pending, t)
	}
	for len(pending) > 0 {
		joined := false
		for i, t := range pending {
			lk, rk := equijoinKeys(conjuncts, working.Schema, t.Schema)
			if len(lk) == 0 {
				continue
			}
			working, err = relation.HashJoinContext(ctx, working, t, lk, rk)
			if err != nil {
				return nil, err
			}
			pending = append(pending[:i], pending[i+1:]...)
			joined = true
			break
		}
		if !joined {
			// No connecting predicate: cross product with the first
			// pending table, guarded against blow-up.
			t := pending[0]
			pending = pending[1:]
			if int64(working.NumRows())*int64(t.NumRows()) > maxCrossRows {
				return nil, fmt.Errorf("sqlmini: cross product of %s (%d rows) and %s (%d rows) exceeds limit",
					working.Name, working.NumRows(), t.Name, t.NumRows())
			}
			working, err = crossJoin(ctx, working, t)
			if err != nil {
				return nil, err
			}
		}
	}

	for _, jc := range stmt.Joins {
		t, err := load(jc.Table)
		if err != nil {
			return nil, err
		}
		onConjuncts := splitConjuncts(jc.On)
		lk, rk := equijoinKeys(onConjuncts, working.Schema, t.Schema)
		if len(lk) == 0 {
			return nil, fmt.Errorf("sqlmini: JOIN %s ON clause has no equijoin predicate", jc.Table.Name)
		}
		working, err = relation.HashJoinContext(ctx, working, t, lk, rk)
		if err != nil {
			return nil, err
		}
		// Non-equijoin residue of the ON clause filters the join output.
		en := newEnv(working.Schema)
		for _, c := range onConjuncts {
			if isEquijoin(c) {
				continue
			}
			working, err = filterTable(ctx, working, en, c)
			if err != nil {
				return nil, err
			}
		}
	}
	return working, nil
}

// qualify renames columns to "alias.col" so joined schemas stay unambiguous.
func qualify(t *relation.Table, alias string) *relation.Table {
	cols := make([]relation.Column, len(t.Schema.Cols))
	for i, c := range t.Schema.Cols {
		cols[i] = relation.Column{Name: alias + "." + c.Name, Type: c.Type}
	}
	return &relation.Table{Name: alias, Schema: relation.Schema{Cols: cols}, Rows: t.Rows}
}

// splitConjuncts flattens nested ANDs into a list of predicates.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

func isEquijoin(e Expr) bool {
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return false
	}
	_, lok := b.Left.(*ColumnRef)
	_, rok := b.Right.(*ColumnRef)
	return lok && rok
}

// equijoinKeys finds `left.col = right.col` conjuncts whose two sides
// resolve in the two given schemas (in either order) and returns the paired
// column positions.
func equijoinKeys(conjuncts []Expr, left, right relation.Schema) (lk, rk []int) {
	lEnv, rEnv := newEnv(left), newEnv(right)
	for _, c := range conjuncts {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lRef, lok := b.Left.(*ColumnRef)
		rRef, rok := b.Right.(*ColumnRef)
		if !lok || !rok {
			continue
		}
		if li, err := lEnv.resolve(lRef); err == nil {
			if ri, err := rEnv.resolve(rRef); err == nil {
				lk = append(lk, li)
				rk = append(rk, ri)
				continue
			}
		}
		if li, err := lEnv.resolve(rRef); err == nil {
			if ri, err := rEnv.resolve(lRef); err == nil {
				lk = append(lk, li)
				rk = append(rk, ri)
			}
		}
	}
	return lk, rk
}

func crossJoin(ctx context.Context, l, r *relation.Table) (*relation.Table, error) {
	cols := make([]relation.Column, 0, l.Schema.Arity()+r.Schema.Arity())
	cols = append(cols, l.Schema.Cols...)
	cols = append(cols, r.Schema.Cols...)
	out := &relation.Table{Name: l.Name + "×" + r.Name, Schema: relation.Schema{Cols: cols}}
	cc := canceller{ctx: ctx}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			row := make(relation.Row, 0, len(cols))
			row = append(row, lr...)
			row = append(row, rr...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func filterTable(ctx context.Context, t *relation.Table, en env, pred Expr) (*relation.Table, error) {
	var evalErr error
	cc := canceller{ctx: ctx}
	out := relation.Filter(t, func(r relation.Row) bool {
		if evalErr != nil {
			return false
		}
		if err := cc.tick(); err != nil {
			evalErr = err
			return false
		}
		ok, err := evalBool(pred, en, r)
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// containsAggregate reports whether any SELECT or ORDER BY expression (or
// HAVING) contains an aggregate call.
func containsAggregate(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if hasAgg(it.Expr) {
			return true
		}
	}
	if stmt.Having != nil && hasAgg(stmt.Having) {
		return true
	}
	for _, o := range stmt.OrderBy {
		if hasAgg(o.Expr) {
			return true
		}
	}
	return false
}

func hasAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return hasAgg(x.Left) || hasAgg(x.Right)
	case *NotExpr:
		return hasAgg(x.Inner)
	case *BetweenExpr:
		return hasAgg(x.Subject) || hasAgg(x.Lo) || hasAgg(x.Hi)
	case *InExpr:
		if hasAgg(x.Subject) {
			return true
		}
		for _, o := range x.Options {
			if hasAgg(o) {
				return true
			}
		}
		return false
	case *LikeExpr:
		return hasAgg(x.Subject)
	default:
		return false
	}
}

// collectAggs gathers the distinct aggregate calls (by rendered text)
// appearing anywhere in the statement's output clauses.
func collectAggs(stmt *SelectStmt) []*AggExpr {
	var out []*AggExpr
	seen := make(map[string]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *AggExpr:
			if !seen[x.String()] {
				seen[x.String()] = true
				out = append(out, x)
			}
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *NotExpr:
			walk(x.Inner)
		case *BetweenExpr:
			walk(x.Subject)
			walk(x.Lo)
			walk(x.Hi)
		case *InExpr:
			walk(x.Subject)
			for _, o := range x.Options {
				walk(o)
			}
		case *LikeExpr:
			walk(x.Subject)
		}
	}
	for _, it := range stmt.Items {
		walk(it.Expr)
	}
	if stmt.Having != nil {
		walk(stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	return out
}

// aggregate materializes group keys and aggregate arguments as derived
// columns, runs relation.Aggregate, and returns a table whose column names
// are the rendered group-by and aggregate expressions — which is how later
// phases (HAVING, SELECT, ORDER BY) refer back to them.
func aggregate(ctx context.Context, stmt *SelectStmt, working *relation.Table, en env) (*relation.Table, error) {
	aggs := collectAggs(stmt)

	// Derived input table: group-key columns then aggregate-arg columns.
	derivedCols := make([]relation.Column, 0, len(stmt.GroupBy)+len(aggs))
	exprs := make([]Expr, 0, cap(derivedCols))
	for _, g := range stmt.GroupBy {
		derivedCols = append(derivedCols, relation.Column{Name: groupColName(g), Type: inferType(g, en)})
		exprs = append(exprs, g)
	}
	for _, a := range aggs {
		typ := relation.Float
		if a.Star || a.Arg == nil {
			typ = relation.Int
		} else {
			typ = inferType(a.Arg, en)
		}
		derivedCols = append(derivedCols, relation.Column{Name: "arg:" + a.String(), Type: typ})
		if a.Star {
			exprs = append(exprs, &Literal{Val: relation.IntVal(1)})
		} else {
			exprs = append(exprs, a.Arg)
		}
	}

	derived := &relation.Table{Name: working.Name, Schema: relation.Schema{Cols: derivedCols}}
	cc := canceller{ctx: ctx}
	for _, row := range working.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		nr := make(relation.Row, len(exprs))
		for i, e := range exprs {
			v, err := eval(e, en, row)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		derived.Rows = append(derived.Rows, nr)
	}

	groupIdx := make([]int, len(stmt.GroupBy))
	for i := range stmt.GroupBy {
		groupIdx[i] = i
	}
	specs := make([]relation.AggSpec, len(aggs))
	for i, a := range aggs {
		col := len(stmt.GroupBy) + i
		if a.Star {
			// COUNT(*) counts rows; point it at the constant column.
			specs[i] = relation.AggSpec{Fn: relation.Count, Col: col, As: a.String()}
			continue
		}
		specs[i] = relation.AggSpec{Fn: a.Fn, Col: col, As: a.String()}
	}
	return relation.Aggregate(derived, groupIdx, specs)
}

// groupColName names a group-key column: plain column references keep
// their qualified name so unqualified references still resolve; computed
// keys are named by their rendered expression.
func groupColName(e Expr) string {
	if ref, ok := e.(*ColumnRef); ok {
		return ref.String()
	}
	return e.String()
}

// project evaluates the SELECT items (plus hidden ORDER BY keys), sorts,
// limits, and strips the hidden columns.
func project(ctx context.Context, stmt *SelectStmt, working *relation.Table, en env) (*relation.Table, error) {
	outCols := make([]relation.Column, 0, len(stmt.Items)+len(stmt.OrderBy))
	exprs := make([]Expr, 0, cap(outCols))
	for i, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			if ref, ok := it.Expr.(*ColumnRef); ok {
				name = ref.Name
			} else {
				name = it.Expr.String()
			}
		}
		// Guard duplicate output names (permitted in SQL, not in Schema).
		name = dedupeName(outCols, name, i)
		outCols = append(outCols, relation.Column{Name: name, Type: inferType(it.Expr, en)})
		exprs = append(exprs, it.Expr)
	}

	// Hidden sort keys: ORDER BY may reference an output alias or any
	// expression over the working table.
	outEnvCols := append([]relation.Column{}, outCols...)
	sortKeys := make([]relation.SortKey, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		if ref, ok := o.Expr.(*ColumnRef); ok && ref.Qualifier == "" {
			if idx := (relation.Schema{Cols: outCols}).ColIndex(ref.Name); idx >= 0 {
				sortKeys[i] = relation.SortKey{Col: idx, Desc: o.Desc}
				continue
			}
		}
		outEnvCols = append(outEnvCols, relation.Column{
			Name: fmt.Sprintf("sort:%d", i),
			Type: inferType(o.Expr, en),
		})
		sortKeys[i] = relation.SortKey{Col: len(outEnvCols) - 1, Desc: o.Desc}
		exprs = append(exprs, o.Expr)
	}

	result := &relation.Table{Name: "result", Schema: relation.Schema{Cols: outEnvCols}}
	cc := canceller{ctx: ctx}
	for _, row := range working.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		nr := make(relation.Row, len(exprs))
		for i, e := range exprs {
			v, err := eval(e, en, row)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		result.Rows = append(result.Rows, nr)
	}

	if stmt.Distinct {
		dedupeRows(result, len(outCols))
	}
	if len(sortKeys) > 0 {
		if err := relation.Sort(result, sortKeys); err != nil {
			return nil, err
		}
	}
	if stmt.Limit >= 0 {
		if err := relation.Limit(result, stmt.Limit); err != nil {
			return nil, err
		}
	}
	if len(outEnvCols) > len(outCols) {
		cols := make([]int, len(outCols))
		for i := range cols {
			cols[i] = i
		}
		return relation.Project(result, cols)
	}
	result.Schema = relation.Schema{Cols: outCols}
	return result, nil
}

// dedupeRows removes duplicate rows, comparing only the first visible
// columns (hidden sort keys must not make duplicates distinct). First
// occurrence wins, preserving order.
func dedupeRows(t *relation.Table, visible int) {
	cols := make([]int, visible)
	for i := range cols {
		cols[i] = i
	}
	seen := make(map[string]bool, len(t.Rows))
	kept := t.Rows[:0]
	for _, row := range t.Rows {
		key := relation.RowKey(row, cols)
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, row)
	}
	t.Rows = kept
}

func dedupeName(existing []relation.Column, name string, i int) string {
	for _, c := range existing {
		if strings.EqualFold(c.Name, name) {
			return fmt.Sprintf("%s_%d", name, i)
		}
	}
	return name
}
