package sqlmini

import (
	"strings"
	"testing"
)

func TestPushdownForBasic(t *testing.T) {
	stmt, err := Parse(`
		SELECT c.c_name, o.o_total FROM customers c, orders o
		WHERE c.c_id = o.o_cust AND c.c_nation = 'DE'
		  AND o.o_total > 25 AND o.o_date >= DATE '2020-03-01'`)
	if err != nil {
		t.Fatal(err)
	}
	sql, ok := PushdownFor(stmt, "orders")
	if !ok {
		t.Fatal("no pushdown for orders")
	}
	if !strings.HasPrefix(sql, "SELECT * FROM orders WHERE ") {
		t.Errorf("sql = %q", sql)
	}
	if strings.Contains(sql, "o.") {
		t.Errorf("qualifier not stripped: %q", sql)
	}
	if !strings.Contains(sql, "o_total > 25") || !strings.Contains(sql, "DATE '2020-03-01'") {
		t.Errorf("predicates missing: %q", sql)
	}
	// The join conjunct (two qualifiers) must not be pushed.
	if strings.Contains(sql, "o_cust") {
		t.Errorf("join predicate pushed: %q", sql)
	}

	// Pushed SQL must run against the bare table.
	out, err := Run(sql, testCatalog(t))
	if err != nil {
		t.Fatalf("pushed sql %q: %v", sql, err)
	}
	// Only order 103 ($80, 2020-04-10) passes both filters.
	if out.NumRows() != 1 || out.Rows[0][0].I != 103 {
		t.Errorf("pushed rows = %d: %v", out.NumRows(), out.Rows)
	}
}

func TestPushdownEquivalence(t *testing.T) {
	// Fetch-filtered + local residual WHERE == plain execution.
	cat := testCatalog(t)
	full := `SELECT c.c_name, sum(o.o_total) AS s FROM customers c, orders o
	         WHERE c.c_id = o.o_cust AND o.o_total > 20 AND c.c_nation = 'DE'
	         GROUP BY c.c_name ORDER BY c.c_name`
	want := runQuery(t, cat, full)

	stmt, err := Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	pushedOrders, ok := PushdownFor(stmt, "orders")
	if !ok {
		t.Fatal("no orders pushdown")
	}
	filteredOrders, err := Run(pushedOrders, cat)
	if err != nil {
		t.Fatal(err)
	}
	filteredOrders.Name = "orders"
	pushedCust, ok := PushdownFor(stmt, "customers")
	if !ok {
		t.Fatal("no customers pushdown")
	}
	filteredCust, err := Run(pushedCust, cat)
	if err != nil {
		t.Fatal(err)
	}
	filteredCust.Name = "customers"

	got, err := Run(full, MapCatalog{"orders": filteredOrders, "customers": filteredCust})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("pushdown changed results: %d vs %d rows", got.NumRows(), want.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j].String() != got.Rows[i][j].String() {
				t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func TestPushdownSkipsMultiAliasTables(t *testing.T) {
	cat := testCatalog(t)
	dup := cat["orders"].Clone()
	dup.Name = "orders2"
	stmt, err := Parse(`SELECT a.o_id FROM orders a, orders b
		WHERE a.o_id = b.o_id AND a.o_total > 10 AND b.o_total > 10`)
	if err != nil {
		t.Fatal(err)
	}
	_ = dup
	if _, ok := PushdownFor(stmt, "orders"); ok {
		t.Error("pushed down a multi-alias table")
	}
}

func TestPushdownNothingPushable(t *testing.T) {
	stmt, err := Parse("SELECT c.c_name FROM customers c, orders o WHERE c.c_id = o.o_cust")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PushdownFor(stmt, "orders"); ok {
		t.Error("join-only predicate pushed")
	}
	if _, ok := PushdownFor(stmt, "ghost"); ok {
		t.Error("unknown table pushed")
	}
}

func TestPushdownUnqualifiedRefsNotPushed(t *testing.T) {
	// An unqualified column can belong to any table; it must not push.
	stmt, err := Parse("SELECT c.c_name FROM customers c, orders o WHERE c.c_id = o.o_cust AND o_total > 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PushdownFor(stmt, "orders"); ok {
		t.Error("unqualified predicate pushed")
	}
}

func TestPushdownComplexPredicates(t *testing.T) {
	stmt, err := Parse(`SELECT o.o_id FROM orders o, customers c
		WHERE o.o_cust = c.c_id
		  AND (o.o_total BETWEEN 10 AND 60 OR o.o_total > 75)
		  AND NOT o.o_id IN (101, 102)`)
	if err != nil {
		t.Fatal(err)
	}
	sql, ok := PushdownFor(stmt, "orders")
	if !ok {
		t.Fatal("complex single-table predicates not pushed")
	}
	out, err := Run(sql, testCatalog(t))
	if err != nil {
		t.Fatalf("pushed sql %q: %v", sql, err)
	}
	// Orders: 100(50✓), 101(30 but excluded), 102(20 excluded), 103(80✓), 104(10✓).
	if out.NumRows() != 3 {
		t.Errorf("rows = %d: %v", out.NumRows(), out.Rows)
	}
}
