package sqlmini

import (
	"strings"
	"testing"

	"ivdss/internal/relation"
)

// testCatalog builds a toy order-processing schema.
func testCatalog(t *testing.T) MapCatalog {
	t.Helper()
	customers := relation.NewTable("customers", relation.MustSchema(
		relation.Column{Name: "c_id", Type: relation.Int},
		relation.Column{Name: "c_name", Type: relation.Str},
		relation.Column{Name: "c_nation", Type: relation.Str},
	))
	for _, r := range []relation.Row{
		{relation.IntVal(1), relation.StrVal("alice"), relation.StrVal("DE")},
		{relation.IntVal(2), relation.StrVal("bob"), relation.StrVal("FR")},
		{relation.IntVal(3), relation.StrVal("carol"), relation.StrVal("DE")},
	} {
		customers.MustInsert(r)
	}
	orders := relation.NewTable("orders", relation.MustSchema(
		relation.Column{Name: "o_id", Type: relation.Int},
		relation.Column{Name: "o_cust", Type: relation.Int},
		relation.Column{Name: "o_total", Type: relation.Float},
		relation.Column{Name: "o_date", Type: relation.Date},
	))
	for _, r := range []relation.Row{
		{relation.IntVal(100), relation.IntVal(1), relation.FloatVal(50), relation.DateOf(2020, 1, 10)},
		{relation.IntVal(101), relation.IntVal(1), relation.FloatVal(30), relation.DateOf(2020, 2, 10)},
		{relation.IntVal(102), relation.IntVal(2), relation.FloatVal(20), relation.DateOf(2020, 3, 10)},
		{relation.IntVal(103), relation.IntVal(3), relation.FloatVal(80), relation.DateOf(2020, 4, 10)},
		{relation.IntVal(104), relation.IntVal(3), relation.FloatVal(10), relation.DateOf(2020, 5, 10)},
	} {
		orders.MustInsert(r)
	}
	return MapCatalog{"customers": customers, "orders": orders}
}

func runQuery(t *testing.T, cat Catalog, q string) *relation.Table {
	t.Helper()
	out, err := Run(q, cat)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return out
}

func TestSelectStar(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT * FROM customers ORDER BY c_id")
	if out.NumRows() != 3 || out.Schema.Arity() != 3 {
		t.Fatalf("shape = %d rows × %d cols", out.NumRows(), out.Schema.Arity())
	}
	if out.Schema.Cols[0].Name != "c_id" || out.Rows[0][1].S != "alice" {
		t.Errorf("first row = %v (%v)", out.Rows[0], out.Schema)
	}
}

func TestSelectStarWithJoin(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT * FROM customers c, orders o WHERE c.c_id = o.o_cust AND o.o_id = 100")
	if out.NumRows() != 1 || out.Schema.Arity() != 7 {
		t.Fatalf("shape = %d × %d", out.NumRows(), out.Schema.Arity())
	}
}

func TestSelectStarPlusExpr(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT *, c_id * 10 AS big FROM customers WHERE c_id = 2")
	if out.Schema.Arity() != 4 || out.Rows[0][3].I != 20 {
		t.Fatalf("shape = %v rows %v", out.Schema, out.Rows)
	}
}

func TestSelectStarWithFilterReexecutable(t *testing.T) {
	// Star expansion must not mutate the parsed statement: running the
	// same *SelectStmt twice must work (the DSS caches parsed queries).
	stmt, err := Parse("SELECT * FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	for i := 0; i < 2; i++ {
		out, err := Execute(stmt, cat)
		if err != nil {
			t.Fatal(err)
		}
		if out.Schema.Arity() != 3 {
			t.Fatalf("run %d arity = %d", i, out.Schema.Arity())
		}
	}
}

func TestLiteralStringRendersSQL(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE s = 'it''s' AND d > DATE '1995-06-01'")
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.Where.String()
	if _, err := Parse("SELECT a FROM t WHERE " + rendered); err != nil {
		t.Errorf("rendered predicate %q does not re-parse: %v", rendered, err)
	}
}

func TestSimpleProjectionAndFilter(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT c_name FROM customers WHERE c_nation = 'DE'")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Schema.Cols[0].Name != "c_name" {
		t.Errorf("column = %q", out.Schema.Cols[0].Name)
	}
}

func TestArithmeticInSelect(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT o_total * 2 AS doubled FROM orders WHERE o_id = 100")
	if out.Rows[0][0].F != 100 {
		t.Errorf("doubled = %v, want 100", out.Rows[0][0])
	}
	if out.Schema.Cols[0].Name != "doubled" {
		t.Errorf("alias = %q", out.Schema.Cols[0].Name)
	}
}

func TestCommaJoinWithWherePredicate(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		`SELECT c.c_name, o.o_total FROM customers c, orders o
		 WHERE c.c_id = o.o_cust AND o.o_total > 25`)
	if out.NumRows() != 3 { // totals 50, 30, 80
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
}

func TestExplicitJoin(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		`SELECT c.c_name, o.o_id FROM customers c JOIN orders o ON c.c_id = o.o_cust ORDER BY o.o_id`)
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", out.NumRows())
	}
	if out.Rows[0][1].I != 100 {
		t.Errorf("first o_id = %v", out.Rows[0][1])
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		`SELECT c.c_nation, sum(o.o_total) AS revenue, count(*) AS n
		 FROM customers c, orders o
		 WHERE c.c_id = o.o_cust
		 GROUP BY c.c_nation
		 ORDER BY revenue DESC`)
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", out.NumRows())
	}
	// DE: alice 50+30 + carol 80+10 = 170 (4 orders); FR: 20 (1 order).
	if out.Rows[0][0].S != "DE" || out.Rows[0][1].F != 170 || out.Rows[0][2].I != 4 {
		t.Errorf("first group = %v", out.Rows[0])
	}
	if out.Rows[1][0].S != "FR" || out.Rows[1][1].F != 20 {
		t.Errorf("second group = %v", out.Rows[1])
	}
}

func TestGlobalAggregate(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT sum(o_total) AS s, avg(o_total) AS a, min(o_total) AS lo, max(o_total) AS hi, count(*) AS n FROM orders")
	r := out.Rows[0]
	if r[0].F != 190 || r[1].F != 38 || r[2].F != 10 || r[3].F != 80 || r[4].I != 5 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestAggregateExpressionInSelect(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT sum(o_total) / count(*) AS mean FROM orders")
	if out.Rows[0][0].F != 38 {
		t.Errorf("mean = %v, want 38", out.Rows[0][0])
	}
}

func TestHaving(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		`SELECT o_cust, sum(o_total) AS s FROM orders GROUP BY o_cust HAVING sum(o_total) > 50 ORDER BY s DESC`)
	if out.NumRows() != 2 { // cust 3: 90, cust 1: 80
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Rows[0][1].F != 90 || out.Rows[1][1].F != 80 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestHavingWithoutAggregationFails(t *testing.T) {
	if _, err := Run("SELECT c_id FROM customers HAVING c_id > 1", testCatalog(t)); err == nil {
		t.Error("HAVING without aggregation accepted")
	}
}

func TestOrderByMultipleKeysAndLimit(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_cust, o_total FROM orders ORDER BY o_cust ASC, o_total DESC LIMIT 3")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
	if out.Rows[0][0].I != 1 || out.Rows[0][1].F != 50 {
		t.Errorf("first row = %v", out.Rows[0])
	}
	if out.Rows[2][0].I != 2 {
		t.Errorf("third row = %v", out.Rows[2])
	}
}

func TestOrderByExpressionNotInSelect(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_id FROM orders ORDER BY o_total * -1")
	if out.Rows[0][0].I != 103 { // largest total first under *-1 ascending
		t.Errorf("first = %v", out.Rows[0][0])
	}
	if out.Schema.Arity() != 1 {
		t.Errorf("hidden sort column leaked: %v", out.Schema)
	}
}

func TestDateComparisonWithStringLiteral(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_id FROM orders WHERE o_date >= '2020-04-01'")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
}

func TestDateKeywordLiteral(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_id FROM orders WHERE o_date < DATE '2020-02-01'")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
}

func TestBetween(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_id FROM orders WHERE o_total BETWEEN 20 AND 50")
	if out.NumRows() != 3 { // 50, 30, 20
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
}

func TestInList(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT c_name FROM customers WHERE c_nation IN ('FR', 'IT')")
	if out.NumRows() != 1 || out.Rows[0][0].S != "bob" {
		t.Fatalf("rows = %v", out.Rows)
	}
}

func TestLike(t *testing.T) {
	tests := []struct {
		pattern string
		want    int
	}{
		{"a%", 1},    // alice
		{"%ol%", 1},  // carol
		{"%b", 1},    // bob
		{"alice", 1}, // exact
		{"%", 3},     // everything
		{"z%", 0},    // nothing
		{"%a%o%", 1}, // carol
	}
	for _, tt := range tests {
		out := runQuery(t, testCatalog(t),
			"SELECT c_name FROM customers WHERE c_name LIKE '"+tt.pattern+"'")
		if out.NumRows() != tt.want {
			t.Errorf("pattern %q: rows = %d, want %d", tt.pattern, out.NumRows(), tt.want)
		}
	}
}

func TestNotAndOr(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT c_id FROM customers WHERE NOT c_nation = 'DE' OR c_id = 1")
	if out.NumRows() != 2 { // bob (not DE) and alice (id 1)
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
}

func TestUnaryMinus(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT -o_total AS neg FROM orders WHERE o_id = 100")
	if out.Rows[0][0].F != -50 {
		t.Errorf("neg = %v", out.Rows[0][0])
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Run("SELECT o_total / 0 FROM orders", testCatalog(t)); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := testCatalog(t)
	dup := cat["orders"].Clone()
	dup.Name = "orders2"
	cat["orders2"] = dup
	_, err := Run("SELECT o_total FROM orders a, orders2 b WHERE a.o_id = b.o_id", cat)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous reference not rejected: %v", err)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	cat := testCatalog(t)
	if _, err := Run("SELECT x FROM missing", cat); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := Run("SELECT missing_col FROM customers", cat); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestDuplicateAlias(t *testing.T) {
	if _, err := Run("SELECT c.c_id FROM customers c, orders c WHERE c.c_id = c.o_cust", testCatalog(t)); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func TestCrossJoinGuard(t *testing.T) {
	cat := MapCatalog{}
	big := relation.NewTable("big", relation.MustSchema(relation.Column{Name: "v", Type: relation.Int}))
	for i := 0; i < 3000; i++ {
		big.MustInsert(relation.Row{relation.IntVal(int64(i))})
	}
	cat["big"] = big
	other := big.Clone()
	other.Name = "other"
	cat["other"] = other
	_, err := Run("SELECT a.v FROM big a, other b", cat)
	if err == nil || !strings.Contains(err.Error(), "cross product") {
		t.Errorf("unguarded cross product: %v", err)
	}
}

func TestSmallCrossJoinAllowed(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT c.c_id, o.o_id FROM customers c, orders o WHERE c.c_id = 1 AND o.o_id = 100")
	// Filter applies after the cross product: exactly one surviving pair.
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
}

func TestEmptyResultKeepsSchema(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT c_name, c_id + 1 AS next_id FROM customers WHERE c_id > 100")
	if out.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", out.NumRows())
	}
	if out.Schema.Cols[0].Type != relation.Str || out.Schema.Cols[1].Type != relation.Int {
		t.Errorf("schema = %v", out.Schema)
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT o_cust * 10 AS bucket, count(*) AS n FROM orders GROUP BY o_cust * 10 ORDER BY bucket")
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	if out.Rows[0][0].I != 10 || out.Rows[0][1].I != 2 {
		t.Errorf("first bucket = %v", out.Rows[0])
	}
}

func TestTableNames(t *testing.T) {
	stmt, err := Parse(`SELECT a.x FROM t1 a, t2 b JOIN t3 c ON a.x = c.x WHERE a.x = b.x`)
	if err != nil {
		t.Fatal(err)
	}
	names := stmt.TableNames()
	want := []string{"t1", "t2", "t3"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT 1",                       // no FROM
		"SELECT a FROM",                  // missing table
		"SELECT a FROM t WHERE",          // missing predicate
		"SELECT a FROM t GROUP a",        // GROUP without BY
		"SELECT a FROM t LIMIT x",        // non-numeric limit
		"SELECT a FROM t LIMIT -1",       // negative limit
		"SELECT a FROM t WHERE a LIKE 5", // LIKE needs string
		"SELECT a FROM t JOIN u",         // JOIN without ON
		"SELECT sum(a FROM t",            // unbalanced paren
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t; DROP TABLE t", // stray characters
		"SELECT a FROM t WHERE a = DATE 'nope'",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("parse accepted %q", q)
		}
	}
}

func TestParseRoundTripStrings(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := stmt.Where.(*BinaryExpr).Right.(*Literal)
	if !ok || lit.Val.S != "it's" {
		t.Errorf("escaped quote parsed as %v", stmt.Where)
	}
}

func TestCountStarVersusCountColumn(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT count(*) AS stars, count(o_id) AS ids FROM orders")
	if out.Rows[0][0].I != 5 || out.Rows[0][1].I != 5 {
		t.Errorf("counts = %v", out.Rows[0])
	}
}

func TestDuplicateOutputNames(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT o_id, o_id FROM orders LIMIT 1")
	if out.Schema.Cols[0].Name == out.Schema.Cols[1].Name {
		t.Errorf("duplicate output names not deduped: %v", out.Schema)
	}
}

func TestSelectDistinct(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT DISTINCT c_nation FROM customers ORDER BY c_nation")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Rows[0][0].S != "DE" || out.Rows[1][0].S != "FR" {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestSelectDistinctMultiColumn(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT DISTINCT o_cust, o_cust * 0 AS z FROM orders")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3 distinct customers", out.NumRows())
	}
}

func TestSelectDistinctWithHiddenSortKey(t *testing.T) {
	// ORDER BY over a non-projected expression must not break dedup.
	out := runQuery(t, testCatalog(t), "SELECT DISTINCT o_cust FROM orders ORDER BY o_cust DESC")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
	if out.Rows[0][0].I != 3 {
		t.Errorf("first = %v", out.Rows[0][0])
	}
	if out.Schema.Arity() != 1 {
		t.Errorf("hidden column leaked: %v", out.Schema)
	}
}

func TestCountDistinct(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT count(DISTINCT o_cust) AS custs, count(*) AS rows_n FROM orders")
	if out.Rows[0][0].I != 3 || out.Rows[0][1].I != 5 {
		t.Errorf("counts = %v", out.Rows[0])
	}
}

func TestCountDistinctGrouped(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		`SELECT c.c_nation, count(DISTINCT o.o_cust) AS custs
		 FROM customers c, orders o WHERE c.c_id = o.o_cust
		 GROUP BY c.c_nation ORDER BY c.c_nation`)
	// DE: customers 1 and 3; FR: customer 2.
	if out.NumRows() != 2 || out.Rows[0][1].I != 2 || out.Rows[1][1].I != 1 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestEvalErrorPaths(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT c_name + 1 FROM customers",                           // arithmetic over string
		"SELECT c_id FROM customers WHERE c_id LIKE 'x'",             // LIKE over int
		"SELECT c_id FROM customers WHERE c_name BETWEEN 1 AND 2",    // type mismatch
		"SELECT c_id FROM customers WHERE sum(c_id) > 1",             // aggregate in WHERE
		"SELECT c_id FROM customers WHERE c_name",                    // non-boolean predicate
		"SELECT c_id FROM customers ORDER BY c_name + 1",             // sort expr type error
		"SELECT c_id FROM customers WHERE c_id = 'abc' AND c_id > 0", // string/int compare
	}
	for _, q := range bad {
		if _, err := Run(q, cat); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
}

func TestWhereDateCoercionBothDirections(t *testing.T) {
	out := runQuery(t, testCatalog(t), "SELECT o_id FROM orders WHERE '2020-04-01' <= o_date")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", out.NumRows())
	}
}

func TestJoinOnWithResidualPredicate(t *testing.T) {
	// Non-equijoin residue of an ON clause filters after the hash join.
	out := runQuery(t, testCatalog(t),
		"SELECT o.o_id FROM customers c JOIN orders o ON c.c_id = o.o_cust AND o.o_total > 40 ORDER BY o.o_id")
	if out.NumRows() != 2 { // totals 50 and 80
		t.Errorf("rows = %d: %v", out.NumRows(), out.Rows)
	}
}

func TestInnerJoinKeyword(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT count(*) AS n FROM customers c INNER JOIN orders o ON c.c_id = o.o_cust")
	if out.Rows[0][0].I != 5 {
		t.Errorf("n = %v", out.Rows[0][0])
	}
}

func TestMinMaxOverDates(t *testing.T) {
	out := runQuery(t, testCatalog(t),
		"SELECT min(o_date) AS lo, max(o_date) AS hi FROM orders")
	if out.Rows[0][0].String() != "2020-01-10" || out.Rows[0][1].String() != "2020-05-10" {
		t.Errorf("range = %v", out.Rows[0])
	}
	if out.Schema.Cols[0].Type != relation.Date {
		t.Errorf("min type = %v", out.Schema.Cols[0].Type)
	}
}

func TestAvgEmptyGroupSafe(t *testing.T) {
	// Global AVG over an empty input: engine has no NULLs; result row
	// exists with zero values and no division-by-zero panic.
	out := runQuery(t, testCatalog(t),
		"SELECT count(*) AS n, sum(o_total) AS s FROM orders WHERE o_id > 10000")
	if out.Rows[0][0].I != 0 || out.Rows[0][1].F != 0 {
		t.Errorf("empty aggregates = %v", out.Rows[0])
	}
}
