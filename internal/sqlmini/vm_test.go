package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ivdss/internal/relation"
)

// execBoth runs one statement through both engines and returns the pair.
func execBoth(t *testing.T, cat Catalog, q string) (tree, vm *relation.Table, treeErr, vmErr error) {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	ctx := context.Background()
	tree, treeErr = ExecuteWith(ctx, stmt, cat, Options{Engine: EngineTreeWalk})
	vm, vmErr = ExecuteWith(ctx, stmt, cat, Options{Engine: EngineVM})
	return tree, vm, treeErr, vmErr
}

// requireSameTable demands byte-identical answers: same column names and
// types, same rows in the same order.
func requireSameTable(t *testing.T, q string, tree, vm *relation.Table) {
	t.Helper()
	if len(tree.Schema.Cols) != len(vm.Schema.Cols) {
		t.Fatalf("%q: schema width %d vs %d", q, len(tree.Schema.Cols), len(vm.Schema.Cols))
	}
	for i := range tree.Schema.Cols {
		if tree.Schema.Cols[i] != vm.Schema.Cols[i] {
			t.Fatalf("%q: column %d: tree %v vs vm %v", q, i, tree.Schema.Cols[i], vm.Schema.Cols[i])
		}
	}
	if len(tree.Rows) != len(vm.Rows) {
		t.Fatalf("%q: row count tree %d vs vm %d", q, len(tree.Rows), len(vm.Rows))
	}
	for i := range tree.Rows {
		for j := range tree.Rows[i] {
			if !relation.Equal(tree.Rows[i][j], vm.Rows[i][j]) {
				t.Fatalf("%q: row %d col %d: tree %v vs vm %v", q, i, j, tree.Rows[i][j], vm.Rows[i][j])
			}
		}
	}
}

// TestEngineDifferentialCorpus runs a broad query corpus through both
// engines: successes must agree byte for byte, failures must fail on
// both (messages may differ in wording, never in class).
func TestEngineDifferentialCorpus(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		// projections, filters, expressions
		"SELECT * FROM customers",
		"SELECT c_name FROM customers WHERE c_nation = 'DE'",
		"SELECT c_id + 1, c_name FROM customers",
		"SELECT -o_total, o_id FROM orders",
		"SELECT o_id, o_total / 2 AS half FROM orders ORDER BY half DESC",
		"SELECT o_id FROM orders WHERE o_total * 2 > 50 ORDER BY o_id",
		"SELECT 1 + 2, 'x' FROM customers LIMIT 1",
		"SELECT * FROM customers WHERE c_id > 100",
		"SELECT * FROM customers WHERE c_name > 'b'",
		// AND / OR / NOT / BETWEEN / IN / LIKE
		"SELECT * FROM orders WHERE o_total > 25 AND o_date < '2020-04-01'",
		"SELECT * FROM orders WHERE o_total > 75 OR o_cust = 1",
		"SELECT * FROM customers WHERE NOT c_nation = 'DE'",
		"SELECT o_id FROM orders WHERE o_total BETWEEN 20 AND 50",
		"SELECT o_id FROM orders WHERE o_cust IN (1, 3)",
		"SELECT c_id FROM customers WHERE c_nation IN ('DE', 'IT')",
		"SELECT c_name FROM customers WHERE c_name LIKE 'a%'",
		"SELECT c_name FROM customers WHERE c_name LIKE '%o%'",
		"SELECT count(*) FROM customers WHERE c_nation LIKE 'D%'",
		// dates
		"SELECT o_id FROM orders WHERE o_date = '2020-01-10'",
		"SELECT o_id FROM orders WHERE o_date BETWEEN DATE '2020-02-01' AND '2020-04-30'",
		"SELECT min(o_date), max(o_date) FROM orders",
		// joins
		"SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust",
		"SELECT c_name, o_total FROM customers JOIN orders ON c_id = o_cust WHERE o_total > 25",
		"SELECT customers.c_name, orders.o_id FROM customers, orders WHERE customers.c_id = orders.o_cust AND orders.o_total < 40",
		"SELECT c.c_name FROM customers AS c WHERE c.c_id = 2",
		"SELECT count(*) FROM customers, orders",
		"SELECT x.c_id, y.c_id FROM customers AS x, customers AS y WHERE x.c_id = y.c_id ORDER BY x.c_id",
		// aggregation, grouping, having
		"SELECT count(*) FROM orders",
		"SELECT count(DISTINCT c_nation) FROM customers",
		"SELECT sum(o_total * 2) + 1 FROM orders",
		"SELECT c_nation, count(*), sum(o_total) FROM customers, orders WHERE c_id = o_cust GROUP BY c_nation ORDER BY c_nation",
		"SELECT c_nation, avg(o_total) FROM customers, orders WHERE c_id = o_cust GROUP BY c_nation HAVING count(*) > 1",
		"SELECT o_cust, sum(o_total) AS total FROM orders GROUP BY o_cust ORDER BY total DESC LIMIT 2",
		"SELECT o_cust FROM orders GROUP BY o_cust HAVING sum(o_total) > 50",
		"SELECT o_cust, count(*) FROM orders WHERE o_total > 15 GROUP BY o_cust ORDER BY count(*) DESC, o_cust",
		// distinct, ordering, limits
		"SELECT DISTINCT c_nation FROM customers ORDER BY c_nation",
		"SELECT DISTINCT o_cust, o_total > 25 FROM orders ORDER BY o_cust",
		"SELECT c_name FROM customers ORDER BY c_id DESC LIMIT 2",
		"SELECT o_id FROM orders ORDER BY o_total / 2",
	}
	for _, q := range queries {
		tree, vm, treeErr, vmErr := execBoth(t, cat, q)
		if treeErr != nil {
			t.Fatalf("%q: tree-walk oracle failed: %v", q, treeErr)
		}
		if vmErr != nil {
			t.Fatalf("%q: vm failed where oracle succeeded: %v", q, vmErr)
		}
		requireSameTable(t, q, tree, vm)
	}
}

// TestEngineDifferentialErrors runs queries the oracle rejects at
// execution time and demands the VM rejects them too.
func TestEngineDifferentialErrors(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		"SELECT nosuch FROM customers",
		"SELECT * FROM nosuchtable",
		"SELECT c_id FROM customers AS x, customers AS y WHERE x.c_id = y.c_id", // ambiguous c_id
		"SELECT * FROM customers AS x, orders AS x",                             // duplicate alias
		"SELECT c_id FROM customers WHERE c_name > 5",                           // type mismatch
		"SELECT o_total / 0 FROM orders",                                        // division by zero
		"SELECT c_id FROM customers WHERE c_name",                               // non-boolean predicate
		"SELECT sum(c_id) FROM customers WHERE sum(c_id) > 1",                   // aggregate in WHERE
		"SELECT c_id FROM customers HAVING c_id > 1",                            // HAVING without aggregation
		"SELECT * FROM customers JOIN orders ON c_id > o_cust",                  // no equijoin
		"SELECT c_id FROM customers WHERE c_id LIKE 'a%'",                       // LIKE over non-string
		"SELECT o_id FROM orders WHERE o_date > 'notadate'",                     // bad date literal
		"SELECT c_id + c_name FROM customers",                                   // arithmetic over string
	}
	for _, q := range queries {
		_, _, treeErr, vmErr := execBoth(t, cat, q)
		if treeErr == nil {
			t.Fatalf("%q: oracle unexpectedly succeeded", q)
		}
		if vmErr == nil {
			t.Errorf("%q: vm succeeded where oracle failed with: %v", q, treeErr)
		}
	}
}

// bigCatalog builds a table spanning several columnar batches so the
// batched VM paths (selection vectors crossing batch boundaries, join
// probe windows, grouped aggregation across batches) are exercised.
func bigCatalog(t *testing.T, rows int) MapCatalog {
	t.Helper()
	items := relation.NewTable("items", relation.MustSchema(
		relation.Column{Name: "i_id", Type: relation.Int},
		relation.Column{Name: "i_cat", Type: relation.Int},
		relation.Column{Name: "i_price", Type: relation.Float},
		relation.Column{Name: "i_tag", Type: relation.Str},
	))
	for i := 0; i < rows; i++ {
		items.MustInsert(relation.Row{
			relation.IntVal(int64(i)),
			relation.IntVal(int64(i % 7)),
			relation.FloatVal(float64(i%100) / 2),
			relation.StrVal(fmt.Sprintf("tag%d", i%5)),
		})
	}
	cats := relation.NewTable("cats", relation.MustSchema(
		relation.Column{Name: "k_id", Type: relation.Int},
		relation.Column{Name: "k_name", Type: relation.Str},
	))
	for i := 0; i < 7; i++ {
		cats.MustInsert(relation.Row{relation.IntVal(int64(i)), relation.StrVal(fmt.Sprintf("cat%d", i))})
	}
	return MapCatalog{"items": items, "cats": cats}
}

// TestEngineDifferentialMultiBatch checks agreement on inputs bigger
// than one columnar batch (relation.BatchRows rows).
func TestEngineDifferentialMultiBatch(t *testing.T) {
	cat := bigCatalog(t, 3*relation.BatchRows+17)
	queries := []string{
		"SELECT count(*), sum(i_price) FROM items",
		"SELECT i_id FROM items WHERE i_price > 40 AND i_cat IN (1, 3, 5) ORDER BY i_id LIMIT 10",
		"SELECT i_cat, count(*), avg(i_price) FROM items GROUP BY i_cat ORDER BY i_cat",
		"SELECT k_name, count(*) FROM items, cats WHERE i_cat = k_id GROUP BY k_name ORDER BY k_name",
		"SELECT count(*) FROM items WHERE i_tag LIKE 'tag1%' OR i_price < 3",
	}
	for _, q := range queries {
		tree, vm, treeErr, vmErr := execBoth(t, cat, q)
		if treeErr != nil || vmErr != nil {
			t.Fatalf("%q: tree err %v, vm err %v", q, treeErr, vmErr)
		}
		requireSameTable(t, q, tree, vm)
	}
}

// TestPrepareReuse compiles once and executes many times — results must
// be identical run to run and match the oracle, the compile-once
// contract the micro-batch scheduler leans on.
func TestPrepareReuse(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT c_nation, sum(o_total) FROM customers, orders WHERE c_id = o_cust GROUP BY c_nation ORDER BY c_nation"
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Prepare(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ExecuteWith(context.Background(), stmt, cat, Options{Engine: EngineTreeWalk})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewExecCache()
	for i := 0; i < 3; i++ {
		got, err := prep.ExecuteContext(context.Background(), cat, cache)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		requireSameTable(t, q, oracle, got)
	}
}

// TestExecCacheSeesAppends shares one cache across executions of a
// mutating table: the row-count validation must refresh the columnar
// image, so appended rows appear in the next answer.
func TestExecCacheSeesAppends(t *testing.T) {
	cat := testCatalog(t)
	cache := NewExecCache()
	opts := Options{Engine: EngineVM, Cache: cache}
	q := "SELECT count(*) FROM orders"
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ExecuteWith(context.Background(), stmt, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := cat.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	orders.MustInsert(relation.Row{
		relation.IntVal(105), relation.IntVal(2), relation.FloatVal(5), relation.DateOf(2020, 6, 1),
	})
	after, err := ExecuteWith(context.Background(), stmt, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := before.Rows[0][0].I
	a := after.Rows[0][0].I
	if a != b+1 {
		t.Fatalf("stale cache: count %d before append, %d after (want %d)", b, a, b+1)
	}
}

// TestPrepareSchemaChangeFallsBack swaps a table for one with a
// different schema after Prepare: the raw ExecuteContext must decline
// with the fallback sentinel rather than run a stale plan, and the
// ExecuteWith wrapper must still answer via the oracle.
func TestPrepareSchemaChangeFallsBack(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("SELECT c_name FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Prepare(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	swapped := relation.NewTable("customers", relation.MustSchema(
		relation.Column{Name: "c_name", Type: relation.Str}, // narrower schema
	))
	swapped.MustInsert(relation.Row{relation.StrVal("dora")})
	cat.Add("customers", swapped)
	if _, err := prep.ExecuteContext(context.Background(), cat, nil); !errors.Is(err, errVMFallback) {
		t.Fatalf("want errVMFallback for schema change, got %v", err)
	}
	out, err := ExecuteWith(context.Background(), stmt, cat, Options{Engine: EngineVM})
	if err != nil {
		t.Fatalf("ExecuteWith after swap: %v", err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].S != "dora" {
		t.Fatalf("fallback answered wrong rows: %v", out.Rows)
	}
}

// TestParseEngine covers the flag surface.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineVM, true},
		{"vm", EngineVM, true},
		{"VM", EngineVM, true},
		{"tree", EngineTreeWalk, true},
		{"treewalk", EngineTreeWalk, true},
		{"tree-walk", EngineTreeWalk, true},
		{"llvm", 0, false},
	} {
		got, err := ParseEngine(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseEngine(%q): err %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if EngineVM.String() != "vm" || EngineTreeWalk.String() != "tree" {
		t.Errorf("engine names: %q, %q", EngineVM.String(), EngineTreeWalk.String())
	}
}
