package sqlmini

import (
	"strings"
	"testing"

	"ivdss/internal/relation"
)

// FuzzParse checks the parser never panics and that accepted statements
// re-execute deterministically against a tiny catalog.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a, b AS x FROM t WHERE a > 1 AND b <> 'q' ORDER BY x DESC LIMIT 3",
		"SELECT sum(a * (1 - b)) FROM t GROUP BY c HAVING count(*) > 2",
		"SELECT count(DISTINCT a) FROM t, u WHERE t.a = u.a",
		"SELECT a FROM t WHERE d BETWEEN DATE '1995-01-01' AND '1996-01-01'",
		"SELECT a FROM t WHERE s LIKE '%x%' OR a IN (1, 2, 3)",
		"SELECT -a / 2 + 1 FROM t JOIN u ON t.a = u.a",
		"SELECT '" + strings.Repeat("x", 100) + "' FROM t",
		"SELECT",
		"SELECT a FROM",
		"((((",
		"SELECT a FROM t WHERE a = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	tbl := relation.NewTable("t", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Int},
		relation.Column{Name: "b", Type: relation.Float},
		relation.Column{Name: "c", Type: relation.Int},
		relation.Column{Name: "s", Type: relation.Str},
		relation.Column{Name: "d", Type: relation.Date},
	))
	tbl.MustInsert(relation.Row{
		relation.IntVal(1), relation.FloatVal(.5), relation.IntVal(2),
		relation.StrVal("xy"), relation.DateOf(1995, 6, 1),
	})
	u := relation.NewTable("u", relation.MustSchema(relation.Column{Name: "a", Type: relation.Int}))
	u.MustInsert(relation.Row{relation.IntVal(1)})
	cat := MapCatalog{"t": tbl, "u": u}

	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted statements must execute (or fail) without panicking,
		// and deterministically.
		r1, err1 := Execute(stmt, cat)
		r2, err2 := Execute(stmt, cat)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic error for %q: %v vs %v", input, err1, err2)
		}
		if err1 == nil && r1.NumRows() != r2.NumRows() {
			t.Fatalf("non-deterministic row count for %q", input)
		}
	})
}
