package sqlmini

import (
	"context"
	"sort"
	"strings"
	"testing"

	"ivdss/internal/relation"
)

// FuzzParse checks the parser never panics and that accepted statements
// execute identically on the tree-walk oracle and the compiled VM: same
// error class (both fail or both succeed), same output schema, and the
// same multiset of rows.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a, b AS x FROM t WHERE a > 1 AND b <> 'q' ORDER BY x DESC LIMIT 3",
		"SELECT sum(a * (1 - b)) FROM t GROUP BY c HAVING count(*) > 2",
		"SELECT count(DISTINCT a) FROM t, u WHERE t.a = u.a",
		"SELECT a FROM t WHERE d BETWEEN DATE '1995-01-01' AND '1996-01-01'",
		"SELECT a FROM t WHERE s LIKE '%x%' OR a IN (1, 2, 3)",
		"SELECT -a / 2 + 1 FROM t JOIN u ON t.a = u.a",
		"SELECT '" + strings.Repeat("x", 100) + "' FROM t",
		"SELECT",
		"SELECT a FROM",
		"((((",
		"SELECT a FROM t WHERE a = 'unterminated",
		// engine-differential seeds: joins, grouping, ordering, ranges,
		// membership, patterns, arithmetic edge cases, date coercions
		"SELECT t.a, u.a FROM t, u WHERE t.a = u.a",
		"SELECT c, count(*), min(b) FROM t GROUP BY c ORDER BY c",
		"SELECT a, b FROM t ORDER BY b DESC, a LIMIT 2",
		"SELECT a FROM t WHERE b BETWEEN 0 AND 1 AND a NOT IN (7, 9)",
		"SELECT s FROM t WHERE s LIKE 'x%' AND NOT s LIKE '%z'",
		"SELECT a / 0 FROM t",
		"SELECT a / b FROM t WHERE b <> 0",
		"SELECT a FROM t WHERE d > '1990-01-01' OR d = DATE '1995-06-01'",
		"SELECT a FROM t WHERE d > 'notadate'",
		"SELECT a FROM t WHERE s",
		"SELECT a + s FROM t",
		"SELECT sum(a) FROM t HAVING sum(a) > 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	tbl := relation.NewTable("t", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Int},
		relation.Column{Name: "b", Type: relation.Float},
		relation.Column{Name: "c", Type: relation.Int},
		relation.Column{Name: "s", Type: relation.Str},
		relation.Column{Name: "d", Type: relation.Date},
	))
	tbl.MustInsert(relation.Row{
		relation.IntVal(1), relation.FloatVal(.5), relation.IntVal(2),
		relation.StrVal("xy"), relation.DateOf(1995, 6, 1),
	})
	u := relation.NewTable("u", relation.MustSchema(relation.Column{Name: "a", Type: relation.Int}))
	u.MustInsert(relation.Row{relation.IntVal(1)})
	cat := MapCatalog{"t": tbl, "u": u}

	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted statements must execute (or fail) without panicking,
		// and deterministically.
		r1, err1 := Execute(stmt, cat)
		r2, err2 := Execute(stmt, cat)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic error for %q: %v vs %v", input, err1, err2)
		}
		if err1 == nil && r1.NumRows() != r2.NumRows() {
			t.Fatalf("non-deterministic row count for %q", input)
		}
		// Differential oracle: the compiled VM must agree with the
		// tree-walk on error class, schema, and the multiset of rows.
		// (Row order is identical in practice, but the contract the rest
		// of the system depends on is set semantics plus explicit ORDER
		// BY, so the fuzz oracle compares multisets.)
		rv, errv := ExecuteWith(context.Background(), stmt, cat, Options{Engine: EngineVM})
		if (err1 == nil) != (errv == nil) {
			t.Fatalf("engines disagree on error for %q: tree %v, vm %v", input, err1, errv)
		}
		if err1 != nil {
			return
		}
		if !sameSchema(r1.Schema, rv.Schema) {
			t.Fatalf("engines disagree on schema for %q: tree %v, vm %v", input, r1.Schema, rv.Schema)
		}
		if !sameRowMultiset(r1, rv) {
			t.Fatalf("engines disagree on rows for %q:\ntree: %v\nvm:   %v", input, r1.Rows, rv.Rows)
		}
	})
}

// sameSchema compares column names and types positionally.
func sameSchema(a, b relation.Schema) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}

// sameRowMultiset compares two results as bags of rendered rows.
func sameRowMultiset(a, b *relation.Table) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	key := func(t *relation.Table) []string {
		keys := make([]string, len(t.Rows))
		for i, r := range t.Rows {
			var sb strings.Builder
			for _, v := range r {
				sb.WriteString(v.String())
				sb.WriteByte('\x00')
			}
			keys[i] = sb.String()
		}
		sort.Strings(keys)
		return keys
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
