package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"ivdss/internal/relation"
)

// Engine selects the execution strategy. The zero value is the bytecode
// VM, so every existing caller gets compiled execution without changes;
// the tree-walking interpreter stays available as the reference oracle.
type Engine int

const (
	// EngineVM compiles the statement to a typed plan and flat bytecode,
	// then executes it over columnar batches. The default.
	EngineVM Engine = iota
	// EngineTreeWalk is the original row-at-a-time AST interpreter.
	EngineTreeWalk
)

// String names the engine for flags and logs.
func (e Engine) String() string {
	switch e {
	case EngineVM:
		return "vm"
	case EngineTreeWalk:
		return "tree"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine maps a flag value ("vm" or "tree") to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(s) {
	case "", "vm":
		return EngineVM, nil
	case "tree", "treewalk", "tree-walk":
		return EngineTreeWalk, nil
	default:
		return 0, fmt.Errorf("sqlmini: unknown engine %q (want vm or tree)", s)
	}
}

// Options tunes one execution. The zero value runs the VM without a
// cache, matching ExecuteContext.
type Options struct {
	Engine Engine
	// Cache, when set, lets VM executions reuse columnar table images and
	// hash-join builds across a micro-batch workload. Safe to share
	// between goroutines.
	Cache *ExecCache
}

// ExecuteWith evaluates a parsed statement with explicit engine options.
func ExecuteWith(ctx context.Context, stmt *SelectStmt, cat Catalog, opts Options) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	if opts.Engine == EngineTreeWalk {
		return executeTree(ctx, stmt, cat)
	}
	// Memoize table fetches for the duration of this statement: Prepare
	// and bind would otherwise hit the catalog twice per table, which for
	// federated catalogs pays the (simulated) network cost twice and could
	// observe two different snapshots of the same table.
	cat = &onceCatalog{cat: cat}
	p, err := Prepare(stmt, cat)
	if err != nil {
		return nil, err
	}
	res, err := p.ExecuteContext(ctx, cat, opts.Cache)
	if err != nil && errors.Is(err, errVMFallback) {
		// The VM declined (e.g. a base table whose rows violate their
		// declared schema, which columnar conversion rejects but the
		// row-at-a-time oracle tolerates). Preserve reference semantics.
		return executeTree(ctx, stmt, cat)
	}
	return res, err
}

// RunWith is ExecuteWith over query text.
func RunWith(ctx context.Context, query string, cat Catalog, opts Options) (*relation.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecuteWith(ctx, stmt, cat, opts)
}

// onceCatalog memoizes successful lookups so each table is fetched from
// the underlying catalog exactly once per statement execution.
type onceCatalog struct {
	cat Catalog
	m   map[string]*relation.Table
}

func (c *onceCatalog) Table(name string) (*relation.Table, error) {
	if t, ok := c.m[name]; ok {
		return t, nil
	}
	t, err := c.cat.Table(name)
	if err != nil {
		return nil, err
	}
	if c.m == nil {
		c.m = make(map[string]*relation.Table)
	}
	c.m[name] = t
	return t, nil
}

// execCacheCap bounds each cache map; when a map fills (pointer-keyed
// entries for tables that no longer exist just accumulate), the whole map
// is dropped and re-warms from the live working set.
const execCacheCap = 128

// ExecCache holds columnar images of row-major tables and hash-join build
// indexes, keyed by table pointer identity. Replica snapshots are swapped
// copy-on-write, so a pointer uniquely names one version of a table's
// contents; a row-count check additionally invalidates entries for
// append-mutated tables. A micro-batch workload that scans and joins the
// same snapshots repeatedly pays the columnar conversion and the join
// build once.
type ExecCache struct {
	mu     sync.Mutex
	cols   map[*relation.Table]*relation.ColTable
	builds map[buildKey]*relation.JoinIndex
}

type buildKey struct {
	t   *relation.Table
	sig string // key column positions, e.g. "3,7"
}

// NewExecCache returns an empty cache.
func NewExecCache() *ExecCache {
	return &ExecCache{}
}

// columnar returns the cached columnar image of t, converting on miss.
// Conversion runs outside the lock; concurrent misses may duplicate work
// but never block each other on it.
func (c *ExecCache) columnar(t *relation.Table) (*relation.ColTable, error) {
	c.mu.Lock()
	if ct, ok := c.cols[t]; ok && ct.N == len(t.Rows) {
		c.mu.Unlock()
		return ct, nil
	}
	c.mu.Unlock()
	ct, err := relation.Columnar(t)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.cols == nil || len(c.cols) >= execCacheCap {
		c.cols = make(map[*relation.Table]*relation.ColTable)
	}
	c.cols[t] = ct
	c.mu.Unlock()
	return ct, nil
}

// joinIndex returns the cached build index for t's columnar image ct over
// the given key positions, building on miss.
func (c *ExecCache) joinIndex(ctx context.Context, t *relation.Table, ct *relation.ColTable, keys []int) (*relation.JoinIndex, error) {
	key := buildKey{t: t, sig: keySig(keys)}
	c.mu.Lock()
	if idx, ok := c.builds[key]; ok && idx.N == ct.N {
		c.mu.Unlock()
		return idx, nil
	}
	c.mu.Unlock()
	idx, err := relation.BuildJoinIndex(ctx, ct, keys)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.builds == nil || len(c.builds) >= execCacheCap {
		c.builds = make(map[buildKey]*relation.JoinIndex)
	}
	c.builds[key] = idx
	c.mu.Unlock()
	return idx, nil
}

func keySig(keys []int) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	return b.String()
}
