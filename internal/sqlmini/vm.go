package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// This file executes a Prepared plan: a register interpreter for the
// bytecode in compile.go, and the batched pipeline driver that binds the
// plan to live tables, runs joins over columnar data (reusing cached
// build indexes), and drives each expression program one BatchRows
// window at a time.

// errVMFallback marks conditions under which the VM cannot faithfully
// execute (a base table whose rows violate its declared schema, or a
// plan/type mirror mismatch). ExecuteWith catches it and re-runs the
// statement on the tree-walk oracle, so callers always get the
// reference semantics.
var errVMFallback = errors.New("sqlmini: vm cannot execute faithfully")

func vmFallback(err error) error {
	return fmt.Errorf("%w: %v", errVMFallback, err)
}

// identitySel is the shared all-rows selection; programs only read it.
var identitySel = func() []int32 {
	s := make([]int32, relation.BatchRows)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}()

// progRegs is one program's register file. Data registers are indexed
// uniformly across the three typed pools (only the slice matching the
// register's type is populated); view registers rebind to column windows
// per batch, computed registers own BatchRows-sized buffers for the
// lifetime of the stage. Selection registers hold sorted row positions;
// register 0 is the stage-provided input selection.
type progRegs struct {
	ints   [][]int64
	floats [][]float64
	strs   [][]string
	sels   [][]int32
	selBuf [][]int32 // backing storage for computed selections
}

func newProgRegs(p *prog) *progRegs {
	rf := &progRegs{
		ints:   make([][]int64, len(p.dataTypes)),
		floats: make([][]float64, len(p.dataTypes)),
		strs:   make([][]string, len(p.dataTypes)),
		sels:   make([][]int32, p.nsel),
		selBuf: make([][]int32, p.nsel),
	}
	for r, t := range p.dataTypes {
		if p.dataView[r] {
			continue
		}
		switch t {
		case relation.Float:
			rf.floats[r] = make([]float64, relation.BatchRows)
		case relation.Str:
			rf.strs[r] = make([]string, relation.BatchRows)
		default: // Int, Date
			rf.ints[r] = make([]int64, relation.BatchRows)
		}
	}
	for i := 1; i < p.nsel; i++ {
		rf.selBuf[i] = make([]int32, 0, relation.BatchRows)
	}
	return rf
}

// run executes the program over the window [base, base+n) of ct. The
// caller sets rf.sels[0] to the input selection before calling.
func (p *prog) run(rf *progRegs, ct *relation.ColTable, base, n int) error {
	for _, in := range p.ins {
		switch in.op {
		case opLoadCol:
			col := &ct.Cols[in.aux]
			switch col.T {
			case relation.Float:
				rf.floats[in.dst] = col.Floats[base : base+n]
			case relation.Str:
				rf.strs[in.dst] = col.Strs[base : base+n]
			default:
				rf.ints[in.dst] = col.Ints[base : base+n]
			}
		case opConst:
			v := p.consts[in.aux]
			switch v.T {
			case relation.Float:
				d := rf.floats[in.dst]
				for i := 0; i < n; i++ {
					d[i] = v.F
				}
			case relation.Str:
				d := rf.strs[in.dst]
				for i := 0; i < n; i++ {
					d[i] = v.S
				}
			default:
				d := rf.ints[in.dst]
				for i := 0; i < n; i++ {
					d[i] = v.I
				}
			}
		case opI2F:
			a, d := rf.ints[in.a], rf.floats[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = float64(a[i])
			}
		case opAddI:
			a, b, d := rf.ints[in.a], rf.ints[in.b], rf.ints[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] + b[i]
			}
		case opSubI:
			a, b, d := rf.ints[in.a], rf.ints[in.b], rf.ints[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] - b[i]
			}
		case opMulI:
			a, b, d := rf.ints[in.a], rf.ints[in.b], rf.ints[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] * b[i]
			}
		case opAddF:
			a, b, d := rf.floats[in.a], rf.floats[in.b], rf.floats[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] + b[i]
			}
		case opSubF:
			a, b, d := rf.floats[in.a], rf.floats[in.b], rf.floats[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] - b[i]
			}
		case opMulF:
			a, b, d := rf.floats[in.a], rf.floats[in.b], rf.floats[in.dst]
			for _, i := range rf.sels[in.sel] {
				d[i] = a[i] * b[i]
			}
		case opDivF:
			a, b, d := rf.floats[in.a], rf.floats[in.b], rf.floats[in.dst]
			for _, i := range rf.sels[in.sel] {
				if b[i] == 0 {
					return fmt.Errorf("sqlmini: division by zero")
				}
				d[i] = a[i] / b[i]
			}
		case opParseDate:
			a, d := rf.strs[in.a], rf.ints[in.dst]
			for _, i := range rf.sels[in.sel] {
				v, err := relation.ParseDate(a[i])
				if err != nil {
					return err
				}
				d[i] = v.I
			}
		case opCmpF:
			rf.sels[in.dst] = cmpFloats(rf.selBuf[in.dst][:0], rf.floats[in.a], rf.floats[in.b], rf.sels[in.sel], in.aux)
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opCmpI:
			rf.sels[in.dst] = cmpInts(rf.selBuf[in.dst][:0], rf.ints[in.a], rf.ints[in.b], rf.sels[in.sel], in.aux)
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opCmpS:
			rf.sels[in.dst] = cmpStrs(rf.selBuf[in.dst][:0], rf.strs[in.a], rf.strs[in.b], rf.sels[in.sel], in.aux)
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opSelNonZeroI:
			out := rf.selBuf[in.dst][:0]
			a := rf.ints[in.a]
			for _, i := range rf.sels[in.sel] {
				if a[i] != 0 {
					out = append(out, i)
				}
			}
			rf.sels[in.dst] = out
			rf.selBuf[in.dst] = out[:0]
		case opSelNonZeroF:
			out := rf.selBuf[in.dst][:0]
			a := rf.floats[in.a]
			for _, i := range rf.sels[in.sel] {
				if a[i] != 0 {
					out = append(out, i)
				}
			}
			rf.sels[in.dst] = out
			rf.selBuf[in.dst] = out[:0]
		case opLike:
			out := rf.selBuf[in.dst][:0]
			a, parts := rf.strs[in.a], p.pats[in.aux]
			for _, i := range rf.sels[in.sel] {
				if likeMatchParts(a[i], parts) {
					out = append(out, i)
				}
			}
			rf.sels[in.dst] = out
			rf.selBuf[in.dst] = out[:0]
		case opSelDiff:
			rf.sels[in.dst] = selDiff(rf.selBuf[in.dst][:0], rf.sels[in.a], rf.sels[in.b])
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opSelUnion:
			rf.sels[in.dst] = selUnion(rf.selBuf[in.dst][:0], rf.sels[in.a], rf.sels[in.b])
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opSelInter:
			rf.sels[in.dst] = selInter(rf.selBuf[in.dst][:0], rf.sels[in.a], rf.sels[in.b])
			rf.selBuf[in.dst] = rf.sels[in.dst][:0]
		case opBoolFromSel:
			d, sa, sb := rf.ints[in.dst], rf.sels[in.a], rf.sels[in.b]
			j := 0
			for _, i := range sa {
				for j < len(sb) && sb[j] < i {
					j++
				}
				if j < len(sb) && sb[j] == i {
					d[i] = 1
				} else {
					d[i] = 0
				}
			}
		case opError:
			if len(rf.sels[in.sel]) > 0 {
				return errors.New(p.errs[in.aux])
			}
		}
	}
	return nil
}

// cmpFloats filters sel by a[i] <op> b[i]; the comparison predicate is
// hoisted out of the loop so the hot path is a branch per row.
func cmpFloats(out []int32, a, b []float64, sel []int32, code int32) []int32 {
	switch code {
	case cmpEQ:
		for _, i := range sel {
			if a[i] == b[i] {
				out = append(out, i)
			}
		}
	case cmpNE:
		for _, i := range sel {
			if a[i] != b[i] {
				out = append(out, i)
			}
		}
	case cmpLT:
		for _, i := range sel {
			if a[i] < b[i] {
				out = append(out, i)
			}
		}
	case cmpLE:
		for _, i := range sel {
			if a[i] <= b[i] {
				out = append(out, i)
			}
		}
	case cmpGT:
		for _, i := range sel {
			if a[i] > b[i] {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if a[i] >= b[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

func cmpInts(out []int32, a, b []int64, sel []int32, code int32) []int32 {
	switch code {
	case cmpEQ:
		for _, i := range sel {
			if a[i] == b[i] {
				out = append(out, i)
			}
		}
	case cmpNE:
		for _, i := range sel {
			if a[i] != b[i] {
				out = append(out, i)
			}
		}
	case cmpLT:
		for _, i := range sel {
			if a[i] < b[i] {
				out = append(out, i)
			}
		}
	case cmpLE:
		for _, i := range sel {
			if a[i] <= b[i] {
				out = append(out, i)
			}
		}
	case cmpGT:
		for _, i := range sel {
			if a[i] > b[i] {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if a[i] >= b[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

func cmpStrs(out []int32, a, b []string, sel []int32, code int32) []int32 {
	for _, i := range sel {
		c := strings.Compare(a[i], b[i])
		ok := false
		switch code {
		case cmpEQ:
			ok = c == 0
		case cmpNE:
			ok = c != 0
		case cmpLT:
			ok = c < 0
		case cmpLE:
			ok = c <= 0
		case cmpGT:
			ok = c > 0
		default:
			ok = c >= 0
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// selDiff appends a \ b (both sorted ascending).
func selDiff(out, a, b []int32) []int32 {
	j := 0
	for _, i := range a {
		for j < len(b) && b[j] < i {
			j++
		}
		if j < len(b) && b[j] == i {
			continue
		}
		out = append(out, i)
	}
	return out
}

// selUnion merges two disjoint sorted selections.
func selUnion(out, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func selInter(out, a, b []int32) []int32 {
	j := 0
	for _, i := range a {
		for j < len(b) && b[j] < i {
			j++
		}
		if j < len(b) && b[j] == i {
			out = append(out, i)
		}
	}
	return out
}

// ExecuteContext binds the plan to the catalog's current table contents
// and runs it. A nil cache disables cross-execution reuse. Safe for
// concurrent use on a shared Prepared and a shared cache.
func (p *Prepared) ExecuteContext(ctx context.Context, cat Catalog, cache *ExecCache) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}

	bound := make([]*relation.ColTable, len(p.loads))
	ptrs := make([]*relation.Table, len(p.loads))
	for i, ld := range p.loads {
		t, err := cat.Table(ld.table)
		if err != nil {
			return nil, err
		}
		if !schemaEqual(t.Schema, ld.base) {
			return nil, vmFallback(fmt.Errorf("table %q schema changed since prepare", ld.table))
		}
		var ct *relation.ColTable
		if cache != nil {
			ct, err = cache.columnar(t)
		} else {
			ct, err = relation.Columnar(t)
		}
		if err != nil {
			return nil, vmFallback(err)
		}
		// Requalify via a shallow wrapper: vectors are shared with the
		// (possibly cached) base image and never written.
		bound[i] = &relation.ColTable{Name: ld.alias, Schema: ld.qual, N: ct.N, Cols: ct.Cols}
		ptrs[i] = t
	}

	working := bound[0]
	workingBase := 0 // loads index while working is still a bare scan, else -1
	var err error
	for _, st := range p.steps {
		right := bound[st.right]
		if st.cross {
			if int64(working.N)*int64(right.N) > maxCrossRows {
				return nil, fmt.Errorf("sqlmini: cross product of %s (%d rows) and %s (%d rows) exceeds limit",
					working.Name, working.N, right.Name, right.N)
			}
			working, err = relation.ColCrossJoinContext(ctx, working, right)
			if err != nil {
				return nil, err
			}
		} else {
			// Build the smaller side, like HashJoinContext (ties build
			// left). When the chosen build side is a bare base-table scan,
			// the build index is cacheable across executions — the heart
			// of hash-join reuse under a micro-batch workload.
			buildLeft := right.N >= working.N
			var idx *relation.JoinIndex
			if cache != nil {
				if buildLeft && workingBase >= 0 {
					idx, err = cache.joinIndex(ctx, ptrs[workingBase], working, st.lk)
				} else if !buildLeft {
					idx, err = cache.joinIndex(ctx, ptrs[st.right], right, st.rk)
				}
			}
			if idx == nil && err == nil {
				if buildLeft {
					idx, err = relation.BuildJoinIndex(ctx, working, st.lk)
				} else {
					idx, err = relation.BuildJoinIndex(ctx, right, st.rk)
				}
			}
			if err != nil {
				return nil, err
			}
			working, err = relation.ColHashJoinIndexed(ctx, working, right, st.lk, st.rk, buildLeft, idx)
			if err != nil {
				return nil, err
			}
		}
		workingBase = -1
		for _, rp := range st.residual {
			working, err = filterCol(ctx, working, rp)
			if err != nil {
				return nil, err
			}
		}
	}

	if p.where != nil {
		working, err = filterCol(ctx, working, p.where)
		if err != nil {
			return nil, err
		}
	}

	if p.agg != nil {
		derived, err := runValueStage(ctx, working, p.agg.derived, working.Name, p.agg.derivedCols, p.agg.progTypes)
		if err != nil {
			return nil, err
		}
		working, err = relation.ColAggregateContext(ctx, derived, p.agg.groupIdx, p.agg.specs)
		if err != nil {
			return nil, err
		}
		if p.having != nil {
			working, err = filterCol(ctx, working, p.having)
			if err != nil {
				return nil, err
			}
		}
	}

	stage, err := runValueStage(ctx, working, p.proj.prog, "result", p.proj.outEnvCols, p.proj.progTypes)
	if err != nil {
		return nil, err
	}
	result := stage.ToTable()
	if p.proj.distinct {
		dedupeRows(result, len(p.proj.outCols))
	}
	if len(p.proj.sortKeys) > 0 {
		if err := relation.Sort(result, p.proj.sortKeys); err != nil {
			return nil, err
		}
	}
	if p.proj.limit >= 0 {
		if err := relation.Limit(result, p.proj.limit); err != nil {
			return nil, err
		}
	}
	if len(p.proj.outEnvCols) > len(p.proj.outCols) {
		cols := make([]int, len(p.proj.outCols))
		for i := range cols {
			cols[i] = i
		}
		return relation.Project(result, cols)
	}
	result.Schema = relation.Schema{Cols: p.proj.outCols}
	return result, nil
}

// filterCol streams t through a predicate program, gathering surviving
// rows batch by batch.
func filterCol(ctx context.Context, t *relation.ColTable, pr *prog) (*relation.ColTable, error) {
	out := relation.NewColTable(t.Name, t.Schema, 0)
	rf := newProgRegs(pr)
	for base := 0; base < t.N; base += relation.BatchRows {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		n := t.N - base
		if n > relation.BatchRows {
			n = relation.BatchRows
		}
		rf.sels[0] = identitySel[:n]
		if err := pr.run(rf, t, base, n); err != nil {
			return nil, err
		}
		out.GatherInto(t, base, rf.sels[pr.outSel])
	}
	return out, nil
}

// runValueStage evaluates a value program over every row of t, producing
// a columnar table whose declared schema comes from the plan and whose
// vectors carry the program's computed types.
func runValueStage(ctx context.Context, t *relation.ColTable, pr *prog, name string, declared []relation.Column, progTypes []relation.Type) (*relation.ColTable, error) {
	out := &relation.ColTable{
		Name:   name,
		Schema: relation.Schema{Cols: declared},
		Cols:   make([]relation.Vector, len(progTypes)),
	}
	for i, ty := range progTypes {
		out.Cols[i] = relation.NewVector(ty, t.N)
	}
	rf := newProgRegs(pr)
	for base := 0; base < t.N; base += relation.BatchRows {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		n := t.N - base
		if n > relation.BatchRows {
			n = relation.BatchRows
		}
		rf.sels[0] = identitySel[:n]
		if err := pr.run(rf, t, base, n); err != nil {
			return nil, err
		}
		for oi, reg := range pr.outs {
			v := &out.Cols[oi]
			switch progTypes[oi] {
			case relation.Float:
				v.Floats = append(v.Floats, rf.floats[reg][:n]...)
			case relation.Str:
				v.Strs = append(v.Strs, rf.strs[reg][:n]...)
			default:
				v.Ints = append(v.Ints, rf.ints[reg][:n]...)
			}
		}
	}
	out.N = t.N
	return out, nil
}
