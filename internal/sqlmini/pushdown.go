package sqlmini

import (
	"fmt"
	"strings"
)

// PushdownFor extracts the part of the statement's WHERE clause that can
// execute at the remote site owning one table: the conjuncts whose every
// column reference is qualified with that table's alias. It returns the
// remote-executable SQL ("SELECT * FROM <table> WHERE <pred>") with the
// qualifiers stripped, or ok=false when nothing can be pushed.
//
// Pushdown is skipped (ok=false) when the table appears under more than
// one alias (e.g. `nation n1, nation n2`): a single fetched row set must
// satisfy both roles, so per-alias filters would drop rows the other alias
// needs. Re-applying pushed conjuncts locally is always safe — the DSS
// executor runs the full WHERE regardless — so pushdown only ever reduces
// transferred rows, never changes results.
func PushdownFor(stmt *SelectStmt, table string) (sql string, ok bool) {
	aliases := aliasesOf(stmt, table)
	if len(aliases) != 1 {
		return "", false
	}
	alias := aliases[0]

	var pushed []Expr
	for _, c := range splitConjuncts(stmt.Where) {
		if allRefsQualifiedBy(c, alias) {
			pushed = append(pushed, stripQualifier(c, alias))
		}
	}
	if len(pushed) == 0 {
		return "", false
	}
	parts := make([]string, len(pushed))
	for i, e := range pushed {
		parts[i] = e.String()
	}
	return fmt.Sprintf("SELECT * FROM %s WHERE %s", table, strings.Join(parts, " AND ")), true
}

// aliasesOf lists the distinct aliases under which the statement reads the
// table.
func aliasesOf(stmt *SelectStmt, table string) []string {
	var out []string
	add := func(ref TableRef) {
		if strings.EqualFold(ref.Name, table) {
			out = append(out, ref.EffectiveAlias())
		}
	}
	for _, ref := range stmt.From {
		add(ref)
	}
	for _, jc := range stmt.Joins {
		add(jc.Table)
	}
	return out
}

// allRefsQualifiedBy reports whether every column reference in the
// expression carries the given qualifier (case-insensitively). An
// expression with no column references (a constant predicate) also
// qualifies. Aggregates never push down.
func allRefsQualifiedBy(e Expr, alias string) bool {
	switch x := e.(type) {
	case *Literal:
		return true
	case *ColumnRef:
		return strings.EqualFold(x.Qualifier, alias)
	case *BinaryExpr:
		return allRefsQualifiedBy(x.Left, alias) && allRefsQualifiedBy(x.Right, alias)
	case *NotExpr:
		return allRefsQualifiedBy(x.Inner, alias)
	case *BetweenExpr:
		return allRefsQualifiedBy(x.Subject, alias) && allRefsQualifiedBy(x.Lo, alias) && allRefsQualifiedBy(x.Hi, alias)
	case *InExpr:
		if !allRefsQualifiedBy(x.Subject, alias) {
			return false
		}
		for _, o := range x.Options {
			if !allRefsQualifiedBy(o, alias) {
				return false
			}
		}
		return true
	case *LikeExpr:
		return allRefsQualifiedBy(x.Subject, alias)
	default:
		return false
	}
}

// stripQualifier returns a copy of the expression with the alias qualifier
// removed from every column reference, so it binds against the bare table
// at the remote site.
func stripQualifier(e Expr, alias string) Expr {
	switch x := e.(type) {
	case *Literal:
		return x
	case *ColumnRef:
		if strings.EqualFold(x.Qualifier, alias) {
			return &ColumnRef{Name: x.Name}
		}
		return x
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: stripQualifier(x.Left, alias), Right: stripQualifier(x.Right, alias)}
	case *NotExpr:
		return &NotExpr{Inner: stripQualifier(x.Inner, alias)}
	case *BetweenExpr:
		return &BetweenExpr{
			Subject: stripQualifier(x.Subject, alias),
			Lo:      stripQualifier(x.Lo, alias),
			Hi:      stripQualifier(x.Hi, alias),
		}
	case *InExpr:
		opts := make([]Expr, len(x.Options))
		for i, o := range x.Options {
			opts[i] = stripQualifier(o, alias)
		}
		return &InExpr{Subject: stripQualifier(x.Subject, alias), Options: opts}
	case *LikeExpr:
		return &LikeExpr{Subject: stripQualifier(x.Subject, alias), Pattern: x.Pattern}
	default:
		return x
	}
}
