package sqlmini

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ivdss/internal/relation"
)

func viewBaseSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "o_id", Type: relation.Int},
		relation.Column{Name: "o_region", Type: relation.Str},
		relation.Column{Name: "o_amount", Type: relation.Float},
		relation.Column{Name: "o_qty", Type: relation.Int},
	)
}

func randomOrderRow(rng *rand.Rand, id int64) relation.Row {
	regions := []string{"east", "west", "north", "south"}
	return relation.Row{
		relation.IntVal(id),
		relation.StrVal(regions[rng.Intn(len(regions))]),
		relation.FloatVal(float64(rng.Intn(2000)) / 20),
		relation.IntVal(int64(rng.Intn(10))),
	}
}

// wireSQL renders the remote-side shipping query ViewWire describes, the
// same statement the sync layer sends to the base site.
func wireSQL(table, filter string, columns []string) string {
	return WireSQL(table, filter, columns)
}

// TestViewMaintainable pins the maintainability frontier: single-table
// statements compile, joins and multi-table FROMs are rejected.
func TestViewMaintainable(t *testing.T) {
	ok := []string{
		"SELECT o_region, sum(o_amount) FROM orders GROUP BY o_region",
		"SELECT * FROM orders WHERE o_qty > 3",
		"SELECT count(*) FROM orders",
	}
	for _, q := range ok {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if err := ViewMaintainable(stmt); err != nil {
			t.Errorf("%q: want maintainable, got %v", q, err)
		}
	}
	bad := []string{
		"SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust",
		"SELECT c_name FROM customers JOIN orders ON c_id = o_cust",
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if err := ViewMaintainable(stmt); err == nil {
			t.Errorf("%q: want not-maintainable error, got nil", q)
		}
	}
}

// TestViewWire checks the shipping spec: filter rendered in bare names,
// referenced columns in first-appearance order, nil columns when the view
// selects * (or reads no column by name, and the wire must still carry row
// existence).
func TestViewWire(t *testing.T) {
	cases := []struct {
		q       string
		table   string
		filter  string
		columns []string
	}{
		{
			q:       "SELECT o_region, sum(o_amount) FROM orders WHERE o_qty > 2 GROUP BY o_region",
			table:   "orders",
			filter:  "(o_qty > 2)",
			columns: []string{"o_region", "o_amount", "o_qty"},
		},
		{
			q:       "SELECT o.o_id FROM orders AS o WHERE o.o_region = 'east'",
			table:   "orders",
			filter:  "(o_id = o_id)", // placeholder; replaced below
			columns: []string{"o_id", "o_region"},
		},
		{
			q:       "SELECT * FROM orders WHERE o_qty > 1",
			table:   "orders",
			filter:  "(o_qty > 1)",
			columns: nil,
		},
		{
			q:       "SELECT count(*) FROM orders",
			table:   "orders",
			filter:  "",
			columns: nil,
		},
	}
	cases[1].filter = "(o_region = 'east')"
	for _, tc := range cases {
		stmt, err := Parse(tc.q)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		table, filter, columns, err := ViewWire(stmt)
		if err != nil {
			t.Fatalf("%q: ViewWire: %v", tc.q, err)
		}
		if table != tc.table || filter != tc.filter {
			t.Errorf("%q: got (%q, %q), want (%q, %q)", tc.q, table, filter, tc.table, tc.filter)
		}
		if fmt.Sprint(columns) != fmt.Sprint(tc.columns) {
			t.Errorf("%q: columns %v, want %v", tc.q, columns, tc.columns)
		}
	}

	stmt, err := Parse("SELECT x.o_id FROM orders AS o")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ViewWire(stmt); err == nil {
		t.Error("foreign qualifier: want error, got nil")
	}
}

// TestViewProgramDifferential is the delta-vs-recompute oracle: random
// append-only delta batches flow through the full wire path (remote filter
// + projection via the rendered shipping SQL, then ViewProgram.Apply), and
// after every batch the program's Result must be byte-identical to
// executing the view query from scratch over the whole base table.
// Periodic Reset + full-history replay pins the snapshot recovery path to
// the same answer.
func TestViewProgramDifferential(t *testing.T) {
	queries := []string{
		"SELECT o_region, sum(o_amount), count(*) FROM orders WHERE o_qty > 2 GROUP BY o_region",
		"SELECT o_region, avg(o_amount) AS avg_amt, min(o_qty), max(o_amount) FROM orders GROUP BY o_region HAVING count(*) > 1 ORDER BY avg_amt DESC, o_region",
		"SELECT count(DISTINCT o_region), sum(o_qty) FROM orders WHERE o_amount BETWEEN 5 AND 50",
		"SELECT count(*) FROM orders WHERE o_region = 'east'",
		"SELECT * FROM orders WHERE o_region IN ('east', 'west') ORDER BY o_id LIMIT 10",
		"SELECT o.o_id, o.o_amount FROM orders AS o WHERE o.o_region = 'east' AND o.o_qty >= 1",
		"SELECT DISTINCT o_region FROM orders WHERE o_qty > 0 ORDER BY o_region",
		"SELECT o_region, count(*) AS n FROM orders GROUP BY o_region ORDER BY n DESC, o_region LIMIT 3",
	}
	ctx := context.Background()
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(1000 + qi)))
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		table, filter, columns, err := ViewWire(stmt)
		if err != nil {
			t.Fatalf("%q: ViewWire: %v", q, err)
		}
		ship := wireSQL(table, filter, columns)

		// The shipped schema is whatever the shipping query produces — run
		// it once over an empty base to capture it, as the sync layer does
		// from the snapshot response.
		empty := relation.NewTable(table, viewBaseSchema())
		probe, err := Run(ship, MapCatalog{table: empty})
		if err != nil {
			t.Fatalf("%q: shipping query %q: %v", q, ship, err)
		}
		prog, err := CompileView(stmt, probe.Schema)
		if err != nil {
			t.Fatalf("%q: CompileView: %v", q, err)
		}

		base := relation.NewTable(table, viewBaseSchema())
		var history []relation.Row
		nextID := int64(0)
		for round := 0; round < 24; round++ {
			delta := relation.NewTable(table, viewBaseSchema())
			for i := 0; i < rng.Intn(5); i++ {
				row := randomOrderRow(rng, nextID)
				nextID++
				base.MustInsert(row)
				delta.MustInsert(row)
			}
			batch, err := Run(ship, MapCatalog{table: delta})
			if err != nil {
				t.Fatalf("%q: ship batch: %v", q, err)
			}
			if err := prog.Apply(ctx, batch.Rows); err != nil {
				t.Fatalf("%q round %d: Apply: %v", q, round, err)
			}
			history = append(history, batch.Rows...)
			if round%6 == 5 {
				prog.Reset()
				if err := prog.Apply(ctx, history); err != nil {
					t.Fatalf("%q round %d: replay after Reset: %v", q, round, err)
				}
			}

			got, err := prog.Result(ctx)
			if err != nil {
				t.Fatalf("%q round %d: Result: %v", q, round, err)
			}
			oracle, err := ExecuteContext(ctx, stmt, MapCatalog{table: base})
			if err != nil {
				t.Fatalf("%q round %d: oracle: %v", q, round, err)
			}
			requireSameTable(t, fmt.Sprintf("%s [round %d]", q, round), oracle, got)
		}
		if prog.Folded() == 0 {
			t.Errorf("%q: no rows folded across all rounds; differential vacuous", q)
		}
	}
}

// TestViewProgramUnfilteredInput feeds the program raw, unfiltered base
// rows: the local WHERE re-application must reach the same answer, which
// is what makes remote filtering a pure byte optimization.
func TestViewProgramUnfilteredInput(t *testing.T) {
	ctx := context.Background()
	q := "SELECT o_region, sum(o_amount) AS total FROM orders WHERE o_qty > 4 GROUP BY o_region ORDER BY o_region"
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	base := relation.NewTable("orders", viewBaseSchema())
	for i := 0; i < 40; i++ {
		base.MustInsert(randomOrderRow(rng, int64(i)))
	}

	// Full base schema shipped, no remote filter at all.
	prog, err := CompileView(stmt, viewBaseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Apply(ctx, base.Rows); err != nil {
		t.Fatal(err)
	}
	got, err := prog.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ExecuteContext(ctx, stmt, MapCatalog{"orders": base})
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, q, oracle, got)
}
