package sqlmini

import (
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// Expr is a scalar or boolean expression evaluated per row.
type Expr interface {
	// String renders the expression back to (approximate) SQL.
	String() string
}

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string // "" when unqualified
	Name      string
}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct {
	Val relation.Value
}

func (l *Literal) String() string {
	switch l.Val.T {
	case relation.Str:
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	case relation.Date:
		return "DATE '" + l.Val.String() + "'"
	default:
		return l.Val.String()
	}
}

// BinaryExpr applies an arithmetic, comparison, or logical operator.
type BinaryExpr struct {
	Op          string // +, -, *, /, =, <>, <, <=, >, >=, AND, OR
	Left, Right Expr
}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Inner Expr
}

func (n *NotExpr) String() string { return "NOT (" + n.Inner.String() + ")" }

// BetweenExpr is `subject BETWEEN lo AND hi` (inclusive).
type BetweenExpr struct {
	Subject, Lo, Hi Expr
}

func (b *BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.Subject, b.Lo, b.Hi)
}

// InExpr is `subject IN (literal, ...)`.
type InExpr struct {
	Subject Expr
	Options []Expr
}

func (e *InExpr) String() string {
	opts := make([]string, len(e.Options))
	for i, o := range e.Options {
		opts[i] = o.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.Subject, strings.Join(opts, ", "))
}

// LikeExpr matches a string column against a pattern with % wildcards.
type LikeExpr struct {
	Subject Expr
	Pattern string
}

func (e *LikeExpr) String() string {
	return fmt.Sprintf("(%s LIKE '%s')", e.Subject, e.Pattern)
}

// AggExpr is an aggregate call. Star marks COUNT(*).
type AggExpr struct {
	Fn   relation.AggFn
	Arg  Expr // nil when Star
	Star bool
}

func (a *AggExpr) String() string {
	if a.Star {
		return "count(*)"
	}
	if a.Fn == relation.CountDistinct {
		return fmt.Sprintf("count(distinct %s)", a.Arg)
	}
	return fmt.Sprintf("%s(%s)", a.Fn, a.Arg)
}

// SelectItem is one output column of a SELECT. A nil Expr with Star set
// expands to every column of the joined input.
type SelectItem struct {
	Expr  Expr
	Alias string // "" means derive a name from the expression
	Star  bool
}

// TableRef names a table in FROM, with an optional alias.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// EffectiveAlias returns the alias, or the table name when none was given.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one `JOIN table ON cond` step.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is the root of a parsed query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// TableNames returns the distinct table names the statement reads, in
// first-appearance order. The planner uses this to map a SQL text onto the
// catalog's base tables.
func (s *SelectStmt) TableNames() []string {
	seen := make(map[string]bool)
	var names []string
	add := func(name string) {
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			names = append(names, name)
		}
	}
	for _, t := range s.From {
		add(t.Name)
	}
	for _, j := range s.Joins {
		add(j.Table.Name)
	}
	return names
}
