package sqlmini

import (
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// This file compiles expressions to flat bytecode for the register VM in
// vm.go. Compilation mirrors the tree-walk evaluator's semantics exactly,
// but hoists everything row-invariant out of the row loop: name
// resolution, type dispatch, date-literal parsing, LIKE-pattern
// splitting. What remains per row is a handful of typed vector loops.
//
// Two compilation modes exist, matching eval/evalBool:
//
//   - value mode produces a data register (typed vector), evaluated at
//     the positions of a governing selection register;
//   - predicate mode produces a selection register — the subset of the
//     incoming selection satisfying the predicate. AND narrows the
//     selection between its operands and OR evaluates its right side
//     only where the left was false, so per-row short-circuiting (and
//     therefore which rows can raise runtime errors) is preserved.
//
// Type errors the tree-walk evaluator raises per row (arithmetic over
// strings, comparing int with date, aggregates in WHERE, unknown
// columns) compile to opError instructions guarded by the selection:
// they fire only if at least one row actually reaches them, exactly like
// a row loop that never runs can't raise.

type opcode uint8

const (
	opLoadCol opcode = iota // dst ← view of column aux
	opConst                 // dst ← broadcast consts[aux]
	opI2F                   // dst.f ← float64(a.i) over sel
	opAddI                  // dst.i ← a.i + b.i over sel
	opSubI
	opMulI
	opAddF // dst.f ← a.f + b.f over sel
	opSubF
	opMulF
	opDivF        // dst.f ← a.f / b.f over sel; division by zero errors
	opParseDate   // dst.i ← ParseDate(a.s) over sel; malformed errors
	opCmpF        // dst(sel) ← {i ∈ sel : a.f[i] <aux-op> b.f[i]}
	opCmpI        // …int64 payloads (dates)
	opCmpS        // …strings
	opSelNonZeroI // dst(sel) ← {i ∈ sel : a.i[i] != 0}
	opSelNonZeroF
	opLike        // dst(sel) ← {i ∈ sel : likeMatchParts(a.s[i], pats[aux])}
	opSelDiff     // dst(sel) ← a \ b
	opSelUnion    // dst(sel) ← a ∪ b (disjoint sorted merge)
	opSelInter    // dst(sel) ← a ∩ b
	opBoolFromSel // dst.i[i] ← 1 if i ∈ selB else 0, for i ∈ selA
	opError       // if sel non-empty: fail with errs[aux]
)

// cmp aux codes for opCmpF/opCmpI/opCmpS.
const (
	cmpEQ = iota
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
)

func cmpCode(op string) int32 {
	switch op {
	case "=":
		return cmpEQ
	case "<>":
		return cmpNE
	case "<":
		return cmpLT
	case "<=":
		return cmpLE
	case ">":
		return cmpGT
	default:
		return cmpGE
	}
}

type instr struct {
	op   opcode
	dst  uint16
	a, b uint16
	sel  uint16 // governing selection register
	aux  int32  // column / const / error / pattern index, or cmp code
}

// prog is one compiled expression program: flat instructions over a
// register file. Data registers are typed vectors; selection registers
// are sorted row-position lists. Selection register 0 is the program
// input, provided by the operator driving the batch.
type prog struct {
	ins    []instr
	consts []relation.Value
	errs   []string
	pats   [][]string // pre-split LIKE patterns

	dataTypes []relation.Type // per data register
	dataView  []bool          // true: column view, rebound per batch; false: owned buffer
	nsel      int             // selection registers (0 is the input)

	outs   []int // value outputs, in stage order
	outSel int   // predicate output, -1 for value programs
}

// compiler builds a prog against one schema-resolved environment.
type compiler struct {
	en env
	p  *prog
	// constOf tracks which data registers hold a known constant, enabling
	// compile-time date coercion of string literals.
	constOf []int // index into consts, or -1
}

func newCompiler(schema relation.Schema) *compiler {
	return &compiler{
		en: newEnv(schema),
		p:  &prog{outSel: -1, nsel: 1},
	}
}

// compilePredProg compiles a predicate over the schema: output is the
// surviving subset of the input selection.
func compilePredProg(schema relation.Schema, pred Expr) *prog {
	c := newCompiler(schema)
	c.p.outSel = c.compilePred(pred, 0)
	return c.p
}

// compileValueProg compiles a list of value expressions evaluated over
// the full input selection, one output register each.
func compileValueProg(schema relation.Schema, exprs []Expr) (*prog, []relation.Type) {
	c := newCompiler(schema)
	types := make([]relation.Type, len(exprs))
	for i, e := range exprs {
		r, t := c.compileValue(e, 0)
		c.p.outs = append(c.p.outs, r)
		types[i] = t
	}
	return c.p, types
}

func (c *compiler) dataReg(t relation.Type) int {
	c.p.dataTypes = append(c.p.dataTypes, t)
	c.p.dataView = append(c.p.dataView, false)
	c.constOf = append(c.constOf, -1)
	return len(c.p.dataTypes) - 1
}

func (c *compiler) viewReg(t relation.Type) int {
	r := c.dataReg(t)
	c.p.dataView[r] = true
	return r
}

func (c *compiler) selReg() int {
	c.p.nsel++
	return c.p.nsel - 1
}

func (c *compiler) emit(in instr) { c.p.ins = append(c.p.ins, in) }

func (c *compiler) loadCol(col int) int {
	t := c.en.schema.Cols[col].Type
	r := c.viewReg(t)
	c.emit(instr{op: opLoadCol, dst: uint16(r), aux: int32(col)})
	return r
}

func (c *compiler) emitConst(v relation.Value) int {
	r := c.dataReg(v.T)
	c.p.consts = append(c.p.consts, v)
	c.constOf[r] = len(c.p.consts) - 1
	c.emit(instr{op: opConst, dst: uint16(r), aux: int32(len(c.p.consts) - 1)})
	return r
}

// emitError schedules a runtime failure that fires only if a row is
// actually selected when execution reaches it.
func (c *compiler) emitError(sel int, msg string) {
	c.p.errs = append(c.p.errs, msg)
	c.emit(instr{op: opError, sel: uint16(sel), aux: int32(len(c.p.errs) - 1)})
}

// emptySel returns a selection register that is always empty.
func (c *compiler) emptySel(sel int) int {
	ns := c.selReg()
	c.emit(instr{op: opSelDiff, dst: uint16(ns), a: uint16(sel), b: uint16(sel)})
	return ns
}

// valueError emits an error op and a placeholder register typed the way
// inferType would report the expression, mirroring the tree-walk schema
// for results that error (or are empty) at run time.
func (c *compiler) valueError(e Expr, sel int, msg string) (int, relation.Type) {
	c.emitError(sel, msg)
	t := inferType(e, c.en)
	return c.dataReg(t), t
}

// toFloat promotes an Int register to Float; Float registers pass through.
func (c *compiler) toFloat(r int, t relation.Type, sel int) int {
	if t == relation.Float {
		return r
	}
	nr := c.dataReg(relation.Float)
	c.emit(instr{op: opI2F, dst: uint16(nr), a: uint16(r), sel: uint16(sel)})
	return nr
}

// boolFromSel materializes a predicate result as Int 1/0 over selIn.
func (c *compiler) boolFromSel(selIn, selTrue int) int {
	r := c.dataReg(relation.Int)
	c.emit(instr{op: opBoolFromSel, dst: uint16(r), a: uint16(selIn), b: uint16(selTrue)})
	return r
}

func (c *compiler) selOp(op opcode, a, b int) int {
	ns := c.selReg()
	c.emit(instr{op: op, dst: uint16(ns), a: uint16(a), b: uint16(b)})
	return ns
}

// truthiness converts a value register to a selection, mirroring
// evalBool: numeric non-zero is true, strings and dates error.
func (c *compiler) truthiness(r int, t relation.Type, sel int) int {
	switch t {
	case relation.Int:
		ns := c.selReg()
		c.emit(instr{op: opSelNonZeroI, dst: uint16(ns), a: uint16(r), sel: uint16(sel)})
		return ns
	case relation.Float:
		ns := c.selReg()
		c.emit(instr{op: opSelNonZeroF, dst: uint16(ns), a: uint16(r), sel: uint16(sel)})
		return ns
	default:
		c.emitError(sel, fmt.Sprintf("sqlmini: non-boolean %s value in predicate", t))
		return c.emptySel(sel)
	}
}

// compileValue compiles e in value mode under the governing selection.
func (c *compiler) compileValue(e Expr, sel int) (int, relation.Type) {
	// Derived columns (materialized aggregates, group keys) shadow
	// structural compilation, exactly as eval checks lookupDerived first.
	if _, ok := e.(*ColumnRef); !ok {
		if i, ok := c.en.lookupDerived(e); ok {
			return c.loadCol(i), c.en.schema.Cols[i].Type
		}
	}
	switch x := e.(type) {
	case *Literal:
		return c.emitConst(x.Val), x.Val.T
	case *ColumnRef:
		i, err := c.en.resolve(x)
		if err != nil {
			return c.valueError(e, sel, err.Error())
		}
		return c.loadCol(i), c.en.schema.Cols[i].Type
	case *BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return c.compileArith(x, sel)
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return c.boolFromSel(sel, c.compilePred(e, sel)), relation.Int
		default:
			return c.valueError(e, sel, fmt.Sprintf("sqlmini: unknown operator %q", x.Op))
		}
	case *NotExpr, *BetweenExpr, *InExpr, *LikeExpr:
		return c.boolFromSel(sel, c.compilePred(e, sel)), relation.Int
	case *AggExpr:
		return c.valueError(e, sel, fmt.Sprintf("sqlmini: aggregate %s not allowed here", x))
	default:
		return c.valueError(e, sel, fmt.Sprintf("sqlmini: cannot evaluate %T", e))
	}
}

func (c *compiler) compileArith(x *BinaryExpr, sel int) (int, relation.Type) {
	lr, lt := c.compileValue(x.Left, sel)
	rr, rt := c.compileValue(x.Right, sel)
	numeric := func(t relation.Type) bool { return t == relation.Int || t == relation.Float }
	if !numeric(lt) || !numeric(rt) {
		return c.valueError(x, sel, fmt.Sprintf("sqlmini: arithmetic %q over %s and %s", x.Op, lt, rt))
	}
	if x.Op == "/" {
		lf, rf := c.toFloat(lr, lt, sel), c.toFloat(rr, rt, sel)
		dst := c.dataReg(relation.Float)
		c.emit(instr{op: opDivF, dst: uint16(dst), a: uint16(lf), b: uint16(rf), sel: uint16(sel)})
		return dst, relation.Float
	}
	if lt == relation.Int && rt == relation.Int {
		var op opcode
		switch x.Op {
		case "+":
			op = opAddI
		case "-":
			op = opSubI
		default:
			op = opMulI
		}
		dst := c.dataReg(relation.Int)
		c.emit(instr{op: op, dst: uint16(dst), a: uint16(lr), b: uint16(rr), sel: uint16(sel)})
		return dst, relation.Int
	}
	lf, rf := c.toFloat(lr, lt, sel), c.toFloat(rr, rt, sel)
	var op opcode
	switch x.Op {
	case "+":
		op = opAddF
	case "-":
		op = opSubF
	default:
		op = opMulF
	}
	dst := c.dataReg(relation.Float)
	c.emit(instr{op: op, dst: uint16(dst), a: uint16(lf), b: uint16(rf), sel: uint16(sel)})
	return dst, relation.Float
}

// compilePred compiles e in predicate mode: the result selection is the
// subset of sel where e is true.
func (c *compiler) compilePred(e Expr, sel int) int {
	// A whole predicate expression can name a derived column (group keys
	// are named by their rendered text); eval resolves those before any
	// structural evaluation, so the compiler must too.
	if _, ok := e.(*ColumnRef); !ok {
		if i, ok := c.en.lookupDerived(e); ok {
			return c.truthiness(c.loadCol(i), c.en.schema.Cols[i].Type, sel)
		}
	}
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			// Narrow left-to-right: the right side only ever evaluates
			// (and can only error) on rows where the left was true.
			return c.compilePred(x.Right, c.compilePred(x.Left, sel))
		case "OR":
			s1 := c.compilePred(x.Left, sel)
			rest := c.selOp(opSelDiff, sel, s1)
			s2 := c.compilePred(x.Right, rest)
			return c.selOp(opSelUnion, s1, s2)
		case "=", "<>", "<", "<=", ">", ">=":
			lr, lt := c.compileValue(x.Left, sel)
			rr, rt := c.compileValue(x.Right, sel)
			return c.compileCompare(x.Op, lr, lt, rr, rt, sel)
		default:
			r, t := c.compileValue(e, sel)
			return c.truthiness(r, t, sel)
		}
	case *NotExpr:
		return c.selOp(opSelDiff, sel, c.compilePred(x.Inner, sel))
	case *BetweenExpr:
		sr, st := c.compileValue(x.Subject, sel)
		lr, lt := c.compileValue(x.Lo, sel)
		hr, ht := c.compileValue(x.Hi, sel)
		// Both bounds compare over the incoming selection: eval computes
		// both comparisons before combining, with no short-circuit.
		sLo := c.compileCompare(">=", sr, st, lr, lt, sel)
		sHi := c.compileCompare("<=", sr, st, hr, ht, sel)
		return c.selOp(opSelInter, sLo, sHi)
	case *InExpr:
		sr, st := c.compileValue(x.Subject, sel)
		if len(x.Options) == 0 {
			return c.emptySel(sel)
		}
		// Row-wise short-circuit across options: each option is compared
		// only on rows no earlier option matched, mirroring eval's
		// first-match return.
		matched := -1
		remaining := sel
		for _, opt := range x.Options {
			or, ot := c.compileValue(opt, remaining)
			m := c.compileCompare("=", sr, st, or, ot, remaining)
			if matched < 0 {
				matched = m
			} else {
				matched = c.selOp(opSelUnion, matched, m)
			}
			remaining = c.selOp(opSelDiff, remaining, m)
		}
		return matched
	case *LikeExpr:
		sr, st := c.compileValue(x.Subject, sel)
		if st != relation.Str {
			c.emitError(sel, fmt.Sprintf("sqlmini: LIKE over non-string %s", st))
			return c.emptySel(sel)
		}
		c.p.pats = append(c.p.pats, strings.Split(x.Pattern, "%"))
		ns := c.selReg()
		c.emit(instr{op: opLike, dst: uint16(ns), a: uint16(sr), sel: uint16(sel), aux: int32(len(c.p.pats) - 1)})
		return ns
	default: // ColumnRef, Literal, AggExpr
		r, t := c.compileValue(e, sel)
		return c.truthiness(r, t, sel)
	}
}

// compileCompare emits a typed comparison, mirroring compareCoerced:
// numerics compare as float64, strings and dates with themselves, and a
// Str operand against a Date coerces the string side (a constant parses
// once at compile time; a column parses per selected row).
func (c *compiler) compileCompare(op string, lr int, lt relation.Type, rr int, rt relation.Type, sel int) int {
	numeric := func(t relation.Type) bool { return t == relation.Int || t == relation.Float }
	emitCmp := func(oc opcode, a, b int) int {
		ns := c.selReg()
		c.emit(instr{op: oc, dst: uint16(ns), a: uint16(a), b: uint16(b), sel: uint16(sel), aux: cmpCode(op)})
		return ns
	}
	switch {
	case numeric(lt) && numeric(rt):
		return emitCmp(opCmpF, c.toFloat(lr, lt, sel), c.toFloat(rr, rt, sel))
	case lt == relation.Str && rt == relation.Str:
		return emitCmp(opCmpS, lr, rr)
	case lt == relation.Date && rt == relation.Date:
		return emitCmp(opCmpI, lr, rr)
	case lt == relation.Date && rt == relation.Str:
		cr, ok := c.coerceDate(rr, sel)
		if !ok {
			return c.emptySel(sel)
		}
		return emitCmp(opCmpI, lr, cr)
	case lt == relation.Str && rt == relation.Date:
		cl, ok := c.coerceDate(lr, sel)
		if !ok {
			return c.emptySel(sel)
		}
		return emitCmp(opCmpI, cl, rr)
	default:
		c.emitError(sel, fmt.Sprintf("relation: cannot compare %s with %s", lt, rt))
		return c.emptySel(sel)
	}
}

// coerceDate converts a Str register to a Date register. A known string
// constant parses once here; a malformed constant (which the tree walk
// re-parses and rejects per row) becomes a selection-guarded error, so it
// still only fires when a row is actually compared.
func (c *compiler) coerceDate(r int, sel int) (int, bool) {
	if ci := c.constOf[r]; ci >= 0 {
		parsed, err := relation.ParseDate(c.p.consts[ci].S)
		if err != nil {
			c.emitError(sel, err.Error())
			return 0, false
		}
		return c.emitConst(parsed), true
	}
	nr := c.dataReg(relation.Date)
	c.emit(instr{op: opParseDate, dst: uint16(nr), a: uint16(r), sel: uint16(sel)})
	return nr, true
}

// likeMatchParts is likeMatch over a pre-split pattern.
func likeMatchParts(s string, parts []string) bool {
	if len(parts) == 1 {
		return s == parts[0]
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return strings.HasSuffix(s, last)
}
