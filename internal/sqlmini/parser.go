package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"ivdss/internal/relation"
)

// Parse turns a query text into an AST.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting with %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: cond})
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		p.advance()
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: `expr name`.
		p.advance()
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		p.advance()
		ref.Alias = t.text
	}
	return ref, nil
}

// Expression grammar, loosest binding first:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= additive ((cmp additive) | BETWEEN .. AND .. | IN (...) | LIKE '...')?
//	additive := multiplicative (('+'|'-') multiplicative)*
//	multiplicative := unary (('*'|'/') unary)*
//	unary    := '-' unary | primary
//	primary  := literal | aggregate | column | '(' expr ')'
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Subject: left, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var opts []Expr
		for {
			o, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			opts = append(opts, o)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Subject: left, Options: opts}, nil
	}
	if p.acceptKeyword("LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errorf("LIKE needs a string pattern, got %q", t.text)
		}
		p.advance()
		return &LikeExpr{Subject: left, Pattern: t.text}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", Left: &Literal{Val: relation.IntVal(0)}, Right: inner}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]relation.AggFn{
	"SUM": relation.Sum, "COUNT": relation.Count, "AVG": relation.Avg,
	"MIN": relation.Min, "MAX": relation.Max,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: relation.FloatVal(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Val: relation.IntVal(i)}, nil

	case tokString:
		p.advance()
		return &Literal{Val: relation.StrVal(t.text)}, nil

	case tokKeyword:
		if fn, ok := aggFns[t.text]; ok {
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if fn == relation.Count && p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &AggExpr{Fn: fn, Star: true}, nil
			}
			if fn == relation.Count && p.acceptKeyword("DISTINCT") {
				fn = relation.CountDistinct
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &AggExpr{Fn: fn, Arg: arg}, nil
		}
		if t.text == "DATE" {
			p.advance()
			s := p.peek()
			if s.kind != tokString {
				return nil, p.errorf("DATE needs a 'YYYY-MM-DD' string, got %q", s.text)
			}
			p.advance()
			v, err := relation.ParseDate(s.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Val: v}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.text)

	case tokIdent:
		p.advance()
		if p.acceptSymbol(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: t.text, Name: name}, nil
		}
		return &ColumnRef{Name: t.text}, nil

	case tokSymbol:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.text)
}
