package sqlmini

import (
	"fmt"
	"strings"

	"ivdss/internal/relation"
)

// This file builds the typed logical plan: Prepare resolves names,
// chooses the join order, expands stars, and compiles every expression
// to bytecode exactly once. The resulting Prepared is immutable and
// reusable — ExecuteContext binds it to the catalog's current table
// contents, so a micro-batch workload parses and plans one time and
// then only executes.
//
// Everything here mirrors decisions the tree-walk path makes at run
// time. Join order for comma-FROM tables is greedy over WHERE equijoin
// conjuncts — a pure function of the schemas, so hoisting it to prepare
// time cannot change the chosen order. Structural errors the tree walk
// raises before touching any row (no FROM, duplicate alias, unknown
// table, JOIN without equijoin, HAVING without aggregation) surface at
// Prepare; errors it raises per row compile to selection-guarded error
// instructions instead (see compile.go).

// loadSpec names one base-table scan of the plan.
type loadSpec struct {
	table string
	alias string
	base  relation.Schema // schema observed at prepare; rebind re-checks it
	qual  relation.Schema // column names qualified to "alias.col"
}

// joinStep joins the working relation with one loaded table.
type joinStep struct {
	cross    bool
	right    int   // index into loads
	lk, rk   []int // equijoin key positions (working side, right side)
	residual []*prog
}

// aggPlan materializes group keys and aggregate arguments, then groups.
type aggPlan struct {
	derived     *prog
	derivedCols []relation.Column // declared schema of the derived input
	progTypes   []relation.Type   // actual vector types the program emits
	groupIdx    []int
	specs       []relation.AggSpec
	outSchema   relation.Schema // post-aggregation working schema
}

// projPlan evaluates SELECT items plus hidden sort keys and finishes the
// statement (distinct, order, limit, hidden-column strip).
type projPlan struct {
	prog       *prog
	progTypes  []relation.Type
	outCols    []relation.Column // visible result columns
	outEnvCols []relation.Column // visible + hidden sort-key columns
	sortKeys   []relation.SortKey
	distinct   bool
	limit      int
}

// Prepared is a compiled statement: resolved loads, an ordered join
// pipeline, and bytecode for every expression stage. Safe for concurrent
// ExecuteContext calls.
type Prepared struct {
	loads  []loadSpec
	steps  []joinStep
	where  *prog
	agg    *aggPlan
	having *prog
	proj   projPlan
}

// Prepare compiles a parsed statement against the catalog's schemas.
// Only schemas are read here — table contents bind per execution.
func Prepare(stmt *SelectStmt, cat Catalog) (*Prepared, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqlmini: no FROM tables")
	}
	p := &Prepared{}
	aliases := make(map[string]bool)
	load := func(ref TableRef) (int, error) {
		alias := strings.ToLower(ref.EffectiveAlias())
		if aliases[alias] {
			return 0, fmt.Errorf("sqlmini: duplicate table alias %q", ref.EffectiveAlias())
		}
		aliases[alias] = true
		t, err := cat.Table(ref.Name)
		if err != nil {
			return 0, err
		}
		p.loads = append(p.loads, loadSpec{
			table: ref.Name,
			alias: ref.EffectiveAlias(),
			base:  t.Schema,
			qual:  qualifySchema(t.Schema, ref.EffectiveAlias()),
		})
		return len(p.loads) - 1, nil
	}

	if _, err := load(stmt.From[0]); err != nil {
		return nil, err
	}
	working := p.loads[0].qual

	// WHERE conjuncts drive join ordering for comma-FROM tables, exactly
	// as buildJoinTree orders them at run time.
	conjuncts := splitConjuncts(stmt.Where)

	pending := make([]int, 0, len(stmt.From)-1)
	for _, ref := range stmt.From[1:] {
		idx, err := load(ref)
		if err != nil {
			return nil, err
		}
		pending = append(pending, idx)
	}
	for len(pending) > 0 {
		joined := false
		for i, idx := range pending {
			lk, rk := equijoinKeys(conjuncts, working, p.loads[idx].qual)
			if len(lk) == 0 {
				continue
			}
			p.steps = append(p.steps, joinStep{right: idx, lk: lk, rk: rk})
			working = appendSchema(working, p.loads[idx].qual)
			pending = append(pending[:i], pending[i+1:]...)
			joined = true
			break
		}
		if !joined {
			// Disconnected table: cross product, guarded at run time
			// (row counts aren't known until bind).
			idx := pending[0]
			pending = pending[1:]
			p.steps = append(p.steps, joinStep{cross: true, right: idx})
			working = appendSchema(working, p.loads[idx].qual)
		}
	}

	for _, jc := range stmt.Joins {
		idx, err := load(jc.Table)
		if err != nil {
			return nil, err
		}
		onConjuncts := splitConjuncts(jc.On)
		lk, rk := equijoinKeys(onConjuncts, working, p.loads[idx].qual)
		if len(lk) == 0 {
			return nil, fmt.Errorf("sqlmini: JOIN %s ON clause has no equijoin predicate", jc.Table.Name)
		}
		step := joinStep{right: idx, lk: lk, rk: rk}
		working = appendSchema(working, p.loads[idx].qual)
		// Non-equijoin residue of the ON clause filters the join output,
		// one conjunct at a time, in clause order.
		for _, c := range onConjuncts {
			if isEquijoin(c) {
				continue
			}
			step.residual = append(step.residual, compilePredProg(working, c))
		}
		p.steps = append(p.steps, step)
	}

	if stmt.Where != nil {
		p.where = compilePredProg(working, stmt.Where)
	}

	stmt, err := expandStars(stmt, working)
	if err != nil {
		return nil, err
	}

	if len(stmt.GroupBy) > 0 || containsAggregate(stmt) {
		p.agg = planAggregate(stmt, working)
		working = p.agg.outSchema
		if stmt.Having != nil {
			p.having = compilePredProg(working, stmt.Having)
		}
	} else if stmt.Having != nil {
		return nil, fmt.Errorf("sqlmini: HAVING without aggregation")
	}

	p.proj = planProject(stmt, working)
	return p, nil
}

// planAggregate compiles the derived-column program and aggregate specs,
// mirroring aggregate(): group-key columns first (named by groupColName),
// then one argument column per distinct aggregate ("arg:" + rendering),
// with COUNT(*) counting a constant-1 column.
func planAggregate(stmt *SelectStmt, schema relation.Schema) *aggPlan {
	en := newEnv(schema)
	aggs := collectAggs(stmt)

	derivedCols := make([]relation.Column, 0, len(stmt.GroupBy)+len(aggs))
	exprs := make([]Expr, 0, cap(derivedCols))
	for _, g := range stmt.GroupBy {
		derivedCols = append(derivedCols, relation.Column{Name: groupColName(g), Type: inferType(g, en)})
		exprs = append(exprs, g)
	}
	for _, a := range aggs {
		typ := relation.Float
		if a.Star || a.Arg == nil {
			typ = relation.Int
		} else {
			typ = inferType(a.Arg, en)
		}
		derivedCols = append(derivedCols, relation.Column{Name: "arg:" + a.String(), Type: typ})
		if a.Star {
			exprs = append(exprs, &Literal{Val: relation.IntVal(1)})
		} else {
			exprs = append(exprs, a.Arg)
		}
	}

	pr, progTypes := compileValueProg(schema, exprs)

	groupIdx := make([]int, len(stmt.GroupBy))
	for i := range stmt.GroupBy {
		groupIdx[i] = i
	}
	specs := make([]relation.AggSpec, len(aggs))
	for i, a := range aggs {
		col := len(stmt.GroupBy) + i
		fn := a.Fn
		if a.Star {
			fn = relation.Count
		}
		specs[i] = relation.AggSpec{Fn: fn, Col: col, As: a.String()}
	}

	// Post-aggregation schema, as relation.Aggregate derives it from the
	// derived input's declared column types.
	outCols := make([]relation.Column, 0, len(groupIdx)+len(specs))
	for _, c := range groupIdx {
		outCols = append(outCols, derivedCols[c])
	}
	for _, a := range specs {
		typ := relation.Float
		if a.Fn == relation.Count || a.Fn == relation.CountDistinct {
			typ = relation.Int
		}
		if (a.Fn == relation.Min || a.Fn == relation.Max) && a.Col >= 0 && a.Col < len(derivedCols) {
			typ = derivedCols[a.Col].Type
		}
		outCols = append(outCols, relation.Column{Name: a.As, Type: typ})
	}

	return &aggPlan{
		derived:     pr,
		derivedCols: derivedCols,
		progTypes:   progTypes,
		groupIdx:    groupIdx,
		specs:       specs,
		outSchema:   relation.Schema{Cols: outCols},
	}
}

// planProject compiles the SELECT list and ORDER BY keys, mirroring
// project(): output names from alias / bare column name / rendered text,
// deduplicated; ORDER BY resolves against output aliases first, else
// becomes a hidden "sort:N" column stripped after sorting.
func planProject(stmt *SelectStmt, schema relation.Schema) projPlan {
	en := newEnv(schema)
	outCols := make([]relation.Column, 0, len(stmt.Items)+len(stmt.OrderBy))
	exprs := make([]Expr, 0, cap(outCols))
	for i, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			if ref, ok := it.Expr.(*ColumnRef); ok {
				name = ref.Name
			} else {
				name = it.Expr.String()
			}
		}
		name = dedupeName(outCols, name, i)
		outCols = append(outCols, relation.Column{Name: name, Type: inferType(it.Expr, en)})
		exprs = append(exprs, it.Expr)
	}

	outEnvCols := append([]relation.Column{}, outCols...)
	sortKeys := make([]relation.SortKey, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		if ref, ok := o.Expr.(*ColumnRef); ok && ref.Qualifier == "" {
			if idx := (relation.Schema{Cols: outCols}).ColIndex(ref.Name); idx >= 0 {
				sortKeys[i] = relation.SortKey{Col: idx, Desc: o.Desc}
				continue
			}
		}
		outEnvCols = append(outEnvCols, relation.Column{
			Name: fmt.Sprintf("sort:%d", i),
			Type: inferType(o.Expr, en),
		})
		sortKeys[i] = relation.SortKey{Col: len(outEnvCols) - 1, Desc: o.Desc}
		exprs = append(exprs, o.Expr)
	}

	pr, progTypes := compileValueProg(schema, exprs)
	return projPlan{
		prog:       pr,
		progTypes:  progTypes,
		outCols:    outCols,
		outEnvCols: outEnvCols,
		sortKeys:   sortKeys,
		distinct:   stmt.Distinct,
		limit:      stmt.Limit,
	}
}

// qualifySchema renames columns to "alias.col", the schema-only half of
// qualify().
func qualifySchema(s relation.Schema, alias string) relation.Schema {
	cols := make([]relation.Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = relation.Column{Name: alias + "." + c.Name, Type: c.Type}
	}
	return relation.Schema{Cols: cols}
}

func appendSchema(l, r relation.Schema) relation.Schema {
	cols := make([]relation.Column, 0, len(l.Cols)+len(r.Cols))
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	return relation.Schema{Cols: cols}
}

func schemaEqual(a, b relation.Schema) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}
