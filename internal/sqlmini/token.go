// Package sqlmini implements the SQL subset the federation layer executes:
//
//	SELECT [DISTINCT] expr [AS alias], ...
//	FROM table [alias], ...  |  ... JOIN table [alias] ON a = b ...
//	WHERE predicates         (=, <>, <, <=, >, >=, AND, OR, NOT,
//	                          BETWEEN, IN (...), LIKE with % wildcards)
//	GROUP BY cols  HAVING pred  ORDER BY expr [DESC], ...  LIMIT n
//
// with arithmetic and the aggregates SUM/COUNT/AVG/MIN/MAX, compiled onto
// internal/relation operators. This is the query language for the TPC-H
// derived workload and the example applications; it intentionally has no
// NULLs, subqueries, or outer joins — none are needed to reproduce the
// paper's experiments.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved word, normalized to upper case
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "JOIN": true, "INNER": true,
	"ON": true, "BETWEEN": true, "IN": true, "LIKE": true, "DATE": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true,
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

// lex tokenizes the whole input up front; queries are short.
func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]

	switch {
	case isIdentStart(c):
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		text := l.input[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil

	case c >= '0' && c <= '9':
		sawDot := false
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch == '.' {
				if sawDot {
					break
				}
				// A trailing dot followed by a non-digit belongs elsewhere.
				if l.pos+1 >= len(l.input) || l.input[l.pos+1] < '0' || l.input[l.pos+1] > '9' {
					break
				}
				sawDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.input) {
				return token{}, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
			}
			ch := l.input[l.pos]
			if ch == '\'' {
				// '' escapes a quote inside a string.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}

	default:
		for _, sym := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.input[l.pos:], sym) {
				l.pos += len(sym)
				text := sym
				if sym == "!=" {
					text = "<>"
				}
				return token{kind: tokSymbol, text: text, pos: start}, nil
			}
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, l.pos)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
