package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ivdss/internal/relation"
)

// bigTable builds an n-row single-column int table.
func bigTable(name string, n int) *relation.Table {
	t := relation.NewTable(name, relation.Schema{Cols: []relation.Column{
		{Name: "v", Type: relation.Int},
	}})
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, relation.Row{relation.IntVal(int64(i))})
	}
	return t
}

func TestRunContextCancelsCrossProduct(t *testing.T) {
	// 2000 × 2000 = 4M output rows: enough that cancellation must land
	// mid-join, far above the 4096-row checkpoint batch.
	cat := NewMapCatalog(map[string]*relation.Table{
		"a": bigTable("a", 2000),
		"b": bigTable("b", 2000),
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, "SELECT a.v, b.v FROM a, b", cat)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cross product: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("abort took %v, want prompt", elapsed)
	}
}

func TestRunContextDeadlineAbortsJoin(t *testing.T) {
	// A skewed equijoin: every row of both sides shares one key, so the
	// probe loop alone would emit 4M rows.
	mk := func(name string) *relation.Table {
		tb := relation.NewTable(name, relation.Schema{Cols: []relation.Column{
			{Name: "k", Type: relation.Int},
			{Name: "v", Type: relation.Int},
		}})
		for i := 0; i < 2000; i++ {
			tb.Rows = append(tb.Rows, relation.Row{relation.IntVal(1), relation.IntVal(int64(i))})
		}
		return tb
	}
	cat := NewMapCatalog(map[string]*relation.Table{"l": mk("l"), "r": mk("r")})

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // let the deadline pass before executing
	_, err := RunContext(ctx, "SELECT l.v FROM l, r WHERE l.k = r.k", cat)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired join: %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextPropagatesCause(t *testing.T) {
	cat := NewMapCatalog(map[string]*relation.Table{
		"a": bigTable("a", 2000),
		"b": bigTable("b", 2000),
	})
	cause := errors.New("value horizon passed")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := RunContext(ctx, "SELECT a.v FROM a, b", cat); !errors.Is(err, cause) {
		t.Errorf("error %v, want the cancellation cause", err)
	}
}

func TestRunContextBackgroundUnaffected(t *testing.T) {
	cat := NewMapCatalog(map[string]*relation.Table{"a": bigTable("a", 10)})
	out, err := RunContext(context.Background(), "SELECT count(*) AS n FROM a", cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Rows[0][0].I; got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
}

func TestNewMapCatalogNormalizesKeys(t *testing.T) {
	cat := NewMapCatalog(map[string]*relation.Table{
		"Customers": bigTable("Customers", 3),
	})
	for _, name := range []string{"customers", "Customers", "CUSTOMERS"} {
		if _, err := cat.Table(name); err != nil {
			t.Errorf("lookup %q: %v", name, err)
		}
	}
	if _, err := cat.Table("orders"); err == nil {
		t.Error("unknown table lookup should fail")
	}
}

func TestMapCatalogAdd(t *testing.T) {
	cat := make(MapCatalog)
	cat.Add("Trades", bigTable("Trades", 1))
	if _, ok := cat["trades"]; !ok {
		t.Error("Add should store under the lower-cased name")
	}
	if _, err := cat.Table("TRADES"); err != nil {
		t.Errorf("lookup after Add: %v", err)
	}
}

func BenchmarkMapCatalogLookup(b *testing.B) {
	tables := make(map[string]*relation.Table, 64)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("table_%02d", i)
		tables[name] = bigTable(name, 1)
	}
	cat := NewMapCatalog(tables)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mixed case forces the second (lower-cased) lookup — the path the
		// old implementation served with an O(n) EqualFold scan.
		if _, err := cat.Table("TABLE_63"); err != nil {
			b.Fatal(err)
		}
	}
}
