package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ivdss/internal/wall"
)

// Pool is a keyed connection pool for the wire protocol: connections are
// reused per address, health-checked before reuse, and bounded per key.
// The protocol allows one outstanding request per connection, so a pooled
// connection is either idle or owned by exactly one in-flight call.
type Pool struct {
	// DialTimeout bounds establishing a new connection. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds each round trip made through the pool; zero means
	// no per-call deadline (not recommended — a hung peer then stalls the
	// caller).
	CallTimeout time.Duration
	// MaxIdlePerKey caps idle connections kept per address. Default 4.
	MaxIdlePerKey int
	// IdleExpiry discards idle connections older than this. Default 30s.
	IdleExpiry time.Duration

	mu     sync.Mutex
	idle   map[string][]pooledConn
	closed bool
}

type pooledConn struct {
	conn  *Conn
	since time.Time
}

// NewPool returns an empty pool with the given per-call timeout.
func NewPool(dialTimeout, callTimeout time.Duration) *Pool {
	return &Pool{
		DialTimeout: dialTimeout,
		CallTimeout: callTimeout,
		idle:        make(map[string][]pooledConn),
	}
}

func (p *Pool) maxIdle() int {
	if p.MaxIdlePerKey <= 0 {
		return 4
	}
	return p.MaxIdlePerKey
}

func (p *Pool) idleExpiry() time.Duration {
	if p.IdleExpiry <= 0 {
		return 30 * time.Second
	}
	return p.IdleExpiry
}

// get returns a healthy idle connection for addr, or reused=false when the
// caller must dial.
func (p *Pool) get(addr string) (c *Conn, reused bool) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, false
		}
		conns := p.idle[addr]
		if len(conns) == 0 {
			p.mu.Unlock()
			return nil, false
		}
		pc := conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.mu.Unlock()
		if wall.Since(pc.since) > p.idleExpiry() || !healthy(pc.conn) {
			_ = pc.conn.Close() // discarding a stale conn; nothing to salvage
			continue
		}
		return pc.conn, true
	}
}

// healthy probes an idle connection for silent peer closure: with a
// deadline in the past, a read must time out (no data, still open). An EOF
// means the peer hung up; any buffered byte means the one-request-at-a-time
// protocol was violated, so the connection is unusable either way.
func healthy(c *Conn) bool {
	if err := c.raw.SetReadDeadline(time.Unix(1, 0)); err != nil {
		return false
	}
	var b [1]byte
	n, err := c.raw.Read(b[:])
	if resetErr := c.raw.SetReadDeadline(time.Time{}); resetErr != nil {
		return false
	}
	if n > 0 {
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// put returns a connection to the idle set, closing it when the pool is
// full or closed.
func (p *Pool) put(addr string, c *Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle() {
		p.mu.Unlock()
		_ = c.Close() // surplus conn; the call it served already succeeded
		return
	}
	p.idle[addr] = append(p.idle[addr], pooledConn{conn: c, since: wall.Now()})
	p.mu.Unlock()
}

func (p *Pool) dial(ctx context.Context, addr string) (*Conn, error) {
	d := p.DialTimeout
	if d <= 0 {
		d = 5 * time.Second
	}
	c, err := DialContext(ctx, addr, d)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(p.CallTimeout)
	return c, nil
}

// Call round-trips one request against addr over a pooled connection. A
// failure on a reused connection (the peer may have silently closed it
// since the health probe) is transparently retried once on a fresh dial;
// a failure on a fresh connection is the caller's to handle. A
// server-reported error leaves the connection healthy, so it is returned
// to the pool and the error surfaces via the response's Err field.
func (p *Pool) Call(addr string, req *Request) (*Response, error) {
	return p.CallContext(context.Background(), addr, req)
}

// CallContext is Call bounded by a context: the dial and the round trip
// respect the earlier of the pool's timeouts and the context deadline, the
// remaining budget travels on the wire (Conn.RoundTripContext), and the
// redial-once repair path is skipped when the context has already ended —
// a deadline failure is the caller's answer, not a broken idle connection.
func (p *Pool) CallContext(ctx context.Context, addr string, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	conn, reused := p.get(addr)
	if conn == nil {
		var err error
		conn, err = p.dial(ctx, addr)
		if err != nil {
			return nil, err
		}
	}
	resp, err := conn.RoundTripContext(ctx, req)
	if err != nil {
		_ = conn.Close() // the round-trip error is the one to surface
		if !reused || ctx.Err() != nil {
			return nil, err
		}
		conn, err = p.dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		resp, err = conn.RoundTripContext(ctx, req)
		if err != nil {
			_ = conn.Close() // ditto: report the round-trip failure
			return nil, err
		}
	}
	p.put(addr, conn)
	return resp, nil
}

// IdleLen reports the idle connections held for addr (for tests and
// introspection).
func (p *Pool) IdleLen(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[addr])
}

// Close discards every idle connection and makes further calls dial
// one-shot connections that are closed after use.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	// Close in sorted address order so firstErr picks the same failure
	// on every run.
	addrs := make([]string, 0, len(p.idle))
	for addr := range p.idle {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	var firstErr error
	for _, addr := range addrs {
		for _, pc := range p.idle[addr] {
			if err := pc.conn.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("netproto: pool close: %w", err)
			}
		}
	}
	p.idle = make(map[string][]pooledConn)
	return firstErr
}
