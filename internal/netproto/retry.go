package netproto

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ivdss/internal/wall"
)

// Retrier retries an operation under exponential backoff with jitter,
// capped by both an attempt count and a cumulative sleep budget. The zero
// value is usable and takes the defaults documented per field. Sleep and
// Rand are injectable so tests run deterministically without waiting.
type Retrier struct {
	// MaxAttempts is the total number of tries, including the first.
	// Default 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Default 25ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step. Default 1s.
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry. Default 2.
	Multiplier float64
	// Jitter perturbs each delay by ±Jitter fraction. Default 0.2; set
	// negative for none.
	Jitter float64
	// Budget caps the cumulative backoff sleep: when the next delay would
	// exceed the remaining budget, the retrier gives up and returns the
	// last error instead of sleeping. Zero means no budget cap.
	Budget time.Duration
	// Retryable classifies errors; a non-retryable error returns
	// immediately. Nil means every error is retryable.
	Retryable func(error) bool
	// Sleep defaults to the wall clock's sleep.
	Sleep func(time.Duration)
	// Rand yields uniform values in [0,1) for jitter. Defaults to a
	// process-wide source seeded with 1, so retry timing replays
	// identically run to run; inject NewJitter(seed) to pick the seed
	// (plumbed from the server's -retry-seed flag), or any func for tests.
	// The global math/rand source is never consulted.
	Rand func() float64
}

// lockedRand is a mutex-guarded seeded source: *rand.Rand itself is not
// safe for the concurrent request goroutines that share one Retrier.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// NewJitter returns a jitter source for Retrier.Rand: uniform draws from
// a seeded *rand.Rand, safe for concurrent use.
func NewJitter(seed int64) func() float64 {
	l := &lockedRand{rng: rand.New(rand.NewSource(seed))}
	return l.Float64
}

// defaultJitter backs Retrier.Rand when none is injected. Seeded, never
// the global source: an unseeded retrier must not be the reason two runs
// of the same experiment diverge.
var defaultJitter = NewJitter(1)

// RetryError wraps the final error with the attempt count.
type RetryError struct {
	Attempts int
	Err      error
}

// Error implements the error interface.
func (e *RetryError) Error() string {
	return fmt.Sprintf("after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final underlying error.
func (e *RetryError) Unwrap() error { return e.Err }

// DoContext is Do bounded by a context: no attempt starts after the
// context ends, and a backoff that would sleep past the context deadline
// is skipped — the retrier gives up immediately with the last error
// rather than burning the caller's remaining budget on a wait it cannot
// use. This is what makes retries compose with request deadlines instead
// of racing them.
func (r Retrier) DoContext(ctx context.Context, op func(attempt int) error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	base := r.BaseDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	mult := r.Multiplier
	if mult <= 1 {
		mult = 2
	}
	jitter := r.Jitter
	if jitter == 0 {
		jitter = .2
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = wall.Sleep
	}
	random := r.Rand
	if random == nil {
		random = defaultJitter
	}

	var slept time.Duration
	delay := base
	var err error
	for a := 0; a < attempts; a++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			cause := context.Cause(ctx)
			if a == 0 {
				return cause
			}
			return &RetryError{Attempts: a, Err: fmt.Errorf("%w (last error: %v)", cause, err)}
		}
		err = op(a)
		if err == nil {
			return nil
		}
		if r.Retryable != nil && !r.Retryable(err) {
			if a == 0 {
				return err
			}
			return &RetryError{Attempts: a + 1, Err: err}
		}
		if a == attempts-1 {
			break
		}
		d := delay
		if jitter > 0 {
			d = time.Duration(float64(d) * (1 + jitter*(2*random()-1)))
		}
		if d > maxDelay {
			d = maxDelay
		}
		if r.Budget > 0 && slept+d > r.Budget {
			return &RetryError{Attempts: a + 1, Err: err}
		}
		// A backoff that outlives the caller's deadline is pure waste:
		// give up now with the real error in hand.
		if deadline, ok := ctx.Deadline(); ok && wall.Now().Add(d).After(deadline) {
			return &RetryError{Attempts: a + 1, Err: err}
		}
		if !sleepCtx(ctx, sleep, r.Sleep != nil, d) {
			return &RetryError{Attempts: a + 1, Err: err}
		}
		slept += d
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
	return &RetryError{Attempts: attempts, Err: err}
}

// sleepCtx waits d, returning false if the context ended first. An
// injected Sleep (tests) is called directly — determinism over
// interruptibility — while the default path selects on the context so a
// cancellation mid-backoff is honoured immediately.
func sleepCtx(ctx context.Context, sleep func(time.Duration), injected bool, d time.Duration) bool {
	if injected {
		sleep(d)
		return ctx.Err() == nil
	}
	t := wall.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
