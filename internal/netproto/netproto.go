// Package netproto is the wire protocol between the DSS (federation)
// server, the remote site servers, and clients: gob-encoded request /
// response pairs over a TCP connection, one outstanding request per
// connection at a time.
package netproto

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"ivdss/internal/relation"
)

// RequestKind selects the operation.
type RequestKind int

const (
	// KindPing checks liveness.
	KindPing RequestKind = iota + 1
	// KindTables lists the table names a remote site serves.
	KindTables
	// KindScan fetches a whole table from a remote site.
	KindScan
	// KindExec runs a SQL query: on a remote site against its own base
	// tables, or on the DSS through information-value-driven planning.
	KindExec
	// KindInsert appends rows to a base table on a remote site (the
	// stand-in for OLTP write traffic at the branches).
	KindInsert
	// KindStatus reports DSS catalog state: placements, replicas, and
	// staleness.
	KindStatus
	// KindMetrics dumps the DSS server's instrumentation as a flat
	// name → value map.
	KindMetrics
	// KindRegister pre-registers a query at the DSS so its plans are
	// pre-calculated for routing (Section 3.1 of the paper).
	KindRegister
	// KindBatch submits a workload of queries together; the DSS orders it
	// with the multi-query optimizer (Section 3.2) before executing.
	KindBatch
)

// SiteStatus describes one remote site's health as the DSS sees it, for
// KindStatus responses.
type SiteStatus struct {
	Site int
	Addr string
	// Breaker is the circuit-breaker state name: "closed", "open", or
	// "half-open".
	Breaker string
	// ConsecutiveFailures counts transport failures since the last success
	// (meaningful while closed).
	ConsecutiveFailures int
}

// Request is the client-to-server message.
type Request struct {
	Kind  RequestKind
	Table string         // KindScan, KindInsert
	SQL   string         // KindExec
	Rows  []relation.Row // KindInsert
	// BusinessValue applies to KindExec on the DSS; zero means 1.
	BusinessValue float64
	// Batch carries the workload for KindBatch.
	Batch []BatchQuery
}

// BatchQuery is one member of a KindBatch workload.
type BatchQuery struct {
	SQL           string
	BusinessValue float64 // zero means 1
}

// ReportMeta carries the information-value accounting of a DSS report.
type ReportMeta struct {
	PlanSignature string
	CLMinutes     float64
	SLMinutes     float64
	Value         float64
	// Degraded marks a report produced under the failure-degradation
	// policy: at least one table was answered from a local replica because
	// its base site was unreachable, so SL reflects the replica's true
	// staleness rather than the planner's preferred choice.
	Degraded bool
}

// ReplicaStatus describes one replica in a KindStatus response.
type ReplicaStatus struct {
	Table            string
	Site             int
	LastSyncMinutes  float64 // experiment-time of the last completed sync
	StalenessMinutes float64
}

// BatchItem is one KindBatch member's outcome, aligned with the request's
// Batch slice.
type BatchItem struct {
	Err      string
	Degraded bool // see Response.Degraded
	Result   *relation.Table
	Meta     *ReportMeta
}

// Response is the server-to-client message.
type Response struct {
	Err string // empty on success
	// Degraded marks an error produced by the DSS degraded-mode policy: a
	// remote site is unavailable and no local replica exists to answer
	// from. Clients distinguish it from plain query errors via RemoteError.
	Degraded bool
	Tables   []string
	Result   *relation.Table
	Meta     *ReportMeta
	Replicas []ReplicaStatus
	Sites    []SiteStatus
	Metrics  map[string]float64
	Batch    []BatchItem
}

// RemoteError is the typed client-side form of a server-reported error.
type RemoteError struct {
	Msg string
	// Degraded is set when the DSS refused the query because a remote site
	// is down and no replica could stand in (degraded mode), as opposed to
	// the query itself being invalid.
	Degraded bool
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	if e.Degraded {
		return "netproto: remote error (degraded): " + e.Msg
	}
	return "netproto: remote error: " + e.Msg
}

// ErrOrNil converts the wire error back to a Go error.
func (r *Response) ErrOrNil() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Msg: r.Err, Degraded: r.Degraded}
}

// Conn wraps a network connection with gob codecs.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// timeout bounds each round trip; zero means no deadline.
	timeout time.Duration
}

// NewConn wraps an established connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// SetTimeout bounds every subsequent round trip on this connection: the
// deadline is re-armed per RoundTrip, so a hung peer surfaces as a timeout
// error instead of stalling the caller forever. Zero disables deadlines.
func (c *Conn) SetTimeout(d time.Duration) { c.timeout = d }

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// WriteRequest sends a request.
func (c *Conn) WriteRequest(req *Request) error {
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("netproto: encode request: %w", err)
	}
	return nil
}

// ReadRequest receives a request (server side).
func (c *Conn) ReadRequest() (*Request, error) {
	var req Request
	if err := c.dec.Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteResponse sends a response (server side).
func (c *Conn) WriteResponse(resp *Response) error {
	if err := c.enc.Encode(resp); err != nil {
		return fmt.Errorf("netproto: encode response: %w", err)
	}
	return nil
}

// ReadResponse receives a response.
func (c *Conn) ReadResponse() (*Response, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("netproto: decode response: %w", err)
	}
	return &resp, nil
}

// RoundTrip sends one request and reads its response. With a timeout set,
// the whole exchange runs under one connection deadline, cleared on return
// so a pooled connection can idle without tripping it.
func (c *Conn) RoundTrip(req *Request) (*Response, error) {
	if c.timeout > 0 {
		if err := c.raw.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("netproto: set deadline: %w", err)
		}
		defer c.raw.SetDeadline(time.Time{})
	}
	if err := c.WriteRequest(req); err != nil {
		return nil, err
	}
	return c.ReadResponse()
}

// Call dials, round-trips one request, and closes — the convenience used
// by short-lived clients and the sync puller. The timeout bounds the dial
// and the round trip separately, so a server that accepts but never
// answers cannot hang the caller. On a server-reported error the response
// is still returned alongside the RemoteError.
func Call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	conn, err := Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetTimeout(timeout)
	resp, err := conn.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if err := resp.ErrOrNil(); err != nil {
		return resp, err
	}
	return resp, nil
}
